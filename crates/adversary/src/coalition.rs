//! Coalition-level attack strategies: coordinated placement plus
//! coordinated lies.
//!
//! The per-node [`FaultPlan`] model answers *how one node lies*; a
//! coalition additionally chooses *where its nodes sit* and *which lie
//! each member tells*, coordinated toward one objective. A
//! [`CoalitionStrategy`] compiles — against the honest membership, using
//! `ringidx` range/order queries for the geometry — into a
//! [`CompiledCoalition`]: sybil ring positions to join with, a count of
//! existing nodes to corrupt, and the [`NodeFaults`] behaviour every
//! coalition member runs.
//!
//! The three strategies each lie on a *different* protocol surface (see
//! the threat-model table in this crate's README):
//!
//! * [`SybilArcCapture`](CoalitionStrategy::SybilArcCapture) — sybils
//!   seize the largest honest gap-arcs: each sits at the trailing end of
//!   one of the `budget` longest empty arcs, so its trailing arc *is*
//!   that gap, then forges its self-reported position
//!   (`forge_owned_position`) so the SMALL check accepts every start
//!   point in the gap. Routed lookups that pass through a sybil are
//!   captured outright (`claim_ownership`).
//! * [`AdaptiveArcLiars`](CoalitionStrategy::AdaptiveArcLiars) — no
//!   placement control (the coalition corrupts existing uniformly-placed
//!   nodes); each liar forges only its own position, only for lookups it
//!   genuinely owns. No honest node ever contradicts the ownership claim,
//!   so the lie is invisible to global routing audits; only independent
//!   position evidence (the defense's quorum rule) catches it.
//! * [`EclipseRun`](CoalitionStrategy::EclipseRun) — sybils shadow a run
//!   of consecutive honest victims: each sits immediately
//!   counter-clockwise of its victim (stealing the victim's arc by
//!   *placement*, no lie needed) and eclipses it from `next(p)` answers
//!   (`eclipse_next`), so supplementation scans walk
//!   sybil → sybil → sybil and the victims' assigned measure — which the
//!   uniformity theorem says must reach them through those scans — never
//!   does. The run chosen is the window of maximum ring span, the one
//!   whose victims carry the most stealable measure.

use chord::{ChordNetwork, NodeFaults, NodeId};
use keyspace::{Distance, KeySpace, Point};
use ringidx::RingIndex;

/// A coordinated coalition attack on the uniform sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalitionStrategy {
    /// Seize the `budget` largest honest gap-arcs and forge owned
    /// positions to claim their full measure; capture routed lookups
    /// passing through coalition members.
    SybilArcCapture,
    /// Corrupt existing nodes; each lies only about its own position and
    /// only for lookups landing in its own arc.
    AdaptiveArcLiars,
    /// Shadow a maximal run of consecutive honest victims and eclipse
    /// them from every supplementation scan.
    EclipseRun,
}

impl CoalitionStrategy {
    /// Stable lowercase name used in reports and spec presets.
    pub fn name(self) -> &'static str {
        match self {
            CoalitionStrategy::SybilArcCapture => "sybil-arc-capture",
            CoalitionStrategy::AdaptiveArcLiars => "adaptive-liars",
            CoalitionStrategy::EclipseRun => "eclipse-run",
        }
    }
}

/// A strategy compiled against a concrete honest membership.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledCoalition {
    /// Ring positions the coalition joins with (empty for
    /// corrupt-existing strategies). Distinct from every honest point and
    /// from each other, so overlay construction cannot collapse them.
    pub sybil_points: Vec<Point>,
    /// How many *existing* nodes the coalition corrupts instead of (or in
    /// addition to) placing sybils.
    pub corrupt_existing: usize,
    /// The behaviour every coalition member runs.
    pub behavior: NodeFaults,
}

impl CompiledCoalition {
    /// Total coalition size (sybils + corrupted incumbents).
    pub fn size(&self) -> usize {
        self.sybil_points.len() + self.corrupt_existing
    }
}

/// Compiles `strategy` with `budget` coalition members against the honest
/// membership in `honest`.
///
/// Placement is deterministic — the strongest adversary knows the honest
/// ring exactly and places optimally, so there is nothing to randomize.
/// Corrupt-existing strategies leave victim selection to the caller
/// (which owns the scenario's fault stream).
///
/// # Panics
///
/// Panics when `honest` has fewer than two distinct points (there is no
/// geometry to attack) or `budget` is zero.
pub fn compile_coalition<I: Copy + Ord>(
    strategy: CoalitionStrategy,
    honest: &RingIndex<I>,
    budget: usize,
) -> CompiledCoalition {
    assert!(budget > 0, "a coalition needs at least one member");
    let space = honest.space();
    let mut points = honest.points();
    points.dedup();
    assert!(
        points.len() >= 2,
        "need >= 2 distinct honest points to attack"
    );
    match strategy {
        CoalitionStrategy::SybilArcCapture => CompiledCoalition {
            sybil_points: capture_largest_gaps(space, &points, budget),
            corrupt_existing: 0,
            behavior: NodeFaults {
                claim_ownership: true,
                eclipse_next: false,
                forge_owned_position: true,
            },
        },
        CoalitionStrategy::AdaptiveArcLiars => CompiledCoalition {
            sybil_points: Vec::new(),
            corrupt_existing: budget,
            behavior: NodeFaults {
                claim_ownership: false,
                eclipse_next: false,
                forge_owned_position: true,
            },
        },
        CoalitionStrategy::EclipseRun => CompiledCoalition {
            sybil_points: shadow_max_span_run(space, &points, budget),
            corrupt_existing: 0,
            behavior: NodeFaults {
                claim_ownership: false,
                eclipse_next: true,
                forge_owned_position: false,
            },
        },
    }
}

/// Resolves the arena ids the overlay assigned to the coalition's sybil
/// points (exact point matches in the network's ground-truth ring index).
///
/// # Panics
///
/// Panics if some sybil point is not a live member — the caller must have
/// joined every compiled point before asking.
pub fn sybil_ids(net: &ChordNetwork, sybil_points: &[Point]) -> Vec<NodeId> {
    sybil_points
        .iter()
        .map(|&p| {
            let (point, id) = net
                .ring_index()
                .successor(p)
                .expect("overlay cannot be empty");
            assert_eq!(point, p, "sybil point {p:?} was never joined");
            id
        })
        .collect()
}

/// One sybil at the trailing end of each of the `budget` longest honest
/// gaps: the point immediately counter-clockwise of the honest node that
/// terminates the gap (nudged further if occupied), so the sybil's
/// trailing arc is essentially the whole gap.
fn capture_largest_gaps(space: KeySpace, honest: &[Point], budget: usize) -> Vec<Point> {
    // Gap i runs (honest[i], honest[i+1]); rank by length, longest first,
    // ties broken by gap-end point for determinism.
    let mut gaps: Vec<(Distance, Point)> = (0..honest.len())
        .map(|i| {
            let end = honest[(i + 1) % honest.len()];
            (space.distance(honest[i], end), end)
        })
        .collect();
    gaps.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut taken: Vec<Point> = Vec::with_capacity(budget);
    for &(length, end) in gaps.iter().take(budget) {
        // A 1-point gap has no room for a shadow; skip it (the coalition
        // simply fields fewer sybils on absurdly dense rings).
        if length.get() >= 2 {
            taken.push(free_point_before(space, end, honest, &taken));
        }
    }
    taken
}

/// One sybil immediately counter-clockwise of each victim in the
/// `budget`-node run of consecutive honest nodes spanning the most ring
/// measure (the victims with the most supplementation to erase).
fn shadow_max_span_run(space: KeySpace, honest: &[Point], budget: usize) -> Vec<Point> {
    let n = honest.len();
    let w = budget.min(n - 1);
    // The run starting at index j covers victims honest[j..j+w]; its arc
    // mass is the span from the run's predecessor to its last victim.
    let (mut best_span, mut best_j) = (Distance::ZERO, 0);
    for j in 0..n {
        let pred = honest[(j + n - 1) % n];
        let last = honest[(j + w - 1) % n];
        let span = space.distance(pred, last);
        if span > best_span {
            best_span = span;
            best_j = j;
        }
    }
    let mut taken: Vec<Point> = Vec::with_capacity(w);
    for k in 0..w {
        let victim = honest[(best_j + k) % n];
        taken.push(free_point_before(space, victim, honest, &taken));
    }
    taken
}

/// The nearest unoccupied point counter-clockwise of `target`.
///
/// # Panics
///
/// Panics if no free point exists within 64 steps — impossible on any
/// non-degenerate ring (the scan would need 64 co-located members).
fn free_point_before(space: KeySpace, target: Point, honest: &[Point], taken: &[Point]) -> Point {
    let mut q = space.sub(target, Distance::new(1));
    for _ in 0..64 {
        if honest.binary_search(&q).is_err() && !taken.contains(&q) {
            return q;
        }
        q = space.sub(q, Distance::new(1));
    }
    panic!("no free shadow position within 64 points of {target:?}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use chord::ChordConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn honest_index(n: usize, seed: u64) -> RingIndex<u64> {
        let space = KeySpace::full();
        let mut rng = StdRng::seed_from_u64(seed);
        RingIndex::bulk(
            space,
            space
                .random_points(&mut rng, n)
                .into_iter()
                .enumerate()
                .map(|(i, p)| (p, i as u64))
                .collect(),
        )
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            CoalitionStrategy::SybilArcCapture.name(),
            "sybil-arc-capture"
        );
        assert_eq!(CoalitionStrategy::AdaptiveArcLiars.name(), "adaptive-liars");
        assert_eq!(CoalitionStrategy::EclipseRun.name(), "eclipse-run");
    }

    #[test]
    fn sybil_arc_capture_shadows_the_largest_gaps() {
        let honest = honest_index(200, 1);
        let c = compile_coalition(CoalitionStrategy::SybilArcCapture, &honest, 10);
        assert_eq!(c.sybil_points.len(), 10);
        assert_eq!(c.corrupt_existing, 0);
        assert!(c.behavior.claim_ownership && c.behavior.forge_owned_position);
        assert!(!c.behavior.eclipse_next);
        let space = honest.space();
        let mut points = honest.points();
        points.dedup();
        // Every sybil sits one point before an honest node terminating one
        // of the 10 largest gaps; its own trailing arc is that gap minus
        // one point.
        let mut gaps: Vec<Distance> = (0..points.len())
            .map(|i| space.distance(points[i], points[(i + 1) % points.len()]))
            .collect();
        gaps.sort_unstable_by(|a, b| b.cmp(a));
        let cutoff = gaps[9];
        for &s in &c.sybil_points {
            assert!(!points.contains(&s), "sybil must not collide");
            let (pred_point, _) = honest.predecessor(s).unwrap();
            let trailing = space.distance(pred_point, s);
            assert!(
                trailing >= Distance::new(cutoff.get().saturating_sub(2)),
                "sybil arc {trailing:?} should be a top-10 gap (cutoff {cutoff:?})"
            );
        }
    }

    #[test]
    fn adaptive_liars_corrupt_existing_nodes_only() {
        let honest = honest_index(100, 2);
        let c = compile_coalition(CoalitionStrategy::AdaptiveArcLiars, &honest, 7);
        assert!(c.sybil_points.is_empty());
        assert_eq!(c.corrupt_existing, 7);
        assert_eq!(c.size(), 7);
        assert!(c.behavior.forge_owned_position);
        assert!(!c.behavior.claim_ownership && !c.behavior.eclipse_next);
    }

    #[test]
    fn eclipse_run_shadows_consecutive_victims() {
        let honest = honest_index(150, 3);
        let c = compile_coalition(CoalitionStrategy::EclipseRun, &honest, 8);
        assert_eq!(c.sybil_points.len(), 8);
        assert!(c.behavior.eclipse_next);
        assert!(!c.behavior.claim_ownership && !c.behavior.forge_owned_position);
        let space = honest.space();
        // Each sybil is immediately before a distinct honest victim, and
        // the victims are consecutive on the ring.
        let mut victims: Vec<Point> = c
            .sybil_points
            .iter()
            .map(|&s| honest.successor(space.add(s, Distance::new(1))).unwrap().0)
            .collect();
        victims.sort_unstable();
        victims.dedup();
        assert_eq!(victims.len(), 8, "eight distinct victims");
        for w in victims.windows(2) {
            let (succ, _) = honest.successor(space.add(w[0], Distance::new(1))).unwrap();
            assert_eq!(succ, w[1], "victims must be a consecutive run");
        }
    }

    #[test]
    fn compiled_points_are_distinct_and_join_cleanly() {
        let honest = honest_index(64, 4);
        for strategy in [
            CoalitionStrategy::SybilArcCapture,
            CoalitionStrategy::EclipseRun,
        ] {
            let c = compile_coalition(strategy, &honest, 6);
            let mut pts = c.sybil_points.clone();
            pts.sort_unstable();
            pts.dedup();
            assert_eq!(pts.len(), c.sybil_points.len(), "{strategy:?}");
            // Joining honest + sybil points builds an overlay where every
            // sybil resolves to a distinct live id.
            let mut all = honest.points();
            all.extend(c.sybil_points.iter().copied());
            let net = ChordNetwork::bootstrap(honest.space(), all, ChordConfig::default());
            let ids = sybil_ids(&net, &c.sybil_points);
            assert_eq!(ids.len(), c.sybil_points.len());
            let mut uniq = ids.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), ids.len(), "sybil ids must be distinct");
        }
    }

    #[test]
    fn compilation_is_deterministic() {
        let honest = honest_index(120, 5);
        let a = compile_coalition(CoalitionStrategy::SybilArcCapture, &honest, 12);
        let b = compile_coalition(CoalitionStrategy::SybilArcCapture, &honest, 12);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn zero_budget_panics() {
        let honest = honest_index(10, 6);
        let _ = compile_coalition(CoalitionStrategy::AdaptiveArcLiars, &honest, 0);
    }

    #[test]
    #[should_panic(expected = ">= 2 distinct honest points")]
    fn degenerate_ring_panics() {
        let space = KeySpace::full();
        let mut index = RingIndex::new(space);
        index.insert(Point::new(5), 0u64);
        let _ = compile_coalition(CoalitionStrategy::EclipseRun, &index, 1);
    }
}
