//! Committee-capture arithmetic: what a sampling bias costs the paper's
//! headline application.
//!
//! Scalable Byzantine agreement (§1, Lewis–Saia) elects committees by
//! repeated uniform draws and is safe while Byzantine members stay below
//! a majority. The quantity that links sampler bias to protocol failure
//! is the probability that a committee of `c` i.i.d. draws, each landing
//! on the adversary with probability `q`, seats a Byzantine majority.
//! Under an honest sampler `q` is the adversary's *population* share `b`;
//! a successful coalition attack raises `q` to its *sample* share — and
//! the capture probability responds exponentially (Chernoff), which is
//! why a few points of bias translate into orders of magnitude of risk.
//! The e16 coalition battery reports this number per arm.

/// Exact probability that a committee of `committee_size` i.i.d. draws
/// with per-draw Byzantine probability `q` contains a strict Byzantine
/// majority: `P[Bin(c, q) > c/2]`.
///
/// Computed by direct summation of the binomial tail in log space
/// (`ln term_j` accumulated multiplicatively, combined by logsumexp), so
/// extreme tails neither underflow to a false 0 nor overflow — exact to
/// rounding for `c ≤ 1000`.
///
/// # Panics
///
/// Panics unless `0 ≤ q ≤ 1` and `committee_size > 0`.
pub fn majority_capture_probability(q: f64, committee_size: usize) -> f64 {
    assert!(
        (0.0..=1.0).contains(&q),
        "per-draw probability {q} outside [0, 1]"
    );
    assert!(committee_size > 0, "committee must have members");
    if q == 0.0 {
        return 0.0;
    }
    if q == 1.0 {
        return 1.0;
    }
    let c = committee_size;
    // ln term_j = ln C(c, j) + j ln q + (c − j) ln(1 − q), built
    // incrementally from j = 0; the tail terms (j > c/2) are combined by
    // max-shifted logsumexp.
    let (ln_q, ln_p) = (q.ln(), (1.0 - q).ln());
    let mut ln_term = c as f64 * ln_p;
    let mut tail_lns = Vec::with_capacity(c / 2 + 1);
    for j in 0..=c {
        if 2 * j > c {
            tail_lns.push(ln_term);
        }
        ln_term += ln_q - ln_p + (((c - j) as f64) / ((j + 1) as f64)).ln();
    }
    let max_ln = tail_lns.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max_ln == f64::NEG_INFINITY {
        return 0.0;
    }
    let sum: f64 = tail_lns.iter().map(|&t| (t - max_ln).exp()).sum();
    (max_ln + sum.ln()).exp().clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries() {
        assert_eq!(majority_capture_probability(0.0, 15), 0.0);
        assert_eq!(majority_capture_probability(1.0, 15), 1.0);
    }

    #[test]
    fn fair_coin_odd_committee_is_half() {
        // q = 1/2, odd c: majority each way is equally likely.
        let p = majority_capture_probability(0.5, 15);
        assert!((p - 0.5).abs() < 1e-12, "{p}");
    }

    #[test]
    fn single_member_committee_is_q() {
        let p = majority_capture_probability(0.3, 1);
        assert!((p - 0.3).abs() < 1e-12, "{p}");
    }

    #[test]
    fn matches_hand_computed_small_case() {
        // c = 3, majority = 2 or 3 byzantine:
        // 3 q² (1−q) + q³ at q = 0.2 → 3·0.04·0.8 + 0.008 = 0.104.
        let p = majority_capture_probability(0.2, 3);
        assert!((p - 0.104).abs() < 1e-12, "{p}");
    }

    #[test]
    fn capture_explodes_with_bias() {
        // The Chernoff cliff: doubling q from the population share to a
        // captured share multiplies the risk by orders of magnitude.
        let honest = majority_capture_probability(0.1, 15);
        let biased = majority_capture_probability(0.4, 15);
        assert!(honest < 1e-4, "{honest}");
        assert!(biased > 1e-2, "{biased}");
        assert!(biased / honest > 1e3);
    }

    #[test]
    fn larger_committees_are_safer_below_half() {
        let small = majority_capture_probability(0.25, 5);
        let large = majority_capture_probability(0.25, 101);
        assert!(large < small, "large {large} vs small {small}");
    }

    #[test]
    fn extreme_tails_do_not_underflow_to_the_wrong_side() {
        // 0.3^1000 underflows f64; a linear-space accumulator would
        // report a certain capture as impossible.
        let certain = majority_capture_probability(0.7, 1000);
        assert!(certain > 0.999_999, "{certain}");
        // The genuinely tiny tail stays tiny but positive.
        let negligible = majority_capture_probability(0.3, 1000);
        assert!(negligible > 0.0 && negligible < 1e-30, "{negligible}");
    }

    #[test]
    fn monotone_in_q() {
        let mut last = 0.0;
        for i in 0..=20 {
            let p = majority_capture_probability(i as f64 / 20.0, 9);
            assert!(p >= last, "q = {}: {p} < {last}", i as f64 / 20.0);
            last = p;
        }
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_q_panics() {
        let _ = majority_capture_probability(1.5, 9);
    }

    #[test]
    #[should_panic(expected = "must have members")]
    fn empty_committee_panics() {
        let _ = majority_capture_probability(0.5, 0);
    }
}
