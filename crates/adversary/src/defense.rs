//! The defense arm: verified redundant sampling.
//!
//! A [`DefendedSampler`] wraps the paper's [`Sampler`] with three
//! hardening rules, each aimed at one of the coalition lies:
//!
//! 1. **Redundant disjoint-entry lookups** — every `h(x)` resolution is
//!    issued through `k` independent DHT views (distinct entry nodes, so
//!    the routes are as disjoint as the overlay allows) and a strict
//!    majority must agree on the *pair* `(peer, position)`. A route
//!    captured by a `claim_ownership` hop answers with a forged pair that
//!    honest routes contradict, so the capture loses the vote.
//! 2. **Exact interval position verification, promoted to a quorum
//!    rule** — the paper's `|I(s, l(h(s)))| < λ` check runs against the
//!    quorum-agreed position, never the answer's self-report (the views
//!    run in `with_verified_positions` mode). An adaptive arc-liar's
//!    forged self-report therefore never reaches the accumulator: the
//!    node is credited exactly `λ` of measure like everyone else.
//! 3. **Supplementation by verified lookup** — the scan's `next(p)` step
//!    is replaced by a quorum lookup of `l(p) + 1`, the successor's
//!    defining point. An eclipsing `p` is simply never asked; the erased
//!    victim is rediscovered by routing, at the price of a full `O(log
//!    n)` lookup per scan step instead of one message.
//!
//! When no quorum forms, the *trial* is rejected and the sampler redraws
//! `s` — disagreement costs messages, never bias. Off the attack path the
//! defense is **zero-bias by construction**: for the same seed, the
//! accepted peer sequence is bit-identical to the plain [`Sampler`]'s
//! (property-tested in `tests/defense_properties.rs`); only the cost
//! differs. That cost — expected messages per accepted sample — is the
//! defense overhead the e16 coalition battery reports.

use keyspace::{Distance, Point};
use peer_sampling::{Cost, Dht, SampleError, Sampler, SamplerConfig};
use rand::Rng;

/// A successfully drawn peer with defense telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefendedSample<P> {
    /// The chosen peer — uniform over all peers when a majority of views
    /// are honest.
    pub peer: P,
    /// The quorum-agreed ring point of the chosen peer.
    pub point: Point,
    /// Trials used (bit-identical to the plain sampler's count off the
    /// attack path).
    pub trials: u32,
    /// Trials rejected because no strict majority agreed on an answer —
    /// each one is a detected attack (or partitioned view), resolved by
    /// redrawing.
    pub quorum_failures: u32,
    /// Individual `h` lookups issued across all views and trials.
    pub lookups: u64,
    /// Total cost: messages summed over every redundant lookup; latency
    /// summed per quorum round as the *maximum* across views (the
    /// redundant lookups fan out in parallel).
    pub cost: Cost,
}

/// Outcome of one defended trial for a fixed start point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefendedOutcome<P> {
    /// A quorum-verified acceptance.
    Accepted {
        /// The owning peer.
        peer: P,
        /// Its quorum-agreed point.
        point: Point,
        /// Scan steps consumed.
        steps: u32,
    },
    /// The trial rejected; the caller redraws `s`.
    Rejected {
        /// Whether the rejection was a quorum failure (an attack or
        /// partition signal) rather than the algorithm's own `T ≥ 0`
        /// rejection.
        quorum_failed: bool,
        /// Scan steps consumed before rejecting.
        steps: u32,
    },
}

/// Per-trial cost ledger threaded through the quorum rounds.
#[derive(Debug, Default, Clone, Copy)]
struct Ledger {
    cost: Cost,
    lookups: u64,
}

/// The *Choose Random Peer* algorithm hardened by quorum verification.
///
/// Generic over the number of views: `sample(&[view], rng)` with a single
/// honest view degenerates to the plain sampler's accept/reject map
/// (supplementation via `h(l(p)+1)` instead of `next(p)` resolves the
/// same peers on an honest ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefendedSampler {
    inner: Sampler,
}

impl DefendedSampler {
    /// Creates a defended sampler with the given (plain-sampler)
    /// configuration.
    pub fn new(config: SamplerConfig) -> DefendedSampler {
        DefendedSampler {
            inner: Sampler::new(config),
        }
    }

    /// The wrapped plain sampler.
    pub fn sampler(&self) -> &Sampler {
        &self.inner
    }

    /// The configuration in use.
    pub fn config(&self) -> &SamplerConfig {
        self.inner.config()
    }

    /// Draws one uniform random peer through `views`, requiring a strict
    /// majority of views to agree on every resolution.
    ///
    /// `views` are DHT views of the same overlay anchored at distinct
    /// entry nodes (for Chord, built `with_verified_positions`). The
    /// randomness consumed is exactly the plain sampler's — one
    /// `random_point` per trial — so off the attack path the draw
    /// sequence is bit-identical to [`Sampler::sample`].
    ///
    /// # Errors
    ///
    /// * [`SampleError::Config`] — `λ` is zero on this key space.
    /// * [`SampleError::TrialsExhausted`] — the retry cap was hit (quorum
    ///   failures count as rejected trials, so a fully-partitioned or
    ///   majority-Byzantine view set surfaces here, not as a biased
    ///   answer).
    ///
    /// # Panics
    ///
    /// Panics if `views` is empty.
    pub fn sample<D: Dht, R: Rng + ?Sized>(
        &self,
        views: &[&D],
        rng: &mut R,
    ) -> Result<DefendedSample<D::Peer>, SampleError> {
        self.sample_tracked(views, rng, &mut 0)
    }

    /// Like [`sample`](DefendedSampler::sample), but quorum-failure
    /// telemetry survives a *failed* draw: when the result is `Err`, the
    /// failures the exhausted trials observed are added to
    /// `quorum_failures_on_err` (on `Ok` they ride in the sample as
    /// usual and the counter is untouched). A majority-captured or
    /// partitioned view set exhausts every trial through quorum
    /// failures — exactly the case a "blocked attacks" metric must not
    /// read as zero.
    ///
    /// # Errors / Panics
    ///
    /// As [`sample`](DefendedSampler::sample).
    pub fn sample_tracked<D: Dht, R: Rng + ?Sized>(
        &self,
        views: &[&D],
        rng: &mut R,
        quorum_failures_on_err: &mut u64,
    ) -> Result<DefendedSample<D::Peer>, SampleError> {
        assert!(!views.is_empty(), "defense needs at least one view");
        let space = views[0].space();
        let mut ledger = Ledger::default();
        let mut quorum_failures = 0u32;
        for trial in 1..=self.config().max_trials() {
            let s = space.random_point(rng);
            match self.trial_with(views, s, &mut ledger)? {
                DefendedOutcome::Accepted { peer, point, .. } => {
                    return Ok(DefendedSample {
                        peer,
                        point,
                        trials: trial,
                        quorum_failures,
                        lookups: ledger.lookups,
                        cost: ledger.cost,
                    });
                }
                DefendedOutcome::Rejected { quorum_failed, .. } => {
                    quorum_failures += u32::from(quorum_failed);
                }
            }
        }
        *quorum_failures_on_err += quorum_failures as u64;
        Err(SampleError::TrialsExhausted {
            attempts: self.config().max_trials(),
        })
    }

    /// Runs the deterministic part of one defended trial for a fixed
    /// start point `s` (exposed for tests and per-trial telemetry).
    ///
    /// # Errors
    ///
    /// [`SampleError::Config`] — `λ` is zero on this key space. (View
    /// lookup errors are *not* propagated: a failing view simply does not
    /// vote, and a vote-less round is a quorum-failed rejection.)
    pub fn trial<D: Dht>(
        &self,
        views: &[&D],
        s: Point,
    ) -> Result<DefendedOutcome<D::Peer>, SampleError> {
        let mut ledger = Ledger::default();
        self.trial_with(views, s, &mut ledger)
    }

    fn trial_with<D: Dht>(
        &self,
        views: &[&D],
        s: Point,
        ledger: &mut Ledger,
    ) -> Result<DefendedOutcome<D::Peer>, SampleError> {
        let space = views[0].space();
        let lambda = self.config().lambda(space)? as i128;
        let bound = self.config().step_bound();

        let Some((peer, point)) = quorum_h(views, s, ledger) else {
            return Ok(DefendedOutcome::Rejected {
                quorum_failed: true,
                steps: 0,
            });
        };

        // Step 2 of Figure 1 with the quorum-agreed position: the exact
        // SMALL check |I(s, l(h(s)))| < λ.
        let mut t: i128 = space.distance(s, point).to_u128() as i128 - lambda;
        if t < 0 {
            return Ok(DefendedOutcome::Accepted {
                peer,
                point,
                steps: 0,
            });
        }
        if t >= bound as i128 * lambda {
            return Ok(DefendedOutcome::Rejected {
                quorum_failed: false,
                steps: 0,
            });
        }

        // Step 3: supplementation scan. Each step resolves the current
        // peer's successor as the *owner of l(cur) + 1* through the same
        // quorum rule, instead of trusting next(cur) — the step that
        // defeats eclipse chains. Accept/reject bookkeeping is exactly
        // the plain sampler's (strict T < 0, same short-circuit).
        let mut cur_point = point;
        for step in 1..=bound {
            let probe = space.add(cur_point, Distance::new(1));
            let Some((nxt_peer, nxt_point)) = quorum_h(views, probe, ledger) else {
                return Ok(DefendedOutcome::Rejected {
                    quorum_failed: true,
                    steps: step,
                });
            };
            t += space.distance(cur_point, nxt_point).to_u128() as i128 - lambda;
            if t < 0 {
                return Ok(DefendedOutcome::Accepted {
                    peer: nxt_peer,
                    point: nxt_point,
                    steps: step,
                });
            }
            if t >= (bound - step) as i128 * lambda {
                return Ok(DefendedOutcome::Rejected {
                    quorum_failed: false,
                    steps: step,
                });
            }
            cur_point = nxt_point;
        }
        Ok(DefendedOutcome::Rejected {
            quorum_failed: false,
            steps: bound,
        })
    }
}

/// Builds the `entries` disjoint-entry Chord views a defended client
/// quorums over: anchored first at the measuring client itself, the rest
/// spread evenly across the live list for route diversity, every view in
/// verified-position mode under the same fault plan.
///
/// Entries are *not* vetted for honesty — the client cannot know — so an
/// adversary can host a view; the quorum absorbs a captured minority.
/// This is the production wiring (`scenarios` defended arms) and the
/// end-to-end election experiment both build from, so they cannot drift
/// apart.
///
/// # Panics
///
/// Panics if `entries` is zero.
pub fn spread_verified_views<'a>(
    net: &'a chord::ChordNetwork,
    anchor: chord::NodeId,
    plan: &chord::FaultPlan,
    entries: usize,
    latency_seed: u64,
) -> Vec<chord::ChordDht<'a>> {
    assert!(entries > 0, "a defended client needs at least one view");
    let live = net.live_ids();
    let m = entries.min(live.len());
    // Entries must be *distinct* — duplicate entries are deterministic
    // duplicate voters, silently shrinking the redundancy the quorum
    // advertises. Prefer the evenly-spread slots; when spreading collides
    // (tiny overlays, anchor landing on a slot), fill from the live list
    // in order until `m` distinct entries are found.
    let mut chosen: Vec<chord::NodeId> = Vec::with_capacity(m);
    chosen.push(anchor);
    let spread = (1..m).map(|k| live[(k * live.len()) / m]);
    for cand in spread.chain(live.iter().copied()) {
        if chosen.len() == m {
            break;
        }
        if !chosen.contains(&cand) {
            chosen.push(cand);
        }
    }
    chosen
        .into_iter()
        .enumerate()
        .map(|(k, entry)| {
            chord::ChordDht::new(net, entry, latency_seed ^ ((k as u64) << 8))
                .with_fault_plan(plan.clone())
                .with_verified_positions()
        })
        .collect()
}

/// Resolves `h(x)` on every view and returns the strict-majority
/// `(peer, point)` answer, or `None` when no answer reaches a majority
/// (disagreement, or too many failed views — failures do not vote).
///
/// Messages from every view are paid for; latency is charged as the
/// *maximum* across views (the fan-out is parallel).
fn quorum_h<D: Dht>(views: &[&D], x: Point, ledger: &mut Ledger) -> Option<(D::Peer, Point)> {
    let mut votes: Vec<(D::Peer, Point, usize)> = Vec::with_capacity(views.len());
    let mut round_latency = 0u64;
    for view in views {
        ledger.lookups += 1;
        // A failed view does not vote. It still spent messages getting
        // nowhere, but we cannot know how many, so charge nothing — the
        // undercount only makes the *reported* defense overhead
        // conservative.
        if let Ok(resolved) = view.h(x) {
            ledger.cost.messages += resolved.cost.messages;
            round_latency = round_latency.max(resolved.cost.latency);
            match votes
                .iter_mut()
                .find(|(p, pt, _)| *p == resolved.peer && *pt == resolved.point)
            {
                Some((_, _, count)) => *count += 1,
                None => votes.push((resolved.peer, resolved.point, 1)),
            }
        }
    }
    ledger.cost.latency += round_latency;
    votes
        .into_iter()
        .find(|&(_, _, count)| 2 * count > views.len())
        .map(|(peer, point, _)| (peer, point))
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyspace::{KeySpace, SortedRing};
    use peer_sampling::OracleDht;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn oracle(n: usize, seed: u64) -> OracleDht {
        let space = KeySpace::full();
        let mut rng = StdRng::seed_from_u64(seed);
        OracleDht::new(SortedRing::new(space, space.random_points(&mut rng, n)))
    }

    #[test]
    fn honest_single_view_matches_plain_sampler_bitwise() {
        let dht = oracle(150, 1);
        let plain = Sampler::new(SamplerConfig::new(150));
        let defended = DefendedSampler::new(SamplerConfig::new(150));
        let mut rng_a = StdRng::seed_from_u64(2);
        let mut rng_b = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let a = plain.sample(&dht, &mut rng_a).unwrap();
            let b = defended.sample(&[&dht], &mut rng_b).unwrap();
            assert_eq!(a.peer, b.peer);
            assert_eq!(a.point, b.point);
            assert_eq!(a.trials, b.trials);
            assert_eq!(b.quorum_failures, 0);
        }
    }

    #[test]
    fn honest_replicated_views_agree_unanimously() {
        let dht = oracle(80, 3);
        let defended = DefendedSampler::new(SamplerConfig::new(80));
        let views = [&dht, &dht, &dht];
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..50 {
            let s = defended.sample(&views, &mut rng).unwrap();
            assert_eq!(s.quorum_failures, 0);
            // 3 views per quorum round; at least one round per trial.
            assert!(s.lookups >= 3 * s.trials as u64);
        }
    }

    #[test]
    fn quorum_cost_sums_messages_and_maxes_latency() {
        let space = KeySpace::full();
        let mut rng = StdRng::seed_from_u64(5);
        let points = space.random_points(&mut rng, 40);
        let cheap = OracleDht::with_costs(
            SortedRing::new(space, points.clone()),
            Cost::new(2, 3),
            Cost::new(1, 1),
        );
        let pricey = OracleDht::with_costs(
            SortedRing::new(space, points),
            Cost::new(5, 9),
            Cost::new(1, 1),
        );
        let defended = DefendedSampler::new(SamplerConfig::new(40));
        let views: [&OracleDht; 2] = [&cheap, &pricey];
        let s = defended.sample(&views, &mut rng).unwrap();
        let rounds = s.lookups / 2;
        // messages: 2 + 5 per round; latency: max(3, 9) per round.
        assert_eq!(s.cost.messages, 7 * rounds);
        assert_eq!(s.cost.latency, 9 * rounds);
    }

    #[test]
    fn split_views_never_reach_quorum() {
        // Two views of *different* rings can never produce a 2-of-2
        // majority on every round; with max_trials 4 the draw exhausts.
        let a = oracle(64, 6);
        let b = oracle(64, 7);
        let defended = DefendedSampler::new(SamplerConfig::new(64).with_max_trials(4));
        let views: [&OracleDht; 2] = [&a, &b];
        let mut rng = StdRng::seed_from_u64(8);
        let err = defended.sample(&views, &mut rng).unwrap_err();
        assert_eq!(err, SampleError::TrialsExhausted { attempts: 4 });
        // The tracked variant preserves the blocked-attack telemetry the
        // plain error discards.
        let mut on_err = 0u64;
        let err = defended
            .sample_tracked(&views, &mut rng, &mut on_err)
            .unwrap_err();
        assert_eq!(err, SampleError::TrialsExhausted { attempts: 4 });
        assert_eq!(on_err, 4, "every exhausted trial was a quorum failure");
    }

    #[test]
    fn trial_is_deterministic_in_s() {
        let dht = oracle(90, 9);
        let defended = DefendedSampler::new(SamplerConfig::new(90));
        let views = [&dht, &dht, &dht];
        let space = dht.space();
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..100 {
            let s = space.random_point(&mut rng);
            let a = defended.trial(&views, s).unwrap();
            let b = defended.trial(&views, s).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn config_error_propagates() {
        let space = KeySpace::with_modulus(100).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let dht = OracleDht::new(SortedRing::new(space, space.random_points(&mut rng, 30)));
        let defended = DefendedSampler::new(SamplerConfig::new(1000)); // λ = 0
        let err = defended.sample(&[&dht], &mut rng).unwrap_err();
        assert!(matches!(err, SampleError::Config(_)));
    }

    #[test]
    fn spread_views_are_anchored_first_and_entry_distinct() {
        use chord::{ChordConfig, ChordNetwork, FaultPlan};
        let space = KeySpace::full();
        let mut rng = StdRng::seed_from_u64(21);
        let net = ChordNetwork::bootstrap(
            space,
            space.random_points(&mut rng, 8),
            ChordConfig::default(),
        );
        let anchor = net.live_ids()[3];
        // More entries than live nodes: every live node becomes exactly
        // one entry; no deterministic duplicate voters.
        let views = spread_verified_views(&net, anchor, &FaultPlan::none(), 15, 5);
        assert_eq!(views.len(), 8);
        assert_eq!(views[0].start(), anchor);
        let mut starts: Vec<_> = views.iter().map(|v| v.start()).collect();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), 8, "entries must be distinct");
    }

    #[test]
    #[should_panic(expected = "at least one view")]
    fn empty_views_panic() {
        let defended = DefendedSampler::new(SamplerConfig::new(10));
        let mut rng = StdRng::seed_from_u64(12);
        let _ = defended.sample::<OracleDht, _>(&[], &mut rng);
    }
}
