//! Coalition-level Byzantine adversaries and the verified
//! redundant-sampling defense for King & Saia's uniform peer sampler.
//!
//! The per-node `chord::FaultPlan` model covers lone liars; this crate
//! covers *coalitions* — adversaries that coordinate **where they sit**
//! on the ring and **which primitive each member lies about** — and the
//! client-side defense that restores uniformity against them:
//!
//! * [`CoalitionStrategy`] / [`compile_coalition`] — sybil arc capture,
//!   adaptive arc-liars, and coordinated eclipse runs, compiled into
//!   concrete ring placements (via `ringidx` geometry queries) and
//!   per-node [`chord::NodeFaults`] behaviour sets that layer onto any
//!   existing plan through `FaultPlan::merge`.
//! * [`DefendedSampler`] — the paper's sampler hardened with redundant
//!   disjoint-entry lookups, the `|I(s, l(h(s)))| < λ` check promoted to
//!   a quorum rule over route-verified positions, and supplementation by
//!   verified lookup. Zero-bias off the attack path (bit-identical draws
//!   to the plain sampler), with the overhead fully attributed through
//!   the existing cost instrumentation.
//! * [`majority_capture_probability`] — the committee-election risk a
//!   given sampler bias implies, the bridge from "chi-square failed" to
//!   "Byzantine agreement broke".
//!
//! The `scenarios` crate wires these into declarative spec presets
//! (`sybil-arc-capture`, `adaptive-liars`, `eclipse-run`, each
//! ± defense) and the e16 coalition battery measures attack bias, defense
//! restoration, and defense cost side by side.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coalition;
mod committee;
mod defense;

pub use coalition::{compile_coalition, sybil_ids, CoalitionStrategy, CompiledCoalition};
pub use committee::majority_capture_probability;
pub use defense::{spread_verified_views, DefendedOutcome, DefendedSample, DefendedSampler};
