//! The defense's zero-bias property: under an honest network
//! (`AdversaryModel::Honest` in scenario terms — empty fault plan, no
//! churn), `DefendedSampler` draws are **bit-identical** to the plain
//! `Sampler`'s for the same seed: same peers, same points, same trial
//! counts. The defense must cost messages, never distort the
//! distribution it protects.
//!
//! Randomized over ring sizes, placements and seeds on both backends
//! (oracle directly; Chord through single- and multi-view quorums).

use adversary::DefendedSampler;
use chord::{ChordConfig, ChordDht, ChordNetwork};
use keyspace::{KeySpace, Point, SortedRing};
use peer_sampling::{OracleDht, Sampler, SamplerConfig};
use proptest::collection::btree_set;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const MODULUS: u128 = 1 << 14;

/// Arbitrary distinct peer points on a small ring, pathological
/// placements included.
fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    btree_set(0u64..(MODULUS as u64), 3..48)
        .prop_map(|points| points.into_iter().map(Point::new).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Oracle backend, single view: the defended accept/reject map is the
    /// plain sampler's, draw for draw.
    #[test]
    fn oracle_defended_draws_match_plain_bitwise(
        points in arb_points(),
        seed in 0u64..1_000,
    ) {
        let space = KeySpace::with_modulus(MODULUS).unwrap();
        let n = points.len() as u64;
        let dht = OracleDht::new(SortedRing::new(space, points));
        let config = SamplerConfig::new(n);
        prop_assume!(config.lambda(space).is_ok());
        let plain = Sampler::new(config);
        let defended = DefendedSampler::new(config);
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        for _ in 0..24 {
            let a = plain.sample(&dht, &mut rng_a).unwrap();
            let b = defended.sample(&[&dht], &mut rng_b).unwrap();
            prop_assert_eq!(a.peer, b.peer);
            prop_assert_eq!(a.point, b.point);
            prop_assert_eq!(a.trials, b.trials);
            prop_assert_eq!(b.quorum_failures, 0);
        }
    }

    /// Chord backend, honest overlay, a 3-view quorum anchored at
    /// distinct entries: still bit-identical to the plain sampler running
    /// on the first view.
    #[test]
    fn chord_defended_quorum_matches_plain_bitwise(
        points in arb_points(),
        seed in 0u64..1_000,
    ) {
        let space = KeySpace::with_modulus(MODULUS).unwrap();
        let n = points.len() as u64;
        let net = ChordNetwork::bootstrap(space, points, ChordConfig::default());
        let live = net.live_ids();
        let config = SamplerConfig::new(n);
        prop_assume!(config.lambda(space).is_ok());

        let plain_view = ChordDht::new(&net, live[0], seed ^ 1);
        let v0 = ChordDht::new(&net, live[0], seed ^ 1).with_verified_positions();
        let v1 = ChordDht::new(&net, live[live.len() / 3], seed ^ 2).with_verified_positions();
        let v2 = ChordDht::new(&net, live[2 * live.len() / 3], seed ^ 3).with_verified_positions();
        let views = [&v0, &v1, &v2];

        let plain = Sampler::new(config);
        let defended = DefendedSampler::new(config);
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        for _ in 0..12 {
            let a = plain.sample(&plain_view, &mut rng_a).unwrap();
            let b = defended.sample(&views, &mut rng_b).unwrap();
            prop_assert_eq!(a.peer, b.peer, "defense must not re-route honest draws");
            prop_assert_eq!(a.point, b.point);
            prop_assert_eq!(a.trials, b.trials);
            prop_assert_eq!(b.quorum_failures, 0);
            // The redundancy is paid for in messages: three routed
            // lookups per resolution can't be cheaper than one.
            prop_assert!(b.cost.messages >= a.cost.messages);
        }
    }
}
