//! Committee election for Byzantine agreement (§1, Lewis–Saia \[8\]).
//!
//! Scalable Byzantine agreement protocols elect a small committee by
//! random sampling and require that Byzantine peers not reach a committee
//! majority. With *uniform* sampling and a Byzantine population fraction
//! `b < 1/2`, a committee of size `c` has a Byzantine majority with
//! probability `exp(−Θ(c))` (Chernoff). A *biased* sampler is strictly
//! worse: the adversary corrupts the peers the sampler likes best, and the
//! effective Byzantine sampling probability becomes the *mass* of that
//! set, which for the naive heuristic approaches 1 with even a small
//! corrupted fraction. Experiment E12 quantifies the gap.

use baselines::IndexSampler;
use rand::RngCore;

/// Marks the `⌈fraction·n⌉` peers an *adaptive* adversary corrupts: those
/// with the highest selection probability under the sampler being
/// attacked.
///
/// Pass the true per-peer selection probabilities (e.g.
/// [`NaiveSampler::selection_probabilities`]); for a uniform sampler any
/// set of the same size is equivalent, so ties are broken by index.
///
/// # Panics
///
/// Panics if `probabilities` is empty or `fraction` is outside `[0, 1]`.
///
/// [`NaiveSampler::selection_probabilities`]: baselines::NaiveSampler::selection_probabilities
pub fn adaptive_byzantine_set(probabilities: &[f64], fraction: f64) -> Vec<bool> {
    assert!(!probabilities.is_empty(), "no peers to corrupt");
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction {fraction} outside [0, 1]"
    );
    let n = probabilities.len();
    let count = (fraction * n as f64).ceil() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        probabilities[b]
            .partial_cmp(&probabilities[a])
            .expect("finite probabilities")
            .then(a.cmp(&b))
    });
    let mut byzantine = vec![false; n];
    for &i in order.iter().take(count.min(n)) {
        byzantine[i] = true;
    }
    byzantine
}

/// Outcome of repeated committee elections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommitteeReport {
    /// Fraction of elections where Byzantine members reached a majority.
    pub capture_rate: f64,
    /// Mean Byzantine fraction per committee.
    pub mean_byzantine_fraction: f64,
    /// Committee size used.
    pub committee_size: usize,
    /// Elections simulated.
    pub elections: u32,
}

/// Elects `elections` committees of `committee_size` sampler-chosen peers
/// and reports how often the Byzantine set captured a majority.
///
/// Committee members are drawn with replacement (matching the sampling
/// primitive the paper provides; the distinction is negligible for
/// `c ≪ n`).
///
/// # Panics
///
/// Panics if sizes are zero or `byzantine.len() != sampler.len()`.
pub fn simulate_elections(
    sampler: &dyn IndexSampler,
    byzantine: &[bool],
    committee_size: usize,
    elections: u32,
    rng: &mut dyn RngCore,
) -> CommitteeReport {
    assert_eq!(
        byzantine.len(),
        sampler.len(),
        "byzantine vector must cover every peer"
    );
    assert!(committee_size > 0, "committee must have members");
    assert!(elections > 0, "need at least one election");
    let mut captures = 0u32;
    let mut byz_total = 0u64;
    for _ in 0..elections {
        let mut byz = 0usize;
        for _ in 0..committee_size {
            if byzantine[sampler.sample_index(rng)] {
                byz += 1;
            }
        }
        byz_total += byz as u64;
        if 2 * byz > committee_size {
            captures += 1;
        }
    }
    CommitteeReport {
        capture_rate: captures as f64 / elections as f64,
        mean_byzantine_fraction: byz_total as f64
            / (elections as u64 * committee_size as u64) as f64,
        committee_size,
        elections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{NaiveSampler, TrueUniform};
    use keyspace::{KeySpace, SortedRing};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(31)
    }

    #[test]
    fn uniform_committees_resist_one_third_adversary() {
        let mut r = rng();
        let n = 600;
        let byz = adaptive_byzantine_set(&vec![1.0 / n as f64; n], 1.0 / 3.0);
        let report = simulate_elections(&TrueUniform::new(n), &byz, 61, 2000, &mut r);
        assert!(
            report.capture_rate < 0.02,
            "uniform capture rate {}",
            report.capture_rate
        );
        assert!((report.mean_byzantine_fraction - 1.0 / 3.0).abs() < 0.02);
    }

    #[test]
    fn naive_committees_fall_to_the_same_adversary() {
        let mut r = rng();
        let space = KeySpace::full();
        let n = 600;
        let ring = SortedRing::new(space, space.random_points(&mut r, n));
        let naive = NaiveSampler::new(ring);
        // Adversary corrupts the third of peers the heuristic likes best.
        let byz = adaptive_byzantine_set(&naive.selection_probabilities(), 1.0 / 3.0);
        let report = simulate_elections(&naive, &byz, 61, 2000, &mut r);
        // The top third by arc mass carries well over half the measure.
        assert!(
            report.capture_rate > 0.5,
            "naive capture rate {} should be catastrophic",
            report.capture_rate
        );
        assert!(report.mean_byzantine_fraction > 0.5);
    }

    #[test]
    fn larger_committees_are_safer_under_uniform_sampling() {
        let mut r = rng();
        let n = 300;
        let byz = adaptive_byzantine_set(&vec![1.0 / n as f64; n], 0.4);
        let small = simulate_elections(&TrueUniform::new(n), &byz, 5, 4000, &mut r);
        let large = simulate_elections(&TrueUniform::new(n), &byz, 101, 4000, &mut r);
        assert!(
            large.capture_rate < small.capture_rate,
            "large {} vs small {}",
            large.capture_rate,
            small.capture_rate
        );
    }

    #[test]
    fn adaptive_set_targets_high_probability_peers() {
        let probs = [0.1, 0.5, 0.05, 0.35];
        let byz = adaptive_byzantine_set(&probs, 0.5);
        assert_eq!(byz, vec![false, true, false, true]);
    }

    #[test]
    fn fraction_boundaries() {
        let probs = [0.25; 4];
        assert_eq!(
            adaptive_byzantine_set(&probs, 0.0),
            vec![false, false, false, false]
        );
        assert_eq!(
            adaptive_byzantine_set(&probs, 1.0),
            vec![true, true, true, true]
        );
    }

    #[test]
    fn report_fields_are_consistent() {
        let mut r = rng();
        let byz = vec![true; 10];
        let report = simulate_elections(&TrueUniform::new(10), &byz, 3, 100, &mut r);
        assert_eq!(report.capture_rate, 1.0);
        assert_eq!(report.mean_byzantine_fraction, 1.0);
        assert_eq!(report.committee_size, 3);
        assert_eq!(report.elections, 100);
    }

    #[test]
    #[should_panic(expected = "cover every peer")]
    fn mismatched_byzantine_vector_panics() {
        let mut r = rng();
        let _ = simulate_elections(&TrueUniform::new(5), &[true; 4], 3, 10, &mut r);
    }

    #[test]
    #[should_panic(expected = "must have members")]
    fn empty_committee_panics() {
        let mut r = rng();
        let _ = simulate_elections(&TrueUniform::new(5), &[false; 5], 0, 10, &mut r);
    }
}
