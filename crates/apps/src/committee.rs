//! Committee election for Byzantine agreement (§1, Lewis–Saia \[8\]).
//!
//! Scalable Byzantine agreement protocols elect a small committee by
//! random sampling and require that Byzantine peers not reach a committee
//! majority. With *uniform* sampling and a Byzantine population fraction
//! `b < 1/2`, a committee of size `c` has a Byzantine majority with
//! probability `exp(−Θ(c))` (Chernoff). A *biased* sampler is strictly
//! worse: the adversary corrupts the peers the sampler likes best, and the
//! effective Byzantine sampling probability becomes the *mass* of that
//! set, which for the naive heuristic approaches 1 with even a small
//! corrupted fraction. Experiment E12 quantifies the gap.

use baselines::IndexSampler;
use rand::RngCore;

/// Marks the `⌈fraction·n⌉` peers an *adaptive* adversary corrupts: those
/// with the highest selection probability under the sampler being
/// attacked.
///
/// Pass the true per-peer selection probabilities (e.g.
/// [`NaiveSampler::selection_probabilities`]); for a uniform sampler any
/// set of the same size is equivalent, so ties are broken by index.
///
/// # Panics
///
/// Panics if `probabilities` is empty or `fraction` is outside `[0, 1]`.
///
/// [`NaiveSampler::selection_probabilities`]: baselines::NaiveSampler::selection_probabilities
pub fn adaptive_byzantine_set(probabilities: &[f64], fraction: f64) -> Vec<bool> {
    assert!(!probabilities.is_empty(), "no peers to corrupt");
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction {fraction} outside [0, 1]"
    );
    let n = probabilities.len();
    let count = (fraction * n as f64).ceil() as usize;
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        probabilities[b]
            .partial_cmp(&probabilities[a])
            .expect("finite probabilities")
            .then(a.cmp(&b))
    });
    let mut byzantine = vec![false; n];
    for &i in order.iter().take(count.min(n)) {
        byzantine[i] = true;
    }
    byzantine
}

/// Outcome of repeated committee elections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommitteeReport {
    /// Fraction of elections where Byzantine members reached a majority.
    pub capture_rate: f64,
    /// Mean Byzantine fraction per committee.
    pub mean_byzantine_fraction: f64,
    /// Committee size used.
    pub committee_size: usize,
    /// Elections simulated.
    pub elections: u32,
}

/// Elects `elections` committees of `committee_size` sampler-chosen peers
/// and reports how often the Byzantine set captured a majority.
///
/// Committee members are drawn with replacement (matching the sampling
/// primitive the paper provides; the distinction is negligible for
/// `c ≪ n`).
///
/// # Panics
///
/// Panics if sizes are zero or `byzantine.len() != sampler.len()`.
pub fn simulate_elections(
    sampler: &dyn IndexSampler,
    byzantine: &[bool],
    committee_size: usize,
    elections: u32,
    rng: &mut dyn RngCore,
) -> CommitteeReport {
    assert_eq!(
        byzantine.len(),
        sampler.len(),
        "byzantine vector must cover every peer"
    );
    assert!(committee_size > 0, "committee must have members");
    assert!(elections > 0, "need at least one election");
    let mut captures = 0u32;
    let mut byz_total = 0u64;
    for _ in 0..elections {
        let mut byz = 0usize;
        for _ in 0..committee_size {
            if byzantine[sampler.sample_index(rng)] {
                byz += 1;
            }
        }
        byz_total += byz as u64;
        if 2 * byz > committee_size {
            captures += 1;
        }
    }
    CommitteeReport {
        capture_rate: captures as f64 / elections as f64,
        mean_byzantine_fraction: byz_total as f64
            / (elections as u64 * committee_size as u64) as f64,
        committee_size,
        elections,
    }
}

/// Elects committees through an arbitrary fallible draw — the bridge
/// from `IndexSampler` micro-benchmarks to *end-to-end* elections run
/// over a real DHT-backed sampler (plain or defended).
///
/// `draw` returns `Some(is_byzantine)` for a successful sample and `None`
/// when the draw failed (routing failure, trial exhaustion, quorum
/// exhaustion). A failed draw invalidates its election — Byzantine
/// agreement cannot seat a partial committee — so the report's
/// `elections` counts completed elections and `failed_elections` the
/// abandoned ones.
///
/// # Panics
///
/// Panics if sizes are zero or every election fails.
pub fn simulate_elections_via<F>(
    mut draw: F,
    committee_size: usize,
    elections: u32,
) -> (CommitteeReport, u32)
where
    F: FnMut() -> Option<bool>,
{
    assert!(committee_size > 0, "committee must have members");
    assert!(elections > 0, "need at least one election");
    let mut captures = 0u32;
    let mut byz_total = 0u64;
    let mut completed = 0u32;
    let mut failed_elections = 0u32;
    for _ in 0..elections {
        let mut byz = 0usize;
        let mut abandoned = false;
        for _ in 0..committee_size {
            match draw() {
                Some(true) => byz += 1,
                Some(false) => {}
                None => {
                    abandoned = true;
                    break;
                }
            }
        }
        if abandoned {
            failed_elections += 1;
            continue;
        }
        completed += 1;
        byz_total += byz as u64;
        if 2 * byz > committee_size {
            captures += 1;
        }
    }
    assert!(completed > 0, "every election failed");
    (
        CommitteeReport {
            capture_rate: captures as f64 / completed as f64,
            mean_byzantine_fraction: byz_total as f64
                / (completed as u64 * committee_size as u64) as f64,
            committee_size,
            elections: completed,
        },
        failed_elections,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{NaiveSampler, TrueUniform};
    use keyspace::{KeySpace, SortedRing};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(31)
    }

    #[test]
    fn uniform_committees_resist_one_third_adversary() {
        let mut r = rng();
        let n = 600;
        let byz = adaptive_byzantine_set(&vec![1.0 / n as f64; n], 1.0 / 3.0);
        let report = simulate_elections(&TrueUniform::new(n), &byz, 61, 2000, &mut r);
        assert!(
            report.capture_rate < 0.02,
            "uniform capture rate {}",
            report.capture_rate
        );
        assert!((report.mean_byzantine_fraction - 1.0 / 3.0).abs() < 0.02);
    }

    #[test]
    fn naive_committees_fall_to_the_same_adversary() {
        let mut r = rng();
        let space = KeySpace::full();
        let n = 600;
        let ring = SortedRing::new(space, space.random_points(&mut r, n));
        let naive = NaiveSampler::new(ring);
        // Adversary corrupts the third of peers the heuristic likes best.
        let byz = adaptive_byzantine_set(&naive.selection_probabilities(), 1.0 / 3.0);
        let report = simulate_elections(&naive, &byz, 61, 2000, &mut r);
        // The top third by arc mass carries well over half the measure.
        assert!(
            report.capture_rate > 0.5,
            "naive capture rate {} should be catastrophic",
            report.capture_rate
        );
        assert!(report.mean_byzantine_fraction > 0.5);
    }

    #[test]
    fn larger_committees_are_safer_under_uniform_sampling() {
        let mut r = rng();
        let n = 300;
        let byz = adaptive_byzantine_set(&vec![1.0 / n as f64; n], 0.4);
        let small = simulate_elections(&TrueUniform::new(n), &byz, 5, 4000, &mut r);
        let large = simulate_elections(&TrueUniform::new(n), &byz, 101, 4000, &mut r);
        assert!(
            large.capture_rate < small.capture_rate,
            "large {} vs small {}",
            large.capture_rate,
            small.capture_rate
        );
    }

    #[test]
    fn adaptive_set_targets_high_probability_peers() {
        let probs = [0.1, 0.5, 0.05, 0.35];
        let byz = adaptive_byzantine_set(&probs, 0.5);
        assert_eq!(byz, vec![false, true, false, true]);
    }

    #[test]
    fn fraction_boundaries() {
        let probs = [0.25; 4];
        assert_eq!(
            adaptive_byzantine_set(&probs, 0.0),
            vec![false, false, false, false]
        );
        assert_eq!(
            adaptive_byzantine_set(&probs, 1.0),
            vec![true, true, true, true]
        );
    }

    #[test]
    fn report_fields_are_consistent() {
        let mut r = rng();
        let byz = vec![true; 10];
        let report = simulate_elections(&TrueUniform::new(10), &byz, 3, 100, &mut r);
        assert_eq!(report.capture_rate, 1.0);
        assert_eq!(report.mean_byzantine_fraction, 1.0);
        assert_eq!(report.committee_size, 3);
        assert_eq!(report.elections, 100);
    }

    #[test]
    fn elections_via_draws_count_failures_per_election() {
        // Draws cycle byz, honest, FAIL: every third election attempt
        // dies; completed ones carry one byzantine of three members.
        let mut i = 0u32;
        let (report, failed) = simulate_elections_via(
            || {
                i += 1;
                match i % 7 {
                    0 => None,
                    k => Some(k % 3 == 0),
                }
            },
            3,
            50,
        );
        assert!(failed > 0, "the failing draw must abandon elections");
        assert_eq!(report.committee_size, 3);
        assert!(report.elections > 0 && report.elections < 50);
        assert!(report.capture_rate < 1.0);
    }

    /// The end-to-end defended election experiment: a real Chord overlay
    /// seized by a sybil coalition, committees elected through the
    /// *actual* sampler stack. Undefended elections collapse (the
    /// coalition owns most committees); defended elections are as safe as
    /// the honest baseline predicts.
    #[test]
    fn defended_elections_restore_committee_safety_on_chord() {
        use adversary::{compile_coalition, sybil_ids, CoalitionStrategy, DefendedSampler};
        use chord::{ChordConfig, ChordDht, ChordNetwork, FaultPlan};
        use peer_sampling::{Sampler, SamplerConfig};

        let space = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        let honest_points = space.random_points(&mut rng, 120);
        let honest = ringidx::RingIndex::bulk(
            space,
            honest_points
                .iter()
                .enumerate()
                .map(|(i, &p)| (p, i as u64))
                .collect(),
        );
        let coalition = compile_coalition(CoalitionStrategy::SybilArcCapture, &honest, 13);

        let mut points = honest_points.clone();
        points.extend(coalition.sybil_points.iter().copied());
        let net = ChordNetwork::bootstrap(space, points, ChordConfig::default());
        let live = net.live_ids();
        let sybils: std::collections::HashSet<_> = sybil_ids(&net, &coalition.sybil_points)
            .into_iter()
            .collect();
        let plan = FaultPlan::with_behavior(sybils.iter().copied(), coalition.behavior);
        let anchor = live
            .iter()
            .copied()
            .find(|id| !sybils.contains(id))
            .expect("honest anchor");

        let config = SamplerConfig::new(live.len() as u64).with_max_trials(256);
        let committee = 9;
        let elections = 120;

        // Undefended: the plain sampler believes the coalition's lies.
        let dht = ChordDht::new(&net, anchor, 72).with_fault_plan(plan.clone());
        let sampler = Sampler::new(config);
        let (attacked, _) = simulate_elections_via(
            || {
                sampler
                    .sample(&dht, &mut rng)
                    .ok()
                    .map(|s| sybils.contains(&s.peer))
            },
            committee,
            elections,
        );

        // Defended: quorum-verified redundant sampling over 3 entries,
        // built by the same helper the scenario runner ships.
        let views = adversary::spread_verified_views(&net, anchor, &plan, 3, 73);
        let view_refs: Vec<&ChordDht> = views.iter().collect();
        let defended_sampler = DefendedSampler::new(config);
        let (defended, _) = simulate_elections_via(
            || {
                defended_sampler
                    .sample(&view_refs, &mut rng)
                    .ok()
                    .map(|s| sybils.contains(&s.peer))
            },
            committee,
            elections,
        );

        let population_share = sybils.len() as f64 / live.len() as f64;
        assert!(
            attacked.mean_byzantine_fraction > 3.0 * population_share,
            "attack must flood committees: {} vs population {}",
            attacked.mean_byzantine_fraction,
            population_share
        );
        assert!(
            attacked.capture_rate > 0.5,
            "undefended capture rate {} should be catastrophic",
            attacked.capture_rate
        );
        assert!(
            defended.capture_rate < 0.05,
            "defended capture rate {} should be near the honest baseline",
            defended.capture_rate
        );
        assert!(
            (defended.mean_byzantine_fraction - population_share).abs() < 0.08,
            "defended committees mirror the population: {} vs {}",
            defended.mean_byzantine_fraction,
            population_share
        );
    }

    #[test]
    #[should_panic(expected = "cover every peer")]
    fn mismatched_byzantine_vector_panics() {
        let mut r = rng();
        let _ = simulate_elections(&TrueUniform::new(5), &[true; 4], 3, 10, &mut r);
    }

    #[test]
    #[should_panic(expected = "must have members")]
    fn empty_committee_panics() {
        let mut r = rng();
        let _ = simulate_elections(&TrueUniform::new(5), &[false; 5], 0, 10, &mut r);
    }
}
