//! The `exp -- dash` renderer: one self-contained, byte-deterministic
//! HTML page explaining a harness report.
//!
//! Input is the same machine-readable JSON `exp -- report` diffs — an e16
//! sweep report (`target/e16_*.json`) or a `BENCH_*.json` trajectory —
//! and the output embeds everything inline (no external scripts, fonts or
//! fetches), so the file can be attached to a CI run or an issue and
//! opened offline:
//!
//! * a per-arm metric table (failure rate, messages, hop tails, watchdog
//!   verdicts, exemplar counts, top span),
//! * inline SVG sparklines for every windowed gauge column the watchdog
//!   recorded (`series_mean`),
//! * a tail table per arm whose exemplar drill-downs name the trace ids
//!   behind the p99/p999 buckets,
//! * the attributed health-event timeline,
//! * a one-level span treemap (proportional bars) showing where the
//!   simulated routing cost went,
//! * a bench-history trend section when the input is a trajectory file,
//! * and, when a baseline is supplied, the full `exp -- report`
//!   regression diff.
//!
//! The raw report JSON rides along in a
//! `<script type="application/json" id="payload">` block (validated by
//! the CI `dash-smoke` job), so the dashboard doubles as a viewer-friendly
//! envelope of the machine-readable data. Rendering is a pure function of
//! the input bytes — no clocks, no randomness, no map reordering — so the
//! same report renders byte-identically forever.

use crate::report::{diff_reports, ReportDiff};
use serde_json::Value;

/// A rendered dashboard plus the regression verdict that should drive the
/// process exit code (`0` clean, `1` when `regressions > 0`).
#[derive(Debug)]
pub struct Dashboard {
    /// The complete HTML document.
    pub html: String,
    /// Number of regressions found against the baseline (0 when no
    /// baseline was supplied).
    pub regressions: usize,
}

/// Renders `report` (sweep report or bench trajectory JSON) into a
/// self-contained HTML dashboard, diffing against `baseline` when given.
///
/// Errors mirror `exp -- report` usage errors: unparseable JSON, an
/// unrecognized shape, or a baseline/report kind mismatch.
pub fn render_dashboard(report: &str, baseline: Option<&str>) -> Result<Dashboard, String> {
    let value: Value =
        serde_json::from_str(report).map_err(|e| format!("report: unparseable JSON ({e})"))?;
    let diff = match baseline {
        Some(base) => Some(diff_reports(base, report)?),
        None => None,
    };
    let mut body = String::new();
    if value.get("scenarios").is_some() {
        render_sweep(&mut body, &value);
    } else if value.as_seq().is_some() {
        render_bench_trend(&mut body, &value);
    } else {
        return Err(format!(
            "unrecognized report shape ({}): expected a sweep report object \
             with \"scenarios\" or a bench history array",
            value.kind()
        ));
    }
    if let Some(diff) = &diff {
        render_diff(&mut body, diff);
    }
    let html = format!(
        "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\n\
         <title>peer-sampling dashboard</title>\n<style>{STYLE}</style></head>\n\
         <body>\n<h1>peer-sampling dashboard</h1>\n{body}\
         <script type=\"application/json\" id=\"payload\">{}</script>\n\
         </body></html>\n",
        embed_json(report)
    );
    Ok(Dashboard {
        html,
        regressions: diff.map_or(0, |d| d.regressions.len()),
    })
}

/// Inline stylesheet — deliberately tiny, no external assets.
const STYLE: &str = "body{font:14px/1.4 monospace;margin:2em;max-width:72em}\
table{border-collapse:collapse;margin:1em 0}\
td,th{border:1px solid #999;padding:2px 8px;text-align:right}\
th{background:#eee}td:first-child,th:first-child{text-align:left}\
details{margin:.3em 0}svg{vertical-align:middle}\
.breach{color:#a00}.ok{color:#070}.regressed{color:#a00;font-weight:bold}";

/// Escapes `</` so arbitrary JSON is safe inside a `<script>` block while
/// staying valid JSON (`\/` is a legal JSON escape).
fn embed_json(raw: &str) -> String {
    raw.replace("</", "<\\/")
}

/// HTML-escapes text content.
fn esc(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

/// Deterministic numeric rendering: integers bare, floats with 4 places.
fn fnum(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Float(f) => format!("{f:.4}"),
        _ => "-".to_string(),
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// An inline SVG sparkline over `values` (min..max auto-scaled).
fn sparkline(values: &[f64]) -> String {
    const W: f64 = 240.0;
    const H: f64 = 36.0;
    if values.is_empty() {
        return "<svg width=\"240\" height=\"36\"></svg>".to_string();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-12);
    let step = if values.len() > 1 {
        W / (values.len() - 1) as f64
    } else {
        0.0
    };
    let points: Vec<String> = values
        .iter()
        .enumerate()
        .map(|(i, v)| {
            format!(
                "{:.1},{:.1}",
                i as f64 * step,
                2.0 + (H - 4.0) * (1.0 - (v - lo) / span)
            )
        })
        .collect();
    format!(
        "<svg width=\"240\" height=\"36\" viewBox=\"0 0 240 36\">\
         <polyline fill=\"none\" stroke=\"#36c\" stroke-width=\"1.5\" points=\"{}\"/></svg>",
        points.join(" ")
    )
}

/// A one-level treemap of span costs: one proportional bar per span,
/// widest first, with the name/cost/share legend beside it.
fn span_treemap(span_costs: &[(String, &Value)]) -> String {
    let mut spans: Vec<(&str, u64)> = span_costs
        .iter()
        .filter_map(|(name, v)| match v {
            Value::Int(i) if *i > 0 => Some((name.as_str(), *i as u64)),
            _ => None,
        })
        .collect();
    spans.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let total: u64 = spans.iter().map(|(_, c)| c).sum();
    if total == 0 {
        return "<p>no span costs recorded</p>\n".to_string();
    }
    let mut out =
        String::from("<table><tr><th>span</th><th>cost</th><th>share</th><th></th></tr>\n");
    for (name, cost) in &spans {
        let share = *cost as f64 / total as f64;
        out.push_str(&format!(
            "<tr><td>{}</td><td>{cost}</td><td>{:.1}%</td>\
             <td><svg width=\"200\" height=\"12\"><rect width=\"{:.1}\" height=\"12\" \
             fill=\"#6a6\"/></svg></td></tr>\n",
            esc(name),
            100.0 * share,
            200.0 * share
        ));
    }
    out.push_str("</table>\n");
    out
}

/// The sweep-report sections: arms table, sparklines, tails + exemplars,
/// health timeline, span treemaps.
fn render_sweep(out: &mut String, report: &Value) {
    let scenarios = report
        .get("scenarios")
        .and_then(Value::as_seq)
        .unwrap_or(&[]);
    out.push_str(&format!(
        "<p>master seed {}, {} seeds/scenario, {} scenarios</p>\n",
        report.get("master_seed").map(fnum).unwrap_or_default(),
        report
            .get("seeds_per_scenario")
            .map(fnum)
            .unwrap_or_default(),
        scenarios.len()
    ));

    out.push_str("<h2>arms</h2>\n<table><tr>");
    const COLS: &[(&str, &str)] = &[
        ("fail_rate_mean", "fail"),
        ("messages_mean", "msgs/draw"),
        ("hop_p99_max", "hop_p99"),
        ("draw_msgs_p99_max", "draw_p99"),
        ("health_breaches_mean", "breaches"),
        ("time_to_detect_max", "ttd"),
        ("time_to_recover_min", "ttr"),
        ("exemplar_count_sum", "exemplars"),
        ("top_span_cost", "top_span_cost"),
    ];
    out.push_str("<th>scenario</th><th>backend</th>");
    for (_, label) in COLS {
        out.push_str(&format!("<th>{label}</th>"));
    }
    out.push_str("<th>top_span</th></tr>\n");
    for scenario in scenarios {
        let name = scenario_name(scenario);
        for agg in scenario
            .get("aggregates")
            .and_then(Value::as_seq)
            .unwrap_or(&[])
        {
            let backend = agg.get("backend").and_then(Value::as_str).unwrap_or("?");
            out.push_str(&format!(
                "<tr><td>{}</td><td>{}</td>",
                esc(&name),
                esc(backend)
            ));
            for (key, _) in COLS {
                out.push_str(&format!(
                    "<td>{}</td>",
                    agg.get(key).map(fnum).unwrap_or_else(|| "-".to_string())
                ));
            }
            let top = agg.get("top_span").and_then(Value::as_str).unwrap_or("-");
            out.push_str(&format!("<td>{}</td></tr>\n", esc(top)));
        }
    }
    out.push_str("</table>\n");

    out.push_str("<h2>windowed series</h2>\n");
    for scenario in scenarios {
        let name = scenario_name(scenario);
        for agg in scenario
            .get("aggregates")
            .and_then(Value::as_seq)
            .unwrap_or(&[])
        {
            let backend = agg.get("backend").and_then(Value::as_str).unwrap_or("?");
            let series = agg
                .get("series_mean")
                .and_then(Value::as_map)
                .unwrap_or(&[]);
            for (gauge, column) in series {
                let values: Vec<f64> = column
                    .as_seq()
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(as_f64)
                    .collect();
                out.push_str(&format!(
                    "<div>{}/{} {}: {} ({} windows)</div>\n",
                    esc(&name),
                    esc(backend),
                    esc(gauge),
                    sparkline(&values),
                    values.len()
                ));
            }
        }
    }

    out.push_str("<h2>tails and exemplars</h2>\n");
    for scenario in scenarios {
        let name = scenario_name(scenario);
        for run in scenario.get("runs").and_then(Value::as_seq).unwrap_or(&[]) {
            let backend = run.get("backend").and_then(Value::as_str).unwrap_or("?");
            let exemplars = run
                .get("tail_exemplars")
                .and_then(Value::as_seq)
                .unwrap_or(&[]);
            out.push_str(&format!(
                "<details><summary>{}/{} seed {}: hop p50/p99/p999 = {}/{}/{}, \
                 {} exemplars</summary>\n",
                esc(&name),
                esc(backend),
                run.get("seed").map(fnum).unwrap_or_default(),
                run.get("hop_p50").map(fnum).unwrap_or_default(),
                run.get("hop_p99").map(fnum).unwrap_or_default(),
                run.get("hop_p999").map(fnum).unwrap_or_default(),
                exemplars.len()
            ));
            if !exemplars.is_empty() {
                out.push_str(
                    "<table><tr><th>window</th><th>bucket &le;</th><th>value</th>\
                     <th>trace op</th></tr>\n",
                );
                for e in exemplars {
                    out.push_str(&format!(
                        "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>\n",
                        e.get("window").map(fnum).unwrap_or_default(),
                        e.get("bucket_upper").map(fnum).unwrap_or_default(),
                        e.get("value").map(fnum).unwrap_or_default(),
                        e.get("trace_id").map(fnum).unwrap_or_default(),
                    ));
                }
                out.push_str("</table>\n");
            }
            out.push_str("</details>\n");
        }
    }

    out.push_str("<h2>health timeline</h2>\n");
    let mut any_events = false;
    for scenario in scenarios {
        let name = scenario_name(scenario);
        for run in scenario.get("runs").and_then(Value::as_seq).unwrap_or(&[]) {
            let backend = run.get("backend").and_then(Value::as_str).unwrap_or("?");
            for event in run
                .get("health_events")
                .and_then(Value::as_seq)
                .unwrap_or(&[])
            {
                let text = event.as_str().unwrap_or("?");
                let class = if text.contains("breach") {
                    "breach"
                } else {
                    "ok"
                };
                out.push_str(&format!(
                    "<div class=\"{class}\">{}/{} seed {}: {}</div>\n",
                    esc(&name),
                    esc(backend),
                    run.get("seed").map(fnum).unwrap_or_default(),
                    esc(text)
                ));
                any_events = true;
            }
        }
    }
    if !any_events {
        out.push_str("<p>no health events recorded</p>\n");
    }

    out.push_str("<h2>span cost breakdown</h2>\n");
    for scenario in scenarios {
        let name = scenario_name(scenario);
        for agg in scenario
            .get("aggregates")
            .and_then(Value::as_seq)
            .unwrap_or(&[])
        {
            let backend = agg.get("backend").and_then(Value::as_str).unwrap_or("?");
            let spans: Vec<(String, &Value)> = agg
                .get("span_costs")
                .and_then(Value::as_map)
                .unwrap_or(&[])
                .iter()
                .map(|(k, v)| (k.clone(), v))
                .collect();
            if spans.is_empty() {
                continue;
            }
            out.push_str(&format!("<h3>{}/{}</h3>\n", esc(&name), esc(backend)));
            out.push_str(&span_treemap(&spans));
        }
    }
}

fn scenario_name(scenario: &Value) -> String {
    scenario
        .get("spec")
        .and_then(|s| s.get("name"))
        .and_then(Value::as_str)
        .unwrap_or("?")
        .to_string()
}

/// One `(bench, n)` arm's metric columns across history entries, in
/// first-seen order.
type BenchArm = ((String, String), Vec<(String, Vec<f64>)>);

/// The bench-trajectory section: one sparkline per `(bench, n, metric)`
/// across history entries, plus the latest entry's rows verbatim.
fn render_bench_trend(out: &mut String, history: &Value) {
    let entries = history.as_seq().unwrap_or(&[]);
    out.push_str(&format!(
        "<h2>bench history ({} entries)</h2>\n",
        entries.len()
    ));
    let mut arms: Vec<BenchArm> = Vec::new();
    for entry in entries {
        let rows = match entry.get("rows").and_then(Value::as_seq) {
            Some(rows) => rows,
            // Legacy flat-row files: the entry *is* a row.
            None => std::slice::from_ref(entry),
        };
        for row in rows {
            let bench = row
                .get("bench")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string();
            let n = row.get("n").map(fnum).unwrap_or_default();
            let key = (bench, n);
            let slot = match arms.iter_mut().find(|(k, _)| *k == key) {
                Some((_, slot)) => slot,
                None => {
                    arms.push((key, Vec::new()));
                    &mut arms.last_mut().unwrap().1
                }
            };
            for (metric, value) in row.as_map().unwrap_or(&[]) {
                let Some(v) = as_f64(value) else { continue };
                match slot.iter_mut().find(|(m, _)| m == metric) {
                    Some((_, column)) => column.push(v),
                    None => slot.push((metric.clone(), vec![v])),
                }
            }
        }
    }
    for ((bench, n), metrics) in &arms {
        out.push_str(&format!("<h3>{}@n={}</h3>\n", esc(bench), esc(n)));
        for (metric, column) in metrics {
            out.push_str(&format!(
                "<div>{}: {} latest {:.2} over {} entries</div>\n",
                esc(metric),
                sparkline(column),
                column.last().copied().unwrap_or(0.0),
                column.len()
            ));
        }
    }
}

/// The regression-diff section (baseline supplied).
fn render_diff(out: &mut String, diff: &ReportDiff) {
    out.push_str("<h2>baseline diff</h2>\n");
    out.push_str(&format!(
        "<p class=\"{}\">{} metrics compared, {} regression(s)</p>\n",
        if diff.clean() { "ok" } else { "regressed" },
        diff.lines.len(),
        diff.regressions.len()
    ));
    for line in &diff.lines {
        let class = if line.contains("REGRESSED") || line.contains("MISSING") {
            "regressed"
        } else {
            "ok"
        };
        out.push_str(&format!("<div class=\"{class}\">{}</div>\n", esc(line)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A handcrafted two-run sweep report exercising every section.
    fn sweep_fixture() -> String {
        r#"{
  "master_seed": 7, "seeds_per_scenario": 1,
  "scenarios": [
    {
      "spec": {"name": "crash-churn"},
      "runs": [
        {"backend": "chord", "seed": 3, "hop_p50": 4, "hop_p99": 9, "hop_p999": 12,
         "health_events": ["w3 breach hop_p99: 14.000 > 12.000 [maintenance.round]",
                           "w5 recover hop_p99: 9.000 <= 12.000 [maintenance.round]"],
         "tail_exemplars": [
            {"window": 3, "bucket_upper": 15, "value": 14, "trace_id": 512},
            {"window": 4, "bucket_upper": 9, "value": 8, "trace_id": 700}
         ],
         "exemplar_count": 2,
         "span_costs": {"lookup;finger_walk": 900, "lookup;retry_backoff": 48,
                        "maintenance;repair": 120}}
      ],
      "aggregates": [
        {"backend": "chord", "fail_rate_mean": 0.01, "messages_mean": 12.5,
         "hop_p99_max": 9, "draw_msgs_p99_max": 21, "health_breaches_mean": 1.0,
         "time_to_detect_max": 0, "time_to_recover_min": 2,
         "exemplar_count_sum": 2, "top_span": "lookup;finger_walk",
         "top_span_cost": 900,
         "span_costs": {"lookup;finger_walk": 900, "lookup;retry_backoff": 48,
                        "maintenance;repair": 120},
         "series_mean": {"success_ratio": [1.0, 0.8, 0.95, 1.0],
                         "live": [96.0, 94.0, 92.0, 92.0]}}
      ]
    }
  ]
}"#
        .to_string()
    }

    #[test]
    fn sweep_dashboard_renders_every_section_and_is_deterministic() {
        let report = sweep_fixture();
        let dash = render_dashboard(&report, None).unwrap();
        for needle in [
            "<h2>arms</h2>",
            "<h2>windowed series</h2>",
            "<h2>tails and exemplars</h2>",
            "<h2>health timeline</h2>",
            "<h2>span cost breakdown</h2>",
            "crash-churn",
            "lookup;finger_walk",
            "<polyline",
            "id=\"payload\"",
        ] {
            assert!(dash.html.contains(needle), "missing {needle}");
        }
        // Exemplar drill-down names the trace id behind the tail bucket.
        assert!(dash.html.contains("<td>512</td>"), "exemplar trace id");
        assert!(dash.html.contains("<td>14</td>"), "exemplar value");
        // Health events carry their breach/recover class.
        assert!(dash.html.contains("class=\"breach\""));
        assert_eq!(dash.regressions, 0);
        // Pure function of the input: byte-identical re-render.
        let again = render_dashboard(&report, None).unwrap();
        assert_eq!(dash.html, again.html);
    }

    #[test]
    fn embedded_payload_is_the_report_json() {
        let report = sweep_fixture();
        let dash = render_dashboard(&report, None).unwrap();
        let start = dash.html.find("id=\"payload\">").unwrap() + "id=\"payload\">".len();
        let end = dash.html[start..].find("</script>").unwrap() + start;
        let embedded = dash.html[start..end].replace("<\\/", "</");
        let value: Value = serde_json::from_str(&embedded).unwrap();
        assert!(value.get("scenarios").is_some());
        assert_eq!(embedded, report);
    }

    #[test]
    fn baseline_diff_drives_the_regression_count() {
        let report = sweep_fixture();
        // Against itself: compared, clean, exit 0.
        let clean = render_dashboard(&report, Some(&report)).unwrap();
        assert_eq!(clean.regressions, 0);
        assert!(clean.html.contains("<h2>baseline diff</h2>"));
        // A degraded hop tail regresses and is classed for the eye.
        let worse = report.replace("\"hop_p99_max\": 9", "\"hop_p99_max\": 40");
        assert_ne!(worse, report);
        let regressed = render_dashboard(&worse, Some(&report)).unwrap();
        assert!(regressed.regressions > 0);
        assert!(regressed.html.contains("class=\"regressed\""));
    }

    #[test]
    fn bench_history_renders_trend_sparklines() {
        let history = r#"[
          {"sha": "a", "timestamp": 1, "rows": [
            {"bench": "chord_scale", "n": 100000, "lookup_ns": 4000}]},
          {"sha": "b", "timestamp": 2, "rows": [
            {"bench": "chord_scale", "n": 100000, "lookup_ns": 4200}]}
        ]"#;
        let dash = render_dashboard(history, None).unwrap();
        assert!(dash.html.contains("bench history (2 entries)"));
        assert!(dash.html.contains("chord_scale@n=100000"));
        assert!(dash.html.contains("lookup_ns"));
        assert!(dash.html.contains("<polyline"));
        assert!(dash.html.contains("over 2 entries"));
    }

    #[test]
    fn garbage_and_shape_errors_are_usage_errors() {
        assert!(render_dashboard("not json", None).is_err());
        assert!(render_dashboard(r#"{"neither": 1}"#, None).is_err());
        // Kind mismatch against the baseline propagates from the differ.
        let sweep = sweep_fixture();
        assert!(render_dashboard(&sweep, Some("[]")).is_err());
    }

    #[test]
    fn html_content_is_escaped() {
        let hostile = sweep_fixture().replace("crash-churn", "x<script>y");
        let dash = render_dashboard(&hostile, None).unwrap();
        // The scenario name renders escaped in the body...
        assert!(dash.html.contains("x&lt;script&gt;y"));
        // ...and the payload block never contains a terminating tag.
        let payload_at = dash.html.find("id=\"payload\">").unwrap();
        let body = &dash.html[payload_at..];
        assert_eq!(body.matches("</script>").count(), 1);
    }
}
