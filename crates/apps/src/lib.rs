//! Applications of uniform peer sampling — the paper's §1 motivations.
//!
//! King & Saia motivate exact uniform sampling with three application
//! classes; each is implemented here against the swappable
//! [`IndexSampler`](baselines::IndexSampler) interface so experiments can
//! quantify what the naive/biased alternatives actually cost downstream:
//!
//! * [`polling`] — **data collection**: estimate a population proportion by
//!   sampling peers. With a biased sampler, any attribute correlated with
//!   ring-arc length (e.g. anything correlated with the hash of long-lived
//!   identifiers) is systematically over/under-counted.
//! * [`links`] — **random links**: build an overlay where every node links
//!   to sampler-chosen peers; such graphs stay connected under massive
//!   adversarial deletion *if* the links are uniform \[11\]. Bias
//!   concentrates links on few peers, whose removal shatters the graph.
//! * [`load`] — **load balancing** \[7\]: throw `m` tasks at sampler-chosen
//!   peers; uniform sampling gives the classic balls-in-bins maximum load,
//!   bias multiplies it.
//! * [`committee`] — **Byzantine agreement** \[8\]: elect a committee by
//!   sampling; a biased sampler lets an adversary corrupt the most-likely
//!   peers and capture committee majorities far more often.
//!
//! The crate also hosts the harness-facing [`report`] and [`dash`]
//! modules: the regression diff behind `exp -- report`, which compares
//! two e16 sweep reports or two `BENCH_*.json` trajectories
//! metric-by-metric, and the byte-deterministic HTML dashboard behind
//! `exp -- dash` that renders the same inputs for human eyes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod committee;
pub mod dash;
pub mod links;
pub mod load;
pub mod polling;
pub mod report;
