//! Random-link overlays and their fault tolerance (§1 "Create Random
//! Links").
//!
//! A graph where every node holds a few links to *uniformly* random peers
//! stays connected under a sudden massive adversarial deletion \[11\]
//! (Motwani–Raghavan §5.3: random `d`-regular-ish graphs are expanders).
//! If the links come from a *biased* sampler, they concentrate on the
//! high-probability peers; deleting that small set shatters the overlay.
//! Experiment E9 draws the robustness curves side by side.

use std::collections::HashSet;

use baselines::{IndexSampler, OverlayGraph};
use rand::{Rng, RngCore};

/// How the adversary picks deletion victims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeletionStrategy {
    /// Uniform random victims (benign failures).
    Random,
    /// Highest-degree victims first — the worst case the paper's
    /// motivation cites, and the one that exposes biased link building.
    HighestDegree,
}

/// Builds an overlay where every node draws `links_per_node` outgoing
/// links from `sampler` (self-links redrawn up to a bounded number of
/// times, then skipped).
///
/// # Panics
///
/// Panics if the sampler is empty or `links_per_node == 0`.
pub fn build_overlay(
    sampler: &dyn IndexSampler,
    links_per_node: usize,
    rng: &mut dyn RngCore,
) -> OverlayGraph {
    assert!(!sampler.is_empty(), "cannot build an overlay over no peers");
    assert!(links_per_node > 0, "need at least one link per node");
    let n = sampler.len();
    let mut edges = Vec::with_capacity(n * links_per_node);
    for v in 0..n {
        for _ in 0..links_per_node {
            // Redraw self-links a few times; a sampler so biased that it
            // keeps returning v is itself the phenomenon under study.
            let mut target = sampler.sample_index(rng);
            for _ in 0..4 {
                if target != v {
                    break;
                }
                target = sampler.sample_index(rng);
            }
            if target != v {
                edges.push((v, target));
            }
        }
    }
    OverlayGraph::from_edges(n, &edges)
}

/// Size of the largest connected component after deleting `deleted`.
pub fn largest_component(graph: &OverlayGraph, deleted: &HashSet<usize>) -> usize {
    let n = graph.len();
    let mut seen = vec![false; n];
    let mut best = 0;
    for root in 0..n {
        if seen[root] || deleted.contains(&root) {
            continue;
        }
        let mut size = 0;
        let mut stack = vec![root];
        seen[root] = true;
        while let Some(v) = stack.pop() {
            size += 1;
            for &u in graph.neighbors(v) {
                if !seen[u] && !deleted.contains(&u) {
                    seen[u] = true;
                    stack.push(u);
                }
            }
        }
        best = best.max(size);
    }
    best
}

/// Picks deletion victims for a fraction `f` of the nodes.
///
/// # Panics
///
/// Panics if `f` is outside `[0, 1]`.
pub fn pick_victims<R: Rng + ?Sized>(
    graph: &OverlayGraph,
    fraction: f64,
    strategy: DeletionStrategy,
    rng: &mut R,
) -> HashSet<usize> {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction {fraction} outside [0, 1]"
    );
    let n = graph.len();
    let count = (fraction * n as f64).round() as usize;
    match strategy {
        DeletionStrategy::Random => {
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                order.swap(i, rng.gen_range(0..=i));
            }
            order.into_iter().take(count).collect()
        }
        DeletionStrategy::HighestDegree => {
            let mut by_degree: Vec<usize> = (0..n).collect();
            by_degree.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
            by_degree.into_iter().take(count).collect()
        }
    }
}

/// One point of a robustness curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessPoint {
    /// Fraction of nodes the adversary deleted.
    pub deleted_fraction: f64,
    /// Largest surviving component as a fraction of the surviving nodes.
    pub survivor_connectivity: f64,
}

/// Sweeps deletion fractions and reports the surviving connectivity.
pub fn robustness_curve<R: Rng + ?Sized>(
    graph: &OverlayGraph,
    fractions: &[f64],
    strategy: DeletionStrategy,
    rng: &mut R,
) -> Vec<RobustnessPoint> {
    fractions
        .iter()
        .map(|&f| {
            let victims = pick_victims(graph, f, strategy, rng);
            let survivors = graph.len() - victims.len();
            let component = largest_component(graph, &victims);
            RobustnessPoint {
                deleted_fraction: f,
                survivor_connectivity: if survivors == 0 {
                    0.0
                } else {
                    component as f64 / survivors as f64
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{NaiveSampler, TrueUniform};
    use keyspace::{KeySpace, SortedRing};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(13)
    }

    #[test]
    fn uniform_overlay_is_connected_and_near_regular() {
        let mut r = rng();
        let g = build_overlay(&TrueUniform::new(300), 5, &mut r);
        assert_eq!(g.len(), 300);
        assert!(g.is_connected());
        // Out-degree 5 symmetrized → mean degree just under 10.
        let mean: f64 = (0..g.len()).map(|v| g.degree(v) as f64).sum::<f64>() / g.len() as f64;
        assert!((8.0..11.0).contains(&mean), "mean degree {mean}");
    }

    #[test]
    fn uniform_overlay_survives_adversarial_deletion() {
        let mut r = rng();
        let g = build_overlay(&TrueUniform::new(400), 6, &mut r);
        let points = robustness_curve(&g, &[0.3], DeletionStrategy::HighestDegree, &mut r);
        assert!(
            points[0].survivor_connectivity > 0.9,
            "uniform links should survive 30% adversarial deletion, got {}",
            points[0].survivor_connectivity
        );
    }

    #[test]
    fn biased_overlay_shatters_under_adversarial_deletion() {
        let mut r = rng();
        let space = KeySpace::full();
        let ring = SortedRing::new(space, space.random_points(&mut r, 400));
        let naive = NaiveSampler::new(ring);
        let g = build_overlay(&naive, 6, &mut r);
        let uniform_g = build_overlay(&TrueUniform::new(400), 6, &mut r);
        let biased = robustness_curve(&g, &[0.3], DeletionStrategy::HighestDegree, &mut r)[0];
        let uniform =
            robustness_curve(&uniform_g, &[0.3], DeletionStrategy::HighestDegree, &mut r)[0];
        assert!(
            biased.survivor_connectivity < uniform.survivor_connectivity,
            "bias must hurt robustness: biased {} vs uniform {}",
            biased.survivor_connectivity,
            uniform.survivor_connectivity
        );
    }

    #[test]
    fn largest_component_counts_correctly() {
        // Path 0-1-2, isolated 3.
        let g = OverlayGraph::from_edges(4, &[(0, 1), (1, 2)]);
        assert_eq!(largest_component(&g, &HashSet::new()), 3);
        let mut deleted = HashSet::new();
        deleted.insert(1);
        assert_eq!(largest_component(&g, &deleted), 1);
        deleted.extend([0, 2, 3]);
        assert_eq!(largest_component(&g, &deleted), 0);
    }

    #[test]
    fn victim_counts_match_fraction() {
        let mut r = rng();
        let g = OverlayGraph::random_regular(100, 4, &mut r);
        for strategy in [DeletionStrategy::Random, DeletionStrategy::HighestDegree] {
            let victims = pick_victims(&g, 0.25, strategy, &mut r);
            assert_eq!(victims.len(), 25, "{strategy:?}");
        }
        assert!(pick_victims(&g, 0.0, DeletionStrategy::Random, &mut r).is_empty());
    }

    #[test]
    fn highest_degree_victims_have_highest_degrees() {
        let mut r = rng();
        let g = OverlayGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2)]);
        let victims = pick_victims(&g, 0.2, DeletionStrategy::HighestDegree, &mut r);
        assert!(victims.contains(&0), "vertex 0 has max degree 4");
    }

    #[test]
    fn curve_is_evaluated_at_all_fractions() {
        let mut r = rng();
        let g = OverlayGraph::random_regular(64, 4, &mut r);
        let curve = robustness_curve(&g, &[0.0, 0.5, 1.0], DeletionStrategy::Random, &mut r);
        assert_eq!(curve.len(), 3);
        assert!((curve[0].survivor_connectivity - 1.0).abs() < 1e-9);
        assert_eq!(curve[2].survivor_connectivity, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn zero_links_panics() {
        let mut r = rng();
        let _ = build_overlay(&TrueUniform::new(4), 0, &mut r);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_fraction_panics() {
        let mut r = rng();
        let g = OverlayGraph::random_regular(10, 2, &mut r);
        let _ = pick_victims(&g, 2.0, DeletionStrategy::Random, &mut r);
    }
}
