//! Load balancing by random assignment (§1, Karger–Ruhl \[7\]).
//!
//! Assigning `m` tasks to uniformly random peers is the classic
//! balls-in-bins process: for `m = n` the maximum load is
//! `(1 + o(1)) ln n / ln ln n` w.h.p. A biased sampler inflates the
//! maximum by funnelling tasks to high-probability peers. Experiment E12
//! compares the distributions.

use baselines::IndexSampler;
use rand::RngCore;

/// Loads after assigning tasks through a sampler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadAssignment {
    loads: Vec<u64>,
    tasks: u64,
}

impl LoadAssignment {
    /// Per-peer task counts.
    pub fn loads(&self) -> &[u64] {
        &self.loads
    }

    /// Total tasks assigned.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// The maximum load.
    pub fn max_load(&self) -> u64 {
        self.loads.iter().copied().max().unwrap_or(0)
    }

    /// The mean load.
    pub fn mean_load(&self) -> f64 {
        if self.loads.is_empty() {
            0.0
        } else {
            self.tasks as f64 / self.loads.len() as f64
        }
    }

    /// Number of peers that received no tasks.
    pub fn idle_peers(&self) -> usize {
        self.loads.iter().filter(|&&l| l == 0).count()
    }
}

/// Assigns `tasks` tasks to sampler-chosen peers.
///
/// # Panics
///
/// Panics if the sampler is empty or `tasks == 0`.
pub fn assign_tasks(
    sampler: &dyn IndexSampler,
    tasks: u64,
    rng: &mut dyn RngCore,
) -> LoadAssignment {
    assert!(!sampler.is_empty(), "no peers to assign tasks to");
    assert!(tasks > 0, "must assign at least one task");
    let mut loads = vec![0u64; sampler.len()];
    for _ in 0..tasks {
        loads[sampler.sample_index(rng)] += 1;
    }
    LoadAssignment { loads, tasks }
}

/// The balls-in-bins benchmark: expected maximum load of `m` uniform balls
/// in `n` bins, `≈ ln n / ln ln n` for `m = n` and
/// `≈ m/n + √(2 (m/n) ln n)` for `m ≫ n ln n` (Raab & Steger).
///
/// Used as the theory line in experiment E12's table.
///
/// # Panics
///
/// Panics if `n < 3` (the `ln ln n` regime needs `n ≥ 3`) or `m == 0`.
pub fn uniform_max_load_benchmark(m: u64, n: u64) -> f64 {
    assert!(n >= 3, "benchmark needs at least 3 bins");
    assert!(m > 0, "benchmark needs at least one ball");
    let nf = n as f64;
    let mf = m as f64;
    let ratio = mf / nf;
    if ratio <= (nf.ln()) {
        // Sparse regime.
        nf.ln() / nf.ln().ln() + ratio
    } else {
        // Dense regime.
        ratio + (2.0 * ratio * nf.ln()).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{NaiveSampler, TrueUniform};
    use keyspace::{KeySpace, SortedRing};
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(21)
    }

    #[test]
    fn all_tasks_are_assigned() {
        let mut r = rng();
        let a = assign_tasks(&TrueUniform::new(50), 1000, &mut r);
        assert_eq!(a.loads().iter().sum::<u64>(), 1000);
        assert_eq!(a.tasks(), 1000);
        assert!((a.mean_load() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_max_load_matches_balls_in_bins() {
        let mut r = rng();
        let n = 1000u64;
        // m = n: max load should be near ln n / ln ln n ≈ 3.6, certainly ≤ 10.
        let a = assign_tasks(&TrueUniform::new(n as usize), n, &mut r);
        assert!(
            a.max_load() <= 10,
            "uniform max load {} far above theory",
            a.max_load()
        );
        let bench = uniform_max_load_benchmark(n, n);
        assert!((2.0..8.0).contains(&bench), "benchmark {bench}");
    }

    #[test]
    fn biased_sampler_inflates_max_load() {
        let mut r = rng();
        let space = KeySpace::full();
        let n = 1000usize;
        let ring = SortedRing::new(space, space.random_points(&mut r, n));
        let naive = NaiveSampler::new(ring);
        let uniform_max: u64 = (0..5)
            .map(|_| assign_tasks(&TrueUniform::new(n), n as u64, &mut r).max_load())
            .max()
            .unwrap();
        let biased_max: u64 = (0..5)
            .map(|_| assign_tasks(&naive, n as u64, &mut r).max_load())
            .min()
            .unwrap();
        // The longest-arc peer receives ~arc·n ≈ ln n ≈ 7+ tasks on its own.
        assert!(
            biased_max > uniform_max,
            "bias must inflate max load: biased {biased_max} vs uniform {uniform_max}"
        );
    }

    #[test]
    fn idle_peers_counted() {
        let mut r = rng();
        let a = assign_tasks(&TrueUniform::new(100), 10, &mut r);
        assert!(a.idle_peers() >= 90);
    }

    #[test]
    fn dense_regime_benchmark_scales_with_ratio() {
        let sparse = uniform_max_load_benchmark(1000, 1000);
        let dense = uniform_max_load_benchmark(1_000_000, 1000);
        assert!(dense > 1000.0, "dense benchmark {dense}");
        assert!(sparse < 10.0, "sparse benchmark {sparse}");
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_tasks_panics() {
        let mut r = rng();
        let _ = assign_tasks(&TrueUniform::new(5), 0, &mut r);
    }

    #[test]
    #[should_panic(expected = "at least 3 bins")]
    fn tiny_benchmark_panics() {
        let _ = uniform_max_load_benchmark(10, 2);
    }
}
