//! Data collection by peer polling (§1 "Data Collection").
//!
//! The statistical contract of survey sampling — the sample mean is an
//! unbiased estimator of the population mean — requires uniform sampling.
//! This module polls a boolean attribute through any
//! [`IndexSampler`] and reports the estimate;
//! [`arc_correlated_attribute`] builds the adversarial-but-realistic
//! population where the attribute correlates with ring-arc length, which
//! maximally exposes the naive heuristic's bias (experiment E12/E8
//! companion).

use baselines::IndexSampler;
use keyspace::SortedRing;
use rand::RngCore;

/// Result of polling `sample_size` peers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PollResult {
    /// Fraction of polled peers with the attribute.
    pub estimate: f64,
    /// True population fraction (for error reporting).
    pub truth: f64,
    /// Peers polled.
    pub sample_size: usize,
}

impl PollResult {
    /// Signed estimation error (`estimate − truth`).
    pub fn error(&self) -> f64 {
        self.estimate - self.truth
    }
}

/// Polls `sample_size` peers (with replacement) for a boolean attribute.
///
/// # Panics
///
/// Panics if `attribute.len() != sampler.len()`, the population is empty,
/// or `sample_size == 0`.
pub fn poll(
    sampler: &dyn IndexSampler,
    attribute: &[bool],
    sample_size: usize,
    rng: &mut dyn RngCore,
) -> PollResult {
    assert_eq!(
        attribute.len(),
        sampler.len(),
        "attribute vector must cover every peer"
    );
    assert!(!attribute.is_empty(), "population is empty");
    assert!(sample_size > 0, "must poll at least one peer");
    let mut hits = 0usize;
    for _ in 0..sample_size {
        if attribute[sampler.sample_index(rng)] {
            hits += 1;
        }
    }
    let truth = attribute.iter().filter(|&&b| b).count() as f64 / attribute.len() as f64;
    PollResult {
        estimate: hits as f64 / sample_size as f64,
        truth,
        sample_size,
    }
}

/// Result of polling a numeric per-peer quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanPollResult {
    /// Sample mean of the polled values.
    pub estimate: f64,
    /// True population mean.
    pub truth: f64,
    /// Standard error of the estimate (sample std-dev / √k).
    pub std_error: f64,
    /// Peers polled.
    pub sample_size: usize,
}

impl MeanPollResult {
    /// Signed estimation error.
    pub fn error(&self) -> f64 {
        self.estimate - self.truth
    }

    /// Whether the truth lies within `z` standard errors of the estimate
    /// (`z = 1.96` for a 95% normal interval).
    pub fn covers_truth(&self, z: f64) -> bool {
        (self.estimate - self.truth).abs() <= z * self.std_error
    }
}

/// Polls a numeric per-peer quantity — the paper's "environmental data,
/// e.g. for sensor networks" use case — returning the sample mean with
/// its standard error.
///
/// # Panics
///
/// Panics if `values.len() != sampler.len()`, the population is empty,
/// `sample_size < 2`, or any value is not finite.
pub fn poll_mean(
    sampler: &dyn IndexSampler,
    values: &[f64],
    sample_size: usize,
    rng: &mut dyn RngCore,
) -> MeanPollResult {
    assert_eq!(
        values.len(),
        sampler.len(),
        "value vector must cover every peer"
    );
    assert!(!values.is_empty(), "population is empty");
    assert!(
        sample_size >= 2,
        "need at least two observations for a std error"
    );
    let mut acc = stats::Welford::new();
    for _ in 0..sample_size {
        acc.push(values[sampler.sample_index(rng)]);
    }
    let truth = values.iter().sum::<f64>() / values.len() as f64;
    MeanPollResult {
        estimate: acc.mean(),
        truth,
        std_error: acc.std_error(),
        sample_size,
    }
}

/// Polls a boolean attribute and returns a Wilson confidence interval for
/// the population fraction alongside the point estimate.
///
/// Under a *uniform* sampler the interval has its nominal coverage; under
/// a biased sampler it confidently covers the wrong value — the quiet
/// failure mode the paper's data-collection motivation warns about.
///
/// # Panics
///
/// As [`poll`], plus `confidence` must be in `(0, 1)`.
pub fn poll_with_ci(
    sampler: &dyn IndexSampler,
    attribute: &[bool],
    sample_size: usize,
    confidence: f64,
    rng: &mut dyn RngCore,
) -> (PollResult, stats::proportion::ProportionCi) {
    assert_eq!(
        attribute.len(),
        sampler.len(),
        "attribute vector must cover every peer"
    );
    assert!(!attribute.is_empty(), "population is empty");
    assert!(sample_size > 0, "must poll at least one peer");
    let mut hits = 0u64;
    for _ in 0..sample_size {
        if attribute[sampler.sample_index(rng)] {
            hits += 1;
        }
    }
    let truth = attribute.iter().filter(|&&b| b).count() as f64 / attribute.len() as f64;
    let result = PollResult {
        estimate: hits as f64 / sample_size as f64,
        truth,
        sample_size,
    };
    let ci = stats::proportion::wilson(hits, sample_size as u64, confidence);
    (result, ci)
}

/// Assigns the attribute to the `⌈fraction·n⌉` peers with the **longest**
/// preceding arcs.
///
/// This is the adversarial population for the naive heuristic: its
/// selection probability is exactly proportional to the preceding arc, so
/// the attribute is maximally over-represented in naive samples. Any
/// real-world attribute correlated with key placement behaves like a
/// diluted version of this.
///
/// # Panics
///
/// Panics if the ring is empty or `fraction` is outside `[0, 1]`.
pub fn arc_correlated_attribute(ring: &SortedRing, fraction: f64) -> Vec<bool> {
    assert!(!ring.is_empty(), "ring is empty");
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction {fraction} outside [0, 1]"
    );
    let n = ring.len();
    let count = (fraction * n as f64).ceil() as usize;
    let mut by_arc: Vec<usize> = (0..n).collect();
    by_arc.sort_by_key(|&i| std::cmp::Reverse(ring.arc_before(i)));
    let mut attr = vec![false; n];
    for &i in by_arc.iter().take(count.min(n)) {
        attr[i] = true;
    }
    attr
}

#[cfg(test)]
mod tests {
    use super::*;
    use baselines::{NaiveSampler, TrueUniform};
    use keyspace::KeySpace;
    use rand::SeedableRng;

    fn ring(n: usize, seed: u64) -> SortedRing {
        let space = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        SortedRing::new(space, space.random_points(&mut rng, n))
    }

    #[test]
    fn uniform_poll_is_unbiased() {
        let r = ring(500, 1);
        let attr = arc_correlated_attribute(&r, 0.3);
        let sampler = TrueUniform::new(500);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let result = poll(&sampler, &attr, 20_000, &mut rng);
        assert!((result.truth - 0.3).abs() < 0.01);
        assert!(
            result.error().abs() < 0.02,
            "uniform estimate off by {}",
            result.error()
        );
    }

    #[test]
    fn naive_poll_overestimates_arc_correlated_attribute() {
        let r = ring(500, 3);
        let attr = arc_correlated_attribute(&r, 0.3);
        let sampler = NaiveSampler::new(r);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let result = poll(&sampler, &attr, 20_000, &mut rng);
        // The 30% of peers with the longest arcs carry far more than 30%
        // of the arc measure (arcs are ~exponential: top 30% carry ~65%).
        assert!(
            result.error() > 0.2,
            "naive bias should be large, got {}",
            result.error()
        );
    }

    #[test]
    fn attribute_marks_longest_arc_peers() {
        let r = ring(100, 5);
        let attr = arc_correlated_attribute(&r, 0.1);
        assert_eq!(attr.iter().filter(|&&b| b).count(), 10);
        // Every marked peer's arc is at least as long as every unmarked one.
        let min_marked = (0..100)
            .filter(|&i| attr[i])
            .map(|i| r.arc_before(i))
            .min()
            .unwrap();
        let max_unmarked = (0..100)
            .filter(|&i| !attr[i])
            .map(|i| r.arc_before(i))
            .max()
            .unwrap();
        assert!(min_marked >= max_unmarked);
    }

    #[test]
    fn fraction_boundaries() {
        let r = ring(10, 6);
        assert_eq!(
            arc_correlated_attribute(&r, 0.0)
                .iter()
                .filter(|&&b| b)
                .count(),
            0
        );
        assert_eq!(
            arc_correlated_attribute(&r, 1.0)
                .iter()
                .filter(|&&b| b)
                .count(),
            10
        );
    }

    #[test]
    fn poll_result_error_is_signed() {
        let result = PollResult {
            estimate: 0.4,
            truth: 0.5,
            sample_size: 10,
        };
        assert!((result.error() + 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cover every peer")]
    fn mismatched_attribute_panics() {
        let sampler = TrueUniform::new(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let _ = poll(&sampler, &[true; 4], 10, &mut rng);
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn zero_sample_size_panics() {
        let sampler = TrueUniform::new(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let _ = poll(&sampler, &[true; 5], 0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_fraction_panics() {
        let _ = arc_correlated_attribute(&ring(5, 9), 1.5);
    }

    #[test]
    fn poll_mean_unbiased_under_uniform_sampler() {
        // Numeric quantity correlated with arc length (sensor reading).
        let r = ring(300, 20);
        let values: Vec<f64> = (0..300)
            .map(|i| r.space().fraction(r.arc_before(i)) * 300.0)
            .collect();
        let sampler = TrueUniform::new(300);
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let result = poll_mean(&sampler, &values, 10_000, &mut rng);
        assert!((result.truth - 1.0).abs() < 1e-9, "arc fractions sum to 1");
        assert!(
            result.covers_truth(3.0),
            "estimate {} ± {} missed truth {}",
            result.estimate,
            result.std_error,
            result.truth
        );
        assert_eq!(result.sample_size, 10_000);
    }

    #[test]
    fn poll_mean_biased_under_naive_sampler() {
        let r = ring(300, 22);
        let values: Vec<f64> = (0..300)
            .map(|i| r.space().fraction(r.arc_before(i)) * 300.0)
            .collect();
        let sampler = NaiveSampler::new(r);
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let result = poll_mean(&sampler, &values, 10_000, &mut rng);
        // The naive sampler over-weights exactly the peers with large
        // values, so the error is many standard errors wide.
        assert!(result.error() > 0.3, "bias too small: {}", result.error());
        assert!(!result.covers_truth(3.0));
    }

    #[test]
    fn poll_with_ci_covers_under_uniform() {
        let r = ring(400, 24);
        let attr = arc_correlated_attribute(&r, 0.25);
        let sampler = TrueUniform::new(400);
        let mut rng = rand::rngs::StdRng::seed_from_u64(25);
        let (result, ci) = poll_with_ci(&sampler, &attr, 5_000, 0.99, &mut rng);
        assert!(ci.contains(result.truth), "{ci} missed {}", result.truth);
    }

    #[test]
    fn poll_with_ci_confidently_wrong_under_naive() {
        let r = ring(400, 26);
        let attr = arc_correlated_attribute(&r, 0.25);
        let sampler = NaiveSampler::new(r);
        let mut rng = rand::rngs::StdRng::seed_from_u64(27);
        let (result, ci) = poll_with_ci(&sampler, &attr, 5_000, 0.99, &mut rng);
        assert!(
            !ci.contains(result.truth),
            "a biased poll should be confidently wrong: {ci} vs truth {}",
            result.truth
        );
    }

    #[test]
    #[should_panic(expected = "two observations")]
    fn poll_mean_needs_two_samples() {
        let sampler = TrueUniform::new(5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(28);
        let _ = poll_mean(&sampler, &[1.0; 5], 1, &mut rng);
    }
}
