//! Report regression diffing for `exp -- report`.
//!
//! Loads two machine-readable reports produced by the harness — either two
//! e16 sweep reports (`target/e16_*.json`, the object with a `"scenarios"`
//! key) or two bench trajectory files (`BENCH_*.json`, a history array) —
//! and diffs the gated metrics with tolerance bands. The driver exits
//! non-zero when any metric regressed, so CI can pin a revision range:
//!
//! ```text
//! cargo run --release -p bench --bin exp -- report baseline.json candidate.json
//! ```
//!
//! **Sweep reports** are compared per `(scenario, backend)` pair. Each
//! gated metric has a direction (lower- or higher-is-better) and a band of
//! `max(abs, rel · |baseline|)`; the candidate regresses when it is worse
//! than the baseline by more than the band. A pair present in the baseline
//! but missing from the candidate is itself a regression (an arm silently
//! dropped from the battery); new pairs are reported but benign. The
//! watchdog verdict columns get loss rules instead of bands: a baseline
//! that detected a fault (`time_to_detect ≥ 0`) regresses when the
//! candidate never does (−1) or detects more than two windows later, and a
//! confirmed recovery (`time_to_recover ≥ 0`) regresses when the candidate
//! ends the run still breached.
//!
//! **Bench histories** compare the *latest* entry of each side (legacy
//! flat-row files count as a single entry). Metric direction is inferred
//! from the key: `*speedup*`/`*ratio*` are higher-is-better — except
//! `*overhead*` keys, which are costs — and everything
//! else numeric (ns, ms, pct, bytes, lookups) is lower-is-better;
//! configuration keys (`bench`, `n`, `*_bar`, `*_budget*`) and scenario
//! constants are skipped. Bands are wide (35% rel) because wall-clock
//! benches are noisy — the *hard* budget enforcement lives in the benches
//! themselves under `RP_ENFORCE_BENCH=1`; this diff flags trajectory
//! drift between recorded points.

use serde_json::Value;

/// Which way a metric improves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Smaller values are better (costs, error rates, tail latencies).
    Lower,
    /// Larger values are better (speedups, p-values).
    Higher,
}

/// A gated sweep metric: where it lives in `BackendAggregate`, which way
/// it improves, and its tolerance band.
struct Gate {
    key: &'static str,
    better: Direction,
    rel: f64,
    abs: f64,
}

/// The `BackendAggregate` columns the sweep diff gates. Bands are sized to
/// the noise observed across seeds: rates get absolute floors so a 0 → ε
/// flip is not a regression, tails get a one-hop/one-message allowance.
const SWEEP_GATES: &[Gate] = &[
    Gate {
        key: "fail_rate_mean",
        better: Direction::Lower,
        rel: 0.25,
        abs: 0.01,
    },
    Gate {
        key: "messages_mean",
        better: Direction::Lower,
        rel: 0.15,
        abs: 0.5,
    },
    Gate {
        key: "latency_mean",
        better: Direction::Lower,
        rel: 0.25,
        abs: 0.5,
    },
    Gate {
        key: "trials_mean",
        better: Direction::Lower,
        rel: 0.25,
        abs: 0.25,
    },
    Gate {
        key: "tv_worst",
        better: Direction::Lower,
        rel: 0.25,
        abs: 0.02,
    },
    Gate {
        key: "chi_square_p_min",
        better: Direction::Higher,
        rel: 0.5,
        abs: 0.05,
    },
    Gate {
        key: "byzantine_sample_share_mean",
        better: Direction::Lower,
        rel: 0.25,
        abs: 0.02,
    },
    Gate {
        key: "committee_capture_p_mean",
        better: Direction::Lower,
        rel: 0.25,
        abs: 0.02,
    },
    Gate {
        key: "quorum_failures_mean",
        better: Direction::Lower,
        rel: 0.5,
        abs: 0.5,
    },
    Gate {
        key: "finger_staleness_mean",
        better: Direction::Lower,
        rel: 0.25,
        abs: 0.02,
    },
    Gate {
        key: "maintenance_backlog_mean",
        better: Direction::Lower,
        rel: 0.5,
        abs: 64.0,
    },
    Gate {
        key: "hop_p99_max",
        better: Direction::Lower,
        rel: 0.25,
        abs: 1.0,
    },
    Gate {
        key: "draw_msgs_p99_max",
        better: Direction::Lower,
        rel: 0.25,
        abs: 2.0,
    },
    Gate {
        key: "health_breaches_mean",
        better: Direction::Lower,
        rel: 0.5,
        abs: 1.0,
    },
    // Async-engine columns (PR 10). The in-flight-age tail is tick-noisy
    // across seeds, and the adaptive arm's deadline count is a cost, not
    // a correctness bit — both get wide bands.
    Gate {
        key: "engine_age_p999_mean",
        better: Direction::Lower,
        rel: 0.30,
        abs: 32.0,
    },
    Gate {
        key: "engine_timeouts_sum",
        better: Direction::Lower,
        rel: 0.5,
        abs: 8.0,
    },
];

/// Allowed detection slowdown before `time_to_detect` counts as
/// regressed, in watchdog windows (matches the e16 `ttd ≤ 2` gate).
const TTD_SLACK_WINDOWS: i64 = 2;

/// Relative band for bench-history metrics (wall-clock noise).
const BENCH_REL: f64 = 0.35;
/// Absolute floor for bench-history bands.
const BENCH_ABS: f64 = 1.0;

/// The outcome of diffing two reports.
///
/// `lines` is the full human-readable comparison (every gated metric,
/// regressed or not); `regressions` repeats just the failures so callers
/// can print a summary and exit non-zero when it is non-empty.
#[derive(Debug, Default)]
pub struct ReportDiff {
    /// One line per compared metric or pair, in report order.
    pub lines: Vec<String>,
    /// One line per detected regression (empty ⇒ candidate is no worse).
    pub regressions: Vec<String>,
}

impl ReportDiff {
    /// True when no gated metric regressed.
    pub fn clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Diffs two report JSON documents (baseline, candidate).
///
/// Both must be the same kind — sweep report or bench history; mixing
/// kinds, unparseable JSON, or an unrecognized shape is an `Err` (distinct
/// from a regression: the caller should treat it as usage error).
pub fn diff_reports(baseline: &str, candidate: &str) -> Result<ReportDiff, String> {
    let base: Value =
        serde_json::from_str(baseline).map_err(|e| format!("baseline: unparseable JSON ({e})"))?;
    let cand: Value = serde_json::from_str(candidate)
        .map_err(|e| format!("candidate: unparseable JSON ({e})"))?;
    match (kind_of(&base)?, kind_of(&cand)?) {
        (Kind::Sweep, Kind::Sweep) => Ok(diff_sweeps(&base, &cand)),
        (Kind::Bench, Kind::Bench) => Ok(diff_bench_histories(&base, &cand)),
        (b, c) => Err(format!(
            "kind mismatch: baseline is {b:?}, candidate is {c:?}"
        )),
    }
}

/// Recognized report shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// An e16 `SweepReport` (object with a `scenarios` array).
    Sweep,
    /// A `BENCH_*.json` trajectory (array of history entries or rows).
    Bench,
}

fn kind_of(v: &Value) -> Result<Kind, String> {
    if v.get("scenarios").is_some() {
        Ok(Kind::Sweep)
    } else if v.as_seq().is_some() {
        Ok(Kind::Bench)
    } else {
        Err(format!(
            "unrecognized report shape ({}): expected a sweep report object \
             with \"scenarios\" or a bench history array",
            v.kind()
        ))
    }
}

/// Numeric coercion for the shim's `Value`.
fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Integer coercion (for the ttd/ttr columns, which are exact).
fn int(v: &Value) -> Option<i64> {
    match v {
        Value::Int(i) => i64::try_from(*i).ok(),
        _ => None,
    }
}

/// `(scenario name, backend name) -> aggregate` for one sweep report.
fn aggregate_index(report: &Value) -> Vec<((String, String), &Value)> {
    let mut out = Vec::new();
    let scenarios = report
        .get("scenarios")
        .and_then(Value::as_seq)
        .unwrap_or(&[]);
    for scenario in scenarios {
        let name = scenario
            .get("spec")
            .and_then(|s| s.get("name"))
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_string();
        let aggregates = scenario
            .get("aggregates")
            .and_then(Value::as_seq)
            .unwrap_or(&[]);
        for agg in aggregates {
            let backend = agg
                .get("backend")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string();
            out.push(((name.clone(), backend), agg));
        }
    }
    out
}

/// How much worse the candidate is than the baseline (positive = worse).
fn worse_by(better: Direction, base: f64, cand: f64) -> f64 {
    match better {
        Direction::Lower => cand - base,
        Direction::Higher => base - cand,
    }
}

fn diff_sweeps(base: &Value, cand: &Value) -> ReportDiff {
    let mut diff = ReportDiff::default();
    let base_index = aggregate_index(base);
    let cand_index = aggregate_index(cand);
    for ((scenario, backend), base_agg) in &base_index {
        let arm = format!("{scenario}/{backend}");
        let Some((_, cand_agg)) = cand_index
            .iter()
            .find(|(k, _)| k == &(scenario.clone(), backend.clone()))
        else {
            let line = format!("{arm}: MISSING from candidate");
            diff.lines.push(line.clone());
            diff.regressions.push(line);
            continue;
        };
        for gate in SWEEP_GATES {
            let (Some(b), Some(c)) = (
                base_agg.get(gate.key).and_then(num),
                cand_agg.get(gate.key).and_then(num),
            ) else {
                continue; // column absent on one side (older report) — not gated
            };
            let band = gate.abs.max(gate.rel * b.abs());
            let worse = worse_by(gate.better, b, c);
            let regressed = worse > band;
            let status = if regressed { "REGRESSED" } else { "ok" };
            diff.lines.push(format!(
                "{arm} {key}: {b:.4} -> {c:.4} (band {band:.4}, {status})",
                key = gate.key,
            ));
            if regressed {
                diff.regressions.push(format!(
                    "{arm} {key}: {b:.4} -> {c:.4} exceeds band {band:.4}",
                    key = gate.key
                ));
            }
        }
        diff_watchdog_columns(&arm, base_agg, cand_agg, &mut diff);
        // Columns the candidate reports but the baseline predates are
        // surfaced, not silently skipped: a freshly-gated metric (say a
        // new success-ratio verdict column) must show up in the diff
        // even though there is nothing to compare it against yet.
        for (key, val) in cand_agg.as_map().into_iter().flatten() {
            if base_agg.get(key).is_none() && num(val).is_some() {
                diff.lines
                    .push(format!("{arm} {key}: new metric, not compared"));
            }
        }
    }
    for ((scenario, backend), _) in &cand_index {
        if !base_index
            .iter()
            .any(|(k, _)| k == &(scenario.clone(), backend.clone()))
        {
            diff.lines.push(format!(
                "{scenario}/{backend}: new in candidate (not gated)"
            ));
        }
    }
    diff
}

/// Loss rules for the watchdog verdict columns (−1 sentinels make plain
/// numeric bands meaningless here). The draw-phase watchdog columns and
/// the engine phase's in-flight-age columns share the same semantics, so
/// they share the same rules.
fn diff_watchdog_columns(arm: &str, base: &Value, cand: &Value, diff: &mut ReportDiff) {
    for detect_key in ["time_to_detect_max", "engine_ttd_max"] {
        if let (Some(b), Some(c)) = (
            base.get(detect_key).and_then(int),
            cand.get(detect_key).and_then(int),
        ) {
            let regressed = b >= 0 && (c < 0 || c > b + TTD_SLACK_WINDOWS);
            diff.lines.push(format!(
                "{arm} {detect_key}: {b} -> {c} ({})",
                if regressed { "REGRESSED" } else { "ok" }
            ));
            if regressed {
                diff.regressions.push(format!(
                    "{arm} {detect_key}: baseline detected in {b} windows, candidate {}",
                    if c < 0 {
                        "never detects".to_string()
                    } else {
                        format!("takes {c}")
                    }
                ));
            }
        }
    }
    for recover_key in ["time_to_recover_min", "engine_ttr_min"] {
        if let (Some(b), Some(c)) = (
            base.get(recover_key).and_then(int),
            cand.get(recover_key).and_then(int),
        ) {
            let regressed = b >= 0 && c < 0;
            diff.lines.push(format!(
                "{arm} {recover_key}: {b} -> {c} ({})",
                if regressed { "REGRESSED" } else { "ok" }
            ));
            if regressed {
                diff.regressions.push(format!(
                    "{arm} {recover_key}: baseline recovered, candidate still breached at run end"
                ));
            }
        }
    }
}

/// The newest rows of a bench trajectory, plus a label for them.
///
/// History entries (`{"sha", "timestamp", "rows": [...]}`) yield their
/// last entry's rows; legacy files whose elements are flat rows yield the
/// whole array labelled `pre-history`.
fn latest_rows(history: &Value) -> (String, &[Value]) {
    let entries = history.as_seq().unwrap_or(&[]);
    if let Some(last) = entries.last() {
        if let Some(rows) = last.get("rows").and_then(Value::as_seq) {
            let sha = last.get("sha").and_then(Value::as_str).unwrap_or("?");
            return (sha.to_string(), rows);
        }
    }
    ("pre-history".to_string(), entries)
}

/// Keys that are configuration or scenario constants, not measurements.
fn bench_key_skipped(key: &str) -> bool {
    key == "bench"
        || key == "n"
        || key == "legacy_bytes_per_node"
        || key == "maintenance_full_round_lookups"
        || key == "maintenance_dirty_after_64_crashes"
        || key.ends_with("_bar")
        || key.contains("_budget")
}

fn bench_direction(key: &str) -> Direction {
    // Overhead ratios (e.g. `engine_overhead_ratio`) are cost divided by
    // baseline: lower is better, despite the `ratio` suffix.
    if key.contains("overhead") {
        Direction::Lower
    } else if key.contains("speedup") || key.contains("ratio") {
        Direction::Higher
    } else {
        Direction::Lower
    }
}

fn diff_bench_histories(base: &Value, cand: &Value) -> ReportDiff {
    let mut diff = ReportDiff::default();
    let (base_sha, base_rows) = latest_rows(base);
    let (cand_sha, cand_rows) = latest_rows(cand);
    diff.lines
        .push(format!("comparing bench entries {base_sha} -> {cand_sha}"));
    let row_key = |row: &Value| {
        (
            row.get("bench")
                .and_then(Value::as_str)
                .unwrap_or("?")
                .to_string(),
            row.get("n").and_then(int).unwrap_or(0),
        )
    };
    for base_row in base_rows {
        let (bench, n) = row_key(base_row);
        let arm = format!("{bench}@n={n}");
        let Some(cand_row) = cand_rows.iter().find(|r| row_key(r) == (bench.clone(), n)) else {
            let line = format!("{arm}: MISSING from candidate");
            diff.lines.push(line.clone());
            diff.regressions.push(line);
            continue;
        };
        for (key, base_val) in base_row.as_map().unwrap_or(&[]) {
            if bench_key_skipped(key) {
                continue;
            }
            let (Some(b), Some(c)) = (num(base_val), cand_row.get(key).and_then(num)) else {
                continue;
            };
            let band = BENCH_ABS.max(BENCH_REL * b.abs());
            let worse = worse_by(bench_direction(key), b, c);
            let regressed = worse > band;
            diff.lines.push(format!(
                "{arm} {key}: {b:.2} -> {c:.2} (band {band:.2}, {})",
                if regressed { "REGRESSED" } else { "ok" }
            ));
            if regressed {
                diff.regressions.push(format!(
                    "{arm} {key}: {b:.2} -> {c:.2} exceeds band {band:.2}"
                ));
            }
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal sweep report with one crash-churn chord arm.
    fn sweep_json(hop_p99_max: u64, ttd: i64, ttr: i64) -> String {
        format!(
            r#"{{
  "seed": 7, "seeds_per_scenario": 2,
  "scenarios": [
    {{
      "spec": {{"name": "crash-churn"}},
      "runs": [],
      "aggregates": [
        {{"backend": "chord", "fail_rate_mean": 0.0, "messages_mean": 12.5,
          "tv_worst": 0.08, "hop_p99_max": {hop_p99_max},
          "time_to_detect_max": {ttd}, "time_to_recover_min": {ttr}}}
      ]
    }}
  ]
}}"#
        )
    }

    #[test]
    fn identical_sweep_reports_are_clean() {
        let report = sweep_json(9, 0, -1);
        let diff = diff_reports(&report, &report).unwrap();
        assert!(
            diff.clean(),
            "unexpected regressions: {:?}",
            diff.regressions
        );
        assert!(!diff.lines.is_empty());
    }

    #[test]
    fn perturbed_hop_tail_regresses() {
        let diff = diff_reports(&sweep_json(9, 0, -1), &sweep_json(14, 0, -1)).unwrap();
        assert_eq!(diff.regressions.len(), 1, "{:?}", diff.regressions);
        assert!(diff.regressions[0].contains("hop_p99_max"));
    }

    #[test]
    fn improvement_is_not_a_regression() {
        let diff = diff_reports(&sweep_json(14, 0, -1), &sweep_json(9, 0, -1)).unwrap();
        assert!(diff.clean(), "{:?}", diff.regressions);
    }

    #[test]
    fn lost_detection_regresses_but_never_detected_baseline_does_not() {
        let lost = diff_reports(&sweep_json(9, 1, -1), &sweep_json(9, -1, -1)).unwrap();
        assert!(
            lost.regressions.iter().any(|r| r.contains("never detects")),
            "{:?}",
            lost.regressions
        );
        let both_undetected = diff_reports(&sweep_json(9, -1, -1), &sweep_json(9, -1, -1)).unwrap();
        assert!(both_undetected.clean());
    }

    #[test]
    fn lost_recovery_regresses() {
        let diff = diff_reports(&sweep_json(9, 0, 3), &sweep_json(9, 0, -1)).unwrap();
        assert!(
            diff.regressions
                .iter()
                .any(|r| r.contains("time_to_recover")),
            "{:?}",
            diff.regressions
        );
    }

    #[test]
    fn missing_arm_regresses() {
        let empty = r#"{"seed": 7, "seeds_per_scenario": 2, "scenarios": []}"#;
        let diff = diff_reports(&sweep_json(9, 0, -1), empty).unwrap();
        assert!(
            diff.regressions.iter().any(|r| r.contains("MISSING")),
            "{:?}",
            diff.regressions
        );
        // New arms in the candidate are benign.
        let reverse = diff_reports(empty, &sweep_json(9, 0, -1)).unwrap();
        assert!(reverse.clean());
    }

    #[test]
    fn new_verdict_column_is_reported_not_silently_skipped() {
        let base = sweep_json(9, 0, -1);
        let cand = base.replace(
            "\"tv_worst\": 0.08,",
            "\"tv_worst\": 0.08, \"outage_success_ratio_min\": 0.995,",
        );
        assert_ne!(base, cand);
        let diff = diff_reports(&base, &cand).unwrap();
        // Uncomparable but visible — and never a regression.
        assert!(diff.clean(), "{:?}", diff.regressions);
        assert!(
            diff.lines
                .iter()
                .any(|l| l.contains("outage_success_ratio_min: new metric, not compared")),
            "{:?}",
            diff.lines
        );
        // The same column on both sides is compared, not re-flagged.
        let both = diff_reports(&cand, &cand).unwrap();
        assert!(
            !both.lines.iter().any(|l| l.contains("new metric")),
            "{:?}",
            both.lines
        );
    }

    #[test]
    fn pr8_era_baseline_sees_exemplar_and_span_columns_as_new_not_regressed() {
        // A baseline recorded before the explainability columns existed
        // (no exemplar_count_sum / top_span_cost / span_costs) must diff
        // cleanly against a candidate that carries them: the numeric
        // additions surface under the "new metric, not compared" rule and
        // nothing regresses.
        let baseline = sweep_json(9, 0, -1);
        let candidate = baseline.replace(
            "\"tv_worst\": 0.08,",
            "\"tv_worst\": 0.08, \"exemplar_count_sum\": 12, \"top_span_cost\": 900, \
             \"top_span\": \"lookup;finger_walk\", \
             \"span_costs\": {\"lookup;finger_walk\": 900, \"lookup;retry_backoff\": 48},",
        );
        assert_ne!(baseline, candidate);
        let diff = diff_reports(&baseline, &candidate).unwrap();
        assert!(diff.clean(), "{:?}", diff.regressions);
        for key in ["exemplar_count_sum", "top_span_cost"] {
            assert!(
                diff.lines
                    .iter()
                    .any(|l| l.contains(&format!("{key}: new metric, not compared"))),
                "{key} not surfaced: {:?}",
                diff.lines
            );
        }
        // Same columns on both sides: compared or ignored, never re-flagged.
        let both = diff_reports(&candidate, &candidate).unwrap();
        assert!(both.clean());
        assert!(!both.lines.iter().any(|l| l.contains("new metric")));
    }

    /// A sweep report with one engine-battery chord arm (PR 10 columns).
    fn engine_sweep_json(p999: u64, timeouts: u64, ttd: i64, ttr: i64) -> String {
        format!(
            r#"{{
  "seed": 7, "seeds_per_scenario": 2,
  "scenarios": [
    {{
      "spec": {{"name": "engine-slowdomain-adaptive"}},
      "runs": [],
      "aggregates": [
        {{"backend": "chord", "fail_rate_mean": 0.0,
          "engine_age_p999_mean": {p999}.0, "engine_timeouts_sum": {timeouts},
          "engine_ttd_max": {ttd}, "engine_ttr_min": {ttr}}}
      ]
    }}
  ]
}}"#
        )
    }

    #[test]
    fn engine_columns_get_bands_and_loss_rules() {
        let base = engine_sweep_json(400, 8, 1, 4);
        assert!(diff_reports(&base, &base).unwrap().clean());
        // A doubled in-flight-age tail regresses.
        let slow = diff_reports(&base, &engine_sweep_json(800, 8, 1, 4)).unwrap();
        assert!(
            slow.regressions
                .iter()
                .any(|r| r.contains("engine_age_p999_mean")),
            "{:?}",
            slow.regressions
        );
        // Losing slow-sector detection regresses; a later-but-in-slack
        // detection does not.
        let lost = diff_reports(&base, &engine_sweep_json(400, 8, -1, 0)).unwrap();
        assert!(
            lost.regressions
                .iter()
                .any(|r| r.contains("engine_ttd_max") && r.contains("never detects")),
            "{:?}",
            lost.regressions
        );
        assert!(diff_reports(&base, &engine_sweep_json(400, 8, 2, 4))
            .unwrap()
            .clean());
        // A run that no longer recovers by run end regresses.
        let stuck = diff_reports(&base, &engine_sweep_json(400, 8, 1, -1)).unwrap();
        assert!(
            stuck
                .regressions
                .iter()
                .any(|r| r.contains("engine_ttr_min")),
            "{:?}",
            stuck.regressions
        );
        // A pre-engine baseline sees the columns as new, never regressed.
        let old = sweep_json(9, 0, -1).replace("crash-churn", "engine-slowdomain-adaptive");
        let diff = diff_reports(&old, &engine_sweep_json(400, 8, 1, 4)).unwrap();
        assert!(diff.clean(), "{:?}", diff.regressions);
    }

    fn bench_history(lookup_ns: u64, speedup: f64) -> String {
        format!(
            r#"[{{"sha": "abc", "timestamp": 1, "rows": [
                {{"bench": "chord_scale", "n": 100000, "lookup_ns": {lookup_ns},
                  "verify_speedup": {speedup}, "verify_bar": 20,
                  "telemetry_overhead_budget_pct": 2}}]}}]"#
        )
    }

    #[test]
    fn bench_history_compares_latest_entries_direction_aware() {
        let base = bench_history(4000, 300.0);
        assert!(diff_reports(&base, &base).unwrap().clean());
        // 2x slower lookups: regression.
        let slow = diff_reports(&base, &bench_history(8000, 300.0)).unwrap();
        assert!(
            slow.regressions.iter().any(|r| r.contains("lookup_ns")),
            "{:?}",
            slow.regressions
        );
        // Halved speedup: regression (higher-is-better direction).
        let unsped = diff_reports(&base, &bench_history(4000, 100.0)).unwrap();
        assert!(
            unsped
                .regressions
                .iter()
                .any(|r| r.contains("verify_speedup")),
            "{:?}",
            unsped.regressions
        );
        // Faster + bigger speedup: clean.
        assert!(diff_reports(&base, &bench_history(2000, 600.0))
            .unwrap()
            .clean());
    }

    #[test]
    fn overhead_ratios_are_lower_is_better_despite_the_ratio_suffix() {
        let row = |ratio: f64| {
            format!(
                r#"[{{"sha": "abc", "timestamp": 1, "rows": [
                    {{"bench": "chord_scale", "n": 100000,
                      "engine_overhead_ratio": {ratio}, "engine_overhead_bar": 1.1}}]}}]"#
            )
        };
        // 0.95x -> 2.4x: the engine got slower relative to the sync walk;
        // a naive `*ratio*`-means-higher rule would call this an improvement.
        let worse = diff_reports(&row(0.95), &row(2.4)).unwrap();
        assert!(
            worse
                .regressions
                .iter()
                .any(|r| r.contains("engine_overhead_ratio")),
            "{:?}",
            worse.regressions
        );
        // Getting cheaper is clean.
        assert!(diff_reports(&row(0.95), &row(0.80)).unwrap().clean());
    }

    #[test]
    fn legacy_flat_row_files_are_one_entry() {
        let legacy = r#"[{"bench": "ringidx_vs_scan", "n": 1000, "successor_index_ns": 22.6,
                          "successor_speedup": 51.3}]"#;
        let diff = diff_reports(legacy, legacy).unwrap();
        assert!(diff.clean());
        assert!(diff.lines[0].contains("pre-history"));
    }

    #[test]
    fn kind_mismatch_and_garbage_are_errors_not_regressions() {
        let sweep = sweep_json(9, 0, -1);
        let bench = bench_history(4000, 300.0);
        assert!(diff_reports(&sweep, &bench).is_err());
        assert!(diff_reports("not json", &sweep).is_err());
        assert!(diff_reports(r#"{"neither": 1}"#, &sweep).is_err());
    }
}
