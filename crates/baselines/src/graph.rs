use keyspace::SortedRing;
use rand::Rng;

/// An undirected overlay graph for random-walk sampling.
///
/// Gkantsidis et al. analyze walks on the P2P overlay (their \[5\]); this type
/// provides the two overlay families the experiments walk on:
///
/// * [`OverlayGraph::ring_with_fingers`] — the Chord graph: successor edges
///   plus finger edges at doubling distances, symmetrized (degrees
///   `Θ(log n)`, irregular — the plain walk is visibly biased here).
/// * [`OverlayGraph::random_regular`] — a `d`-regular graph from the
///   configuration model (the plain walk's stationary distribution is
///   already uniform; isolates walk-length effects from degree bias).
///
/// # Example
///
/// ```
/// use baselines::OverlayGraph;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let g = OverlayGraph::random_regular(100, 6, &mut rng);
/// assert_eq!(g.len(), 100);
/// assert!(g.degree(0) <= 6);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone)]
pub struct OverlayGraph {
    adj: Vec<Vec<usize>>,
}

impl OverlayGraph {
    /// Builds a graph from an explicit adjacency list, deduplicating and
    /// symmetrizing edges and dropping self-loops.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> OverlayGraph {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a}, {b}) out of range for n = {n}");
            if a == b {
                continue;
            }
            adj[a].push(b);
            adj[b].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        OverlayGraph { adj }
    }

    /// The Chord overlay graph of a ring: each peer links to its successor
    /// and to `h(point + 2^i)` for every finger bit, symmetrized.
    pub fn ring_with_fingers(ring: &SortedRing) -> OverlayGraph {
        let n = ring.len();
        let space = ring.space();
        let bits = (128 - (space.modulus() - 1).leading_zeros()) as usize;
        let mut edges = Vec::new();
        for i in 0..n {
            edges.push((i, ring.next_index(i)));
            for bit in 0..bits {
                let offset = (1u128 << bit) % space.modulus();
                let target = space.add(ring.point(i), keyspace::Distance::new(offset as u64));
                let f = ring.successor_of(target);
                if f != i {
                    edges.push((i, f));
                }
            }
        }
        OverlayGraph::from_edges(n, &edges)
    }

    /// A random (near-)`d`-regular graph via the configuration model:
    /// half-edges are paired uniformly; self-loops and duplicate edges are
    /// dropped, so a few vertices may have degree slightly below `d`.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ d < n`.
    pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> OverlayGraph {
        assert!(d >= 2, "walks need degree at least 2");
        assert!(d < n, "degree {d} must be below n = {n}");
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
        // Fisher–Yates shuffle, then pair consecutive stubs.
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        let edges: Vec<(usize, usize)> = stubs
            .chunks_exact(2)
            .map(|pair| (pair[0], pair[1]))
            .collect();
        OverlayGraph::from_edges(n, &edges)
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbors of `v`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: usize) -> &[usize] {
        &self.adj[v]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: usize) -> usize {
        self.adj[v].len()
    }

    /// The largest degree in the graph (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Whether the graph is connected (vacuously true when empty).
    pub fn is_connected(&self) -> bool {
        if self.adj.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut visited = 1;
        while let Some(v) = stack.pop() {
            for &u in &self.adj[v] {
                if !seen[u] {
                    seen[u] = true;
                    visited += 1;
                    stack.push(u);
                }
            }
        }
        visited == self.adj.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyspace::KeySpace;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(5)
    }

    #[test]
    fn from_edges_symmetrizes_and_dedups() {
        let g = OverlayGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 2)]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]); // self-loop dropped
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = OverlayGraph::from_edges(4, &[(0, 1), (2, 3)]);
        assert!(!g.is_connected());
    }

    #[test]
    fn chord_graph_has_log_degrees_and_connectivity() {
        let space = KeySpace::full();
        let mut r = rng();
        let ring = SortedRing::new(space, space.random_points(&mut r, 256));
        let g = OverlayGraph::ring_with_fingers(&ring);
        assert_eq!(g.len(), 256);
        assert!(g.is_connected());
        // Successor + distinct fingers ≈ log2 n out-edges, symmetrized:
        // degrees land in a band around 2 log2 n = 16.
        let mean: f64 = (0..g.len()).map(|v| g.degree(v) as f64).sum::<f64>() / g.len() as f64;
        assert!((8.0..32.0).contains(&mean), "mean degree {mean}");
    }

    #[test]
    fn random_regular_degrees_near_d() {
        let g = OverlayGraph::random_regular(200, 8, &mut rng());
        assert!(
            g.is_connected(),
            "8-regular on 200 vertices is connected whp"
        );
        let mean: f64 = (0..g.len()).map(|v| g.degree(v) as f64).sum::<f64>() / g.len() as f64;
        assert!((7.0..=8.0).contains(&mean), "mean degree {mean}");
        assert!(g.max_degree() <= 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_panics() {
        let _ = OverlayGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "degree at least 2")]
    fn degree_one_panics() {
        let _ = OverlayGraph::random_regular(10, 1, &mut rng());
    }

    #[test]
    #[should_panic(expected = "below n")]
    fn degree_too_large_panics() {
        let _ = OverlayGraph::random_regular(4, 4, &mut rng());
    }
}
