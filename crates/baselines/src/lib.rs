//! Comparator samplers for King & Saia's uniform peer selection.
//!
//! The paper motivates its algorithm against two families of alternatives:
//!
//! * **The naive heuristic** (§1): pick a random ring point `s`, return
//!   `h(s)`. Simple and cheap, but biased — each peer is chosen with
//!   probability proportional to its preceding arc, and the longest arc is
//!   `Θ(n log n)` times the shortest (Theorem 8), so the bias is severe.
//!   Implemented by [`NaiveSampler`]; measured in experiment E8.
//! * **Random walks** (Gkantsidis, Mihail & Saberi, INFOCOM 2004 — the
//!   paper's only direct related work \[5\]): walk the overlay graph and
//!   return the endpoint. Only *approximately* uniform, at a message cost
//!   that buys closeness. Implemented by [`RandomWalkSampler`] with three
//!   variants ([`WalkKind`]): the plain walk (degree-biased stationary
//!   distribution), the max-degree lazy walk, and the Metropolis–Hastings
//!   walk (both exactly uniform in the *limit* but never at finite length).
//!   Measured in experiment E7.
//! * **Virtual nodes** (§1.2, \[16\]): give each peer `k` ring points and run
//!   the naive heuristic over the virtual ring; bias shrinks with `k` but
//!   never vanishes. Implemented by [`VirtualNodeSampler`]; experiment E10.
//!
//! All samplers (plus [`TrueUniform`], the RNG-backed ideal, and the
//! King–Saia sampler itself via [`KingSaiaIndexSampler`]) implement
//! [`IndexSampler`], so the application crate can swap them freely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod naive;
mod sampler_trait;
mod virtual_nodes;
mod walk;

pub use graph::OverlayGraph;
pub use naive::NaiveSampler;
pub use sampler_trait::{IndexSampler, KingSaiaIndexSampler, TrueUniform};
pub use virtual_nodes::VirtualNodeSampler;
pub use walk::{RandomWalkSampler, WalkKind};
