use rand::RngCore;

use keyspace::SortedRing;

use crate::IndexSampler;

/// The naive heuristic the paper opens with: return `h(s)` for a uniform
/// random ring point `s`.
///
/// Cheap — one lookup, no retries — but biased: peer `p` is selected with
/// probability `arc_before(p)/M`, and arcs vary from `Θ(1/n²)` to
/// `Θ(log n / n)` of the circle, so the most-likely peer is `Θ(n log n)`
/// more likely than the least (experiment E8 reproduces this).
///
/// # Example
///
/// ```
/// use baselines::{IndexSampler, NaiveSampler};
/// use keyspace::{KeySpace, Point, SortedRing};
/// use rand::SeedableRng;
///
/// // Peer 0 (at point 0) is preceded by the 900-point arc from 100 back
/// // around to 0 — 90% of the circle — while peer 1 gets only 10%.
/// let space = KeySpace::with_modulus(1000).unwrap();
/// let ring = SortedRing::new(space, vec![Point::new(0), Point::new(100)]);
/// let s = NaiveSampler::new(ring);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let hits = (0..1000).filter(|_| s.sample_index(&mut rng) == 1).count();
/// assert!(hits < 200, "peer 1 should be chosen rarely, got {hits}/1000");
/// ```
#[derive(Debug, Clone)]
pub struct NaiveSampler {
    ring: SortedRing,
}

impl NaiveSampler {
    /// Wraps a ring.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn new(ring: SortedRing) -> NaiveSampler {
        assert!(!ring.is_empty(), "cannot sample from an empty ring");
        NaiveSampler { ring }
    }

    /// The ring being sampled.
    pub fn ring(&self) -> &SortedRing {
        &self.ring
    }

    /// The exact selection probability of each peer under this heuristic:
    /// `arc_before(p) / M`. Used as the reference distribution when
    /// chi-square-testing the heuristic against its own model (E8).
    pub fn selection_probabilities(&self) -> Vec<f64> {
        let space = self.ring.space();
        (0..self.ring.len())
            .map(|i| space.fraction(self.ring.arc_before(i)))
            .collect()
    }
}

impl IndexSampler for NaiveSampler {
    fn len(&self) -> usize {
        self.ring.len()
    }

    fn sample_index(&self, rng: &mut dyn RngCore) -> usize {
        let s = self.ring.space().random_point(rng);
        self.ring.successor_of(s)
    }

    fn cost_per_sample_hint(&self) -> f64 {
        (self.ring.len().max(2) as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyspace::{KeySpace, Point};
    use rand::SeedableRng;

    #[test]
    fn bias_follows_arc_lengths() {
        // Arcs 10%, 40%, 50% → selection probabilities match.
        let space = KeySpace::with_modulus(1000).unwrap();
        let ring = SortedRing::new(space, vec![Point::new(0), Point::new(400), Point::new(900)]);
        let s = NaiveSampler::new(ring);
        let probs = s.selection_probabilities();
        assert_eq!(probs, vec![0.1, 0.4, 0.5]);

        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut counts = [0u64; 3];
        let draws = 30_000;
        for _ in 0..draws {
            counts[s.sample_index(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / draws as f64;
            assert!(
                (freq - probs[i]).abs() < 0.02,
                "peer {i}: freq {freq} vs prob {}",
                probs[i]
            );
        }
    }

    #[test]
    fn probabilities_sum_to_one() {
        let space = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let ring = SortedRing::new(space, space.random_points(&mut rng, 100));
        let s = NaiveSampler::new(ring);
        let total: f64 = s.selection_probabilities().iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(s.len(), 100);
        assert!(s.cost_per_sample_hint() > 0.0);
        assert_eq!(s.ring().len(), 100);
    }

    #[test]
    #[should_panic(expected = "empty ring")]
    fn empty_ring_panics() {
        let space = KeySpace::full();
        let _ = NaiveSampler::new(SortedRing::new(space, vec![]));
    }
}
