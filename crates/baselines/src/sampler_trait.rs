use rand::RngCore;

use keyspace::SortedRing;
use peer_sampling::{OracleDht, Sampler, SamplerConfig};

/// A source of peer indices in `0..len()`.
///
/// Applications (polling, random links, load balancing, committees) only
/// need "give me a peer"; this trait lets them swap the exactly-uniform
/// King–Saia sampler, the biased baselines, and the ideal RNG freely, so
/// every experiment can report the same workload under every sampler.
///
/// The trait is object-safe (`&mut dyn RngCore`) so experiment harnesses
/// can hold heterogeneous sampler collections.
pub trait IndexSampler {
    /// Number of peers being sampled over.
    fn len(&self) -> usize;

    /// Whether there are no peers.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Draws one peer index in `0..len()`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the sampler is empty or its backing
    /// configuration is inconsistent (each documents its own conditions).
    fn sample_index(&self, rng: &mut dyn RngCore) -> usize;

    /// Messages an application would spend per draw (0 for local-only
    /// samplers like [`TrueUniform`]). Used to compare samplers at equal
    /// message budgets (experiment E7).
    fn cost_per_sample_hint(&self) -> f64 {
        0.0
    }
}

/// The ideal uniform sampler: a local RNG draw, zero messages.
///
/// This is the unreachable gold standard the King–Saia algorithm matches
/// in distribution (but not in cost): use it to calibrate the statistical
/// tests themselves.
///
/// # Example
///
/// ```
/// use baselines::{IndexSampler, TrueUniform};
/// use rand::SeedableRng;
///
/// let s = TrueUniform::new(10);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// assert!(s.sample_index(&mut rng) < 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrueUniform {
    len: usize,
}

impl TrueUniform {
    /// A uniform sampler over `len` peers.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(len: usize) -> TrueUniform {
        assert!(len > 0, "cannot sample from zero peers");
        TrueUniform { len }
    }
}

impl IndexSampler for TrueUniform {
    fn len(&self) -> usize {
        self.len
    }

    fn sample_index(&self, rng: &mut dyn RngCore) -> usize {
        use rand::Rng;
        rng.gen_range(0..self.len)
    }
}

/// The King–Saia sampler adapted to the [`IndexSampler`] interface,
/// running over an [`OracleDht`] (peer indices are ring ranks).
///
/// # Example
///
/// ```
/// use baselines::{IndexSampler, KingSaiaIndexSampler};
/// use keyspace::{KeySpace, SortedRing};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let space = KeySpace::full();
/// let ring = SortedRing::new(space, space.random_points(&mut rng, 64));
/// let sampler = KingSaiaIndexSampler::from_ring(ring);
/// assert!(sampler.sample_index(&mut rng) < 64);
/// ```
#[derive(Debug, Clone)]
pub struct KingSaiaIndexSampler {
    dht: OracleDht,
    sampler: Sampler,
}

impl KingSaiaIndexSampler {
    /// Builds the sampler over a ring, configured with the true peer count
    /// (experiments isolating distributional properties from estimation
    /// error use this; pass an estimate-based config via
    /// [`with_config`](KingSaiaIndexSampler::with_config) otherwise).
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn from_ring(ring: SortedRing) -> KingSaiaIndexSampler {
        assert!(!ring.is_empty(), "cannot sample from an empty ring");
        let n = ring.len() as u64;
        KingSaiaIndexSampler {
            dht: OracleDht::new(ring),
            sampler: Sampler::new(SamplerConfig::new(n)),
        }
    }

    /// Overrides the sampler configuration.
    pub fn with_config(mut self, config: SamplerConfig) -> KingSaiaIndexSampler {
        self.sampler = Sampler::new(config);
        self
    }

    /// The underlying DHT view.
    pub fn dht(&self) -> &OracleDht {
        &self.dht
    }
}

impl IndexSampler for KingSaiaIndexSampler {
    fn len(&self) -> usize {
        self.dht.len()
    }

    /// # Panics
    ///
    /// Panics if the sampler configuration is invalid for the ring's key
    /// space or the (astronomically unlikely) retry cap is hit.
    fn sample_index(&self, rng: &mut dyn RngCore) -> usize {
        self.sampler
            .sample(&self.dht, rng)
            .expect("oracle-backed sampling cannot fail with a sane config")
            .peer
    }

    fn cost_per_sample_hint(&self) -> f64 {
        // E[trials] ≈ 7 with n_upper = n; each trial costs ~log2 n + O(1).
        let denom = self.sampler.config().lambda_denominator() as f64;
        denom * ((self.dht.len().max(2) as f64).log2() + 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyspace::KeySpace;
    use rand::SeedableRng;

    #[test]
    fn true_uniform_is_unbiased() {
        let s = TrueUniform::new(8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut counts = [0u64; 8];
        for _ in 0..8000 {
            counts[s.sample_index(&mut rng)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800 && c < 1200), "{counts:?}");
        assert_eq!(s.len(), 8);
        assert!(!s.is_empty());
        assert_eq!(s.cost_per_sample_hint(), 0.0);
    }

    #[test]
    fn king_saia_draws_valid_indices() {
        let space = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let ring = SortedRing::new(space, space.random_points(&mut rng, 50));
        let s = KingSaiaIndexSampler::from_ring(ring);
        for _ in 0..100 {
            assert!(s.sample_index(&mut rng) < 50);
        }
        assert_eq!(s.len(), 50);
        assert!(s.cost_per_sample_hint() > 0.0);
        assert_eq!(s.dht().len(), 50);
    }

    #[test]
    fn king_saia_with_custom_config() {
        let space = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let ring = SortedRing::new(space, space.random_points(&mut rng, 20));
        let s = KingSaiaIndexSampler::from_ring(ring).with_config(SamplerConfig::new(40)); // over-estimate: still correct
        for _ in 0..50 {
            assert!(s.sample_index(&mut rng) < 20);
        }
    }

    #[test]
    fn samplers_work_as_trait_objects() {
        let samplers: Vec<Box<dyn IndexSampler>> = vec![Box::new(TrueUniform::new(4))];
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        assert!(samplers[0].sample_index(&mut rng) < 4);
    }

    #[test]
    #[should_panic(expected = "zero peers")]
    fn empty_uniform_panics() {
        let _ = TrueUniform::new(0);
    }
}
