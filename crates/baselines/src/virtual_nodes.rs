use rand::{Rng, RngCore};

use keyspace::{KeySpace, Point, SortedRing};

use crate::IndexSampler;

/// The virtual-nodes load-balancing extension (§1.2, Chord \[16\]) used as a
/// sampling baseline: every real peer owns `k` ring points, and the naive
/// heuristic runs over the virtual ring.
///
/// Each real peer's selection probability is the *sum* of its `k` virtual
/// arcs, which concentrates as `k` grows (relative spread `~1/√k`) but
/// never reaches exact uniformity — and maintaining `k = Θ(log n)` virtual
/// points multiplies the DHT's maintenance bandwidth, the drawback the
/// paper cites for rejecting this approach. Experiment E10 sweeps `k`.
///
/// # Example
///
/// ```
/// use baselines::{IndexSampler, VirtualNodeSampler};
/// use keyspace::KeySpace;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let s = VirtualNodeSampler::random(KeySpace::full(), 50, 8, &mut rng);
/// assert_eq!(s.len(), 50);
/// assert!(s.sample_index(&mut rng) < 50);
/// ```
#[derive(Debug, Clone)]
pub struct VirtualNodeSampler {
    virtual_ring: SortedRing,
    /// `owner[rank]` is the real peer owning virtual point `rank`.
    owner: Vec<usize>,
    real_len: usize,
}

impl VirtualNodeSampler {
    /// Places `peers × replicas` i.i.d. uniform virtual points.
    ///
    /// # Panics
    ///
    /// Panics if `peers == 0` or `replicas == 0`.
    pub fn random<R: Rng + ?Sized>(
        space: KeySpace,
        peers: usize,
        replicas: usize,
        rng: &mut R,
    ) -> VirtualNodeSampler {
        assert!(peers > 0, "need at least one peer");
        assert!(replicas > 0, "need at least one replica per peer");
        let mut tagged: Vec<(Point, usize)> = Vec::with_capacity(peers * replicas);
        for peer in 0..peers {
            for _ in 0..replicas {
                tagged.push((space.random_point(rng), peer));
            }
        }
        tagged.sort_unstable_by_key(|&(p, _)| p);
        tagged.dedup_by_key(|&mut (p, _)| p);
        let points: Vec<Point> = tagged.iter().map(|&(p, _)| p).collect();
        let owner: Vec<usize> = tagged.iter().map(|&(_, peer)| peer).collect();
        VirtualNodeSampler {
            virtual_ring: SortedRing::new(space, points),
            owner,
            real_len: peers,
        }
    }

    /// Number of virtual points actually on the ring.
    pub fn virtual_len(&self) -> usize {
        self.virtual_ring.len()
    }

    /// The exact selection probability of each real peer: the sum of its
    /// virtual arcs over `M`.
    pub fn selection_probabilities(&self) -> Vec<f64> {
        let space = self.virtual_ring.space();
        let mut probs = vec![0.0; self.real_len];
        for rank in 0..self.virtual_ring.len() {
            probs[self.owner[rank]] += space.fraction(self.virtual_ring.arc_before(rank));
        }
        probs
    }
}

impl IndexSampler for VirtualNodeSampler {
    fn len(&self) -> usize {
        self.real_len
    }

    fn sample_index(&self, rng: &mut dyn RngCore) -> usize {
        let s = self.virtual_ring.space().random_point(rng);
        self.owner[self.virtual_ring.successor_of(s)]
    }

    fn cost_per_sample_hint(&self) -> f64 {
        (self.virtual_ring.len().max(2) as f64).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    #[test]
    fn probabilities_sum_to_one_and_cover_all_peers() {
        let s = VirtualNodeSampler::random(KeySpace::full(), 40, 8, &mut rng());
        let probs = s.selection_probabilities();
        assert_eq!(probs.len(), 40);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(probs.iter().all(|&p| p > 0.0));
        assert_eq!(s.virtual_len(), 320);
    }

    #[test]
    fn more_replicas_reduce_spread() {
        let mut r = rng();
        let spread = |k: usize, r: &mut rand::rngs::StdRng| {
            // Average max/min probability ratio across seeds.
            let mut total = 0.0;
            for _ in 0..5 {
                let s = VirtualNodeSampler::random(KeySpace::full(), 64, k, r);
                let probs = s.selection_probabilities();
                let max = probs.iter().cloned().fold(0.0, f64::max);
                let min = probs.iter().cloned().fold(f64::INFINITY, f64::min);
                total += max / min;
            }
            total / 5.0
        };
        let coarse = spread(1, &mut r);
        let fine = spread(32, &mut r);
        assert!(
            fine < coarse / 3.0,
            "k=32 spread {fine} not much better than k=1 spread {coarse}"
        );
        // But never exactly uniform.
        assert!(fine > 1.0 + 1e-6);
    }

    #[test]
    fn sampling_matches_model_probabilities() {
        let mut r = rng();
        let s = VirtualNodeSampler::random(KeySpace::full(), 10, 16, &mut r);
        let probs = s.selection_probabilities();
        let draws = 40_000;
        let mut counts = [0u64; 10];
        for _ in 0..draws {
            counts[s.sample_index(&mut r)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let freq = c as f64 / draws as f64;
            assert!(
                (freq - probs[i]).abs() < 0.02,
                "peer {i}: freq {freq} vs model {}",
                probs[i]
            );
        }
    }

    #[test]
    fn k_one_degenerates_to_naive() {
        let s = VirtualNodeSampler::random(KeySpace::full(), 20, 1, &mut rng());
        assert_eq!(s.virtual_len(), 20);
        assert_eq!(s.len(), 20);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics() {
        let _ = VirtualNodeSampler::random(KeySpace::full(), 5, 0, &mut rng());
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn zero_peers_panics() {
        let _ = VirtualNodeSampler::random(KeySpace::full(), 0, 5, &mut rng());
    }
}
