use rand::{Rng, RngCore};

use crate::{IndexSampler, OverlayGraph};

/// Transition rule of a [`RandomWalkSampler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkKind {
    /// Move to a uniform random neighbor. Stationary distribution is
    /// proportional to degree — biased on irregular overlays.
    Simple,
    /// Lazy max-degree walk: move to neighbor `j` if `j < deg(v)` for
    /// `j` drawn from `0..cap`, else stay. Stationary distribution is
    /// exactly uniform when `cap ≥ max_degree`.
    MaxDegree {
        /// The degree cap `Δ`; must be at least the graph's max degree for
        /// uniformity.
        cap: usize,
    },
    /// Metropolis–Hastings: propose a uniform neighbor `u`, accept with
    /// probability `min(1, deg(v)/deg(u))`. Stationary distribution is
    /// exactly uniform.
    MetropolisHastings,
}

/// Random-walk peer sampling — the Gkantsidis et al. \[5\] comparator.
///
/// Walks `length` steps over the overlay from a fixed start vertex and
/// returns the endpoint. The distribution converges to the walk's
/// stationary distribution at a rate governed by the spectral gap; it is
/// never *exactly* uniform at finite length, which is precisely the
/// shortcoming the King–Saia algorithm removes. Each step costs one
/// message, so `length` is directly comparable to the sampler's message
/// cost (experiment E7).
///
/// # Example
///
/// ```
/// use baselines::{IndexSampler, OverlayGraph, RandomWalkSampler, WalkKind};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let g = OverlayGraph::random_regular(64, 6, &mut rng);
/// let walk = RandomWalkSampler::new(g, 0, 50, WalkKind::MetropolisHastings);
/// assert!(walk.sample_index(&mut rng) < 64);
/// ```
#[derive(Debug, Clone)]
pub struct RandomWalkSampler {
    graph: OverlayGraph,
    start: usize,
    length: usize,
    kind: WalkKind,
}

impl RandomWalkSampler {
    /// Creates a walk sampler.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty, `start` is out of range, any vertex
    /// is isolated (the walk would strand), or a
    /// [`WalkKind::MaxDegree`] cap is below the graph's max degree (the
    /// stationary distribution would not be uniform — a misconfiguration,
    /// not a comparison point).
    pub fn new(
        graph: OverlayGraph,
        start: usize,
        length: usize,
        kind: WalkKind,
    ) -> RandomWalkSampler {
        assert!(!graph.is_empty(), "cannot walk an empty graph");
        assert!(start < graph.len(), "start vertex out of range");
        assert!(
            (0..graph.len()).all(|v| graph.degree(v) > 0),
            "graph has an isolated vertex"
        );
        if let WalkKind::MaxDegree { cap } = kind {
            assert!(
                cap >= graph.max_degree(),
                "max-degree cap {cap} below the graph's max degree {}",
                graph.max_degree()
            );
        }
        RandomWalkSampler {
            graph,
            start,
            length,
            kind,
        }
    }

    /// The walk length (= message cost per sample).
    pub fn length(&self) -> usize {
        self.length
    }

    /// The transition rule.
    pub fn kind(&self) -> WalkKind {
        self.kind
    }

    /// The overlay being walked.
    pub fn graph(&self) -> &OverlayGraph {
        &self.graph
    }

    /// Runs one walk and returns the endpoint.
    pub fn walk<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut v = self.start;
        for _ in 0..self.length {
            v = self.step(v, rng);
        }
        v
    }

    fn step<R: Rng + ?Sized>(&self, v: usize, rng: &mut R) -> usize {
        let neighbors = self.graph.neighbors(v);
        match self.kind {
            WalkKind::Simple => neighbors[rng.gen_range(0..neighbors.len())],
            WalkKind::MaxDegree { cap } => {
                let j = rng.gen_range(0..cap);
                if j < neighbors.len() {
                    neighbors[j]
                } else {
                    v
                }
            }
            WalkKind::MetropolisHastings => {
                let u = neighbors[rng.gen_range(0..neighbors.len())];
                let accept = self.graph.degree(v) as f64 / self.graph.degree(u) as f64;
                if accept >= 1.0 || rng.gen::<f64>() < accept {
                    u
                } else {
                    v
                }
            }
        }
    }
}

impl IndexSampler for RandomWalkSampler {
    fn len(&self) -> usize {
        self.graph.len()
    }

    fn sample_index(&self, rng: &mut dyn RngCore) -> usize {
        self.walk(rng)
    }

    fn cost_per_sample_hint(&self) -> f64 {
        self.length as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(9)
    }

    /// A small irregular graph: a star glued to a path, degrees 1..=4.
    fn irregular() -> OverlayGraph {
        OverlayGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (4, 5), (1, 2)])
    }

    #[test]
    fn simple_walk_is_degree_biased() {
        let g = irregular();
        let degrees: Vec<usize> = (0..g.len()).map(|v| g.degree(v)).collect();
        let walk = RandomWalkSampler::new(g, 2, 100, WalkKind::Simple);
        let mut r = rng();
        let mut counts = [0u64; 6];
        let draws = 20_000;
        for _ in 0..draws {
            counts[walk.sample_index(&mut r)] += 1;
        }
        // Stationary: deg(v)/2|E|, |E| = 6.
        for (v, &c) in counts.iter().enumerate() {
            let expected = degrees[v] as f64 / 12.0;
            let freq = c as f64 / draws as f64;
            assert!(
                (freq - expected).abs() < 0.02,
                "v = {v}: freq {freq} vs degree-stationary {expected}"
            );
        }
    }

    #[test]
    fn metropolis_hastings_converges_to_uniform() {
        let walk = RandomWalkSampler::new(irregular(), 0, 200, WalkKind::MetropolisHastings);
        let mut r = rng();
        let mut counts = [0u64; 6];
        let draws = 30_000;
        for _ in 0..draws {
            counts[walk.sample_index(&mut r)] += 1;
        }
        let uniform = draws as f64 / 6.0;
        for (v, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - uniform).abs() < uniform * 0.1,
                "v = {v}: count {c} vs uniform {uniform}"
            );
        }
    }

    #[test]
    fn max_degree_walk_converges_to_uniform() {
        let g = irregular();
        let cap = g.max_degree();
        let walk = RandomWalkSampler::new(g, 0, 300, WalkKind::MaxDegree { cap });
        let mut r = rng();
        let mut counts = [0u64; 6];
        let draws = 30_000;
        for _ in 0..draws {
            counts[walk.sample_index(&mut r)] += 1;
        }
        let uniform = draws as f64 / 6.0;
        for (v, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - uniform).abs() < uniform * 0.1,
                "v = {v}: count {c} vs uniform {uniform}"
            );
        }
    }

    #[test]
    fn short_walks_stay_near_start() {
        // Length 1 from vertex 4 can only reach its neighbors {0, 5}.
        let walk = RandomWalkSampler::new(irregular(), 4, 1, WalkKind::Simple);
        let mut r = rng();
        for _ in 0..100 {
            let v = walk.sample_index(&mut r);
            assert!(v == 0 || v == 5, "reached {v} in one step from 4");
        }
    }

    #[test]
    fn zero_length_walk_returns_start() {
        let walk = RandomWalkSampler::new(irregular(), 3, 0, WalkKind::Simple);
        let mut r = rng();
        assert_eq!(walk.sample_index(&mut r), 3);
        assert_eq!(walk.length(), 0);
        assert_eq!(walk.kind(), WalkKind::Simple);
        assert_eq!(walk.cost_per_sample_hint(), 0.0);
        assert_eq!(walk.graph().len(), 6);
    }

    #[test]
    #[should_panic(expected = "below the graph's max degree")]
    fn undersized_cap_panics() {
        let _ = RandomWalkSampler::new(irregular(), 0, 10, WalkKind::MaxDegree { cap: 2 });
    }

    #[test]
    #[should_panic(expected = "isolated vertex")]
    fn isolated_vertex_panics() {
        let g = OverlayGraph::from_edges(3, &[(0, 1)]);
        let _ = RandomWalkSampler::new(g, 0, 10, WalkKind::Simple);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_start_panics() {
        let _ = RandomWalkSampler::new(irregular(), 99, 10, WalkKind::Simple);
    }
}
