//! Criterion benches for the Chord substrate.
//!
//! These calibrate the simulator itself: lookup routing (the `h` the
//! sampler pays for), one full maintenance round, and ring bootstrap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chord::{ChordConfig, ChordNetwork};
use keyspace::KeySpace;
use rand::SeedableRng;

fn bootstrap(n: usize, seed: u64) -> ChordNetwork {
    let space = KeySpace::full();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    ChordNetwork::bootstrap(
        space,
        space.random_points(&mut rng, n),
        ChordConfig::default(),
    )
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord/find_successor");
    for n in [1_000usize, 8_000, 32_000] {
        let net = bootstrap(n, 50);
        let start = net.live_ids()[0];
        let mut rng = rand::rngs::StdRng::seed_from_u64(51);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let target = net.space().random_point(&mut rng);
                black_box(
                    net.find_successor(start, target, &mut rng)
                        .expect("healthy"),
                );
            });
        });
    }
    group.finish();
}

fn bench_maintenance_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord/maintenance_round");
    group.sample_size(10);
    for n in [1_000usize, 4_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            let mut net = bootstrap(n, 52);
            let mut rng = rand::rngs::StdRng::seed_from_u64(53);
            let mut round = 0usize;
            b.iter(|| {
                net.maintenance_round(round, &mut rng);
                round += 1;
            });
        });
    }
    group.finish();
}

fn bench_bootstrap(c: &mut Criterion) {
    let mut group = c.benchmark_group("chord/bootstrap");
    group.sample_size(10);
    for n in [1_000usize, 8_000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(bootstrap(n, 54)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lookup,
    bench_maintenance_round,
    bench_bootstrap
);
criterion_main!(benches);
