//! Chord routing-state compaction and incremental ring verification at
//! scale: the two changes that move chord arms from 10⁴–10⁵ to 10⁶ nodes.
//!
//! Besides the criterion groups (at n = 10⁴ so `cargo bench` stays
//! pleasant), the run measures the headline numbers at the acceptance
//! size n = 10⁵ and appends one machine-readable point to the
//! `BENCH_chord_scale.json` history at the repo root (entries keyed by
//! `RP_BENCH_SHA`, deduped per revision — see `bench::history`):
//!
//! * **bytes/node** — the struct-of-arrays arena
//!   (`ChordNetwork::routing_bytes`) vs the pre-arena per-node
//!   representation, *measured* from the live shadow mirror rather than
//!   derived from a formula. Bar: ≥ 8× smaller.
//! * **per-round verification** — polling `verify_ring()` (O(1) read of
//!   the incrementally maintained ledger) vs the seed's from-scratch
//!   `verify_ring_full()` re-scan, after a churn batch. Bar: ≥ 20×
//!   faster.
//! * **telemetry overhead** — the disabled-tracing instrumentation a
//!   routed lookup executes (counter adds, histogram record, flag check)
//!   vs the lookup itself. Bar: ≤ 2%. Plus the recorder's resident
//!   footprint amortized per node. Bar: ≤ 4 B/node. The always-on
//!   explainability bundle (op ordinal + span attribution + exemplar
//!   capture) is gated separately at ≤ 2% of a routed lookup.
//!
//! With `RP_ENFORCE_BENCH=1` the process exits non-zero when any bar
//! is missed — CI runs it that way so a regression fails the job.

use std::time::Instant;

use chord::{
    AdaptiveConfig, ChordConfig, ChordNetwork, EngineConfig, FaultPlan, LookupEngine,
    MaintenanceBudget, NodeId, SloConfig, Watchdog,
};
use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use keyspace::KeySpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Acceptance size for the JSON point.
const SCALE_N: usize = 100_000;
/// Criterion-group size (keeps interactive runs fast).
const GROUP_N: usize = 10_000;

const MEMORY_BAR: f64 = 8.0;
const VERIFY_BAR: f64 = 20.0;
/// Budget for disabled-telemetry instrumentation on the lookup hot path:
/// the counter adds, the histogram record, and the tracing flag check a
/// routed `find_successor` executes may not cost more than 2% of the
/// lookup itself. The events are measured standalone (they are identical
/// code with tracing on or off — tracing only changes whether hop records
/// are built), so the figure is the *ceiling* of what instrumenting an
/// uninstrumented lookup could add.
const TELEMETRY_OVERHEAD_BUDGET_PCT: f64 = 2.0;
/// Budget for the always-on explainability instrumentation a routed
/// attempt executes: one op-ordinal draw (`next_op_ordinal`), one span
/// cost attribution (`SpanProfiler::add`), and the exemplar bitmap check
/// riding the histogram record (`record_with_exemplar` vs plain
/// `record`). Measured as a standalone bundle — a ceiling on what the
/// profiler adds to an uninstrumented lookup — and gated at 2% of the
/// routed lookup it decorates.
const PROFILER_OVERHEAD_BUDGET_PCT: f64 = 2.0;
/// Budget for one full watchdog window observation (recorder window
/// close + sampled ring spot-check + SLO evaluation + series append),
/// amortized against the draws that fill a window: the harness closes a
/// window every `max(500, 5·live)` draws, so at the acceptance size the
/// observation must cost under 2% of the lookups those draws execute.
const WATCHDOG_OVERHEAD_BUDGET_PCT: f64 = 2.0;
/// Budget for the recorder's resident footprint, amortized per node: the
/// preallocated counter slots plus the lazily allocated hop-histogram
/// buckets are a fixed ~10 KB per network, so at the acceptance size they
/// must amortize to well under 4 B/node.
const RECORDER_BYTES_BUDGET: f64 = 4.0;
/// Budget for the verification ledger (`ChordNetwork::verifier_bytes`).
/// The `Vec<Vec<u32>>` reverse indexes cost ~101 B/node; the compact
/// sorted-run multimaps plus the derived-successor column measure
/// ~37 B/node, gated here so the ledger stays a small fraction of the
/// ~134 B/node of routing state it verifies.
const VERIFIER_BYTES_BUDGET: f64 = 40.0;
/// Budget for the batched-maintenance dirty set
/// (`ChordNetwork::maintenance_bytes`): finger masks + bitsets + queue,
/// ~8.3 B/node steady-state. Gated so maintenance bookkeeping cannot
/// silently erode the scale headroom the other two budgets protect.
const MAINTENANCE_BYTES_BUDGET: f64 = 16.0;
/// Budget for the async engine's message decomposition: a lookup driven
/// through the event loop at unit-constant latency makes the same
/// routing decisions as the sync walk, so everything above 1.0× is pure
/// engine bookkeeping — message structs, queue pushes/pops, per-request
/// state. Gated at ≤ 1.10× the policy-aware sync walk so "async" never
/// quietly becomes "slow".
const ENGINE_OVERHEAD_BAR: f64 = 1.10;
/// Budget for the adaptive peer-score table (`ChordNetwork::score_bytes`):
/// two u8 columns (success EWMA + consecutive failures) per node, ~2 B
/// steady-state. Gated at 8 so adaptive routing stays a rounding error
/// next to the ~134 B/node of routing state it ranks.
const SCORE_BYTES_BUDGET: f64 = 8.0;

fn build(n: usize, seed: u64) -> ChordNetwork {
    let space = KeySpace::full();
    let mut rng = StdRng::seed_from_u64(seed);
    ChordNetwork::bootstrap(
        space,
        space.random_points(&mut rng, n),
        ChordConfig::default(),
    )
}

/// Crashes `k` spread-out victims so both pollers see a ring with real
/// pending changes (the incremental ledger absorbed them as deltas).
fn churn_batch(net: &mut ChordNetwork, k: usize) {
    let victims: Vec<NodeId> = net
        .live_ids()
        .into_iter()
        .step_by((net.live_len() / k).max(1))
        .take(k)
        .collect();
    for v in victims {
        net.crash(v);
    }
}

fn bench_verify_poll(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_poll");
    let mut net = build(GROUP_N, 7);
    churn_batch(&mut net, 64);
    group.bench_with_input(
        BenchmarkId::new("incremental", GROUP_N),
        &GROUP_N,
        |b, _| b.iter(|| black_box(net.verify_ring())),
    );
    group.sample_size(20);
    group.bench_with_input(
        BenchmarkId::new("full_rescan", GROUP_N),
        &GROUP_N,
        |b, _| b.iter(|| black_box(net.verify_ring_full())),
    );
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let net = build(GROUP_N, 7);
    let origin = net.node_ids()[0];
    let space = KeySpace::full();
    let mut rng = StdRng::seed_from_u64(21);
    let targets = space.random_points(&mut rng, 1024);
    let mut group = c.benchmark_group("lookup");
    group.bench_with_input(BenchmarkId::new("chord", GROUP_N), &GROUP_N, |b, _| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % targets.len();
            black_box(net.find_successor(origin, targets[i], &mut rng))
        })
    });
    group.finish();
}

fn bench_bulk_join(c: &mut Criterion) {
    let space = KeySpace::full();
    let mut rng = StdRng::seed_from_u64(13);
    let points = space.random_points(&mut rng, GROUP_N);
    let mut group = c.benchmark_group("bulk_join");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("chord", GROUP_N), &GROUP_N, |b, _| {
        b.iter(|| ChordNetwork::bootstrap(space, black_box(points.clone()), ChordConfig::default()))
    });
    group.finish();
}

/// Times `op` and returns mean nanoseconds per iteration.
fn measure<O>(iters: u32, mut op: impl FnMut() -> O) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(op());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// The acceptance measurement at n = 10⁵, serialized to the repo root.
fn emit_json_point() -> bool {
    let build_start = Instant::now();
    let mut net = build(SCALE_N, 7);
    let bulk_ms = build_start.elapsed().as_secs_f64() * 1e3;

    // Memory: measured compact bytes vs the measured legacy mirror.
    net.enable_shadow_mirror();
    net.assert_shadow_matches();
    let compact = net.routing_bytes() as f64 / SCALE_N as f64;
    let legacy = net.shadow_routing_bytes().unwrap() as f64 / SCALE_N as f64;
    let verifier = net.verifier_bytes() as f64 / SCALE_N as f64;
    let memory_ratio = legacy / compact;
    let mut maintenance_bytes = net.maintenance_bytes() as f64 / SCALE_N as f64;

    // Per-round verification polling, with pending churn deltas absorbed.
    churn_batch(&mut net, 64);
    let incr_ns = measure(50_000, || net.verify_ring());
    let full_ns = measure(10, || net.verify_ring_full());
    let verify_speedup = full_ns / incr_ns.max(1e-9);
    let report = net.verify_ring();
    assert_eq!(report, net.verify_ring_full(), "pollers disagree");

    // Batched maintenance: drain the churn batch's dirty set and count
    // the routed lookups it took — a classic round costs n of them.
    let dirty_after_churn = net.maintenance_backlog();
    let mut rng = StdRng::seed_from_u64(99);
    let mut drain_lookups = 0u64;
    let mut drain_rounds = 0u32;
    while net.maintenance_backlog() > 0 && drain_rounds < 256 {
        let w = net.batched_maintenance_round(MaintenanceBudget::unlimited(), &mut rng);
        drain_lookups += w.lookups;
        drain_rounds += 1;
    }
    let drained = net.maintenance_backlog() == 0;
    assert_eq!(net.verify_ring(), net.verify_ring_full(), "drain desynced");
    // The dirty set is busiest right after a churn batch; gate on the
    // larger of the converged and mid-drain figures.
    maintenance_bytes = maintenance_bytes.max(net.maintenance_bytes() as f64 / SCALE_N as f64);

    // Telemetry overhead on the lookup hot path, with tracing disabled
    // (the default). A routed lookup executes one tracing-flag load, one
    // counter add and one histogram record; measure a full routed lookup,
    // then that event bundle standalone, and gate the ratio.
    let origin = net
        .live_ids()
        .first()
        .copied()
        .expect("scale net has live nodes");
    let space = KeySpace::full();
    let targets = space.random_points(&mut rng, 1024);
    let mut t = 0usize;
    let lookup_ns = measure(20_000, || {
        t = (t + 1) % targets.len();
        net.find_successor(origin, targets[t], &mut rng)
    });
    let recorder = net.metrics().recorder();
    let counters = net.counters();
    assert!(
        !recorder.tracing_enabled(),
        "overhead gate measures the default path"
    );
    let telemetry_event_ns = measure(1_000_000, || {
        black_box(recorder.tracing_enabled());
        recorder.add(counters.lookup_hops, 1);
        recorder.record(counters.hop_hist, 8);
    });
    let telemetry_overhead_pct = telemetry_event_ns / lookup_ns.max(1e-9) * 100.0;

    // The explainability bundle every routed attempt now also executes:
    // op-ordinal draw, span cost add, exemplar-capture histogram record.
    // After the first iteration the exemplar bitmap bit is set, so the
    // loop measures the steady-state fast path a long run actually pays.
    let profiler = recorder.profiler();
    let probe_span = profiler.span("bench;overhead_probe");
    let profiler_event_ns = measure(1_000_000, || {
        let ordinal = recorder.next_op_ordinal();
        profiler.add(probe_span, 1);
        recorder.record_with_exemplar(counters.hop_hist, 8, ordinal);
    });
    let profiler_overhead_pct = profiler_event_ns / lookup_ns.max(1e-9) * 100.0;
    let recorder_bytes = recorder.bytes() as f64 / SCALE_N as f64;

    // Watchdog overhead: one full window observation (close the recorder
    // window, sampled spot-check, SLO rules, series append) vs the
    // lookups of the draws that fill one harness window.
    let mut watchdog = Watchdog::new(SloConfig::default(), 0x57A7);
    let watchdog_observe_ns = measure(200, || {
        let window = recorder.reset_window();
        watchdog.observe(&net, window, None);
    });
    let window_draws = 500.max(5 * net.live_len()) as f64;
    let watchdog_overhead_pct = watchdog_observe_ns / (window_draws * lookup_ns).max(1e-9) * 100.0;

    // Async-engine overhead: the same lookups, decomposed into messages
    // and driven through the event loop at unit latency, vs the
    // policy-aware sync walk they must answer identically to. Driven
    // sequentially (submit one, drain it) so both sides walk the ring
    // with the same access pattern and the ratio isolates the engine's
    // own bookkeeping — message structs, queue pushes/pops, request
    // state — rather than the cache effects of multiplexing. Measured as
    // the median of paired back-to-back rounds: on a shared single-core
    // runner, clock-frequency drift between two long measurements easily
    // fakes a 2x "regression", so each round times both sides under the
    // same conditions and the median discards the outlier rounds.
    let rounds = 9u64;
    let mut sync_rounds = Vec::new();
    let mut engine_rounds = Vec::new();
    let mut ratios = Vec::new();
    for round in 0..rounds {
        let sync_ns = measure(2_500, || {
            t = (t + 1) % targets.len();
            net.find_successor_with_policy(origin, targets[t], &FaultPlan::none(), &mut rng)
        });
        let mut engine = LookupEngine::new(EngineConfig {
            seed: round,
            ..EngineConfig::default()
        });
        let mut e = 0usize;
        let engine_ns = measure(2_500, || {
            e = (e + 1) % targets.len();
            engine.submit(&net, origin, targets[e]);
            engine.drain(&net, &FaultPlan::none());
        });
        assert_eq!(
            engine.completions().len(),
            2_500,
            "engine must complete the whole round"
        );
        sync_rounds.push(sync_ns);
        engine_rounds.push(engine_ns);
        ratios.push(engine_ns / sync_ns.max(1e-9));
    }
    let median = |xs: &mut Vec<f64>| {
        xs.sort_by(f64::total_cmp);
        xs[xs.len() / 2]
    };
    let policy_lookup_ns = median(&mut sync_rounds);
    let engine_ns = median(&mut engine_rounds);
    let engine_overhead = median(&mut ratios);

    // Adaptive peer-score state, with scoring enabled on the full-scale
    // ring (measured last: enabling it changes finger ranking, which
    // would perturb the lookup figures above).
    net.enable_adaptive_routing(AdaptiveConfig::default());
    let score_bytes = net.score_bytes() as f64 / SCALE_N as f64;

    let row = format!(
        "{{\"bench\": \"chord_scale\", \"n\": {SCALE_N}, \
         \"routing_bytes_per_node\": {compact:.1}, \
         \"legacy_bytes_per_node\": {legacy:.1}, \
         \"verifier_bytes_per_node\": {verifier:.1}, \
         \"verifier_bytes_budget\": {VERIFIER_BYTES_BUDGET}, \
         \"memory_ratio\": {memory_ratio:.1}, \"memory_bar\": {MEMORY_BAR}, \
         \"verify_full_ns\": {full_ns:.0}, \"verify_incremental_ns\": {incr_ns:.1}, \
         \"verify_speedup\": {verify_speedup:.0}, \"verify_bar\": {VERIFY_BAR}, \
         \"maintenance_dirty_after_64_crashes\": {dirty_after_churn}, \
         \"maintenance_drain_lookups\": {drain_lookups}, \
         \"maintenance_drain_rounds\": {drain_rounds}, \
         \"maintenance_full_round_lookups\": {SCALE_N}, \
         \"maintenance_bytes_per_node\": {maintenance_bytes:.1}, \
         \"maintenance_bytes_budget\": {MAINTENANCE_BYTES_BUDGET}, \
         \"lookup_ns\": {lookup_ns:.0}, \
         \"telemetry_event_ns\": {telemetry_event_ns:.1}, \
         \"telemetry_overhead_pct\": {telemetry_overhead_pct:.2}, \
         \"telemetry_overhead_budget_pct\": {TELEMETRY_OVERHEAD_BUDGET_PCT}, \
         \"profiler_event_ns\": {profiler_event_ns:.1}, \
         \"profiler_overhead_pct\": {profiler_overhead_pct:.2}, \
         \"profiler_overhead_budget_pct\": {PROFILER_OVERHEAD_BUDGET_PCT}, \
         \"watchdog_observe_ns\": {watchdog_observe_ns:.0}, \
         \"watchdog_overhead_pct\": {watchdog_overhead_pct:.3}, \
         \"watchdog_overhead_budget_pct\": {WATCHDOG_OVERHEAD_BUDGET_PCT}, \
         \"recorder_bytes_per_node\": {recorder_bytes:.2}, \
         \"recorder_bytes_budget\": {RECORDER_BYTES_BUDGET}, \
         \"score_bytes_per_node\": {score_bytes:.2}, \
         \"score_bytes_budget\": {SCORE_BYTES_BUDGET}, \
         \"policy_lookup_ns\": {policy_lookup_ns:.0}, \
         \"engine_lookup_ns\": {engine_ns:.0}, \
         \"engine_overhead_ratio\": {engine_overhead:.3}, \
         \"engine_overhead_bar\": {ENGINE_OVERHEAD_BAR}, \
         \"bulk_join_ms\": {bulk_ms:.0}}}"
    );
    // CARGO_MANIFEST_DIR = crates/bench; the trajectory file lives at the
    // repo root so the PR driver can diff it across revisions. Appended
    // as a history entry keyed by RP_BENCH_SHA (see bench::history).
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_chord_scale.json");
    match bench::history::append_entry(&path, std::slice::from_ref(&row)) {
        Ok(sha) => println!("json point [{sha}] -> {}", path.display()),
        Err(e) => println!("json point not persisted ({e}); {row}"),
    }

    let memory_ok = memory_ratio >= MEMORY_BAR;
    let verify_ok = verify_speedup >= VERIFY_BAR;
    let verifier_ok = verifier <= VERIFIER_BYTES_BUDGET;
    // Batched repair of a 64-crash batch must undercut even one classic
    // round's n lookups (it lands around changes * log n), and the
    // dirty-set bookkeeping must stay within its per-node budget.
    let maintenance_ok =
        drained && drain_lookups < SCALE_N as u64 && maintenance_bytes <= MAINTENANCE_BYTES_BUDGET;
    let telemetry_ok = telemetry_overhead_pct <= TELEMETRY_OVERHEAD_BUDGET_PCT
        && recorder_bytes <= RECORDER_BYTES_BUDGET;
    let profiler_ok = profiler_overhead_pct <= PROFILER_OVERHEAD_BUDGET_PCT;
    let watchdog_ok = watchdog_overhead_pct <= WATCHDOG_OVERHEAD_BUDGET_PCT;
    let score_ok = score_bytes <= SCORE_BYTES_BUDGET;
    let engine_ok = engine_overhead <= ENGINE_OVERHEAD_BAR;
    println!(
        "memory: {compact:.1} B/node vs legacy {legacy:.1} B/node => {memory_ratio:.1}x \
         (bar {MEMORY_BAR}x, {})",
        if memory_ok { "ok" } else { "REGRESSED" }
    );
    println!(
        "verify poll: incremental {incr_ns:.1} ns vs full {full_ns:.0} ns => {verify_speedup:.0}x \
         (bar {VERIFY_BAR}x, {})",
        if verify_ok { "ok" } else { "REGRESSED" }
    );
    println!(
        "verifier ledger: {verifier:.1} B/node (budget {VERIFIER_BYTES_BUDGET}, {})",
        if verifier_ok { "ok" } else { "REGRESSED" }
    );
    println!(
        "batched maintenance: {dirty_after_churn} dirty entries after 64 crashes, drained \
         in {drain_rounds} rounds / {drain_lookups} lookups vs {SCALE_N} per classic round; \
         dirty set {maintenance_bytes:.1} B/node (budget {MAINTENANCE_BYTES_BUDGET}) ({})",
        if maintenance_ok { "ok" } else { "REGRESSED" }
    );
    println!(
        "telemetry: {telemetry_event_ns:.1} ns/lookup of instrumentation vs {lookup_ns:.0} ns \
         lookups => {telemetry_overhead_pct:.2}% (budget {TELEMETRY_OVERHEAD_BUDGET_PCT}%); \
         recorder {recorder_bytes:.2} B/node (budget {RECORDER_BYTES_BUDGET}) ({})",
        if telemetry_ok { "ok" } else { "REGRESSED" }
    );
    println!(
        "profiler: {profiler_event_ns:.1} ns/attempt of span+exemplar instrumentation vs \
         {lookup_ns:.0} ns lookups => {profiler_overhead_pct:.2}% \
         (budget {PROFILER_OVERHEAD_BUDGET_PCT}%) ({})",
        if profiler_ok { "ok" } else { "REGRESSED" }
    );
    println!(
        "watchdog: {watchdog_observe_ns:.0} ns/window observation vs {window_draws:.0} draws \
         per window => {watchdog_overhead_pct:.3}% (budget {WATCHDOG_OVERHEAD_BUDGET_PCT}%) ({})",
        if watchdog_ok { "ok" } else { "REGRESSED" }
    );
    println!(
        "peer scores: {score_bytes:.2} B/node (budget {SCORE_BYTES_BUDGET}) ({})",
        if score_ok { "ok" } else { "REGRESSED" }
    );
    println!(
        "async engine: {engine_ns:.0} ns/lookup through the event loop vs \
         {policy_lookup_ns:.0} ns sync walk => {engine_overhead:.3}x \
         (bar {ENGINE_OVERHEAD_BAR}x, {})",
        if engine_ok { "ok" } else { "REGRESSED" }
    );
    memory_ok
        && verify_ok
        && verifier_ok
        && maintenance_ok
        && telemetry_ok
        && profiler_ok
        && watchdog_ok
        && score_ok
        && engine_ok
}

criterion_group!(benches, bench_verify_poll, bench_lookup, bench_bulk_join);

fn main() {
    benches();
    let ok = emit_json_point();
    if !ok && std::env::var("RP_ENFORCE_BENCH").is_ok() {
        eprintln!("chord_scale acceptance bars missed (RP_ENFORCE_BENCH set)");
        std::process::exit(1);
    }
}
