//! Criterion micro-benches for the substrates: ring arithmetic, successor
//! search, statistical tests, and random-walk steps.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use baselines::{OverlayGraph, RandomWalkSampler, WalkKind};
use keyspace::{KeySpace, SortedRing};
use rand::SeedableRng;
use stats::ChiSquare;

fn bench_keyspace_ops(c: &mut Criterion) {
    let space = KeySpace::full();
    let mut rng = rand::rngs::StdRng::seed_from_u64(60);
    let a = space.random_point(&mut rng);
    let b = space.random_point(&mut rng);
    c.bench_function("keyspace/distance", |bch| {
        bch.iter(|| black_box(space.distance(black_box(a), black_box(b))));
    });
    let interval = space.interval(a, b);
    let x = space.random_point(&mut rng);
    c.bench_function("keyspace/interval_contains", |bch| {
        bch.iter(|| black_box(space.interval_contains(black_box(interval), black_box(x))));
    });
}

fn bench_successor_search(c: &mut Criterion) {
    let space = KeySpace::full();
    let mut rng = rand::rngs::StdRng::seed_from_u64(61);
    let ring = SortedRing::new(space, space.random_points(&mut rng, 100_000));
    c.bench_function("sorted_ring/successor_of/100k", |bch| {
        bch.iter(|| {
            let x = space.random_point(&mut rng);
            black_box(ring.successor_of(x));
        });
    });
}

fn bench_chi_square(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(62);
    use rand::Rng;
    let counts: Vec<u64> = (0..4096).map(|_| rng.gen_range(200..300)).collect();
    c.bench_function("stats/chi_square/4096_categories", |bch| {
        bch.iter(|| black_box(ChiSquare::uniform(black_box(&counts)).expect("valid")));
    });
}

fn bench_walk(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(63);
    let graph = OverlayGraph::random_regular(10_000, 8, &mut rng);
    let walk = RandomWalkSampler::new(graph, 0, 64, WalkKind::MetropolisHastings);
    c.bench_function("walk/metropolis_64_steps/10k_vertices", |bch| {
        bch.iter(|| black_box(walk.walk(&mut rng)));
    });
}

criterion_group!(
    benches,
    bench_keyspace_ops,
    bench_successor_search,
    bench_chi_square,
    bench_walk
);
criterion_main!(benches);
