//! `ringidx` vs the linear scan it replaced: successor queries and bulk
//! ring construction at n = 10³ / 10⁴.
//!
//! Besides the criterion groups, the run measures the headline comparison
//! itself and appends one machine-readable point to the
//! `BENCH_ringidx.json` history at the repo root (entries keyed by
//! `RP_BENCH_SHA`, deduped per revision — see `bench::history`). The
//! acceptance bar for the index is a ≥10× successor-query speedup at
//! n = 10⁴.

use std::time::Instant;

use criterion::{black_box, criterion_group, BenchmarkId, Criterion};
use keyspace::{KeySpace, Point};
use rand::rngs::StdRng;
use rand::SeedableRng;
use ringidx::RingIndex;

const SIZES: [usize; 2] = [1_000, 10_000];

fn entries(space: KeySpace, n: usize, seed: u64) -> Vec<(Point, u64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| (space.random_point(&mut rng), i as u64))
        .collect()
}

/// The arena scan `truth_successor_id` used to run on every ground-truth
/// query: minimum clockwise distance over all live entries.
fn scan_successor(space: KeySpace, members: &[(Point, u64)], x: Point) -> (Point, u64) {
    members
        .iter()
        .copied()
        .min_by_key(|&(p, id)| (space.distance(x, p).get(), id))
        .expect("non-empty member list")
}

fn bench_successor(c: &mut Criterion) {
    let space = KeySpace::full();
    let mut group = c.benchmark_group("successor");
    for n in SIZES {
        let members = entries(space, n, 7);
        let index = RingIndex::bulk(space, members.clone());
        let mut rng = StdRng::seed_from_u64(11);
        group.bench_with_input(BenchmarkId::new("ringidx", n), &n, |b, _| {
            b.iter(|| index.successor(black_box(space.random_point(&mut rng))))
        });
        let mut rng = StdRng::seed_from_u64(11);
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |b, _| {
            b.iter(|| scan_successor(space, &members, black_box(space.random_point(&mut rng))))
        });
    }
    group.finish();
}

fn bench_bulk_build(c: &mut Criterion) {
    let space = KeySpace::full();
    let mut group = c.benchmark_group("bulk_build");
    group.sample_size(20);
    for n in SIZES {
        let members = entries(space, n, 13);
        group.bench_with_input(BenchmarkId::new("ringidx", n), &n, |b, _| {
            b.iter(|| RingIndex::bulk(space, black_box(members.clone())))
        });
    }
    group.finish();
}

/// Times `op` and returns mean nanoseconds per iteration.
fn measure<O>(iters: u32, mut op: impl FnMut() -> O) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        black_box(op());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// One trajectory point: the headline numbers, re-measured outside
/// criterion so they can be serialized.
fn emit_json_point() {
    let space = KeySpace::full();
    let mut lines = Vec::new();
    for n in SIZES {
        let members = entries(space, n, 7);
        let index = RingIndex::bulk(space, members.clone());
        let mut rng = StdRng::seed_from_u64(11);
        let index_ns = measure(20_000, || index.successor(space.random_point(&mut rng)));
        let mut rng = StdRng::seed_from_u64(11);
        let scan_iters = if n >= 10_000 { 2_000 } else { 10_000 };
        let scan_ns = measure(scan_iters, || {
            scan_successor(space, &members, space.random_point(&mut rng))
        });
        let bulk_ns = measure(20, || RingIndex::bulk(space, members.clone()));
        lines.push(format!(
            "{{\"bench\": \"ringidx_vs_scan\", \"n\": {n}, \
             \"successor_index_ns\": {index_ns:.1}, \"successor_scan_ns\": {scan_ns:.1}, \
             \"successor_speedup\": {:.1}, \"bulk_build_ns\": {bulk_ns:.0}}}",
            scan_ns / index_ns.max(1e-9),
        ));
    }
    // CARGO_MANIFEST_DIR = crates/bench; the trajectory file lives at the
    // repo root so the PR driver can diff it across revisions. Appended
    // as a history entry keyed by RP_BENCH_SHA (see bench::history).
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_ringidx.json");
    match bench::history::append_entry(&path, &lines) {
        Ok(sha) => println!("json point [{sha}] -> {}", path.display()),
        Err(e) => println!("json point not persisted ({e}); [{}]", lines.join(", ")),
    }
}

criterion_group!(benches, bench_successor, bench_bulk_build);

fn main() {
    benches();
    emit_json_point();
}
