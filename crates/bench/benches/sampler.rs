//! Criterion benches for the paper's two algorithms.
//!
//! Wall-clock companions to experiment E6: `choose_peer` over the oracle
//! backend isolates algorithm cost; over Chord it includes routing.
//! `estimate_n` benches §2. The naive heuristic is included as the cost
//! floor the paper's §1 trade-off is about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use baselines::{IndexSampler, NaiveSampler};
use chord::{ChordConfig, ChordDht, ChordNetwork};
use keyspace::{KeySpace, SortedRing};
use peer_sampling::{NetworkSizeEstimator, OracleDht, Sampler, SamplerConfig};
use rand::SeedableRng;

fn make_ring(n: usize, seed: u64) -> SortedRing {
    let space = KeySpace::full();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    SortedRing::new(space, space.random_points(&mut rng, n))
}

fn bench_choose_peer_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("choose_peer/oracle");
    for n in [1_000usize, 16_000, 64_000] {
        let dht = OracleDht::new(make_ring(n, 42));
        let sampler = Sampler::new(SamplerConfig::new(n as u64));
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(sampler.sample(&dht, &mut rng).expect("oracle")));
        });
    }
    group.finish();
}

fn bench_choose_peer_chord(c: &mut Criterion) {
    let mut group = c.benchmark_group("choose_peer/chord");
    for n in [1_000usize, 8_000] {
        let space = KeySpace::full();
        let mut seed_rng = rand::rngs::StdRng::seed_from_u64(43);
        let net = ChordNetwork::bootstrap(
            space,
            space.random_points(&mut seed_rng, n),
            ChordConfig::default(),
        );
        let dht = ChordDht::new(&net, net.live_ids()[0], 44);
        let sampler = Sampler::new(SamplerConfig::new(n as u64));
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(sampler.sample(&dht, &mut rng).expect("chord")));
        });
    }
    group.finish();
}

fn bench_estimate_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimate_n/oracle");
    for n in [1_000usize, 16_000] {
        let dht = OracleDht::new(make_ring(n, 45));
        let estimator = NetworkSizeEstimator::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(estimator.estimate(&dht, 0).expect("oracle")));
        });
    }
    group.finish();
}

fn bench_naive_baseline(c: &mut Criterion) {
    let naive = NaiveSampler::new(make_ring(16_000, 46));
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    c.bench_function("naive_h_of_s/16000", |b| {
        b.iter(|| black_box(naive.sample_index(&mut rng)));
    });
}

criterion_group!(
    benches,
    bench_choose_peer_oracle,
    bench_choose_peer_chord,
    bench_estimate_n,
    bench_naive_baseline
);
criterion_main!(benches);
