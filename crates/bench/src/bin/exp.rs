//! Experiment runner: regenerates every experiment table (E1–E16).
//!
//! ```text
//! cargo run --release -p bench --bin exp -- all          # every experiment
//! cargo run --release -p bench --bin exp -- e5 e6        # a subset
//! cargo run --release -p bench --bin exp -- --md all     # markdown output
//! RP_QUICK=1 cargo run -p bench --bin exp -- all         # fast smoke run
//! RP_SEED=42 cargo run --release -p bench --bin exp -- e5  # different seed
//! ```

use bench::{experiments, ExpContext};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--md");
    let ids: Vec<String> = args.into_iter().filter(|a| a != "--md").collect();
    if ids.is_empty() {
        eprintln!("usage: exp [--md] <e1..e16 | all>...");
        eprintln!("experiments: {}", experiments::ALL.join(", "));
        std::process::exit(2);
    }

    let ctx = ExpContext::from_env();
    eprintln!(
        "# master seed {:#x}{}",
        ctx.seed,
        if ctx.quick { " (quick mode)" } else { "" }
    );

    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        experiments::ALL.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    let mut failed = false;
    for id in selected {
        let started = std::time::Instant::now();
        match experiments::run(id, &ctx) {
            Some(tables) => {
                for table in tables {
                    if markdown {
                        println!("{}", table.to_markdown());
                    } else {
                        println!("{}", table.render());
                    }
                }
                eprintln!("# {id} finished in {:.1?}", started.elapsed());
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
