//! Experiment runner: regenerates every experiment table (E1–E16).
//!
//! ```text
//! cargo run --release -p bench --bin exp -- all          # every experiment
//! cargo run --release -p bench --bin exp -- e5 e6        # a subset
//! cargo run --release -p bench --bin exp -- --md all     # markdown output
//! RP_QUICK=1 cargo run -p bench --bin exp -- all         # fast smoke run
//! RP_SEED=42 cargo run --release -p bench --bin exp -- e5  # different seed
//!
//! cargo run --release -p bench --bin exp -- report base.json cand.json
//!                      # diff two e16 reports / BENCH_* trajectories;
//!                      # exits 1 when any gated metric regressed
//! cargo run --release -p bench --bin exp -- dash report.json [base.json]
//!                      # render a self-contained HTML dashboard (to
//!                      # target/dash.html, or RP_DASH=<path>); with a
//!                      # baseline, embeds the diff and exits 1 on
//!                      # regression
//! ```

use bench::{experiments, ExpContext};

/// `exp -- report <baseline> <candidate>`: regression-diff two reports.
///
/// Exit codes: 0 = no regressions, 1 = regressions found, 2 = usage or
/// unreadable/unrecognized input.
fn run_report(paths: &[String]) -> ! {
    let [baseline, candidate] = paths else {
        eprintln!("usage: exp report <baseline.json> <candidate.json>");
        std::process::exit(2);
    };
    let read = |path: &String| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    match apps::report::diff_reports(&read(baseline), &read(candidate)) {
        Ok(diff) => {
            for line in &diff.lines {
                println!("{line}");
            }
            if diff.clean() {
                println!(
                    "report: no regressions ({} metrics compared)",
                    diff.lines.len()
                );
                std::process::exit(0);
            }
            eprintln!("report: {} regression(s):", diff.regressions.len());
            for r in &diff.regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("report: {e}");
            std::process::exit(2);
        }
    }
}

/// `exp -- dash <report> [baseline]`: render the HTML dashboard.
///
/// Writes to `target/dash.html` unless `RP_DASH=<path>` overrides it.
/// Exit codes mirror `exp -- report`: 0 = rendered (no baseline, or no
/// regressions), 1 = rendered but the baseline diff regressed, 2 = usage
/// or unreadable/unrecognized input.
fn run_dash(paths: &[String]) -> ! {
    let (report_path, baseline_path) = match paths {
        [report] => (report, None),
        [report, baseline] => (report, Some(baseline)),
        _ => {
            eprintln!("usage: exp dash <report.json> [baseline.json]");
            std::process::exit(2);
        }
    };
    let read = |path: &String| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let report = read(report_path);
    let baseline = baseline_path.map(read);
    match apps::dash::render_dashboard(&report, baseline.as_deref()) {
        Ok(dash) => {
            let out = std::env::var("RP_DASH").unwrap_or_else(|_| "target/dash.html".to_string());
            if let Some(dir) = std::path::Path::new(&out).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            if let Err(e) = std::fs::write(&out, &dash.html) {
                eprintln!("dash: cannot write {out}: {e}");
                std::process::exit(2);
            }
            println!(
                "dash: {} bytes -> {out}{}",
                dash.html.len(),
                if baseline.is_some() {
                    format!(" ({} regression(s))", dash.regressions)
                } else {
                    String::new()
                }
            );
            std::process::exit(if dash.regressions > 0 { 1 } else { 0 });
        }
        Err(e) => {
            eprintln!("dash: {e}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--md");
    let ids: Vec<String> = args.into_iter().filter(|a| a != "--md").collect();
    if ids.first().map(String::as_str) == Some("report") {
        run_report(&ids[1..]);
    }
    if ids.first().map(String::as_str) == Some("dash") {
        run_dash(&ids[1..]);
    }
    if ids.is_empty() {
        eprintln!("usage: exp [--md] <e1..e16 | all | report <base> <cand> | dash <report>>...");
        eprintln!("experiments: {}", experiments::ALL.join(", "));
        std::process::exit(2);
    }

    let ctx = ExpContext::from_env();
    eprintln!(
        "# master seed {:#x}{}",
        ctx.seed,
        if ctx.quick { " (quick mode)" } else { "" }
    );

    let selected: Vec<&str> = if ids.iter().any(|i| i == "all") {
        experiments::ALL.to_vec()
    } else {
        ids.iter().map(String::as_str).collect()
    };

    let mut failed = false;
    for id in selected {
        let started = std::time::Instant::now();
        match experiments::run(id, &ctx) {
            Some(tables) => {
                for table in tables {
                    if markdown {
                        println!("{}", table.to_markdown());
                    } else {
                        println!("{}", table.render());
                    }
                }
                eprintln!("# {id} finished in {:.1?}", started.elapsed());
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
