//! E1 — Lemma 1: successor-arc bounds.
//!
//! Claim: w.h.p. (≥ 1 − 1/n), every peer's successor arc `d` satisfies
//! `ln n − ln ln n − 2 ≤ ln(1/d) ≤ 3 ln n`.

use peer_sampling::theory;

use super::{make_ring, size_sweep};
use crate::{fmt_f, ExpContext, Table};

/// Runs the experiment.
pub fn run(ctx: &ExpContext) -> Table {
    let seeds = if ctx.quick { 10 } else { 50 };
    let mut table = Table::new(
        "E1: Lemma 1 successor-arc bounds",
        "for every peer, ln(1/d) in [ln n - ln ln n - 2, 3 ln n] w.p. >= 1 - 1/n",
        &[
            "n",
            "rings",
            "rings_ok",
            "bound_lo",
            "obs_min",
            "obs_max",
            "bound_hi",
            "viol_rate",
        ],
    );
    let mut all_ok = true;
    for n in size_sweep(ctx.quick) {
        let mut rings_ok = 0u32;
        let mut obs_min = f64::INFINITY;
        let mut obs_max = f64::NEG_INFINITY;
        let mut violations = 0u64;
        let mut peers = 0u64;
        let mut bounds = (0.0, 0.0);
        for s in 0..seeds {
            let ring = make_ring(n, ctx.stream(1, (n as u64) << 8 | s as u64));
            let report = theory::lemma1(&ring);
            bounds = (report.lower, report.upper);
            if report.holds() {
                rings_ok += 1;
            }
            violations += report.violations as u64;
            peers += report.values.len() as u64;
            for &v in &report.values {
                obs_min = obs_min.min(v);
                obs_max = obs_max.max(v);
            }
        }
        let viol_rate = violations as f64 / peers as f64;
        // "w.h.p." at these n: allow a small number of failing rings.
        if (rings_ok as f64) < seeds as f64 * 0.9 {
            all_ok = false;
        }
        table.push_row(vec![
            n.to_string(),
            seeds.to_string(),
            rings_ok.to_string(),
            fmt_f(bounds.0),
            fmt_f(obs_min),
            fmt_f(obs_max),
            fmt_f(bounds.1),
            fmt_f(viol_rate),
        ]);
    }
    table.set_verdict(if all_ok {
        "HOLDS: >=90% of rings satisfy both bounds at every n".to_string()
    } else {
        "VIOLATED: bound failure rate exceeds the w.h.p. allowance".to_string()
    });
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows_and_holds() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 2);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
    }
}
