//! E2 — Theorem 8: the minimum arc is `Θ(1/n²)`.
//!
//! Claim: the shortest arc between adjacent peers scales as `1/n²`; we fit
//! the log–log slope of mean min-arc vs `n` (expect ≈ −2) and check the
//! normalized statistic `min_arc · n²` stays in a constant band.

use peer_sampling::theory;
use stats::fit;

use super::{make_ring, size_sweep};
use crate::{fmt_f, ExpContext, Table};

/// Runs the experiment.
pub fn run(ctx: &ExpContext) -> Table {
    // Quick mode keeps the full seed count: min-arc means are heavy-tailed
    // and the two-point quick sweep needs the variance reduction for a
    // stable slope estimate (min_arc is cheap — one sort per ring).
    let seeds = 50;
    let mut table = Table::new(
        "E2: Theorem 8 minimum-arc scaling",
        "min adjacent-peer arc = Theta(1/n^2): log-log slope ~ -2, min_arc*n^2 = Theta(1)",
        &[
            "n",
            "mean_min_arc",
            "normalized(n^2)",
            "norm_p10",
            "norm_p90",
        ],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut norm_means = Vec::new();
    for n in size_sweep(ctx.quick) {
        let mut arcs = Vec::with_capacity(seeds);
        let mut norms = Vec::with_capacity(seeds);
        for s in 0..seeds {
            let ring = make_ring(n, ctx.stream(2, (n as u64) << 8 | s as u64));
            let report = theory::min_arc(&ring);
            arcs.push(report.min_arc_fraction);
            norms.push(report.normalized);
        }
        let mean_arc = arcs.iter().sum::<f64>() / arcs.len() as f64;
        let summary = stats::Summary::from_samples(norms).expect("non-empty");
        xs.push(n as f64);
        ys.push(mean_arc);
        norm_means.push(summary.mean());
        table.push_row(vec![
            n.to_string(),
            fmt_f(mean_arc),
            fmt_f(summary.mean()),
            fmt_f(summary.percentile(10.0)),
            fmt_f(summary.percentile(90.0)),
        ]);
    }
    let fit = fit::log_log_fit(&xs, &ys);
    let band = norm_means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        / norm_means.iter().cloned().fold(f64::INFINITY, f64::min);
    let ok = (-2.4..=-1.6).contains(&fit.slope) && band < 4.0;
    table.set_verdict(format!(
        "{}: log-log slope {:.3} (expect -2, R^2 {:.4}); normalized band ratio {:.2}",
        if ok { "HOLDS" } else { "VIOLATED" },
        fit.slope,
        fit.r_squared,
        band
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_finds_inverse_square_scaling() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run(&ctx);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
    }
}
