//! E3 — Lemma 3: *Estimate n* is a `(2/7 − ε, 6 + ε)`-approximation.
//!
//! Claim: w.h.p. every peer's estimate `n̂` satisfies
//! `(2/7 − ε) n ≤ n̂ ≤ (6 + ε) n`. We sweep `n` and the probe multiplier
//! `c₁`, reporting the ratio distribution and the band-violation rate.

use peer_sampling::{NetworkSizeEstimator, OracleDht};

use super::{make_ring, size_sweep};
use crate::{fmt_f, ExpContext, Table};

/// Runs the experiment.
pub fn run(ctx: &ExpContext) -> Table {
    let seeds = if ctx.quick { 5 } else { 20 };
    let peers_per_ring = if ctx.quick { 10 } else { 40 };
    let c1_sweep = [4.0, 8.0, 16.0, 32.0];
    let mut table = Table::new(
        "E3: Lemma 3 Estimate-n approximation",
        "(2/7 - eps, 6 + eps)-approximation of n w.p. >= 1 - 2/n; probes = c1 ln n",
        &[
            "n",
            "c1",
            "ratio_mean",
            "ratio_min",
            "ratio_max",
            "viol_rate",
            "mean_probes",
        ],
    );
    let mut worst_violation_rate: f64 = 0.0;
    for n in size_sweep(ctx.quick) {
        for &c1 in &c1_sweep {
            let estimator = NetworkSizeEstimator::new(c1);
            let mut ratios = Vec::new();
            let mut probes = 0u64;
            let mut violations = 0u64;
            for s in 0..seeds {
                let ring = make_ring(n, ctx.stream(3, (n as u64) << 8 | s as u64));
                let dht = OracleDht::new(ring);
                for origin in sample_origins(n, peers_per_ring) {
                    let est = estimator.estimate(&dht, origin).expect("oracle");
                    let ratio = est.n_hat / n as f64;
                    // Lemma 3 band with epsilon = 0.05 of slack.
                    if !(2.0 / 7.0 - 0.05..=6.05).contains(&ratio) {
                        violations += 1;
                    }
                    probes += est.probes;
                    ratios.push(ratio);
                }
            }
            let count = ratios.len() as f64;
            let mean = ratios.iter().sum::<f64>() / count;
            let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let viol_rate = violations as f64 / count;
            worst_violation_rate = worst_violation_rate.max(viol_rate);
            table.push_row(vec![
                n.to_string(),
                fmt_f(c1),
                fmt_f(mean),
                fmt_f(min),
                fmt_f(max),
                fmt_f(viol_rate),
                fmt_f(probes as f64 / count),
            ]);
        }
    }
    let ok = worst_violation_rate < 0.02;
    table.set_verdict(format!(
        "{}: worst per-cell violation rate {:.4} (w.h.p. allowance 0.02)",
        if ok { "HOLDS" } else { "VIOLATED" },
        worst_violation_rate
    ));
    table
}

/// Evenly spread origin ranks so estimates come from distinct peers.
fn sample_origins(n: usize, count: usize) -> impl Iterator<Item = usize> {
    let step = (n / count.max(1)).max(1);
    (0..n).step_by(step).take(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_stays_in_band() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run(&ctx);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
        assert_eq!(t.rows.len(), 2 * 4);
    }

    #[test]
    fn origins_are_distinct() {
        let origins: Vec<usize> = sample_origins(100, 10).collect();
        assert_eq!(origins.len(), 10);
        let set: std::collections::HashSet<_> = origins.iter().collect();
        assert_eq!(set.len(), 10);
    }
}
