//! E4 — Lemma 4 / Corollary 5: peerless-window mass.
//!
//! Claim: w.h.p. the sum of any `⌈6 ln n⌉` consecutive maximally peerless
//! intervals is at least `(ln n)/n` of the circle — the property that lets
//! the Figure 1 scan terminate within its step bound without losing
//! measure.

use peer_sampling::theory;

use super::{make_ring, size_sweep};
use crate::{fmt_f, ExpContext, Table};

/// Runs the experiment.
pub fn run(ctx: &ExpContext) -> Table {
    let seeds = if ctx.quick { 10 } else { 50 };
    let mut table = Table::new(
        "E4: Lemma 4 peerless-window mass",
        "any ceil(6 ln n) consecutive arcs sum to >= (ln n)/n of the circle w.h.p.",
        &["n", "window", "rings_ok", "min_margin", "mean_margin"],
    );
    let mut all_ok = true;
    for n in size_sweep(ctx.quick) {
        let mut ok = 0u32;
        let mut min_margin = f64::INFINITY;
        let mut total_margin = 0.0;
        let mut window = 0usize;
        for s in 0..seeds {
            let ring = make_ring(n, ctx.stream(4, (n as u64) << 8 | s as u64));
            let report = theory::lemma4(&ring);
            window = report.window;
            if report.holds() {
                ok += 1;
            }
            min_margin = min_margin.min(report.margin());
            total_margin += report.margin();
        }
        if ok < seeds {
            all_ok = false;
        }
        table.push_row(vec![
            n.to_string(),
            window.to_string(),
            format!("{ok}/{seeds}"),
            fmt_f(min_margin),
            fmt_f(total_margin / seeds as f64),
        ]);
    }
    table.set_verdict(if all_ok {
        "HOLDS: every ring at every n satisfies the window bound".to_string()
    } else {
        "PARTIAL: some rings violated the bound (check w.h.p. allowance at small n)".to_string()
    });
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_holds() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run(&ctx);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
    }
}
