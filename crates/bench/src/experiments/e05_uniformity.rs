//! E5 — Theorem 6: exact uniformity.
//!
//! Two tables:
//!
//! * **E5a (exhaustive)** — on a small ring every start point `s` is
//!   enumerated; Theorem 6's discrete form says every peer owns *exactly*
//!   `λ` points. The measured max deviation must be zero.
//! * **E5b (sampled)** — on the full 2⁶⁴ ring, millions of sampler draws
//!   are chi-square-tested against uniform and compared with the naive
//!   heuristic under identical conditions.

use keyspace::KeySpace;
use peer_sampling::{assignment, OracleDht, Sampler, SamplerConfig};
use rand::SeedableRng;
use stats::{divergence, ChiSquare};

use super::make_ring;
use crate::{fmt_f, ExpContext, Table};

/// Runs both sub-experiments.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    vec![exhaustive(ctx), sampled(ctx)]
}

fn exhaustive(ctx: &ExpContext) -> Table {
    let mut table = Table::new(
        "E5a: Theorem 6 exact uniformity (exhaustive enumeration)",
        "every peer owns exactly lambda ring points under the Figure-1 scan",
        &[
            "modulus",
            "n",
            "lambda",
            "min_owned",
            "max_owned",
            "max_deviation",
        ],
    );
    let mut exact = true;
    let cases: &[(u128, usize)] = &[(1 << 16, 10), (1 << 18, 100), (1 << 20, 1000)];
    let cases = if ctx.quick { &cases[..2] } else { cases };
    for &(modulus, n) in cases {
        let space = KeySpace::with_modulus(modulus).expect("valid modulus");
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.stream(5, n as u64));
        let ring = keyspace::SortedRing::new(space, space.random_distinct_points(&mut rng, n));
        let lambda = (modulus / (7 * n as u128)) as u64;
        // Untruncated scan (step limit n+1): the pure partition property.
        let counts = assignment::measure_per_peer(&ring, lambda, n as u32 + 1);
        let min = *counts.iter().min().expect("peers");
        let max = *counts.iter().max().expect("peers");
        let deviation = (max - lambda).max(lambda - min);
        if deviation != 0 {
            exact = false;
        }
        table.push_row(vec![
            format!("2^{}", modulus.trailing_zeros()),
            n.to_string(),
            lambda.to_string(),
            min.to_string(),
            max.to_string(),
            deviation.to_string(),
        ]);
    }
    table.set_verdict(if exact {
        "HOLDS EXACTLY: zero deviation — every peer owns exactly lambda points".to_string()
    } else {
        "VIOLATED: some peer's measure differs from lambda".to_string()
    });
    table
}

fn sampled(ctx: &ExpContext) -> Table {
    let n = if ctx.quick { 512 } else { 4096 };
    let draws = if ctx.quick { 100_000 } else { 1_000_000 };
    let mut table = Table::new(
        "E5b: Theorem 6 sampled uniformity vs the naive heuristic",
        "sampler draws pass chi-square GOF vs uniform; naive h(s) fails catastrophically",
        &[
            "sampler",
            "draws",
            "chi2_p",
            "tv_dist",
            "max/min_freq",
            "never_chosen",
        ],
    );
    let ring = make_ring(n, ctx.stream(5, 0xB0B));
    let dht = OracleDht::new(ring.clone());
    let sampler = Sampler::new(SamplerConfig::new(n as u64));
    let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.stream(5, 0xD1CE));

    let mut ks_counts = vec![0u64; n];
    for _ in 0..draws {
        let s = sampler.sample(&dht, &mut rng).expect("oracle sampling");
        ks_counts[s.peer] += 1;
    }
    let mut naive_counts = vec![0u64; n];
    let naive = baselines::NaiveSampler::new(ring);
    for _ in 0..draws {
        naive_counts[baselines::IndexSampler::sample_index(&naive, &mut rng)] += 1;
    }

    let ks_chi = ChiSquare::uniform(&ks_counts).expect("categories");
    let naive_chi = ChiSquare::uniform(&naive_counts).expect("categories");
    for (name, counts, chi) in [
        ("king-saia", &ks_counts, &ks_chi),
        ("naive h(s)", &naive_counts, &naive_chi),
    ] {
        let ratio = divergence::max_min_ratio(counts);
        table.push_row(vec![
            name.to_string(),
            draws.to_string(),
            fmt_f(chi.p_value()),
            fmt_f(divergence::tv_from_uniform(counts)),
            if ratio.is_finite() {
                fmt_f(ratio)
            } else {
                "inf".to_string()
            },
            counts.iter().filter(|&&c| c == 0).count().to_string(),
        ]);
    }
    let ok = ks_chi.p_value() > 0.001 && naive_chi.p_value() < 1e-10;
    table.set_verdict(format!(
        "{}: king-saia p = {:.4} (uniform not rejected), naive p = {:.2e} (rejected)",
        if ok { "HOLDS" } else { "VIOLATED" },
        ks_chi.p_value(),
        naive_chi.p_value()
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_exhaustive_is_exact() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = exhaustive(&ctx);
        assert!(t.verdict.starts_with("HOLDS EXACTLY"), "{}", t.verdict);
        assert!(t.rows.iter().all(|r| r[5] == "0"));
    }

    #[test]
    fn quick_sampled_separates_sampler_from_naive() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = sampled(&ctx);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
    }
}
