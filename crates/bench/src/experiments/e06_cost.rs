//! E6 — Theorem 7: `O(log n)` messages and latency, `O(1)` trials.
//!
//! Claim: on a standard DHT (`t_h = m_h = O(log n)`), one sample costs
//! `O(log n)` messages and latency in expectation. We run the sampler over
//! *real Chord routing*, sweep `n`, and fit `messages ~ a ln n + b`
//! (log-linear, expect an excellent fit) as well as reporting the mean
//! trial count (expect a constant ≈ `λ⁻¹/n` independent of `n`).
//!
//! Two accountings per size:
//!
//! * `msgs` — the implemented sampler (with the exact rejection
//!   short-circuit, see DESIGN.md);
//! * `paper_msgs` — Figure 1 as literally written, where every rejected
//!   trial walks the full `R = ⌈6 ln n′⌉` steps (reconstructed from
//!   per-trial telemetry; same accept/reject outcomes).

use chord::{ChordConfig, ChordDht, ChordNetwork};
use keyspace::KeySpace;
use peer_sampling::{Sampler, SamplerConfig, TrialOutcome};
use rand::SeedableRng;
use stats::fit;

use crate::{fmt_f, ExpContext, Table};

/// Runs the experiment.
pub fn run(ctx: &ExpContext) -> Table {
    let sizes: Vec<usize> = if ctx.quick {
        vec![256, 1024]
    } else {
        vec![256, 1024, 4096, 16384]
    };
    let samples = if ctx.quick { 100 } else { 400 };
    let mut table = Table::new(
        "E6: Theorem 7 cost on real Chord routing",
        "expected O(m_h + log n) messages, O(t_h + log n) latency, O(1) trials per sample",
        &[
            "n",
            "mean_trials",
            "mean_msgs",
            "mean_latency",
            "paper_msgs",
            "h_msgs/lookup",
        ],
    );
    let mut xs = Vec::new();
    let mut msgs_series = Vec::new();
    let mut trials_series = Vec::new();
    for &n in &sizes {
        let space = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.stream(6, n as u64));
        let net = ChordNetwork::bootstrap(
            space,
            space.random_points(&mut rng, n),
            ChordConfig::default(),
        );
        let dht = ChordDht::new(&net, net.live_ids()[0], ctx.stream(6, n as u64 + 1));
        let config = SamplerConfig::new(n as u64);
        let sampler = Sampler::new(config);
        let step_bound = config.step_bound() as u64;

        let mut trials = 0u64;
        let mut msgs = 0u64;
        let mut latency = 0u64;
        let mut paper_msgs = 0u64;
        let mut h_msgs = 0u64;
        for _ in 0..samples {
            // Drive trials manually so both accountings are available.
            loop {
                let s = space.random_point(&mut rng);
                trials += 1;
                match sampler.trial(&dht, s).expect("healthy chord") {
                    TrialOutcome::Accepted { steps, cost, .. } => {
                        msgs += cost.messages;
                        latency += cost.latency;
                        paper_msgs += cost.messages;
                        h_msgs += cost.messages - steps as u64;
                        break;
                    }
                    TrialOutcome::Rejected { steps, cost } => {
                        msgs += cost.messages;
                        latency += cost.latency;
                        // Figure 1 literal: the rejected scan would have
                        // walked the full step bound.
                        paper_msgs += cost.messages + (step_bound - steps as u64);
                    }
                }
            }
        }
        let sf = samples as f64;
        xs.push(n as f64);
        msgs_series.push(msgs as f64 / sf);
        trials_series.push(trials as f64 / sf);
        table.push_row(vec![
            n.to_string(),
            fmt_f(trials as f64 / sf),
            fmt_f(msgs as f64 / sf),
            fmt_f(latency as f64 / sf),
            fmt_f(paper_msgs as f64 / sf),
            // h cost of the accepted lookup (one per sample).
            fmt_f(h_msgs as f64 / sf),
        ]);
    }
    let log_fit = fit::log_linear_fit(&xs, &msgs_series);
    let trials_spread = trials_series
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        / trials_series.iter().cloned().fold(f64::INFINITY, f64::min);
    let ok = log_fit.r_squared > 0.9 && trials_spread < 1.6;
    table.set_verdict(format!(
        "{}: msgs ~ {:.2} ln n + {:.1} (R^2 {:.4}); trial count varies only {:.2}x across sizes",
        if ok { "HOLDS" } else { "CHECK" },
        log_fit.slope,
        log_fit.intercept,
        log_fit.r_squared,
        trials_spread
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_scales_logarithmically() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 2);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
    }
}
