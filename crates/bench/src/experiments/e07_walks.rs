//! E7 — random-walk comparator (Gkantsidis et al. \[5\], §1.2).
//!
//! Claim (paper's related-work argument): walks only *approximate*
//! uniformity, with quality bought by walk length (messages); King–Saia is
//! exactly uniform at a fixed `O(log n)` cost. We sweep walk length on the
//! Chord overlay graph and report TV distance to uniform, with the
//! King–Saia sampler's empirical TV at its own message cost as the
//! reference row.

use baselines::{IndexSampler, KingSaiaIndexSampler, OverlayGraph, RandomWalkSampler, WalkKind};
use rand::SeedableRng;
use stats::divergence;

use super::make_ring;
use crate::{fmt_f, ExpContext, Table};

/// Runs the experiment.
pub fn run(ctx: &ExpContext) -> Table {
    let n = if ctx.quick { 256 } else { 1024 };
    let draws = if ctx.quick { 30_000 } else { 200_000 };
    let mut table = Table::new(
        "E7: random-walk sampling vs King-Saia",
        "walks approach uniform only as length (messages) grows; King-Saia is exact at O(log n) cost",
        &["sampler", "msgs/sample", "tv_dist", "max/min_freq"],
    );
    let ring = make_ring(n, ctx.stream(7, 1));
    let graph = OverlayGraph::ring_with_fingers(&ring);
    let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.stream(7, 2));

    let mut measure =
        |sampler: &dyn IndexSampler, name: String, cost: f64, table: &mut Table| -> f64 {
            let mut counts = vec![0u64; n];
            for _ in 0..draws {
                counts[sampler.sample_index(&mut rng)] += 1;
            }
            let tv = divergence::tv_from_uniform(&counts);
            let ratio = divergence::max_min_ratio(&counts);
            table.push_row(vec![
                name,
                fmt_f(cost),
                fmt_f(tv),
                if ratio.is_finite() {
                    fmt_f(ratio)
                } else {
                    "inf".to_string()
                },
            ]);
            tv
        };

    let lengths: &[usize] = if ctx.quick {
        &[2, 8, 32]
    } else {
        &[2, 4, 8, 16, 32, 64]
    };
    let mut simple_tvs = Vec::new();
    for &len in lengths {
        let walk = RandomWalkSampler::new(graph.clone(), 0, len, WalkKind::Simple);
        let tv = measure(
            &walk,
            format!("simple walk L={len}"),
            len as f64,
            &mut table,
        );
        simple_tvs.push(tv);
    }
    let cap = graph.max_degree();
    for &len in lengths {
        let walk = RandomWalkSampler::new(graph.clone(), 0, len, WalkKind::MaxDegree { cap });
        measure(
            &walk,
            format!("max-degree walk L={len}"),
            len as f64,
            &mut table,
        );
    }
    let mh_tv = {
        let len = *lengths.last().expect("non-empty");
        let walk = RandomWalkSampler::new(graph.clone(), 0, len, WalkKind::MetropolisHastings);
        measure(
            &walk,
            format!("metropolis walk L={len}"),
            len as f64,
            &mut table,
        )
    };

    let ks = KingSaiaIndexSampler::from_ring(ring);
    let ks_cost = ks.cost_per_sample_hint();
    let ks_tv = measure(&ks, "king-saia (exact)".to_string(), ks_cost, &mut table);

    // The simple walk's TV should shrink with length but stall at its
    // degree-biased stationary distribution, which King–Saia beats.
    let walk_improves = simple_tvs.first() > simple_tvs.last();
    let ks_wins = ks_tv <= mh_tv * 1.5; // both near sampling noise floor
    table.set_verdict(format!(
        "{}: simple-walk TV {} -> {} with length; king-saia TV {:.4} at {:.0} msgs",
        if walk_improves && ks_wins {
            "HOLDS"
        } else {
            "CHECK"
        },
        fmt_f(simple_tvs[0]),
        fmt_f(*simple_tvs.last().expect("non-empty")),
        ks_tv,
        ks_cost
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_walk_convergence() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run(&ctx);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
    }
}
