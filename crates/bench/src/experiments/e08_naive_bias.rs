//! E8 — §1 naive-heuristic bias is `Θ(n log n)`.
//!
//! Claim: under `h(random s)`, the longest-arc peer is chosen
//! `Θ(n log n)` times more often than the shortest-arc peer (longest arc
//! `Θ(log n / n)`, shortest `Θ(1/n²)`, Theorem 8). The exact selection
//! probabilities are the arcs themselves, so the bias ratio is measured
//! exactly from the ring geometry, and `ratio / (n ln n)` should sit in a
//! constant band across sizes.

use peer_sampling::theory;

use super::{make_ring, size_sweep};
use crate::{fmt_f, ExpContext, Table};

/// Runs the experiment.
pub fn run(ctx: &ExpContext) -> Table {
    let seeds = if ctx.quick { 10 } else { 50 };
    let mut table = Table::new(
        "E8: naive heuristic bias ratio",
        "max/min selection probability of h(s) = longest/shortest arc = Theta(n log n)",
        &["n", "mean_ratio", "ratio/(n ln n)", "p10", "p90"],
    );
    let mut normalized_means = Vec::new();
    for n in size_sweep(ctx.quick) {
        let mut normalized = Vec::with_capacity(seeds);
        let mut ratios = Vec::with_capacity(seeds);
        for s in 0..seeds {
            let ring = make_ring(n, ctx.stream(8, (n as u64) << 8 | s as u64));
            let ratio = theory::naive_bias_ratio(&ring);
            ratios.push(ratio);
            normalized.push(ratio / (n as f64 * (n as f64).ln()));
        }
        let summary = stats::Summary::from_samples(normalized.clone()).expect("non-empty");
        normalized_means.push(summary.mean());
        table.push_row(vec![
            n.to_string(),
            fmt_f(ratios.iter().sum::<f64>() / seeds as f64),
            fmt_f(summary.mean()),
            fmt_f(summary.percentile(10.0)),
            fmt_f(summary.percentile(90.0)),
        ]);
    }
    // Θ(n log n): normalized means stay within a constant band across a
    // 64x range of n. (The distribution is heavy-tailed — 1/min-arc is
    // roughly inverse-uniform — so the band is generous.)
    let band = normalized_means
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max)
        / normalized_means
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
    let ok = band < 10.0;
    table.set_verdict(format!(
        "{}: normalized ratio band {:.2}x across sizes (constant-band check < 10x)",
        if ok { "HOLDS" } else { "CHECK" },
        band
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_superlinear_bias() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run(&ctx);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
    }
}
