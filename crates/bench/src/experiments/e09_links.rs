//! E9 — §1 "Create Random Links": overlay robustness under adversarial
//! deletion.
//!
//! Claim (via \[11\]): an overlay whose links come from a *uniform* sampler
//! stays almost fully connected after a massive adversarial deletion;
//! links from the biased naive heuristic concentrate on few peers and the
//! same adversary shatters the overlay.

use apps::links::{self, DeletionStrategy};
use baselines::{IndexSampler, KingSaiaIndexSampler, NaiveSampler, TrueUniform};
use rand::SeedableRng;

use super::make_ring;
use crate::{fmt_f, ExpContext, Table};

/// Runs the experiment.
pub fn run(ctx: &ExpContext) -> Table {
    let n = if ctx.quick { 200 } else { 500 };
    let degree = 6;
    let fractions = [0.1, 0.2, 0.3, 0.4, 0.5];
    let mut table = Table::new(
        "E9: random-link overlay robustness (adversarial deletion)",
        "uniform links keep the survivor graph connected; biased links shatter",
        &[
            "sampler", "del=0.1", "del=0.2", "del=0.3", "del=0.4", "del=0.5",
        ],
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.stream(9, 0));
    let ring = make_ring(n, ctx.stream(9, 1));

    let samplers: Vec<(&str, Box<dyn IndexSampler>)> = vec![
        ("true uniform", Box::new(TrueUniform::new(n))),
        (
            "king-saia",
            Box::new(KingSaiaIndexSampler::from_ring(ring.clone())),
        ),
        ("naive h(s)", Box::new(NaiveSampler::new(ring))),
    ];

    let mut uniform_03 = 0.0;
    let mut naive_03 = 0.0;
    let mut ks_03 = 0.0;
    for (name, sampler) in &samplers {
        let overlay = links::build_overlay(sampler.as_ref(), degree, &mut rng);
        let curve = links::robustness_curve(
            &overlay,
            &fractions,
            DeletionStrategy::HighestDegree,
            &mut rng,
        );
        let at = |f: f64| {
            curve
                .iter()
                .find(|p| (p.deleted_fraction - f).abs() < 1e-9)
                .expect("fraction present")
                .survivor_connectivity
        };
        match *name {
            "true uniform" => uniform_03 = at(0.3),
            "king-saia" => ks_03 = at(0.3),
            _ => naive_03 = at(0.3),
        }
        table.push_row(vec![
            name.to_string(),
            fmt_f(at(0.1)),
            fmt_f(at(0.2)),
            fmt_f(at(0.3)),
            fmt_f(at(0.4)),
            fmt_f(at(0.5)),
        ]);
    }
    let ok = ks_03 > 0.9 && uniform_03 > 0.9 && naive_03 < ks_03;
    table.set_verdict(format!(
        "{}: at 30% adversarial deletion, king-saia connectivity {:.3} ~ uniform {:.3} > naive {:.3}",
        if ok { "HOLDS" } else { "CHECK" },
        ks_03,
        uniform_03,
        naive_03
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_separates_uniform_from_naive() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run(&ctx);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
        assert_eq!(t.rows.len(), 3);
    }
}
