//! E10 — §1.2 virtual-nodes ablation.
//!
//! Claim: replicating each peer at `k` virtual points shrinks the naive
//! heuristic's bias (spread `~1/√k`) but never reaches exact uniformity,
//! while multiplying routing-state maintenance by `k` — the trade-off the
//! paper cites for not relying on load-balancing extensions.

use baselines::VirtualNodeSampler;
use keyspace::KeySpace;
use rand::SeedableRng;
use stats::divergence;

use crate::{fmt_f, ExpContext, Table};

/// Runs the experiment.
pub fn run(ctx: &ExpContext) -> Table {
    let n = if ctx.quick { 128 } else { 256 };
    let seeds = if ctx.quick { 5 } else { 20 };
    let replica_sweep: &[usize] = &[1, 2, 4, 8, 16, 32, 64];
    let mut table = Table::new(
        "E10: virtual-nodes ablation",
        "k virtual points shrink naive bias ~1/sqrt(k) but never to zero; state cost grows k-fold",
        &[
            "k",
            "tv_from_uniform",
            "max/min_prob",
            "virtual_points(state)",
        ],
    );
    let mut tvs = Vec::new();
    for &k in replica_sweep {
        let mut tv_total = 0.0;
        let mut ratio_total = 0.0;
        let mut virtual_points = 0usize;
        for s in 0..seeds {
            let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.stream(10, (k as u64) << 8 | s));
            let sampler = VirtualNodeSampler::random(KeySpace::full(), n, k, &mut rng);
            let probs = sampler.selection_probabilities();
            let uniform = vec![1.0 / n as f64; n];
            tv_total += divergence::total_variation(&probs, &uniform);
            let max = probs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min = probs.iter().cloned().fold(f64::INFINITY, f64::min);
            ratio_total += max / min;
            virtual_points += sampler.virtual_len();
        }
        let tv = tv_total / seeds as f64;
        tvs.push(tv);
        table.push_row(vec![
            k.to_string(),
            fmt_f(tv),
            fmt_f(ratio_total / seeds as f64),
            (virtual_points / seeds as usize).to_string(),
        ]);
    }
    // Bias must shrink roughly as 1/sqrt(k): k=64 should be ~8x better
    // than k=1 (allow 4x), and still strictly positive.
    let first = tvs[0];
    let last = *tvs.last().expect("non-empty");
    let ok = last < first / 4.0 && last > 1e-6;
    table.set_verdict(format!(
        "{}: TV falls {:.1}x from k=1 to k=64 (sqrt(64) = 8x predicted) but stays > 0",
        if ok { "HOLDS" } else { "CHECK" },
        first / last
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_sqrt_k_decay() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run(&ctx);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
        assert_eq!(t.rows.len(), 7);
    }
}
