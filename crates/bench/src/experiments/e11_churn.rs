//! E11 — the paper's §4 open problem: behaviour under churn.
//!
//! The paper proves its guarantees on a static ring and asks how the
//! algorithm fares "in practice". We run the sampler against a Chord
//! overlay under M/M/∞ churn at several intensities, measuring the sample
//! failure rate, cost inflation, and the uniformity of successful samples
//! over the live population at the end of the run.

use chord::{ChordConfig, ChordDht, ChurnSimulation};
use peer_sampling::{Sampler, SamplerConfig};
use rand::SeedableRng;
use simnet::churn::ChurnConfig;
use simnet::{SimDuration, SimTime};
use stats::divergence;

use crate::{fmt_f, ExpContext, Table};

/// Runs the experiment.
pub fn run(ctx: &ExpContext) -> Table {
    let initial = if ctx.quick { 128 } else { 512 };
    let probes_during = if ctx.quick { 200 } else { 1000 };
    let draws_after = if ctx.quick { 20_000 } else { 100_000 };
    let mut table = Table::new(
        "E11: sampling under churn (open problem, paper section 4)",
        "failure rate and uniformity drift stay small while stabilization keeps pace with churn",
        &[
            "churn/1k_ticks",
            "live_end",
            "fail_rate",
            "mean_msgs",
            "tv_after",
            "max/min_freq",
        ],
    );
    let mut fail_rates = Vec::new();
    for (i, &rate) in [2.0f64, 10.0, 50.0].iter().enumerate() {
        let churn = ChurnConfig {
            arrivals_per_1000_ticks: rate,
            mean_lifetime: SimDuration::from_ticks((initial as u64) * 1000 / rate as u64),
            crash_fraction: 0.5,
            horizon: SimDuration::from_ticks(30_000),
        };
        let mut sim = ChurnSimulation::new(
            initial,
            ChordConfig::default(),
            churn,
            SimDuration::from_ticks(250),
            ctx.stream(11, i as u64),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.stream(11, 100 + i as u64));

        // Phase 1: probe during churn — interleave sampling with events.
        let mut failures = 0u64;
        let mut msgs = 0u64;
        let mut successes = 0u64;
        for p in 0..probes_during {
            let t = SimTime::from_ticks(30_000 * (p as u64 + 1) / probes_during as u64);
            sim.run_until(t);
            let net = sim.network();
            let live = net.live_ids();
            let anchor = live[p % live.len()];
            let dht = ChordDht::new(net, anchor, ctx.stream(11, 200 + p as u64));
            let sampler = Sampler::new(SamplerConfig::new(live.len() as u64).with_max_trials(64));
            match sampler.sample(&dht, &mut rng) {
                Ok(s) => {
                    successes += 1;
                    msgs += s.cost.messages;
                }
                Err(_) => failures += 1,
            }
        }
        let fail_rate = failures as f64 / probes_during as f64;
        fail_rates.push(fail_rate);

        // Phase 2: churn has ended; measure uniformity over the final
        // live population (stale routing state included — no extra
        // convergence rounds beyond the schedule's own ticks).
        sim.run_to_end();
        let net = sim.network();
        let live = net.live_ids();
        let index_of: std::collections::HashMap<_, _> =
            live.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let anchor = live[0];
        let dht = ChordDht::new(net, anchor, ctx.stream(11, 999 + i as u64));
        let sampler = Sampler::new(SamplerConfig::new(live.len() as u64).with_max_trials(64));
        let mut counts = vec![0u64; live.len()];
        let mut post_failures = 0u64;
        for _ in 0..draws_after {
            match sampler.sample(&dht, &mut rng) {
                Ok(s) => counts[index_of[&s.peer]] += 1,
                Err(_) => post_failures += 1,
            }
        }
        let tv = divergence::tv_from_uniform(&counts);
        let ratio = divergence::max_min_ratio(&counts);
        table.push_row(vec![
            fmt_f(rate),
            live.len().to_string(),
            fmt_f(fail_rate),
            fmt_f(msgs as f64 / successes.max(1) as f64),
            fmt_f(tv),
            if ratio.is_finite() {
                fmt_f(ratio)
            } else {
                "inf".to_string()
            },
        ]);
        let _ = post_failures;
    }
    let ok = fail_rates.iter().all(|&f| f < 0.05);
    table.set_verdict(format!(
        "{}: sample failure rate stays below 5% at every churn intensity ({:?})",
        if ok { "HOLDS" } else { "CHECK" },
        fail_rates
            .iter()
            .map(|f| (f * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_survives_churn() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 3);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
    }
}
