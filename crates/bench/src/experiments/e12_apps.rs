//! E12 — §1 application outcomes: polling, load balancing, committees.
//!
//! The paper's motivation section claims uniform sampling is the right
//! primitive for data collection, load balancing \[7\] and Byzantine
//! committee election \[8\]. These tables quantify the end-to-end damage a
//! biased sampler does to each application, with the King–Saia sampler
//! matching the ideal uniform baseline.

use apps::{committee, load, polling};
use baselines::{IndexSampler, KingSaiaIndexSampler, NaiveSampler, TrueUniform};
use rand::SeedableRng;

use super::make_ring;
use crate::{fmt_f, ExpContext, Table};

/// Runs all three application tables.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    vec![polling_table(ctx), load_table(ctx), committee_table(ctx)]
}

fn samplers(n: usize, seed: u64) -> Vec<(&'static str, Box<dyn IndexSampler>)> {
    let ring = make_ring(n, seed);
    vec![
        ("true uniform", Box::new(TrueUniform::new(n))),
        (
            "king-saia",
            Box::new(KingSaiaIndexSampler::from_ring(ring.clone())),
        ),
        ("naive h(s)", Box::new(NaiveSampler::new(ring))),
    ]
}

fn polling_table(ctx: &ExpContext) -> Table {
    let n = if ctx.quick { 200 } else { 500 };
    let sample_size = if ctx.quick { 5_000 } else { 20_000 };
    let mut table = Table::new(
        "E12a: polling an arc-correlated attribute (truth = 0.30)",
        "uniform sampling estimates the population fraction; bias inflates it",
        &["sampler", "estimate", "error"],
    );
    let seed = ctx.stream(12, 1);
    let ring = make_ring(n, seed);
    let attribute = polling::arc_correlated_attribute(&ring, 0.3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.stream(12, 2));
    let mut ks_err = 0.0;
    let mut naive_err = 0.0;
    for (name, sampler) in samplers(n, seed) {
        let result = polling::poll(sampler.as_ref(), &attribute, sample_size, &mut rng);
        match name {
            "king-saia" => ks_err = result.error().abs(),
            "naive h(s)" => naive_err = result.error().abs(),
            _ => {}
        }
        table.push_row(vec![
            name.to_string(),
            fmt_f(result.estimate),
            fmt_f(result.error()),
        ]);
    }
    let ok = ks_err < 0.02 && naive_err > 0.1;
    table.set_verdict(format!(
        "{}: king-saia |error| {:.4} vs naive |error| {:.3}",
        if ok { "HOLDS" } else { "CHECK" },
        ks_err,
        naive_err
    ));
    table
}

fn load_table(ctx: &ExpContext) -> Table {
    let n = if ctx.quick { 300 } else { 1000 };
    let mut table = Table::new(
        "E12b: load balancing (m = n tasks)",
        "uniform max load ~ ln n / ln ln n (balls in bins); bias inflates it",
        &["sampler", "max_load", "idle_peers", "theory_uniform_max"],
    );
    let seed = ctx.stream(12, 3);
    let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.stream(12, 4));
    let bench = load::uniform_max_load_benchmark(n as u64, n as u64);
    let mut ks_max = 0u64;
    let mut naive_max = 0u64;
    for (name, sampler) in samplers(n, seed) {
        let assignment = load::assign_tasks(sampler.as_ref(), n as u64, &mut rng);
        match name {
            "king-saia" => ks_max = assignment.max_load(),
            "naive h(s)" => naive_max = assignment.max_load(),
            _ => {}
        }
        table.push_row(vec![
            name.to_string(),
            assignment.max_load().to_string(),
            assignment.idle_peers().to_string(),
            fmt_f(bench),
        ]);
    }
    let ok = (ks_max as f64) < 3.0 * bench && naive_max > ks_max;
    table.set_verdict(format!(
        "{}: king-saia max load {} within 3x of balls-in-bins {:.1}; naive max load {}",
        if ok { "HOLDS" } else { "CHECK" },
        ks_max,
        bench,
        naive_max
    ));
    table
}

fn committee_table(ctx: &ExpContext) -> Table {
    let n = if ctx.quick { 200 } else { 600 };
    let elections = if ctx.quick { 500 } else { 2000 };
    let committee_size = 61;
    let byz_fraction = 1.0 / 3.0;
    let mut table = Table::new(
        "E12c: Byzantine committee election (1/3 adaptive adversary, c = 61)",
        "uniform sampling makes majority capture exponentially unlikely; bias hands it over",
        &["sampler", "capture_rate", "mean_byz_fraction"],
    );
    let seed = ctx.stream(12, 5);
    let ring = make_ring(n, seed);
    let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.stream(12, 6));
    let mut ks_rate = 0.0;
    let mut naive_rate = 0.0;
    for (name, sampler) in samplers(n, seed) {
        // Adaptive adversary: corrupts the peers *this* sampler favours.
        let probs = match name {
            "naive h(s)" => NaiveSampler::new(ring.clone()).selection_probabilities(),
            _ => vec![1.0 / n as f64; n],
        };
        let byzantine = committee::adaptive_byzantine_set(&probs, byz_fraction);
        let report = committee::simulate_elections(
            sampler.as_ref(),
            &byzantine,
            committee_size,
            elections,
            &mut rng,
        );
        match name {
            "king-saia" => ks_rate = report.capture_rate,
            "naive h(s)" => naive_rate = report.capture_rate,
            _ => {}
        }
        table.push_row(vec![
            name.to_string(),
            fmt_f(report.capture_rate),
            fmt_f(report.mean_byzantine_fraction),
        ]);
    }
    let ok = ks_rate < 0.05 && naive_rate > 0.5;
    table.set_verdict(format!(
        "{}: king-saia capture rate {:.4} vs naive {:.3}",
        if ok { "HOLDS" } else { "CHECK" },
        ks_rate,
        naive_rate
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_three_tables_that_hold() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let tables = run(&ctx);
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert!(t.verdict.starts_with("HOLDS"), "{}: {}", t.title, t.verdict);
        }
    }
}
