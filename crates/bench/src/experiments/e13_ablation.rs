//! E13 — ablation: the `λ` denominator (the paper's constant 7).
//!
//! The paper fixes `λ = 1/(7n̂)` without discussing the constant. The
//! trade-off it controls:
//!
//! * smaller denominator → larger `λ` → higher per-trial acceptance
//!   (fewer trials, fewer messages), but
//! * larger `λ` makes more peers "needy" (arc < λ), deepening the
//!   supplementation chains that must finish within `R = ⌈6 ln n⌉` steps
//!   — truncation beyond `R` silently *loses measure* (those peers are
//!   under-sampled).
//!
//! This table measures both sides. The paper's 7 buys a large safety
//! margin; denominators below ~3 start leaking measure.

use keyspace::KeySpace;
use peer_sampling::{assignment, OracleDht, Sampler, SamplerConfig};
use rand::SeedableRng;

use super::make_ring;
use crate::{fmt_f, ExpContext, Table};

/// Runs the experiment.
pub fn run(ctx: &ExpContext) -> Table {
    let mut table = Table::new(
        "E13: lambda-denominator ablation (paper uses 7)",
        "smaller denominators cut trials/messages but risk measure loss past the 6 ln n scan bound",
        &[
            "denom",
            "accept_prob",
            "mean_trials",
            "mean_msgs",
            "lost_measure",
            "exact_when_untruncated",
        ],
    );
    let denominators = [2u64, 3, 5, 7, 14, 28];

    // Cost side: oracle DHT at realistic size.
    let n_cost = if ctx.quick { 512 } else { 2048 };
    let samples = if ctx.quick { 300 } else { 1500 };
    let ring_cost = make_ring(n_cost, ctx.stream(13, 1));
    let dht = OracleDht::new(ring_cost);
    let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.stream(13, 2));

    // Measure-loss side: exhaustive enumeration on a small ring with the
    // paper's step bound.
    let n_small = 256usize;
    let modulus = 1u128 << 18;
    let space = KeySpace::with_modulus(modulus).expect("modulus");
    let mut ring_rng = rand::rngs::StdRng::seed_from_u64(ctx.stream(13, 3));
    let ring_small =
        keyspace::SortedRing::new(space, space.random_distinct_points(&mut ring_rng, n_small));
    let step_bound_small = (6.0 * (n_small as f64).ln()).ceil() as u32;

    let mut seven_loss = 0.0f64;
    let mut min_loss_denom = (f64::INFINITY, 0u64);
    for &denom in &denominators {
        // Sampling cost.
        let sampler =
            Sampler::new(SamplerConfig::new(n_cost as u64).with_lambda_denominator(denom));
        let mut trials = 0u64;
        let mut msgs = 0u64;
        for _ in 0..samples {
            let s = sampler.sample(&dht, &mut rng).expect("oracle");
            trials += s.trials as u64;
            msgs += s.cost.messages;
        }

        // Measure accounting (exhaustive).
        let lambda = (modulus / (denom as u128 * n_small as u128)) as u64;
        let truncated = assignment::measure_per_peer(&ring_small, lambda, step_bound_small);
        let full = assignment::measure_per_peer(&ring_small, lambda, n_small as u32 + 1);
        let demanded = lambda as f64 * n_small as f64;
        let owned: u64 = truncated.iter().sum();
        let lost = (demanded - owned as f64) / demanded;
        let exact_untruncated = full.iter().all(|&c| c == lambda);
        if denom == 7 {
            seven_loss = lost;
        }
        if lost < min_loss_denom.0 {
            min_loss_denom = (lost, denom);
        }

        table.push_row(vec![
            denom.to_string(),
            fmt_f(owned as f64 / modulus as f64),
            fmt_f(trials as f64 / samples as f64),
            fmt_f(msgs as f64 / samples as f64),
            fmt_f(lost),
            exact_untruncated.to_string(),
        ]);
    }
    let ok = seven_loss == 0.0;
    table.set_verdict(format!(
        "{}: the paper's denominator 7 loses zero measure at R = 6 ln n; untruncated partitions are exact at every denominator",
        if ok { "HOLDS" } else { "CHECK" }
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shows_seven_is_safe() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 6);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
        // Every denominator's untruncated partition is exact.
        assert!(t.rows.iter().all(|r| r[5] == "true"));
    }
}
