//! E14 — biased selection (the paper's open problem 3, implemented).
//!
//! §4: *"we may want to choose a peer with probability that is inversely
//! proportional to its distance from us"*. Our weighted generalization of
//! Figure 1 assigns each peer a locally computable measure `λ(p)`; this
//! experiment draws from the inverse-distance distribution and compares
//! empirical frequencies against the exact model `λ(p)/Σλ` per
//! distance-decile.

use keyspace::KeySpace;
use peer_sampling::weighted::{InverseDistanceWeight, PeerWeight, WeightedSampler};
use peer_sampling::OracleDht;
use rand::SeedableRng;
use stats::divergence;

use super::make_ring;
use crate::{fmt_f, ExpContext, Table};

/// Runs the experiment.
pub fn run(ctx: &ExpContext) -> Table {
    let n = if ctx.quick { 128 } else { 512 };
    let draws = if ctx.quick { 20_000 } else { 100_000 };
    let mut table = Table::new(
        "E14: inverse-distance biased sampling (open problem 3)",
        "weighted Figure-1 scan matches the target distribution lambda(p)/sum(lambda) exactly",
        &["distance_decile", "model_prob", "empirical_prob", "abs_err"],
    );
    let space = KeySpace::full();
    let ring = make_ring(n, ctx.stream(14, 1));
    let origin = ring.point(0);
    let scale = InverseDistanceWeight::suggested_scale(space, n as u64);
    let weight = InverseDistanceWeight::new(space, origin, scale);

    // Exact model distribution.
    let lambdas: Vec<f64> = (0..n)
        .map(|r| weight.lambda(ring.point(r)) as f64)
        .collect();
    let total: f64 = lambdas.iter().sum();
    let model: Vec<f64> = lambdas.iter().map(|l| l / total).collect();

    // Empirical draws.
    let dht = OracleDht::new(ring.clone());
    let sampler = WeightedSampler::new(256, 8192);
    let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.stream(14, 2));
    let mut counts = vec![0u64; n];
    for _ in 0..draws {
        let s = sampler.sample(&dht, &weight, &mut rng).expect("oracle");
        counts[ring.index_of(s.point).expect("peer point")] += 1;
    }
    let empirical: Vec<f64> = counts.iter().map(|&c| c as f64 / draws as f64).collect();

    // Aggregate by distance decile from the origin for the table.
    let mut decile_model = [0.0; 10];
    let mut decile_emp = [0.0; 10];
    for rank in 0..n {
        let d = space.distance(origin, ring.point(rank)).to_u128();
        let decile = ((d * 10) / space.modulus()).min(9) as usize;
        decile_model[decile] += model[rank];
        decile_emp[decile] += empirical[rank];
    }
    for dec in 0..10 {
        table.push_row(vec![
            format!("{}0-{}0%", dec, dec + 1),
            fmt_f(decile_model[dec]),
            fmt_f(decile_emp[dec]),
            fmt_f((decile_model[dec] - decile_emp[dec]).abs()),
        ]);
    }

    let tv = divergence::total_variation(&empirical, &model);
    // Noise floor for n categories and `draws` samples is ~sqrt(n/(2*pi*draws)).
    let floor = (n as f64 / (2.0 * std::f64::consts::PI * draws as f64)).sqrt();
    let ok = tv < 4.0 * floor && decile_model[0] > 5.0 * decile_model[9].max(1e-9);
    table.set_verdict(format!(
        "{}: per-peer TV(empirical, model) = {:.4} (noise floor {:.4}); nearest decile carries {:.0}x the farthest's mass",
        if ok { "HOLDS" } else { "CHECK" },
        tv,
        floor,
        decile_model[0] / decile_model[9].max(1e-9)
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_matches_model() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 10);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
    }
}
