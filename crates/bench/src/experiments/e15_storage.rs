//! E15 — substrate validation: data durability of the Chord storage layer.
//!
//! Not a claim from the sampling paper, but a load-bearing property of the
//! substrate it assumes: a DHT is useful because data survives churn. We
//! store keys at replication factors 1–4, subject the overlay to repeated
//! crash waves with interleaved stabilization + anti-entropy, and measure
//! the surviving fraction. Replication ≥ 3 should survive sustained 5%
//! crash waves essentially losslessly.

use chord::{ChordConfig, ChordNetwork};
use keyspace::{KeySpace, Point};
use rand::{Rng, SeedableRng};

use crate::{fmt_f, ExpContext, Table};

/// Runs the experiment.
pub fn run(ctx: &ExpContext) -> Table {
    let n = if ctx.quick { 96 } else { 256 };
    let keys_count = if ctx.quick { 60 } else { 200 };
    let epochs = if ctx.quick { 6 } else { 12 };
    let mut table = Table::new(
        "E15: storage durability under crash waves (substrate validation)",
        "replication factor >= 3 keeps data retrievable through sustained 5% crash waves",
        &[
            "replicas",
            "epochs",
            "crashed_total",
            "retrievable",
            "mean_get_msgs",
        ],
    );
    let mut survival_r4 = 0.0;
    for replicas in 1usize..=4 {
        let space = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.stream(15, replicas as u64));
        let mut net = ChordNetwork::bootstrap(
            space,
            space.random_points(&mut rng, n),
            ChordConfig::default(),
        );
        let gateway = net.live_ids()[0];
        let keys: Vec<Point> = (0..keys_count)
            .map(|_| space.random_point(&mut rng))
            .collect();
        for (i, &k) in keys.iter().enumerate() {
            net.put(gateway, k, vec![i as u8], replicas, &mut rng)
                .expect("healthy put");
        }

        // Crash waves: 5% of live nodes per epoch, then one repair cycle.
        let mut crashed_total = 0usize;
        for _ in 0..epochs {
            let live = net.live_ids();
            let wave = (live.len() / 20).max(1);
            for _ in 0..wave {
                let live_now = net.live_ids();
                if live_now.len() <= 2 {
                    break;
                }
                let victim = live_now[rng.gen_range(0..live_now.len())];
                net.crash(victim);
                crashed_total += 1;
            }
            net.converge(&mut rng);
            for id in net.live_ids() {
                net.replication_round(id, replicas);
            }
        }

        // Retrieval audit from a surviving gateway.
        let reader = net.live_ids()[0];
        let mut retrievable = 0usize;
        let mut get_msgs = 0u64;
        for (i, &k) in keys.iter().enumerate() {
            if let Ok(got) = net.get(reader, k, &mut rng) {
                get_msgs += got.cost.messages;
                if got.value.as_deref() == Some([i as u8].as_ref()) {
                    retrievable += 1;
                }
            }
        }
        let survival = retrievable as f64 / keys_count as f64;
        if replicas == 4 {
            survival_r4 = survival;
        }
        table.push_row(vec![
            replicas.to_string(),
            epochs.to_string(),
            crashed_total.to_string(),
            fmt_f(survival),
            fmt_f(get_msgs as f64 / keys_count as f64),
        ]);
    }
    let ok = survival_r4 >= 0.99;
    table.set_verdict(format!(
        "{}: replication 4 retains {:.1}% of keys through the crash waves",
        if ok { "HOLDS" } else { "CHECK" },
        survival_r4 * 100.0
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_replication_saves_data() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run(&ctx);
        assert_eq!(t.rows.len(), 4);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
    }
}
