//! E16 — the adversarial scenario battery.
//!
//! Runs the `scenarios` crate's preset battery (honest-static,
//! crash-churn, byzantine-routers, clustered-ring, flash-crowd) as a
//! parallel multi-seed sweep against **both** DHT backends, emits the full
//! structured JSON report to `target/e16_scenarios.json`, and summarizes
//! one table row per scenario × backend.
//!
//! The headline comparisons:
//!
//! * honest-static is the control: near-zero TV distance, no failures, on
//!   both backends — Theorem 6 survives the trip from oracle to Chord.
//! * crash-churn and flash-crowd measure what churn costs: failure rate
//!   and message inflation on Chord vs the membership-only oracle.
//! * byzantine-routers shows the capture attack: the adversary's sample
//!   share vs its population share on Chord (the oracle arm is immune).
//! * clustered-ring stresses the geometry: cost and uniformity on a ring
//!   that violates the i.i.d. placement assumption.

use scenarios::{ScenarioSpec, Sweep, SweepReport};

use crate::{fmt_f, ExpContext, Table};

/// Scales the preset battery down for the context.
fn battery(ctx: &ExpContext) -> Vec<ScenarioSpec> {
    let mut specs = ScenarioSpec::presets();
    if ctx.quick {
        specs.truncate(3);
    }
    for spec in &mut specs {
        if ctx.quick {
            spec.n_initial = 96;
            spec.workload.draws = 500;
        }
    }
    specs
}

/// Runs the sweep and renders the summary table.
pub fn run(ctx: &ExpContext) -> Table {
    let specs = battery(ctx);
    let seeds = if ctx.quick { 4 } else { 8 };
    let report = Sweep::new(specs)
        .with_master_seed(ctx.stream(16, 0))
        .with_seeds(seeds)
        .run();

    let json = report.to_json_pretty();
    let json_path = persist_report(&json);

    let mut table = Table::new(
        "E16: adversarial scenario battery (oracle vs chord)",
        "uniformity holds on honest rings under every topology; churn costs messages not \
         correctness; Byzantine routers capture samples only on the routed backend",
        &[
            "scenario",
            "backend",
            "live",
            "fail_rate",
            "msgs/draw",
            "tv",
            "byz_pop",
            "byz_samples",
        ],
    );
    for scenario in &report.scenarios {
        for agg in &scenario.aggregates {
            table.push_row(vec![
                scenario.spec.name.clone(),
                agg.backend.clone(),
                fmt_f(agg.live_peers_mean),
                fmt_f(agg.fail_rate_mean),
                fmt_f(agg.messages_mean),
                fmt_f(agg.tv_mean),
                fmt_f(agg.byzantine_population_share_mean),
                fmt_f(agg.byzantine_sample_share_mean),
            ]);
        }
    }
    table.set_verdict(verdict(&report, &json_path));
    table
}

/// Writes the JSON report under `target/`; falls back to stdout-only when
/// the directory is not writable (e.g. read-only CI caches).
fn persist_report(json: &str) -> String {
    let path = std::path::Path::new("target").join("e16_scenarios.json");
    match std::fs::create_dir_all("target").and_then(|()| std::fs::write(&path, json)) {
        Ok(()) => path.display().to_string(),
        Err(_) => {
            println!("{json}");
            "(stdout)".to_string()
        }
    }
}

fn verdict(report: &SweepReport, json_path: &str) -> String {
    let mut checks = Vec::new();
    let mut ok = true;
    for scenario in &report.scenarios {
        for agg in &scenario.aggregates {
            match scenario.spec.name.as_str() {
                // Honest rings: no failures, uniformity intact.
                "honest-static" | "clustered-ring"
                    if agg.fail_rate_mean > 0.01 || agg.chi_square_p_min < 1e-6 =>
                {
                    ok = false;
                    checks.push(format!(
                        "{}:{} fail={:.3} p_min={:.1e}",
                        scenario.spec.name, agg.backend, agg.fail_rate_mean, agg.chi_square_p_min
                    ));
                }
                // Churn may fail a few draws but must stay usable.
                "crash-churn" | "flash-crowd" if agg.fail_rate_mean > 0.10 => {
                    ok = false;
                    checks.push(format!(
                        "{}:{} fail={:.3}",
                        scenario.spec.name, agg.backend, agg.fail_rate_mean
                    ));
                }
                // The capture attack must show up on the routed backend...
                "byzantine-routers"
                    if agg.backend == "chord"
                        && agg.byzantine_sample_share_mean
                            <= agg.byzantine_population_share_mean =>
                {
                    ok = false;
                    checks.push(format!(
                        "byzantine:chord capture {:.3} <= share {:.3}",
                        agg.byzantine_sample_share_mean, agg.byzantine_population_share_mean
                    ));
                }
                // ...and only there.
                "byzantine-routers"
                    if agg.backend != "chord" && agg.byzantine_sample_share_mean != 0.0 =>
                {
                    ok = false;
                    checks.push("byzantine:oracle captured samples".to_string());
                }
                _ => {}
            }
        }
    }
    format!(
        "{}: {} scenarios x {} seeds x 2 backends; json -> {}{}",
        if ok { "HOLDS" } else { "CHECK" },
        report.scenarios.len(),
        report.seeds_per_scenario,
        json_path,
        if checks.is_empty() {
            String::new()
        } else {
            format!("; flagged: {}", checks.join(", "))
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_battery_holds() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run(&ctx);
        // 3 quick scenarios x 2 backends.
        assert_eq!(t.rows.len(), 6);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
    }

    #[test]
    fn quick_battery_covers_both_backends_per_scenario() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let specs = battery(&ctx);
        assert_eq!(specs.len(), 3);
        for spec in specs {
            assert_eq!(spec.backends.len(), 2, "{}", spec.name);
        }
    }
}
