//! E16 — the adversarial scenario battery.
//!
//! Runs the `scenarios` crate's preset battery (honest-static,
//! crash-churn with a stale-oracle arm, byzantine-routers,
//! clustered-ring, flash-crowd) as a parallel multi-seed sweep against
//! every backend the specs name, emits the full structured JSON report to
//! `target/e16_scenarios.json`, and summarizes one table row per
//! scenario × backend. A second table runs the **coalition battery**:
//! every `adversary` strategy × budget `b ∈ {0.05, 0.1}` × {undefended,
//! defended}, asserting the attack→defense loop end to end.
//!
//! The headline comparisons:
//!
//! * honest-static is the control: near-zero TV distance, no failures, on
//!   both backends — Theorem 6 survives the trip from oracle to Chord.
//! * crash-churn and flash-crowd measure what churn costs: failure rate
//!   and message inflation on Chord vs the membership-only oracle; the
//!   crash-churn *stale-oracle* arm splits that delta further into
//!   staleness cost (oracle vs stale) and routing-repair cost (stale vs
//!   chord).
//! * byzantine-routers shows the capture attack: the adversary's sample
//!   share vs its population share on Chord (the oracle arm is immune).
//! * clustered-ring stresses the geometry: cost and uniformity on a ring
//!   that violates the i.i.d. placement assumption.
//! * the coalition battery demands, per strategy and budget: the
//!   undefended sampler *fails* chi-square uniformity on every seed, the
//!   defended sampler *passes* it, committee-capture probability returns
//!   to within 2× of the uniform baseline, and the defense overhead is
//!   reported in messages per accepted sample.

use adversary::majority_capture_probability;
use scenarios::{
    run_scenario_seed_traced, Backend, BackendAggregate, MaintenanceSpec, ScenarioSpec, Sweep,
    SweepReport, COMMITTEE_SIZE,
};

use crate::{fmt_f, ExpContext, Table};

/// Scales the preset battery down for the context.
fn battery(ctx: &ExpContext) -> Vec<ScenarioSpec> {
    let mut specs = ScenarioSpec::presets();
    if ctx.quick {
        specs.truncate(3);
    }
    for spec in &mut specs {
        if ctx.quick {
            spec.n_initial = 96;
            spec.workload.draws = 500;
        }
    }
    specs
}

/// `RP_SCALE=<n>`: run the scale-stress arms instead of the full battery,
/// with `n` the ring size of **both** backends' arms.
///
/// # Panics
///
/// Panics on an unusable value (non-numeric or `< 20`) instead of
/// silently falling back to the full battery — a CI typo must fail the
/// scale job loudly, not skip the scale path.
fn scale_from_env() -> Option<usize> {
    let raw = std::env::var("RP_SCALE").ok()?;
    match raw.parse::<usize>() {
        Ok(n) if n >= 20 => Some(n),
        _ => panic!("RP_SCALE={raw:?} is not a ring size >= 20"),
    }
}

/// The paper's latency/message bound, as a per-lookup hop gate: a healthy
/// Chord ring resolves `find_successor` in O(log n) hops, so the run's
/// 99th-percentile hop count must stay under `4·log₂(live) + 4` (the
/// histogram never under-reports, so the gate cannot pass on bucketing
/// slack). Returns `None` when the arm holds, or a description when it
/// does not. Oracle arms (no routing, hop tail 0) are skipped.
fn hop_tail_violation(scenario: &str, agg: &BackendAggregate) -> Option<String> {
    if agg.backend != "chord" || agg.hop_p99_max == 0 {
        return None;
    }
    let bound = 4.0 * agg.live_peers_mean.max(2.0).log2() + 4.0;
    (agg.hop_p99_max as f64 > bound).then(|| {
        format!(
            "{scenario}:chord hop_p99 {} > O(log n) bound {bound:.1}",
            agg.hop_p99_max
        )
    })
}

/// `RP_TRACE=<path>`: replay one representative chord arm with lookup
/// tracing on and write the flight recorder as a Chrome `trace_event`
/// file (load in `chrome://tracing` or Perfetto). The export is
/// schema-checked in process before it is written, so a malformed trace
/// fails the run instead of failing the viewer later.
fn export_trace_if_requested(ctx: &ExpContext) {
    let Ok(path) = std::env::var("RP_TRACE") else {
        return;
    };
    // The representative arm: Byzantine routers on a small ring, so the
    // trace shows honest and forged hops side by side.
    let mut spec = ScenarioSpec::preset_byzantine_routers();
    spec.n_initial = 96;
    spec.workload.draws = 200;
    spec.telemetry.flight_recorder_capacity = 256;
    let (record, dump) = run_scenario_seed_traced(&spec, Backend::Chord, ctx.stream(16, 3));
    let json = dump.chrome_trace_json();
    let value: serde_json::Value =
        serde_json::from_str(&json).expect("chrome trace export must be valid JSON");
    let events = value
        .get("traceEvents")
        .and_then(|v| v.as_seq())
        .expect("chrome trace export must carry a traceEvents array");
    assert!(
        !events.is_empty(),
        "traced run recorded {} lookups but exported no events",
        dump.recorded
    );
    std::fs::write(&path, &json)
        .unwrap_or_else(|e| panic!("RP_TRACE={path}: cannot write trace: {e}"));
    println!(
        "RP_TRACE: {} events from {} lookups (digest {}) -> {path}",
        events.len(),
        dump.recorded,
        record.trace_digest
    );
}

/// On a `CHECK` verdict, replays the first chord arm of the report with
/// tracing forced on and writes the flight-recorder dump under `target/`
/// — the hop-level post-mortem for whatever the gate flagged. Records are
/// pure functions of `(spec, backend, seed)`, so the replay reproduces
/// the failing run's routing exactly.
fn dump_flight_on_check(verdict: String, report: &SweepReport, file: &str) -> String {
    if !verdict.starts_with("CHECK") {
        return verdict;
    }
    let Some((mut spec, seed)) = report.scenarios.iter().find_map(|s| {
        s.runs
            .iter()
            .find(|r| r.backend == "chord")
            .map(|r| (s.spec.clone(), r.seed))
    }) else {
        return verdict;
    };
    // The replay's flight ring keeps the *last* N traces while tail
    // exemplars keep the *first* claimant per window bucket, so a
    // production-sized ring would usually have evicted the cited ops by
    // run end. Record fields are capacity-independent (the digest covers
    // every push), so widening the ring for the post-mortem changes
    // nothing but trace retention.
    spec.telemetry.flight_recorder_capacity = 1 << 20;
    let (record, dump) = run_scenario_seed_traced(&spec, Backend::Chord, seed);
    // The windowed series and attributed health events travel with the
    // hop-level flight traces: the post-mortem shows *when* the run went
    // bad, not just which lookups were in flight.
    let mut health = String::new();
    health.push_str(&format!(
        "health: {} windows, {} breaches, ttd {}, ttr {}\n",
        record.watchdog_windows,
        record.health_breaches,
        record.time_to_detect,
        record.time_to_recover
    ));
    for line in &record.health_events {
        health.push_str(&format!("  {line}\n"));
    }
    for (gauge, column) in &record.series {
        let rendered: Vec<String> = column.iter().map(|v| format!("{v:.3}")).collect();
        health.push_str(&format!("series {gauge}: [{}]\n", rendered.join(", ")));
    }
    health.push_str(&explain_tail(&record, &dump));
    let text = format!(
        "flight recorder: scenario {:?}, backend chord, seed {seed}\n{health}{}",
        spec.name,
        dump.pretty()
    );
    let path = persist_named_report(&text, file);
    format!("{verdict}; flight -> {path}")
}

/// The "why" section of a flight dump: the top span contributors (where
/// the simulated routing cost actually went — a degraded run's leader is
/// a retry/fallback span, not the finger walk) and every tail exemplar
/// resolved back to its retained trace, so a breaching histogram bucket
/// names a concrete replayable lookup instead of an anonymous count.
fn explain_tail(record: &scenarios::SeedRunRecord, dump: &telemetry::TraceDump) -> String {
    let mut out = String::new();
    let mut spans: Vec<(&String, u64)> = record
        .span_costs
        .iter()
        .filter(|&(_, &cost)| cost > 0)
        .map(|(name, &cost)| (name, cost))
        .collect();
    spans.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let total: u64 = spans.iter().map(|(_, c)| c).sum();
    out.push_str("top spans:\n");
    for (name, cost) in spans.iter().take(3) {
        out.push_str(&format!(
            "  {name}: {cost} ({:.1}%)\n",
            100.0 * *cost as f64 / total.max(1) as f64
        ));
    }
    let by_ordinal: std::collections::BTreeMap<u64, &telemetry::LookupTrace> =
        dump.traces.iter().map(|t| (t.ordinal, t)).collect();
    out.push_str(&format!(
        "tail exemplars ({} captured):\n",
        record.tail_exemplars.len()
    ));
    for e in &record.tail_exemplars {
        match by_ordinal.get(&e.trace_id) {
            Some(t) => out.push_str(&format!(
                "  exemplar window {} value {} (bucket <= {}) -> op {}: {} hops, {:?}\n",
                e.window,
                e.value,
                e.bucket_upper,
                t.ordinal,
                t.hops.len(),
                t.outcome
            )),
            None => out.push_str(&format!(
                "  exemplar window {} value {} (bucket <= {}) -> op {} (not retained)\n",
                e.window, e.value, e.bucket_upper, e.trace_id
            )),
        }
    }
    out
}

/// The scale-stress battery at its reference size: 10⁵ peers on *both*
/// arms, rescaled together by [`Sweep::with_scale`]. The chord arm used
/// to run a decade smaller because the routed overlay carried ~1.2 KB of
/// routing state per node; the compact `RoutingArena` (~130 B/node,
/// `BENCH_chord_scale.json`) plus O(1) incremental ring verification
/// removed that gap and carried the arm to n = 10⁶. The next wall was
/// the maintenance cadence itself — a classic round routes one
/// `fix_finger` lookup per live node, O(n) per round — so the chord arm
/// now runs **batched incremental maintenance** (`BatchedDrain`):
/// each tick repairs only what the churn actually invalidated,
/// amortized O(changes · log n), which is what lets `RP_SCALE=10000000`
/// run a 10⁷-node chord overlay inside CI's wall-clock budget. The
/// cadence (every 500 ticks, 20 rounds over the horizon) is now about
/// staleness, not cost; the leftover staleness is reported per record.
fn scale_battery() -> Vec<ScenarioSpec> {
    let base = ScenarioSpec::preset_scale_stress();
    let mut oracle = base.clone();
    oracle.name = "scale-stress-oracle".to_string();
    oracle.backends = vec![Backend::Oracle];
    oracle.n_initial = REFERENCE_ORACLE_N;
    let mut chord = base;
    chord.name = "scale-stress-chord".to_string();
    chord.backends = vec![Backend::Chord];
    chord.n_initial = REFERENCE_ORACLE_N;
    chord.chord.stabilize_every_ticks = 500;
    chord.chord.maintenance = MaintenanceSpec::BatchedDrain;
    vec![oracle, chord]
}

/// Ring size of the reference scale run's oracle arm (`RP_SCALE` rescales
/// relative to this).
const REFERENCE_ORACLE_N: usize = 100_000;

/// The `RP_SCALE` run: both scale-stress arms, deterministically, with the
/// JSON report under `target/`.
fn run_scale(ctx: &ExpContext, oracle_n: usize) -> Table {
    let report = Sweep::new(scale_battery())
        .with_scale(oracle_n as f64 / REFERENCE_ORACLE_N as f64)
        .with_master_seed(ctx.stream(16, 1))
        .with_seeds(2)
        .run();

    let json = report.to_json_pretty();
    let json_path = persist_named_report(&json, "e16_scale.json");

    let mut table = Table::new(
        format!("E16-scale: scale-stress at n = {oracle_n} (oracle and chord)"),
        "compact routing arenas, bulk construction, incremental verification and batched \
         O(changes log n) maintenance carry 10^4-10^7-node rings through churn and \
         sampling deterministically",
        &[
            "scenario",
            "backend",
            "n_initial",
            "live",
            "fail_rate",
            "msgs/draw",
            "hop_p99",
            "draw_p99",
            "tv",
            "staleness",
            "backlog",
            "ttd",
            "ttr",
        ],
    );
    let mut ok = true;
    let mut flagged = Vec::new();
    for scenario in &report.scenarios {
        for agg in &scenario.aggregates {
            table.push_row(vec![
                scenario.spec.name.clone(),
                agg.backend.clone(),
                scenario.spec.n_initial.to_string(),
                fmt_f(agg.live_peers_mean),
                fmt_f(agg.fail_rate_mean),
                fmt_f(agg.messages_mean),
                agg.hop_p99_max.to_string(),
                agg.draw_msgs_p99_max.to_string(),
                fmt_f(agg.tv_mean),
                fmt_f(agg.finger_staleness_mean),
                fmt_f(agg.maintenance_backlog_mean),
                agg.time_to_detect_max.to_string(),
                agg.time_to_recover_min.to_string(),
            ]);
            if let Some(violation) = hop_tail_violation(&scenario.spec.name, agg) {
                ok = false;
                flagged.push(violation);
            }
            if agg.fail_rate_mean > 0.05 {
                ok = false;
                flagged.push(format!(
                    "{}:{} fail={:.3}",
                    scenario.spec.name, agg.backend, agg.fail_rate_mean
                ));
            }
            if agg.live_peers_mean < scenario.spec.n_initial as f64 * 0.5 {
                ok = false;
                flagged.push(format!(
                    "{}:{} live collapsed to {:.0}",
                    scenario.spec.name, agg.backend, agg.live_peers_mean
                ));
            }
            // The drain cadence must keep the routed overlay essentially
            // fresh: standing staleness above 5% of fingers means the
            // batched maintenance stopped keeping up.
            if agg.backend == "chord" && agg.finger_staleness_mean > 0.05 {
                ok = false;
                flagged.push(format!(
                    "{}: staleness {:.3}",
                    scenario.spec.name, agg.finger_staleness_mean
                ));
            }
            // The batched arm must end every seed healthy: whatever the
            // churn phase breached, the final drain rounds recover it
            // before the run ends (ttr −1 = recovery unconfirmed).
            if agg.backend == "chord" && agg.time_to_recover_min < 0 {
                ok = false;
                flagged.push(format!(
                    "{}: unhealthy at run end (ttr {})",
                    scenario.spec.name, agg.time_to_recover_min
                ));
            }
        }
    }
    let verdict = format!(
        "{}: 2 arms x {} seeds; json -> {}{}",
        if ok { "HOLDS" } else { "CHECK" },
        report.seeds_per_scenario,
        json_path,
        if flagged.is_empty() {
            String::new()
        } else {
            format!("; flagged: {}", flagged.join(", "))
        }
    );
    table.set_verdict(dump_flight_on_check(
        verdict,
        &report,
        "e16_scale_flight.txt",
    ));
    table
}

/// Runs the preset sweep, the coalition battery, the failure-domain
/// battery and the async-engine battery, rendering one summary table for
/// each.
///
/// `RP_COALITION=only` skips the preset sweep (the CI smoke job's
/// dedicated coalition step); `RP_COALITION=off` skips the coalition
/// battery; `RP_DOMAINS=1`/`only` runs just the failure-domain battery
/// (the `domain-smoke` CI job) and `RP_DOMAINS=0`/`off` skips it;
/// `RP_ENGINE=1`/`only` runs just the async-engine battery (the
/// `engine-smoke` CI job) and `RP_ENGINE=0`/`off` skips it;
/// `RP_SCALE=<n>` runs the scale arms instead of everything else.
pub fn run(ctx: &ExpContext) -> Vec<Table> {
    export_trace_if_requested(ctx);
    if let Some(oracle_n) = scale_from_env() {
        return vec![run_scale(ctx, oracle_n)];
    }
    let domains = std::env::var("RP_DOMAINS").unwrap_or_default();
    match domains.as_str() {
        "1" | "only" => return vec![run_domains(ctx)],
        "" | "0" | "off" | "on" => {}
        // A CI typo must fail the job loudly, not silently run the wrong
        // battery set (same policy as RP_SCALE / RP_COALITION).
        other => panic!("RP_DOMAINS={other:?} is not one of 1/only/on/off/0"),
    }
    let engine = std::env::var("RP_ENGINE").unwrap_or_default();
    match engine.as_str() {
        "1" | "only" => return vec![run_engine(ctx)],
        "" | "0" | "off" | "on" => {}
        other => panic!("RP_ENGINE={other:?} is not one of 1/only/on/off/0"),
    }
    let mode = std::env::var("RP_COALITION").unwrap_or_default();
    let mut tables = match mode.as_str() {
        "only" => vec![run_coalition(ctx)],
        "off" => vec![run_presets(ctx)],
        "" | "on" => vec![run_presets(ctx), run_coalition(ctx)],
        other => panic!("RP_COALITION={other:?} is not one of only/off/on"),
    };
    if matches!(domains.as_str(), "" | "on") {
        tables.push(run_domains(ctx));
    }
    if matches!(engine.as_str(), "" | "on") {
        tables.push(run_engine(ctx));
    }
    tables
}

/// The failure-domain battery at sizes whose outage edges land exactly on
/// watchdog window boundaries (the realized window is
/// `max(500, 5·n_initial)` draws), so the per-window success-ratio rule
/// sees one clean window, two outage windows, and one healed window on
/// every arm.
fn domain_battery_specs(ctx: &ExpContext) -> Vec<ScenarioSpec> {
    let mut specs = ScenarioSpec::domain_battery();
    for spec in &mut specs {
        if ctx.quick {
            spec.n_initial = 96; // window 500
            spec.workload.draws = 2_000;
        } else {
            spec.n_initial = 256; // window 1280
            spec.workload.draws = 5_120;
        }
    }
    specs
}

/// The failure-domain battery: one correlated rack/region outage (25% of
/// the ring crashing as a single arc mid-run, healing later) crossed with
/// the resilience knobs — {baseline, scored, retry, scored+retry} — all
/// chord-only, all undefended.
fn run_domains(ctx: &ExpContext) -> Table {
    let seeds = if ctx.quick { 2 } else { 3 };
    let report = Sweep::new(domain_battery_specs(ctx))
        .with_master_seed(ctx.stream(16, 4))
        .with_seeds(seeds)
        .run();
    let json = report.to_json_pretty();
    let json_path = persist_named_report(&json, "e16_domains.json");

    let mut table = Table::new(
        "E16-domains: correlated domain outage vs adaptive routing (chord)",
        "a rack-sized correlated crash partitions plain routing; peer scoring plus \
         retry/fallback degradation holds lookup success through the outage at an \
         attributed extra cost, and the watchdog pins the breach on the failed domains",
        &[
            "scenario",
            "live",
            "fail_rate",
            "msgs/draw",
            "latency",
            "outage_ok_min",
            "retries",
            "fallbacks",
            "dom_events",
            "ttd",
            "ttr",
        ],
    );
    for scenario in &report.scenarios {
        for agg in &scenario.aggregates {
            table.push_row(vec![
                scenario.spec.name.clone(),
                fmt_f(agg.live_peers_mean),
                fmt_f(agg.fail_rate_mean),
                fmt_f(agg.messages_mean),
                fmt_f(agg.latency_mean),
                fmt_f(agg.outage_success_ratio_min),
                agg.counters
                    .get("lookup.retries")
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                agg.counters
                    .get("lookup.fallback_depth")
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                agg.counters
                    .get("domain.events")
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
                agg.time_to_detect_max.to_string(),
                agg.time_to_recover_min.to_string(),
            ]);
        }
    }
    table.set_verdict(dump_flight_on_check(
        domains_verdict(&report, seeds, &json_path),
        &report,
        "e16_domains_flight.txt",
    ));
    table
}

/// The failure-domain acceptance gates: the outage must hurt the plain
/// arm, the full adaptive arm must hold ≥ 99% success *during* the
/// outage with its degradation cost attributed, every arm's watchdog
/// must detect the outage promptly and confirm recovery by run end, and
/// the success/latency deltas vs the non-adaptive baseline are reported.
fn domains_verdict(report: &SweepReport, seeds: u32, json_path: &str) -> String {
    let agg = |name: &str| {
        report
            .scenarios
            .iter()
            .find(|s| s.spec.name == name)
            .map(|s| &s.aggregates[0])
    };
    let mut checks = Vec::new();
    let mut ok = true;
    let (Some(base), Some(adaptive)) =
        (agg("domain-outage-baseline"), agg("domain-outage-adaptive"))
    else {
        return format!("CHECK: battery arms missing; json -> {json_path}");
    };
    // Same outage, same draws, on both comparison arms.
    if base.outage_draws_sum == 0 || base.outage_draws_sum != adaptive.outage_draws_sum {
        ok = false;
        checks.push(format!(
            "outage draws mismatch (baseline {}, adaptive {})",
            base.outage_draws_sum, adaptive.outage_draws_sum
        ));
    }
    // The correlated crash must actually break plain routing...
    if base.outage_success_ratio_mean >= 0.99 {
        ok = false;
        checks.push(format!(
            "baseline survived the outage unscathed ({:.4})",
            base.outage_success_ratio_mean
        ));
    }
    // ...while the full adaptive arm holds the SLO on every seed.
    if adaptive.outage_success_ratio_min < 0.99 {
        ok = false;
        checks.push(format!(
            "adaptive arm broke the 99% during-outage SLO ({:.4})",
            adaptive.outage_success_ratio_min
        ));
    }
    // Degradation is paid for and attributed, never free.
    if adaptive
        .counters
        .get("lookup.retries")
        .copied()
        .unwrap_or(0)
        == 0
        || adaptive
            .counters
            .get("lookup.fallback_depth")
            .copied()
            .unwrap_or(0)
            == 0
    {
        ok = false;
        checks.push("adaptive arm shows no attributed retry/fallback cost".to_string());
    }
    for scenario in &report.scenarios {
        let a = &scenario.aggregates[0];
        let name = &scenario.spec.name;
        // Two transitions (crash, heal) over two domains, every seed.
        let events = a.counters.get("domain.events").copied().unwrap_or(0);
        if events != 4 * u64::from(seeds) {
            ok = false;
            checks.push(format!("{name}: domain.events {events} != {}", 4 * seeds));
        }
        // The watchdog must flag the outage within 2 windows of the
        // crash on every seed...
        if !(0..=2).contains(&a.time_to_detect_max) {
            ok = false;
            checks.push(format!(
                "{name}: ttd {} outside [0, 2]",
                a.time_to_detect_max
            ));
        }
        // ...and the heal must leave every seed healthy by run end.
        if a.time_to_recover_min < 0 {
            ok = false;
            checks.push(format!(
                "{name}: unhealthy at run end (ttr {})",
                a.time_to_recover_min
            ));
        }
    }
    format!(
        "{}: 4 arms x {seeds} seeds; outage success {:.3} -> {:.3}, \
         latency/draw {:.1} -> {:.1}; json -> {}{}",
        if ok { "HOLDS" } else { "CHECK" },
        base.outage_success_ratio_mean,
        adaptive.outage_success_ratio_mean,
        base.latency_mean,
        adaptive.latency_mean,
        json_path,
        if checks.is_empty() {
            String::new()
        } else {
            format!("; flagged: {}", checks.join(", "))
        }
    )
}

/// The async-engine battery sized for the context: the quick shape is
/// the unit suite's (128-node ring, 2k in-flight lookups per arm); the
/// full shape pushes 10k lookups through a 10k-wide in-flight window
/// per arm.
fn engine_battery_specs(ctx: &ExpContext) -> Vec<ScenarioSpec> {
    let mut specs = ScenarioSpec::engine_battery();
    for spec in &mut specs {
        if ctx.quick {
            spec.n_initial = 128;
            spec.workload.draws = 400;
        } else {
            spec.n_initial = 256;
            spec.workload.draws = 1_000;
            let engine = spec
                .engine
                .as_mut()
                .expect("engine battery arms carry an engine phase");
            engine.lookups = 10_000;
            engine.inflight = 10_000;
        }
    }
    specs
}

/// The in-harness zero-latency equivalence spot check: one ring, one
/// origin, 256 lookups driven *concurrently* through the engine vs the
/// sequential sync walk — owner, point, hops and attributed cost must
/// match bit-for-bit. The arbitrary-ring/fault property battery lives in
/// `chord/tests/engine_equivalence.rs`; this pins the same contract
/// inside the experiment harness, so a regression fails the battery and
/// not just the unit suite.
fn equivalence_violation(seed: u64) -> Option<String> {
    use chord::{ChordConfig, ChordNetwork, Completion, EngineConfig, FaultPlan, LookupEngine};
    use keyspace::KeySpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let space = KeySpace::full();
    let mut rng = StdRng::seed_from_u64(seed);
    let points = space.random_points(&mut rng, 128);
    let sync_net = ChordNetwork::bootstrap(space, points.clone(), ChordConfig::default());
    let async_net = ChordNetwork::bootstrap(space, points, ChordConfig::default());
    let origin = sync_net.live_ids()[0];
    let targets: Vec<_> = (0..256).map(|_| space.random_point(&mut rng)).collect();

    let mut engine = LookupEngine::new(EngineConfig {
        seed,
        ..EngineConfig::default()
    });
    let tags: Vec<u64> = targets
        .iter()
        .map(|&t| engine.submit(&async_net, origin, t))
        .collect();
    engine.drain(&async_net, &FaultPlan::none());
    let by_tag: std::collections::BTreeMap<u64, &Completion> =
        engine.completions().iter().map(|c| (c.tag, c)).collect();

    let mut walk_rng = StdRng::seed_from_u64(seed ^ 0x51DE);
    for (tag, &t) in tags.iter().zip(&targets) {
        let done = by_tag.get(tag)?;
        let sync =
            sync_net.find_successor_with_policy(origin, t, &FaultPlan::none(), &mut walk_rng);
        match (&done.result, &sync) {
            (Ok(a), Ok(s))
                if a.node == s.node
                    && a.point == s.point
                    && a.hops == s.hops
                    && a.cost == s.cost => {}
            (Err(a), Err(s)) if a == s => {}
            (a, s) => {
                return Some(format!(
                    "engine/sync divergence on target {t:?}: {a:?} vs {s:?}"
                ))
            }
        }
    }
    None
}

/// The async-engine battery: both `engine-slowdomain` arms — baseline
/// deadlines-only vs adaptive deadlines+retry/fallback — against a
/// latency-skewed (not dead) sector mid-run, plus two determinism pins:
/// the in-harness zero-latency sync-equivalence spot check and a full
/// byte-identical sweep replay.
fn run_engine(ctx: &ExpContext) -> Table {
    let seeds = if ctx.quick { 2 } else { 3 };
    let specs = engine_battery_specs(ctx);
    let master = ctx.stream(16, 5);
    let report = Sweep::new(specs.clone())
        .with_master_seed(master)
        .with_seeds(seeds)
        .run();
    let replay = Sweep::new(specs)
        .with_master_seed(master)
        .with_seeds(seeds)
        .run();
    let json = report.to_json_pretty();
    let replay_identical = json == replay.to_json_pretty();
    let json_path = persist_named_report(&json, "e16_engine.json");

    let mut table = Table::new(
        "E16-engine: async in-flight lookups vs a slow domain (chord)",
        "thousands of lookups in flight over one deterministic event loop; a \
         latency-skewed sector breaches the in-flight-age SLO within 2 windows, \
         deadlines+retries pay attributed timeouts, and the whole battery replays \
         byte-identically",
        &[
            "scenario",
            "live",
            "lookups",
            "done",
            "timeouts",
            "age_p999",
            "age_p999_max",
            "ttd",
            "ttr",
        ],
    );
    for scenario in &report.scenarios {
        for agg in &scenario.aggregates {
            table.push_row(vec![
                scenario.spec.name.clone(),
                fmt_f(agg.live_peers_mean),
                agg.engine_lookups_sum.to_string(),
                agg.engine_completed_sum.to_string(),
                agg.engine_timeouts_sum.to_string(),
                fmt_f(agg.engine_age_p999_mean),
                agg.engine_age_p999_max.to_string(),
                agg.engine_ttd_max.to_string(),
                agg.engine_ttr_min.to_string(),
            ]);
        }
    }
    let equiv = equivalence_violation(ctx.stream(16, 6));
    table.set_verdict(dump_flight_on_check(
        engine_verdict(&report, replay_identical, equiv, seeds, &json_path),
        &report,
        "e16_engine_flight.txt",
    ));
    table
}

/// The async-engine acceptance gates: exactly-once completion, prompt
/// slow-sector detection (ttd ≤ 2 windows) with recovery confirmed by
/// run end, a visible latency tail on both arms, attributed deadline
/// cost on the adaptive arm, and bit-for-bit determinism (sync
/// equivalence + sweep replay). The adaptive arm's p999 is *reported*,
/// not gated against the baseline: under a regional delay fault the slow
/// owner probe is unavoidable, so preemptive retry bounds attempts, not
/// the worst-case age.
fn engine_verdict(
    report: &SweepReport,
    replay_identical: bool,
    equivalence: Option<String>,
    seeds: u32,
    json_path: &str,
) -> String {
    let agg = |name: &str| {
        report
            .scenarios
            .iter()
            .find(|s| s.spec.name == name)
            .map(|s| &s.aggregates[0])
    };
    let mut checks = Vec::new();
    let mut ok = true;
    if !replay_identical {
        ok = false;
        checks.push("sweep replay diverged (report not byte-identical)".to_string());
    }
    if let Some(problem) = equivalence {
        ok = false;
        checks.push(problem);
    }
    let (Some(base), Some(adaptive)) = (
        agg("engine-slowdomain-baseline"),
        agg("engine-slowdomain-adaptive"),
    ) else {
        return format!("CHECK: battery arms missing; json -> {json_path}");
    };
    for (name, a) in [
        ("engine-slowdomain-baseline", base),
        ("engine-slowdomain-adaptive", adaptive),
    ] {
        // Every submitted lookup completes exactly once, on every seed.
        if a.engine_lookups_sum == 0 || a.engine_completed_sum != a.engine_lookups_sum {
            ok = false;
            checks.push(format!(
                "{name}: {}/{} lookups completed",
                a.engine_completed_sum, a.engine_lookups_sum
            ));
        }
        // The in-flight-age rule must flag the slow sector within 2
        // windows of the fault onset, on every seed...
        if !(0..=2).contains(&a.engine_ttd_max) {
            ok = false;
            checks.push(format!(
                "{name}: engine ttd {} outside [0, 2]",
                a.engine_ttd_max
            ));
        }
        // ...and the heal must leave every seed recovered by run end.
        if a.engine_ttr_min < 0 {
            ok = false;
            checks.push(format!(
                "{name}: engine unhealthy at run end (ttr {})",
                a.engine_ttr_min
            ));
        }
        // The fault is visible in the tail: the slowed sector multiplies
        // one wire delay (4 ticks) by 32, so a p999 under one slow hop
        // means the skew never reached the in-flight window.
        if a.engine_age_p999_max < 128 {
            ok = false;
            checks.push(format!(
                "{name}: age p999 {} never saw a slow hop",
                a.engine_age_p999_max
            ));
        }
    }
    // The adaptive arm's deadlines actually fired and were accounted.
    if adaptive.engine_timeouts_sum == 0 {
        ok = false;
        checks.push("adaptive arm fired no deadlines".to_string());
    }
    format!(
        "{}: 2 arms x {seeds} seeds; replay {}; age p999 max {} -> {} (baseline -> adaptive); json -> {}{}",
        if ok { "HOLDS" } else { "CHECK" },
        if replay_identical {
            "byte-identical"
        } else {
            "DIVERGED"
        },
        base.engine_age_p999_max,
        adaptive.engine_age_p999_max,
        json_path,
        if checks.is_empty() {
            String::new()
        } else {
            format!("; flagged: {}", checks.join(", "))
        }
    )
}

/// The preset battery sweep and its table.
fn run_presets(ctx: &ExpContext) -> Table {
    let specs = battery(ctx);
    let seeds = if ctx.quick { 4 } else { 8 };
    let report = Sweep::new(specs)
        .with_master_seed(ctx.stream(16, 0))
        .with_seeds(seeds)
        .run();

    let json = report.to_json_pretty();
    let json_path = persist_report(&json);

    let mut table = Table::new(
        "E16: adversarial scenario battery (oracle vs chord)",
        "uniformity holds on honest rings under every topology; churn costs messages not \
         correctness; Byzantine routers capture samples only on the routed backend",
        &[
            "scenario",
            "backend",
            "live",
            "fail_rate",
            "msgs/draw",
            "hop_p99",
            "draw_p99",
            "tv",
            "byz_pop",
            "byz_samples",
            "ttd",
            "ttr",
        ],
    );
    for scenario in &report.scenarios {
        for agg in &scenario.aggregates {
            table.push_row(vec![
                scenario.spec.name.clone(),
                agg.backend.clone(),
                fmt_f(agg.live_peers_mean),
                fmt_f(agg.fail_rate_mean),
                fmt_f(agg.messages_mean),
                agg.hop_p99_max.to_string(),
                agg.draw_msgs_p99_max.to_string(),
                fmt_f(agg.tv_mean),
                fmt_f(agg.byzantine_population_share_mean),
                fmt_f(agg.byzantine_sample_share_mean),
                agg.time_to_detect_max.to_string(),
                agg.time_to_recover_min.to_string(),
            ]);
        }
    }
    table.set_verdict(dump_flight_on_check(
        verdict(&report, &json_path),
        &report,
        "e16_flight.txt",
    ));
    table
}

/// The coalition battery: strategy × budget × {undefended, defended},
/// with per-arm bias and committee-capture verdicts.
fn run_coalition(ctx: &ExpContext) -> Table {
    // Quick mode shrinks to the 10% budget at small n — the smoke shape;
    // the full battery is the acceptance grid.
    let (fractions, seeds): (&[f64], u32) = if ctx.quick {
        (&[0.10], 2)
    } else {
        (&[0.05, 0.10], 6)
    };
    let mut specs = ScenarioSpec::coalition_battery(fractions);
    if ctx.quick {
        for spec in &mut specs {
            spec.n_initial = 96;
            spec.workload.draws = 1_500;
        }
    }
    let report = Sweep::new(specs)
        .with_master_seed(ctx.stream(16, 2))
        .with_seeds(seeds)
        .run();
    let json = report.to_json_pretty();
    let json_path = persist_named_report(&json, "e16_coalition.json");

    let mut table = Table::new(
        "E16-coalition: coalition attacks vs the verified-sampling defense (chord)",
        "every coalition strategy breaks chi-square uniformity undefended and is \
         restored by quorum-verified redundant sampling, with committee capture back at \
         the uniform baseline and the defense overhead priced in messages per sample",
        &[
            "scenario",
            "live",
            "byz_pop",
            "byz_share",
            "chi_p_max",
            "capture_p",
            "capture_uniform",
            "msgs/draw",
            "quorum_fails",
            "ttd",
            "ttr",
        ],
    );
    for scenario in &report.scenarios {
        for agg in &scenario.aggregates {
            table.push_row(vec![
                scenario.spec.name.clone(),
                fmt_f(agg.live_peers_mean),
                fmt_f(agg.byzantine_population_share_mean),
                fmt_f(agg.byzantine_sample_share_mean),
                format!("{:.1e}", agg.chi_square_p_max),
                format!("{:.1e}", agg.committee_capture_p_mean),
                format!("{:.1e}", agg.committee_capture_p_uniform_mean),
                fmt_f(agg.messages_mean),
                fmt_f(agg.quorum_failures_mean),
                agg.time_to_detect_max.to_string(),
                agg.time_to_recover_min.to_string(),
            ]);
        }
    }
    table.set_verdict(dump_flight_on_check(
        coalition_verdict(&report, ctx.quick, &json_path),
        &report,
        "e16_coalition_flight.txt",
    ));
    table
}

/// Pairs each undefended arm with its `-defended` partner and checks the
/// acceptance criteria.
fn coalition_verdict(report: &SweepReport, quick: bool, json_path: &str) -> String {
    // Capture probabilities are recomputed from the *mean* sample share
    // (capture is convex in the share, so per-seed means overweight noisy
    // high seeds). Quick mode runs 2 seeds × 1,500 draws, so its share
    // estimate is noisier; the restoration bound widens accordingly.
    let restore_bar = if quick { 3.0 } else { 2.0 };
    let mut checks = Vec::new();
    let mut ok = true;
    let mut pairs = 0;
    for scenario in &report.scenarios {
        let name = &scenario.spec.name;
        if name.ends_with("-defended") {
            continue;
        }
        let attack = &scenario.aggregates[0];
        let Some(defended) = report
            .scenarios
            .iter()
            .find(|s| s.spec.name == format!("{name}-defended"))
            .map(|s| &s.aggregates[0])
        else {
            ok = false;
            checks.push(format!("{name}: no defended arm"));
            continue;
        };
        pairs += 1;
        // Both arms must actually sample: trial exhaustion would leave
        // the bias (and its chi-square, sentinel -1.0) unmeasured, not
        // absent.
        if attack.fail_rate_mean > 0.05 || defended.fail_rate_mean > 0.05 {
            ok = false;
            checks.push(format!(
                "{name}: draws failing (attack {:.3}, defended {:.3})",
                attack.fail_rate_mean, defended.fail_rate_mean
            ));
        }
        // Attack lands: uniformity measured and failing on every seed.
        if attack.chi_square_p_max > 1e-4 || attack.chi_square_p_max < 0.0 {
            ok = false;
            checks.push(format!(
                "{name}: attack p_max {:.1e}",
                attack.chi_square_p_max
            ));
        }
        // Defense restores: uniformity passes on every seed.
        if defended.chi_square_p_min < 1e-4 {
            ok = false;
            checks.push(format!(
                "{name}: defended p_min {:.1e}",
                defended.chi_square_p_min
            ));
        }
        // Committee capture returns to the uniform baseline's
        // neighbourhood.
        let restored =
            majority_capture_probability(defended.byzantine_sample_share_mean, COMMITTEE_SIZE);
        let baseline =
            majority_capture_probability(defended.byzantine_population_share_mean, COMMITTEE_SIZE)
                .max(1e-12);
        if restored > restore_bar * baseline {
            ok = false;
            checks.push(format!(
                "{name}: capture {restored:.1e} > {restore_bar}x baseline {baseline:.1e}"
            ));
        }
        // The defense must cost something measurable — a free defense
        // means the redundant lookups silently stopped running.
        if defended.messages_mean <= attack.messages_mean {
            ok = false;
            checks.push(format!(
                "{name}: defense overhead vanished ({} <= {})",
                defended.messages_mean, attack.messages_mean
            ));
        }
        // The watchdog's chi-drift rule must flag the undefended attack
        // within 2 draw windows of the fault (active from window 0) on
        // every seed...
        if !(0..=2).contains(&attack.time_to_detect_max) {
            ok = false;
            checks.push(format!(
                "{name}: attack ttd {} outside [0, 2]",
                attack.time_to_detect_max
            ));
        }
        // ...and the defended arm must end every seed healthy (recovery
        // confirmed, or no breach at all).
        if defended.time_to_recover_min < 0 {
            ok = false;
            checks.push(format!(
                "{name}: defended arm unhealthy at run end (ttr {})",
                defended.time_to_recover_min
            ));
        }
    }
    format!(
        "{}: {} attack/defense pairs x {} seeds; json -> {}{}",
        if ok && pairs > 0 { "HOLDS" } else { "CHECK" },
        pairs,
        report.seeds_per_scenario,
        json_path,
        if checks.is_empty() {
            String::new()
        } else {
            format!("; flagged: {}", checks.join(", "))
        }
    )
}

/// Writes the JSON report under `target/`; falls back to stdout-only when
/// the directory is not writable (e.g. read-only CI caches).
fn persist_report(json: &str) -> String {
    persist_named_report(json, "e16_scenarios.json")
}

fn persist_named_report(json: &str, file: &str) -> String {
    let path = std::path::Path::new("target").join(file);
    match std::fs::create_dir_all("target").and_then(|()| std::fs::write(&path, json)) {
        Ok(()) => path.display().to_string(),
        Err(_) => {
            println!("{json}");
            "(stdout)".to_string()
        }
    }
}

fn verdict(report: &SweepReport, json_path: &str) -> String {
    let mut checks = Vec::new();
    let mut ok = true;
    for scenario in &report.scenarios {
        for agg in &scenario.aggregates {
            // The paper's O(log n) bound is a *tail* claim: gate the
            // worst per-seed hop p99, not the mean.
            if let Some(violation) = hop_tail_violation(&scenario.spec.name, agg) {
                ok = false;
                checks.push(violation);
            }
            // The stale-oracle arm is *supposed* to fail draws (that is
            // the staleness cost it measures); it only has to stay
            // usable.
            if agg.backend == "stale-oracle" {
                if agg.fail_rate_mean == 0.0 || agg.fail_rate_mean > 0.6 {
                    ok = false;
                    checks.push(format!(
                        "{}:stale-oracle fail={:.3} (expected in (0, 0.6])",
                        scenario.spec.name, agg.fail_rate_mean
                    ));
                }
                continue;
            }
            match scenario.spec.name.as_str() {
                // Honest rings: no failures, uniformity intact.
                "honest-static" | "clustered-ring"
                    if agg.fail_rate_mean > 0.01 || agg.chi_square_p_min < 1e-6 =>
                {
                    ok = false;
                    checks.push(format!(
                        "{}:{} fail={:.3} p_min={:.1e}",
                        scenario.spec.name, agg.backend, agg.fail_rate_mean, agg.chi_square_p_min
                    ));
                }
                // Churn may fail a few draws but must stay usable.
                "crash-churn" | "flash-crowd" | "scale-stress" if agg.fail_rate_mean > 0.10 => {
                    ok = false;
                    checks.push(format!(
                        "{}:{} fail={:.3}",
                        scenario.spec.name, agg.backend, agg.fail_rate_mean
                    ));
                }
                // The watchdog must flag the churn fault promptly on
                // every seed: crash churn is active from window 0, so
                // the first breach may lag it by at most 2 windows.
                "crash-churn"
                    if agg.backend == "chord" && !(0..=2).contains(&agg.time_to_detect_max) =>
                {
                    ok = false;
                    checks.push(format!(
                        "crash-churn:chord ttd {} outside [0, 2]",
                        agg.time_to_detect_max
                    ));
                }
                // The capture attack must show up on the routed backend...
                "byzantine-routers"
                    if agg.backend == "chord"
                        && agg.byzantine_sample_share_mean
                            <= agg.byzantine_population_share_mean =>
                {
                    ok = false;
                    checks.push(format!(
                        "byzantine:chord capture {:.3} <= share {:.3}",
                        agg.byzantine_sample_share_mean, agg.byzantine_population_share_mean
                    ));
                }
                // ...and only there.
                "byzantine-routers"
                    if agg.backend != "chord" && agg.byzantine_sample_share_mean != 0.0 =>
                {
                    ok = false;
                    checks.push("byzantine:oracle captured samples".to_string());
                }
                _ => {}
            }
        }
    }
    format!(
        "{}: {} scenarios x {} seeds x 2 backends; json -> {}{}",
        if ok { "HOLDS" } else { "CHECK" },
        report.scenarios.len(),
        report.seeds_per_scenario,
        json_path,
        if checks.is_empty() {
            String::new()
        } else {
            format!("; flagged: {}", checks.join(", "))
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_battery_holds() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run_presets(&ctx);
        // 3 quick scenarios x 2 backends, plus crash-churn's stale arm.
        assert_eq!(t.rows.len(), 7);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
    }

    #[test]
    fn quick_coalition_battery_holds() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run_coalition(&ctx);
        // 3 strategies x 1 budget x {attack, defended}.
        assert_eq!(t.rows.len(), 6);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
        assert!(
            t.verdict.contains("3 attack/defense pairs"),
            "{}",
            t.verdict
        );
    }

    #[test]
    fn quick_domain_battery_holds() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run_domains(&ctx);
        // 4 resilience arms x 1 backend (chord-only).
        assert_eq!(t.rows.len(), 4);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
        assert!(t.verdict.contains("outage success"), "{}", t.verdict);
    }

    #[test]
    fn domain_battery_sizes_align_with_watchdog_windows() {
        for (quick, window) in [(true, 500u64), (false, 1_280u64)] {
            let ctx = ExpContext {
                quick,
                ..ExpContext::default()
            };
            for spec in domain_battery_specs(&ctx) {
                spec.validate().unwrap();
                assert_eq!(spec.backends, vec![Backend::Chord], "{}", spec.name);
                // The realized window is max(500, 5·n) and the outage
                // runs over draws [0.25, 0.75): both edges and the run
                // end must land on window boundaries, or the watchdog's
                // final window straddles the heal and ttr never clears.
                assert_eq!(window, 500.max(5 * spec.n_initial as u64));
                let draws = u64::from(spec.workload.draws);
                assert_eq!(draws % window, 0, "{}", spec.name);
                assert_eq!(draws / 4 % window, 0, "{}", spec.name);
                assert_eq!(3 * draws / 4 % window, 0, "{}", spec.name);
            }
        }
    }

    #[test]
    fn quick_engine_battery_holds() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let t = run_engine(&ctx);
        // 2 resilience arms (baseline, adaptive), chord-only.
        assert_eq!(t.rows.len(), 2);
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
        assert!(t.verdict.contains("byte-identical"), "{}", t.verdict);
    }

    #[test]
    fn engine_battery_scales_to_ten_thousand_inflight_lookups() {
        for quick in [true, false] {
            let ctx = ExpContext {
                quick,
                ..ExpContext::default()
            };
            for spec in engine_battery_specs(&ctx) {
                spec.validate().unwrap();
                assert_eq!(spec.backends, vec![Backend::Chord], "{}", spec.name);
                let engine = spec.engine.as_ref().unwrap();
                if quick {
                    assert_eq!(engine.lookups, 2_000, "{}", spec.name);
                } else {
                    // The acceptance shape: 10k lookups through a
                    // 10k-wide in-flight window.
                    assert_eq!(engine.lookups, 10_000, "{}", spec.name);
                    assert_eq!(engine.inflight, 10_000, "{}", spec.name);
                }
            }
        }
    }

    #[test]
    fn engine_equivalence_spot_check_passes_and_detects() {
        // The harness-side pin agrees with the chord property battery.
        assert_eq!(equivalence_violation(9), None);
        assert_eq!(equivalence_violation(77), None);
    }

    #[test]
    fn quick_battery_covers_both_backends_per_scenario() {
        let ctx = ExpContext {
            quick: true,
            ..ExpContext::default()
        };
        let specs = battery(&ctx);
        assert_eq!(specs.len(), 3);
        for spec in specs {
            assert!(spec.backends.len() >= 2, "{}", spec.name);
            assert!(spec.backends.contains(&Backend::Oracle), "{}", spec.name);
            assert!(spec.backends.contains(&Backend::Chord), "{}", spec.name);
        }
    }

    #[test]
    fn scale_battery_runs_both_backends_at_full_scale() {
        let specs = scale_battery();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].backends, vec![Backend::Oracle]);
        assert_eq!(specs[1].backends, vec![Backend::Chord]);
        // The compact arena closed the decade gap: both arms same size.
        assert_eq!(specs[0].n_initial, specs[1].n_initial);
        assert_eq!(specs[1].chord.stabilize_every_ticks, 500);
        // Scale arms opt into batched maintenance: classic full rounds
        // are O(n) routed lookups each, which 10^7 cannot afford.
        assert_eq!(specs[1].chord.maintenance, MaintenanceSpec::BatchedDrain);
        for spec in &specs {
            spec.validate().unwrap();
        }
    }

    #[test]
    fn tiny_scale_run_holds() {
        // The RP_SCALE code path, shrunk far below the acceptance sizes so
        // the unit suite stays fast: oracle at 1000, chord at 100.
        let ctx = ExpContext::default();
        let t = run_scale(&ctx, 1_000);
        assert_eq!(t.rows.len(), 2, "one row per arm");
        assert!(t.verdict.starts_with("HOLDS"), "{}", t.verdict);
    }

    #[test]
    fn hop_gate_skips_oracle_and_bounds_chord() {
        let mut spec = ScenarioSpec::preset_honest_static();
        spec.n_initial = 96;
        spec.workload.draws = 300;
        let report = Sweep::new(vec![spec]).with_seeds(2).run();
        for agg in &report.scenarios[0].aggregates {
            assert_eq!(
                hop_tail_violation("honest-static", agg),
                None,
                "healthy {} arm must pass the O(log n) gate",
                agg.backend
            );
        }
        // A fabricated pathological tail trips the gate.
        let mut broken = report.scenarios[0]
            .aggregates
            .iter()
            .find(|a| a.backend == "chord")
            .unwrap()
            .clone();
        broken.hop_p99_max = 10_000;
        let violation = hop_tail_violation("honest-static", &broken).unwrap();
        assert!(violation.contains("O(log n)"), "{violation}");
    }

    #[test]
    fn check_verdicts_dump_the_flight_recorder() {
        let mut spec = ScenarioSpec::preset_byzantine_routers();
        spec.n_initial = 96;
        spec.workload.draws = 200;
        let report = Sweep::new(vec![spec]).with_seeds(1).run();
        // HOLDS verdicts pass through untouched — no replay, no file.
        let holds = dump_flight_on_check("HOLDS: fine".to_string(), &report, "unused.txt");
        assert_eq!(holds, "HOLDS: fine");
        // CHECK verdicts replay the first chord arm traced and point at
        // the dump.
        let verdict =
            dump_flight_on_check("CHECK: forced".to_string(), &report, "e16_test_flight.txt");
        assert!(verdict.contains("flight -> "), "{verdict}");
        let path = verdict.rsplit("flight -> ").next().unwrap();
        let dump = std::fs::read_to_string(path).unwrap();
        assert!(dump.contains("flight recorder: scenario"), "{path}");
        assert!(dump.contains("hop"), "dump must carry hop paths");
    }

    #[test]
    fn flight_dump_explains_an_induced_hop_tail_breach() {
        // The explainability acceptance arm: a crash burst takes half the
        // ring down for most of the draw loop, the adaptive knobs degrade
        // through retries and fallbacks, and the resulting CHECK dump must
        // (a) name at least one tail exemplar that resolves to a retained
        // trace whose replayed hop count is exactly the exemplar's
        // recorded value (i.e. the lookup sits in the breaching bucket),
        // and (b) rank a retry/fallback span — not the healthy finger
        // walk — as the top cost contributor.
        let mut spec = ScenarioSpec::preset_domain_outage();
        spec.name = "crash-burst-explain".to_string();
        spec.n_initial = 96;
        spec.workload.draws = 2_000;
        spec.domains = Some(scenarios::FailureDomainSpec {
            domains: 4,
            crash_domains: 2,
            outage_start: 0.05,
            outage_end: 0.95,
        });
        let report = Sweep::new(vec![spec.clone()]).with_seeds(1).run();
        let verdict = dump_flight_on_check(
            "CHECK: forced".to_string(),
            &report,
            "e16_explain_flight.txt",
        );
        let path = verdict.rsplit("flight -> ").next().unwrap();
        let dump = std::fs::read_to_string(path).unwrap();
        // The watchdog attributed the burst...
        assert!(dump.contains("breach"), "no watchdog breach in dump");
        // ...the span breakdown names the injected cause first...
        let top = dump
            .lines()
            .skip_while(|l| !l.starts_with("top spans:"))
            .nth(1)
            .expect("dump must carry a top-spans section");
        let degradation = [
            "lookup;demoted_skip",
            "lookup;retry_backoff",
            "lookup;successor_walk",
            "lookup;verified_quorum",
        ];
        assert!(
            degradation.iter().any(|s| top.contains(s)),
            "top span must be a degradation span, got: {top}"
        );
        // ...and at least one exemplar resolves to a retained trace whose
        // replayed hop count lands in the cited bucket.
        let mut resolved = 0;
        for line in dump.lines().filter(|l| l.contains("-> op ")) {
            let value: u64 = line
                .split("value ")
                .nth(1)
                .and_then(|r| r.split(' ').next())
                .and_then(|v| v.parse().ok())
                .unwrap();
            let upper: u64 = line
                .split("bucket <= ")
                .nth(1)
                .and_then(|r| r.split(')').next())
                .and_then(|v| v.parse().ok())
                .unwrap();
            if let Some(hops) = line
                .split(": ")
                .nth(1)
                .and_then(|r| r.split(" hops").next())
                .and_then(|v| v.parse::<u64>().ok())
            {
                assert_eq!(hops, value, "replayed hop count must match: {line}");
                assert!(value <= upper, "exemplar outside its bucket: {line}");
                resolved += 1;
            }
        }
        assert!(resolved > 0, "no exemplar resolved to a retained trace");
    }

    #[test]
    fn representative_trace_export_is_schema_valid_chrome_json() {
        // The RP_TRACE arm, minus the env-var plumbing (env mutation would
        // race parallel tests): the traced replay must export parseable
        // trace_event JSON with one complete event per lookup and hop.
        let mut spec = ScenarioSpec::preset_byzantine_routers();
        spec.n_initial = 96;
        spec.workload.draws = 200;
        spec.telemetry.flight_recorder_capacity = 256;
        let (record, dump) = run_scenario_seed_traced(&spec, Backend::Chord, 5);
        let json = dump.chrome_trace_json();
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        let events = value.get("traceEvents").and_then(|v| v.as_seq()).unwrap();
        assert!(events.len() >= dump.traces.len());
        for event in events {
            assert_eq!(event.get("ph").and_then(|v| v.as_str()), Some("X"));
            assert!(event.get("name").is_some());
            assert!(event.get("ts").is_some());
            assert!(event.get("dur").is_some());
        }
        assert!(!record.trace_digest.is_empty());
    }
}
