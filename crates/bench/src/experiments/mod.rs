//! The experiment suite (E1–E16).
//!
//! One module per experiment; each exposes `run(&ExpContext) -> Table`.
//! The mapping from paper claim to experiment is in DESIGN.md §4; measured
//! results are recorded in EXPERIMENTS.md.

pub mod e01_lemma1;
pub mod e02_min_arc;
pub mod e03_estimate;
pub mod e04_windows;
pub mod e05_uniformity;
pub mod e06_cost;
pub mod e07_walks;
pub mod e08_naive_bias;
pub mod e09_links;
pub mod e10_virtual;
pub mod e11_churn;
pub mod e12_apps;
pub mod e13_ablation;
pub mod e14_weighted;
pub mod e15_storage;
pub mod e16_scenarios;

use keyspace::{KeySpace, SortedRing};
use rand::SeedableRng;

use crate::{ExpContext, Table};

/// Every experiment id, in order.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16",
];

/// Runs one experiment by id.
///
/// Returns `None` for an unknown id.
pub fn run(id: &str, ctx: &ExpContext) -> Option<Vec<Table>> {
    let tables = match id {
        "e1" => vec![e01_lemma1::run(ctx)],
        "e2" => vec![e02_min_arc::run(ctx)],
        "e3" => vec![e03_estimate::run(ctx)],
        "e4" => vec![e04_windows::run(ctx)],
        "e5" => e05_uniformity::run(ctx),
        "e6" => vec![e06_cost::run(ctx)],
        "e7" => vec![e07_walks::run(ctx)],
        "e8" => vec![e08_naive_bias::run(ctx)],
        "e9" => vec![e09_links::run(ctx)],
        "e10" => vec![e10_virtual::run(ctx)],
        "e11" => vec![e11_churn::run(ctx)],
        "e12" => e12_apps::run(ctx),
        "e13" => vec![e13_ablation::run(ctx)],
        "e14" => vec![e14_weighted::run(ctx)],
        "e15" => vec![e15_storage::run(ctx)],
        "e16" => e16_scenarios::run(ctx),
        _ => return None,
    };
    Some(tables)
}

/// A ring of `n` i.i.d. uniform peers on the full key space.
pub(crate) fn make_ring(n: usize, seed: u64) -> SortedRing {
    let space = KeySpace::full();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    SortedRing::new(space, space.random_points(&mut rng, n))
}

/// The network-size sweep used by the scaling experiments.
pub(crate) fn size_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![256, 1024]
    } else {
        vec![256, 1024, 4096, 16384]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run("e999", &ExpContext::default()).is_none());
    }

    #[test]
    fn all_ids_are_unique() {
        let set: std::collections::HashSet<_> = ALL.iter().collect();
        assert_eq!(set.len(), ALL.len());
    }

    #[test]
    fn make_ring_has_requested_size() {
        assert_eq!(make_ring(100, 1).len(), 100);
    }
}
