//! Append-only history for the `BENCH_*.json` trajectory files.
//!
//! The repo-root bench files used to be overwritten on every run, leaving
//! the cross-revision trajectory only in git history. They are now
//! *histories*: a JSON array of entries, each keyed by the revision that
//! produced it —
//!
//! ```json
//! [
//!   {"sha": "84d1cbf", "timestamp": "1754600000", "rows": [{"bench": …}]}
//! ]
//! ```
//!
//! [`append_entry`] reads the existing file, migrates a legacy flat-row
//! array in place (wrapped as a single `"pre-history"` entry), drops any
//! prior entry with the *same* sha (re-running a bench on one revision
//! updates that revision's point instead of duplicating it), and appends
//! the new entry. The key comes from the environment so CI can stamp real
//! revisions — `RP_BENCH_SHA` (default `"worktree"` for local runs) and
//! `RP_BENCH_TIME` (default: unix seconds at write time). `exp -- report`
//! diffs the latest entries of two such files (see `apps::report`).

use std::path::Path;

use serde::value::Value;

/// Environment variable holding the revision key for new entries.
pub const SHA_ENV: &str = "RP_BENCH_SHA";
/// Environment variable holding the timestamp for new entries.
pub const TIME_ENV: &str = "RP_BENCH_TIME";
/// Sha recorded when the environment does not provide one.
pub const WORKTREE_SHA: &str = "worktree";
/// Sha assigned to rows migrated from a legacy flat-row file.
pub const PRE_HISTORY_SHA: &str = "pre-history";

/// The revision key for a new entry: `RP_BENCH_SHA` or `"worktree"`.
fn entry_sha() -> String {
    std::env::var(SHA_ENV).unwrap_or_else(|_| WORKTREE_SHA.to_string())
}

/// The timestamp for a new entry: `RP_BENCH_TIME` or unix seconds now.
fn entry_timestamp() -> String {
    std::env::var(TIME_ENV).unwrap_or_else(|_| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs().to_string())
            .unwrap_or_else(|_| "0".to_string())
    })
}

/// Existing entries of `contents`, migrating legacy layouts.
///
/// A parse failure or non-array document yields an empty history (the
/// file is regenerated rather than clobbering the run); an array of flat
/// rows (no `"rows"` key) becomes one [`PRE_HISTORY_SHA`] entry.
fn existing_entries(contents: &str) -> Vec<Value> {
    let Ok(value) = serde_json::from_str::<Value>(contents) else {
        return Vec::new();
    };
    let Some(elements) = value.as_seq() else {
        return Vec::new();
    };
    if elements.is_empty() {
        return Vec::new();
    }
    if elements.iter().all(|e| e.get("rows").is_some()) {
        return elements.to_vec();
    }
    vec![Value::Map(vec![
        ("sha".to_string(), Value::Str(PRE_HISTORY_SHA.to_string())),
        ("timestamp".to_string(), Value::Str("0".to_string())),
        ("rows".to_string(), Value::Seq(elements.to_vec())),
    ])]
}

/// Appends one history entry holding `rows` (each a JSON object string)
/// to the trajectory file at `path`, returning the sha it was keyed by.
///
/// Reads and migrates the existing file, dedupes on the entry's sha, and
/// rewrites the whole array. Errors are returned as strings so bench
/// binaries can log-and-continue (a read-only checkout must not fail the
/// measurement itself).
pub fn append_entry(path: &Path, rows: &[String]) -> Result<String, String> {
    let parsed: Vec<Value> = rows
        .iter()
        .map(|row| {
            serde_json::from_str::<Value>(row)
                .map_err(|e| format!("unparseable bench row ({e}): {row}"))
        })
        .collect::<Result<_, _>>()?;
    let sha = entry_sha();
    let mut entries: Vec<Value> = match std::fs::read_to_string(path) {
        Ok(contents) => existing_entries(&contents),
        Err(_) => Vec::new(),
    };
    entries.retain(|e| e.get("sha").and_then(Value::as_str) != Some(sha.as_str()));
    entries.push(Value::Map(vec![
        ("sha".to_string(), Value::Str(sha.clone())),
        ("timestamp".to_string(), Value::Str(entry_timestamp())),
        ("rows".to_string(), Value::Seq(parsed)),
    ]));
    let body = serde_json::to_string_pretty(&Value::Seq(entries))
        .map_err(|e| format!("history serialization failed: {e}"))?;
    std::fs::write(path, body + "\n")
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok(sha)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rp_history_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn shas(path: &Path) -> Vec<String> {
        let value: Value = serde_json::from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
        value
            .as_seq()
            .unwrap()
            .iter()
            .map(|e| e.get("sha").unwrap().as_str().unwrap().to_string())
            .collect()
    }

    #[test]
    fn legacy_file_is_migrated_then_appended() {
        let path = tmp("legacy.json");
        std::fs::write(&path, r#"[{"bench": "x", "n": 10, "v": 1.5}]"#).unwrap();
        append_entry(&path, &[r#"{"bench": "x", "n": 10, "v": 2.0}"#.to_string()]).unwrap();
        assert_eq!(shas(&path), vec![PRE_HISTORY_SHA, WORKTREE_SHA]);
        // Legacy rows survive the migration verbatim.
        let value: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let first_rows = value.as_seq().unwrap()[0].get("rows").unwrap();
        assert_eq!(
            first_rows.as_seq().unwrap()[0].get("v"),
            Some(&Value::Float(1.5))
        );
    }

    #[test]
    fn same_sha_reruns_replace_not_duplicate() {
        let path = tmp("dedupe.json");
        let _ = std::fs::remove_file(&path);
        append_entry(&path, &[r#"{"bench": "x", "n": 10, "v": 1.0}"#.to_string()]).unwrap();
        append_entry(&path, &[r#"{"bench": "x", "n": 10, "v": 2.0}"#.to_string()]).unwrap();
        assert_eq!(shas(&path), vec![WORKTREE_SHA]);
        let value: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let rows = value.as_seq().unwrap()[0].get("rows").unwrap();
        assert_eq!(rows.as_seq().unwrap()[0].get("v"), Some(&Value::Float(2.0)));
    }

    #[test]
    fn corrupt_file_restarts_history() {
        let path = tmp("corrupt.json");
        std::fs::write(&path, "not json").unwrap();
        append_entry(&path, &[r#"{"bench": "x", "n": 1}"#.to_string()]).unwrap();
        assert_eq!(shas(&path), vec![WORKTREE_SHA]);
    }

    #[test]
    fn bad_row_is_an_error() {
        let path = tmp("badrow.json");
        assert!(append_entry(&path, &["{broken".to_string()]).is_err());
    }
}
