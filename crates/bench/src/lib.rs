//! Experiment harness shared utilities.
//!
//! The `exp` binary regenerates every experiment table (E1–E16; run
//! `exp` with no arguments for the list, or see each module under
//! [`experiments`]); this library provides the plumbing: deterministic
//! seed management, aligned/markdown table rendering, and JSON result
//! records so tables can be diffed across runs. Environment knobs
//! (`RP_QUICK`, `RP_SEED`, `RP_SCALE`, `RP_COALITION`,
//! `RP_ENFORCE_BENCH`) are documented in the top-level README.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod history;

use std::fmt::Write as _;

/// Master seed used by every experiment unless `RP_SEED` overrides it.
pub const DEFAULT_MASTER_SEED: u64 = 0x5EED_C0FF_EE00_2004;

/// Run-wide context handed to each experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpContext {
    /// Master seed; per-component streams derive from it.
    pub seed: u64,
    /// Quick mode shrinks sweeps for CI-speed smoke runs.
    pub quick: bool,
}

impl ExpContext {
    /// Context from the environment: `RP_SEED` (decimal) and `RP_QUICK=1`.
    pub fn from_env() -> ExpContext {
        let seed = std::env::var("RP_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_MASTER_SEED);
        let quick = std::env::var("RP_QUICK").map(|v| v == "1").unwrap_or(false);
        ExpContext { seed, quick }
    }

    /// Derives the seed for a named experiment stream.
    pub fn stream(&self, experiment: u64, stream: u64) -> u64 {
        simnet::rng::derive_seed(self.seed ^ experiment.wrapping_mul(0x9E37), stream)
    }
}

impl Default for ExpContext {
    fn default() -> ExpContext {
        ExpContext {
            seed: DEFAULT_MASTER_SEED,
            quick: false,
        }
    }
}

/// A rendered experiment table: a title, a claim line, column headers and
/// string rows.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct Table {
    /// Experiment id and name, e.g. `"E2: minimum arc scaling"`.
    pub title: String,
    /// The paper claim being checked.
    pub claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// One-line verdict comparing measurement to claim.
    pub verdict: String,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, claim: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            claim: claim.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            verdict: String::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Sets the verdict line.
    pub fn set_verdict(&mut self, verdict: impl Into<String>) {
        self.verdict = verdict.into();
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = writeln!(out, "claim: {}", self.claim);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        if !self.verdict.is_empty() {
            let _ = writeln!(out, "verdict: {}", self.verdict);
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table (for EXPERIMENTS.md).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "*Claim:* {}\n", self.claim);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        if !self.verdict.is_empty() {
            let _ = writeln!(out, "\n*Verdict:* {}", self.verdict);
        }
        out
    }
}

/// Formats a float with a sensible default precision for tables.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.3}")
    } else {
        format!("{x:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_and_markdown() {
        let mut t = Table::new("E0: demo", "x = y", &["n", "value"]);
        t.push_row(vec!["16".into(), "3.14".into()]);
        t.push_row(vec!["1024".into(), "2.72".into()]);
        t.set_verdict("holds");
        let text = t.render();
        assert!(text.contains("E0: demo"));
        assert!(text.contains("claim: x = y"));
        assert!(text.contains("verdict: holds"));
        let md = t.to_markdown();
        assert!(md.contains("| n | value |"));
        assert!(md.contains("| 1024 | 2.72 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new("t", "c", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn context_streams_differ() {
        let ctx = ExpContext::default();
        assert_ne!(ctx.stream(1, 0), ctx.stream(1, 1));
        assert_ne!(ctx.stream(1, 0), ctx.stream(2, 0));
        assert_eq!(ctx.stream(3, 4), ctx.stream(3, 4));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(3.24159), "3.242");
        assert_eq!(fmt_f(12345.6), "12346");
        assert_eq!(fmt_f(0.000123), "1.230e-4");
    }
}
