//! End-to-end dashboard determinism: a real (tiny) e16-style sweep,
//! rendered through `apps::dash`, must be byte-identical across renders,
//! embed the machine-readable payload intact, and surface the run's
//! actual tail exemplars and span costs — the acceptance gates behind the
//! CI `dash-smoke` job.

use scenarios::{FailureDomainSpec, ScenarioSpec, Sweep};

/// A small domain-outage arm: degraded lookups guarantee the report
/// carries exemplars, retry/fallback spans and health events.
fn outage_report_json() -> String {
    let mut spec = ScenarioSpec::preset_domain_outage();
    spec.n_initial = 64;
    spec.workload.draws = 500;
    spec.domains = Some(FailureDomainSpec {
        domains: 4,
        crash_domains: 1,
        outage_start: 0.2,
        outage_end: 0.8,
    });
    Sweep::new(vec![spec]).with_seeds(1).run().to_json_pretty()
}

#[test]
fn real_sweep_dashboard_is_byte_identical_and_carries_the_evidence() {
    let report = outage_report_json();
    let first = apps::dash::render_dashboard(&report, None).unwrap();
    let second = apps::dash::render_dashboard(&report, None).unwrap();
    assert_eq!(
        first.html, second.html,
        "dashboard must render byte-identically"
    );
    assert_eq!(first.regressions, 0);

    // The run's own explainability data made it into the page: the arm,
    // at least one exemplar drill-down and the span taxonomy.
    assert!(first.html.contains("domain-outage"));
    assert!(first.html.contains("lookup;finger_walk"));
    assert!(first.html.contains("exemplars</summary>"));
    assert!(first.html.contains("<polyline"), "series sparkline missing");

    // The embedded payload is the exact report JSON, recoverable and
    // machine-readable (what the CI smoke job validates with python).
    let start = first.html.find("id=\"payload\">").unwrap() + "id=\"payload\">".len();
    let end = first.html[start..].find("</script>").unwrap() + start;
    let embedded = first.html[start..end].replace("<\\/", "</");
    assert_eq!(embedded, report);
    let value: serde_json::Value = serde_json::from_str(&embedded).unwrap();
    let scenarios = value.get("scenarios").and_then(|v| v.as_seq()).unwrap();
    assert_eq!(scenarios.len(), 1);

    // Self-diff renders the baseline section and stays clean.
    let with_diff = apps::dash::render_dashboard(&report, Some(&report)).unwrap();
    assert_eq!(with_diff.regressions, 0);
    assert!(with_diff.html.contains("baseline diff"));
}
