//! Struct-of-arrays routing storage for [`ChordNetwork`](crate::ChordNetwork).
//!
//! The seed kept one heap-allocated `NodeState` per node: a
//! `Vec<Option<NodeId>>` of 64 finger entries (16 bytes each) plus a
//! successor `Vec`, ~1.2 KB of routing state per node before the allocator
//! gets a word in. That representation capped chord rings around 10⁵
//! nodes. `RoutingArena` stores the same state column-wise in shared
//! flat buffers:
//!
//! * **points** — one `Point` per node (`Vec<Point>`).
//! * **alive** — a bitset (`Vec<u64>`, one bit per node).
//! * **predecessors** — one `u32` per node (`u32::MAX` = none).
//! * **successor lists** — one shared `Vec<u32>` with a fixed stride of
//!   `successor_list_len` slots per node plus a per-node length byte.
//! * **fingers** — run-length compressed. In an n-node ring only
//!   ~log₂(n) of the 64 finger targets resolve to distinct nodes (all the
//!   low bits point at the immediate successor), so the 64-entry table is
//!   stored as runs: a per-node `u64` *run-start mask* (bit `b` set ⇔ a
//!   new run begins at finger bit `b`) and `popcount(mask)` run values in
//!   a shared `Vec<u32>` span. Reading entry `b` is a popcount and one
//!   load; point updates rewrite one node's ≤ 64-entry run list. Spans
//!   that outgrow their capacity relocate to the end of the shared buffer
//!   and the buffer compacts when garbage exceeds half its length.
//!
//! Net effect: ~130 bytes of routing state per node at n = 10⁵ (measure
//! it with `RoutingArena::routing_bytes`), a ≥ 8× reduction that lets
//! chord arms run at 10⁶ nodes. The old accessor shapes survive as cheap
//! views ([`NodeRef`], [`Successors`], [`Fingers`]) so routing, storage
//! and experiment code reads exactly as before.

use core::fmt;
use std::collections::BTreeMap;

use keyspace::Point;

use crate::network::NodeId;

/// Sentinel for "no node" in the flat `u32` columns.
const NONE: u32 = u32::MAX;

#[inline]
fn encode(id: Option<usize>) -> u32 {
    match id {
        Some(i) => {
            debug_assert!((i as u64) < NONE as u64, "arena index {i} overflows u32");
            i as u32
        }
        None => NONE,
    }
}

#[inline]
fn decode(raw: u32) -> Option<usize> {
    (raw != NONE).then_some(raw as usize)
}

/// Mask of finger bits `0..=bit`.
#[inline]
fn bits_through(bit: usize) -> u64 {
    debug_assert!(bit < 64);
    if bit == 63 {
        !0
    } else {
        (1u64 << (bit + 1)) - 1
    }
}

/// Column-wise routing state of every node ever created (live and dead).
///
/// See the [module docs](self) for the layout. All `usize` node arguments
/// are raw arena indices; the public views translate to [`NodeId`].
pub(crate) struct RoutingArena {
    finger_bits: usize,
    succ_cap: usize,
    points: Vec<Point>,
    alive: Vec<u64>,
    preds: Vec<u32>,
    succ_len: Vec<u8>,
    succ_buf: Vec<u32>,
    finger_mask: Vec<u64>,
    finger_off: Vec<u32>,
    finger_cap: Vec<u8>,
    finger_vals: Vec<u32>,
    /// Dead slots in `finger_vals` left behind by span relocation.
    finger_garbage: usize,
    stores: Vec<BTreeMap<Point, Vec<u8>>>,
}

impl RoutingArena {
    pub(crate) fn new(finger_bits: usize, succ_cap: usize) -> RoutingArena {
        assert!(
            (1..=64).contains(&finger_bits),
            "finger table width {finger_bits} outside 1..=64"
        );
        assert!(
            (1..=u8::MAX as usize).contains(&succ_cap),
            "successor list length {succ_cap} outside 1..=255"
        );
        RoutingArena {
            finger_bits,
            succ_cap,
            points: Vec::new(),
            alive: Vec::new(),
            preds: Vec::new(),
            succ_len: Vec::new(),
            succ_buf: Vec::new(),
            finger_mask: Vec::new(),
            finger_off: Vec::new(),
            finger_cap: Vec::new(),
            finger_vals: Vec::new(),
            finger_garbage: 0,
            stores: Vec::new(),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.points.len()
    }

    /// Appends a fresh, alive node with empty routing state.
    pub(crate) fn push(&mut self, point: Point) -> usize {
        let i = self.points.len();
        self.points.push(point);
        if i / 64 == self.alive.len() {
            self.alive.push(0);
        }
        self.alive[i / 64] |= 1 << (i % 64);
        self.preds.push(NONE);
        self.succ_len.push(0);
        self.succ_buf
            .resize(self.succ_buf.len() + self.succ_cap, NONE);
        self.finger_mask.push(0);
        self.finger_off.push(0);
        self.finger_cap.push(0);
        self.stores.push(BTreeMap::new());
        i
    }

    pub(crate) fn point(&self, i: usize) -> Point {
        self.points[i]
    }

    pub(crate) fn is_alive(&self, i: usize) -> bool {
        assert!(i < self.points.len(), "node index {i} out of range");
        self.alive[i / 64] >> (i % 64) & 1 == 1
    }

    pub(crate) fn set_alive(&mut self, i: usize, alive: bool) {
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        if alive {
            self.alive[word] |= bit;
        } else {
            self.alive[word] &= !bit;
        }
    }

    pub(crate) fn pred(&self, i: usize) -> Option<usize> {
        decode(self.preds[i])
    }

    pub(crate) fn set_pred(&mut self, i: usize, pred: Option<usize>) {
        self.preds[i] = encode(pred);
    }

    pub(crate) fn successors(&self, i: usize) -> &[u32] {
        let off = i * self.succ_cap;
        &self.succ_buf[off..off + self.succ_len[i] as usize]
    }

    /// Whether the stored list equals `ids` after stride truncation.
    pub(crate) fn successors_eq(&self, i: usize, ids: &[NodeId]) -> bool {
        let n = ids.len().min(self.succ_cap);
        self.succ_len[i] as usize == n
            && self
                .successors(i)
                .iter()
                .zip(ids)
                .all(|(&s, id)| s as usize == id.index())
    }

    /// Overwrites the successor list, truncating at the stride.
    pub(crate) fn set_successors(&mut self, i: usize, ids: &[NodeId]) {
        let n = ids.len().min(self.succ_cap);
        let off = i * self.succ_cap;
        for (slot, id) in self.succ_buf[off..off + n].iter_mut().zip(ids) {
            *slot = encode(Some(id.index()));
        }
        self.succ_len[i] = n as u8;
    }

    pub(crate) fn finger(&self, i: usize, bit: usize) -> Option<usize> {
        debug_assert!(bit < self.finger_bits);
        let mask = self.finger_mask[i];
        if mask == 0 {
            return None;
        }
        let run = (mask & bits_through(bit)).count_ones() as usize - 1;
        decode(self.finger_vals[self.finger_off[i] as usize + run])
    }

    /// Point-updates one finger entry, splitting/merging runs as needed.
    /// Returns whether the table changed.
    pub(crate) fn set_finger(&mut self, i: usize, bit: usize, val: Option<usize>) -> bool {
        debug_assert!(bit < self.finger_bits);
        let v = encode(val);
        if encode(self.finger(i, bit)) == v {
            return false;
        }
        // Decode the current run list into scratch (≤ finger_bits runs).
        let mut starts = [0u8; 64];
        let mut vals = [NONE; 64];
        let mut k = 0usize;
        let mut mask = self.finger_mask[i];
        if mask == 0 {
            k = 1; // one all-`None` run
        } else {
            let off = self.finger_off[i] as usize;
            while mask != 0 {
                starts[k] = mask.trailing_zeros() as u8;
                vals[k] = self.finger_vals[off + k];
                mask &= mask - 1;
                k += 1;
            }
        }
        // Rebuild with `bit` overridden, merging equal-valued neighbours.
        let mut ns = [0u8; 66];
        let mut nv = [NONE; 66];
        let mut m = 0usize;
        macro_rules! emit {
            ($s:expr, $v:expr) => {
                if m == 0 || nv[m - 1] != $v {
                    ns[m] = $s;
                    nv[m] = $v;
                    m += 1;
                }
            };
        }
        for run in 0..k {
            let s = starts[run] as usize;
            let e = if run + 1 < k {
                starts[run + 1] as usize
            } else {
                self.finger_bits
            };
            if (s..e).contains(&bit) {
                if s < bit {
                    emit!(s as u8, vals[run]);
                }
                emit!(bit as u8, v);
                if bit + 1 < e {
                    emit!((bit + 1) as u8, vals[run]);
                }
            } else {
                emit!(s as u8, vals[run]);
            }
        }
        self.write_runs(i, &ns[..m], &nv[..m]);
        true
    }

    /// Replaces node `i`'s table with an explicit run list (starts strictly
    /// increasing from 0, adjacent values distinct) — the bulk-build path.
    pub(crate) fn set_finger_runs(&mut self, i: usize, starts: &[u8], vals: &[u32]) {
        debug_assert_eq!(starts.len(), vals.len());
        debug_assert!(starts.first().is_none_or(|&s| s == 0));
        self.write_runs(i, starts, vals);
    }

    pub(crate) fn clear_fingers(&mut self, i: usize) {
        self.finger_mask[i] = 0;
        self.finger_garbage += self.finger_cap[i] as usize;
        self.finger_cap[i] = 0;
        self.maybe_compact();
    }

    /// Drops every node's finger span and the shared store — the bulk
    /// rebuild path re-appends spans with [`set_finger_runs`].
    ///
    /// [`set_finger_runs`]: RoutingArena::set_finger_runs
    pub(crate) fn reset_finger_store(&mut self) {
        self.finger_vals.clear();
        self.finger_garbage = 0;
        for i in 0..self.len() {
            self.finger_mask[i] = 0;
            self.finger_off[i] = 0;
            self.finger_cap[i] = 0;
        }
    }

    fn write_runs(&mut self, i: usize, starts: &[u8], vals: &[u32]) {
        // Canonical form: an all-`None` table is mask 0 with no span.
        if vals.iter().all(|&v| v == NONE) {
            self.clear_fingers(i);
            return;
        }
        let m = vals.len();
        let mut mask = 0u64;
        for &s in starts {
            mask |= 1 << s;
        }
        debug_assert_eq!(mask.count_ones() as usize, m, "duplicate run starts");
        if m <= self.finger_cap[i] as usize {
            let off = self.finger_off[i] as usize;
            self.finger_vals[off..off + m].copy_from_slice(vals);
        } else {
            // Relocate to the end of the buffer with a little slack so a
            // split/merge cycle does not relocate every time.
            self.finger_garbage += self.finger_cap[i] as usize;
            let cap = (m + 2).min(self.finger_bits);
            self.finger_off[i] = self.finger_vals.len() as u32;
            self.finger_cap[i] = cap as u8;
            self.finger_vals.extend_from_slice(vals);
            self.finger_vals
                .resize(self.finger_off[i] as usize + cap, NONE);
        }
        self.finger_mask[i] = mask;
        self.maybe_compact();
    }

    /// Rewrites the shared finger buffer once garbage from relocations
    /// exceeds half of it.
    fn maybe_compact(&mut self) {
        if self.finger_vals.len() < 4096 || self.finger_garbage * 2 < self.finger_vals.len() {
            return;
        }
        let mut fresh = Vec::with_capacity(self.finger_vals.len() - self.finger_garbage);
        for i in 0..self.len() {
            let runs = self.finger_mask[i].count_ones() as usize;
            if runs == 0 {
                self.finger_off[i] = 0;
                self.finger_cap[i] = 0;
                continue;
            }
            let off = self.finger_off[i] as usize;
            self.finger_off[i] = fresh.len() as u32;
            self.finger_cap[i] = runs as u8;
            fresh.extend_from_slice(&self.finger_vals[off..off + runs]);
        }
        self.finger_vals = fresh;
        self.finger_garbage = 0;
    }

    pub(crate) fn store(&self, i: usize) -> &BTreeMap<Point, Vec<u8>> {
        &self.stores[i]
    }

    pub(crate) fn store_mut(&mut self, i: usize) -> &mut BTreeMap<Point, Vec<u8>> {
        &mut self.stores[i]
    }

    /// Bytes of routing state currently held across all columns: points,
    /// alive bitset, predecessors, successor lists and the compressed
    /// finger store (relocation garbage included — it is real footprint,
    /// bounded at 50% by compaction). Key-value stores and the
    /// verification ledger are accounted separately.
    pub(crate) fn routing_bytes(&self) -> usize {
        use std::mem::size_of;
        self.points.len() * size_of::<Point>()
            + self.alive.len() * size_of::<u64>()
            + self.preds.len() * size_of::<u32>()
            + self.succ_len.len()
            + self.succ_buf.len() * size_of::<u32>()
            + self.finger_mask.len() * size_of::<u64>()
            + self.finger_off.len() * size_of::<u32>()
            + self.finger_cap.len()
            + self.finger_vals.len() * size_of::<u32>()
    }
}

impl fmt::Debug for RoutingArena {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoutingArena")
            .field("nodes", &self.len())
            .field("finger_bits", &self.finger_bits)
            .field("succ_cap", &self.succ_cap)
            .field("finger_vals", &self.finger_vals.len())
            .field("finger_garbage", &self.finger_garbage)
            .finish()
    }
}

// ---- views -----------------------------------------------------------------

/// Borrowed view of one node's state — the accessor shape the old owned
/// `NodeState` record had, backed by the arena columns at zero copy cost.
#[derive(Clone, Copy)]
pub struct NodeRef<'a> {
    arena: &'a RoutingArena,
    id: usize,
}

impl<'a> NodeRef<'a> {
    pub(crate) fn new(arena: &'a RoutingArena, id: usize) -> NodeRef<'a> {
        assert!(id < arena.len(), "node index {id} out of range");
        NodeRef { arena, id }
    }

    /// The node's ring identifier.
    pub fn point(&self) -> Point {
        self.arena.point(self.id)
    }

    /// Whether the node is currently live.
    pub fn is_alive(&self) -> bool {
        self.arena.is_alive(self.id)
    }

    /// The predecessor pointer, if known.
    pub fn predecessor(&self) -> Option<NodeId> {
        self.arena.pred(self.id).map(NodeId::from_index)
    }

    /// The successor list, nearest first. May transiently contain dead
    /// nodes between failures and the next stabilization round.
    pub fn successors(&self) -> Successors<'a> {
        Successors {
            ids: self.arena.successors(self.id),
        }
    }

    /// The first entry of the successor list, if any.
    pub fn successor(&self) -> Option<NodeId> {
        self.successors().first()
    }

    /// The finger table; entry `i` is the believed successor of
    /// `point + 2^i`.
    pub fn fingers(&self) -> Fingers<'a> {
        let runs = self.arena.finger_mask[self.id].count_ones() as usize;
        let off = self.arena.finger_off[self.id] as usize;
        Fingers {
            mask: self.arena.finger_mask[self.id],
            vals: &self.arena.finger_vals[off..off + runs],
            bits: self.arena.finger_bits,
        }
    }

    /// The key-value pairs this node currently holds (as owner or
    /// replica).
    pub fn store(&self) -> &'a BTreeMap<Point, Vec<u8>> {
        self.arena.store(self.id)
    }
}

impl fmt::Display for NodeRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Node@{} ({}, {} successors)",
            self.point(),
            if self.is_alive() { "alive" } else { "dead" },
            self.successors().len()
        )
    }
}

impl fmt::Debug for NodeRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Borrowed view of a successor list.
#[derive(Clone, Copy)]
pub struct Successors<'a> {
    ids: &'a [u32],
}

impl<'a> Successors<'a> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Entry `i`, if present.
    pub fn get(&self, i: usize) -> Option<NodeId> {
        self.ids.get(i).map(|&s| NodeId::from_index(s as usize))
    }

    /// The first entry, if any.
    pub fn first(&self) -> Option<NodeId> {
        self.get(0)
    }

    /// Whether `id` appears in the list.
    pub fn contains(&self, id: NodeId) -> bool {
        self.ids.iter().any(|&s| s as usize == id.index())
    }

    /// The entries in list order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + 'a {
        self.ids.iter().map(|&s| NodeId::from_index(s as usize))
    }

    /// The entries collected into an owned vector.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }
}

impl PartialEq for Successors<'_> {
    fn eq(&self, other: &Successors<'_>) -> bool {
        self.ids == other.ids
    }
}

impl PartialEq<[NodeId]> for Successors<'_> {
    fn eq(&self, other: &[NodeId]) -> bool {
        self.len() == other.len() && self.iter().zip(other).all(|(a, &b)| a == b)
    }
}

impl fmt::Debug for Successors<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.iter().map(|id| id.index()))
            .finish()
    }
}

/// Borrowed view of a finger table: 64 logical `Option<NodeId>` entries
/// decoded on demand from the run-length representation.
#[derive(Clone, Copy)]
pub struct Fingers<'a> {
    mask: u64,
    vals: &'a [u32],
    bits: usize,
}

impl<'a> Fingers<'a> {
    /// Number of logical entries (`⌈log₂ M⌉`).
    pub fn len(&self) -> usize {
        self.bits
    }

    /// Whether the table has zero logical entries (never true for a real
    /// ring; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Entry `bit`: the believed successor of `point + 2^bit`.
    pub fn get(&self, bit: usize) -> Option<NodeId> {
        assert!(bit < self.bits, "finger bit {bit} out of range");
        if self.mask == 0 {
            return None;
        }
        let run = (self.mask & bits_through(bit)).count_ones() as usize - 1;
        decode(self.vals[run]).map(NodeId::from_index)
    }

    /// All logical entries in bit order.
    pub fn iter(&self) -> impl Iterator<Item = Option<NodeId>> + 'a {
        let this = *self;
        (0..self.bits).map(move |b| this.get(b))
    }

    /// The run decomposition: `(first_bit, end_bit_exclusive, value)`
    /// triples covering all bits. Iterating runs instead of bits is the
    /// cheap way to enumerate the table's ~log n *distinct* values.
    pub fn runs(&self) -> impl Iterator<Item = (usize, usize, Option<NodeId>)> + 'a {
        let this = *self;
        let n = if this.mask == 0 { 0 } else { this.vals.len() };
        (0..n).map(move |run| {
            let mut mask = this.mask;
            for _ in 0..run {
                mask &= mask - 1;
            }
            let start = mask.trailing_zeros() as usize;
            let rest = mask & (mask - 1);
            let end = if rest == 0 {
                this.bits
            } else {
                rest.trailing_zeros() as usize
            };
            (start, end, decode(this.vals[run]).map(NodeId::from_index))
        })
    }

    /// The distinct populated values, in run order.
    pub fn distinct(&self) -> impl Iterator<Item = NodeId> + 'a {
        self.runs().filter_map(|(_, _, v)| v)
    }

    /// All logical entries collected into the old owned representation.
    pub fn to_vec(&self) -> Vec<Option<NodeId>> {
        self.iter().collect()
    }
}

impl PartialEq for Fingers<'_> {
    fn eq(&self, other: &Fingers<'_>) -> bool {
        // Tables are kept canonical (adjacent runs merged, all-`None` is
        // mask 0), so representation equality is semantic equality.
        self.bits == other.bits && self.mask == other.mask && self.vals == other.vals
    }
}

impl fmt::Debug for Fingers<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.runs().map(|(s, e, v)| (s..e, v.map(|id| id.index()))))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn arena(bits: usize) -> RoutingArena {
        let mut a = RoutingArena::new(bits, 8);
        for i in 0..10 {
            a.push(Point::new(i * 100));
        }
        a
    }

    #[test]
    fn fresh_node_has_empty_routing() {
        let a = arena(64);
        let n = NodeRef::new(&a, 3);
        assert_eq!(n.point(), Point::new(300));
        assert!(n.is_alive());
        assert_eq!(n.predecessor(), None);
        assert_eq!(n.successor(), None);
        assert!(n.successors().is_empty());
        assert_eq!(n.fingers().len(), 64);
        assert!(n.fingers().iter().all(|f| f.is_none()));
    }

    #[test]
    fn successor_lists_truncate_at_the_stride() {
        let mut a = arena(8);
        let long: Vec<NodeId> = (0..12).map(NodeId::from_index).collect();
        a.set_successors(2, &long);
        assert_eq!(a.successors(2).len(), 8);
        assert!(a.successors_eq(2, &long), "truncation-aware equality");
        let view = NodeRef::new(&a, 2).successors();
        assert_eq!(view.first(), Some(NodeId::from_index(0)));
        assert_eq!(view.get(7), Some(NodeId::from_index(7)));
        assert_eq!(view.get(8), None);
        assert!(view.contains(NodeId::from_index(5)));
        assert!(!view.contains(NodeId::from_index(11)));
    }

    #[test]
    fn finger_point_updates_match_a_naive_table() {
        let bits = 64;
        let mut a = arena(bits);
        let mut naive: Vec<Vec<Option<usize>>> = vec![vec![None; bits]; 10];
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for step in 0..6_000 {
            let i = rng.gen_range(0..10usize);
            let bit = rng.gen_range(0..bits);
            // Few distinct values => long runs; occasional None clears.
            let val = match rng.gen_range(0..10u32) {
                0 => None,
                v => Some((v % 4) as usize),
            };
            let changed = a.set_finger(i, bit, val);
            assert_eq!(changed, naive[i][bit] != val, "step {step}");
            naive[i][bit] = val;
            for (b, &want) in naive[i].iter().enumerate() {
                assert_eq!(a.finger(i, b), want, "node {i} bit {b} step {step}");
            }
        }
        // Relocation garbage stays bounded by compaction.
        assert!(a.finger_garbage * 2 <= a.finger_vals.len().max(4096));
    }

    #[test]
    fn finger_runs_are_canonical_and_views_agree() {
        let mut a = arena(16);
        for bit in 0..16 {
            a.set_finger(0, bit, Some(if bit < 5 { 1 } else { 2 }));
        }
        let f = NodeRef::new(&a, 0).fingers();
        let runs: Vec<_> = f.runs().collect();
        assert_eq!(
            runs,
            vec![
                (0, 5, Some(NodeId::from_index(1))),
                (5, 16, Some(NodeId::from_index(2))),
            ]
        );
        assert_eq!(f.distinct().count(), 2);
        // Clearing everything returns to the canonical empty table.
        for bit in 0..16 {
            a.set_finger(0, bit, None);
        }
        assert_eq!(a.finger_mask[0], 0);
        assert!(NodeRef::new(&a, 0).fingers().iter().all(|f| f.is_none()));
    }

    #[test]
    fn set_finger_runs_matches_point_updates() {
        let mut a = arena(64);
        a.set_finger_runs(0, &[0, 10, 40], &[7, 8, NONE]);
        let mut b = arena(64);
        for bit in 0..64 {
            let v = match bit {
                0..=9 => Some(7),
                10..=39 => Some(8),
                _ => None,
            };
            b.set_finger(1, bit, v);
        }
        for bit in 0..64 {
            assert_eq!(a.finger(0, bit), b.finger(1, bit), "bit {bit}");
        }
    }

    #[test]
    fn alive_bitset_tracks_state() {
        let mut a = arena(4);
        assert!(a.is_alive(7));
        a.set_alive(7, false);
        assert!(!a.is_alive(7));
        assert!(a.is_alive(6) && a.is_alive(8));
        a.set_alive(7, true);
        assert!(a.is_alive(7));
    }

    #[test]
    fn routing_bytes_is_a_fraction_of_the_old_representation() {
        let mut a = RoutingArena::new(64, 8);
        for i in 0..1_000u64 {
            let id = a.push(Point::new(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            let succs: Vec<NodeId> = (1..=8).map(NodeId::from_index).collect();
            a.set_successors(id, &succs);
            a.set_pred(id, Some(id));
            // A realistic ~log n distinct-value table.
            a.set_finger_runs(id, &[0, 47, 50, 53, 56, 59, 62], &[1, 2, 3, 4, 5, 6, 7]);
        }
        let per_node = a.routing_bytes() as f64 / 1_000.0;
        // Old representation: 64 * 16 B fingers + 8 * 8 B successors + the
        // struct itself — well over 1 KB.
        assert!(per_node < 150.0, "bytes/node {per_node}");
    }

    #[test]
    fn display_mentions_liveness() {
        let mut a = arena(4);
        assert!(NodeRef::new(&a, 1).to_string().contains("alive"));
        a.set_alive(1, false);
        assert!(NodeRef::new(&a, 1).to_string().contains("dead"));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_view_panics() {
        let a = arena(4);
        let _ = NodeRef::new(&a, 99);
    }
}
