use core::fmt;

use keyspace::KeySpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::churn::{ChurnConfig, ChurnKind};
use simnet::{DomainMap, EventQueue, SimDuration, SimTime};
use std::collections::HashMap;

use crate::maintenance::MaintenanceBudget;
use crate::network::{ChordNetwork, NodeId};
use crate::watchdog::Watchdog;
use crate::ChordConfig;

/// What the simulation processes at each event-queue firing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Churn(ChurnKind),
    Maintenance,
}

/// Tally of a churn run, returned by [`ChurnSimulation::run_to_end`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChurnReport {
    /// Successful protocol joins.
    pub joins: u64,
    /// Joins whose bootstrap lookup failed (retried never — counted).
    pub failed_joins: u64,
    /// Graceful departures.
    pub leaves: u64,
    /// Silent crashes.
    pub crashes: u64,
    /// Maintenance rounds executed.
    pub maintenance_rounds: u64,
    /// Correlated domain-crash events applied (each kills a whole
    /// domain's live membership atomically).
    pub domain_crashes: u64,
    /// Domain-heal events applied (each rejoins a downed domain).
    pub domain_heals: u64,
}

impl fmt::Display for ChurnReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} joins ({} failed), {} leaves, {} crashes, {} maintenance rounds, \
             {} domain crashes, {} domain heals",
            self.joins,
            self.failed_joins,
            self.leaves,
            self.crashes,
            self.maintenance_rounds,
            self.domain_crashes,
            self.domain_heals
        )
    }
}

/// An event-driven Chord overlay under membership churn.
///
/// Drives a [`ChordNetwork`] from a `simnet` churn schedule interleaved
/// with periodic maintenance ticks, in deterministic event order. This is
/// the workhorse of experiment **E11** (the paper's "evaluate it in
/// practice" open problem): the sampler runs against snapshots of the
/// churning overlay, measuring failure rates and uniformity drift as churn
/// outpaces stabilization.
///
/// # Example
///
/// ```
/// use chord::{ChordConfig, ChurnSimulation};
/// use simnet::churn::ChurnConfig;
/// use simnet::SimDuration;
///
/// let churn = ChurnConfig {
///     arrivals_per_1000_ticks: 5.0,
///     mean_lifetime: SimDuration::from_ticks(20_000),
///     crash_fraction: 0.5,
///     horizon: SimDuration::from_ticks(10_000),
/// };
/// let mut sim = ChurnSimulation::new(
///     64,
///     ChordConfig::default(),
///     churn,
///     SimDuration::from_ticks(500),
///     7,
/// );
/// let report = sim.run_to_end();
/// assert!(sim.network().live_len() > 0);
/// assert!(report.maintenance_rounds > 0);
/// ```
pub struct ChurnSimulation {
    net: ChordNetwork,
    queue: EventQueue<Event>,
    clock: SimTime,
    horizon: SimTime,
    stabilize_every: SimDuration,
    round: usize,
    rng: StdRng,
    report: ChurnReport,
    replication: Option<usize>,
    /// When set, maintenance ticks run the batched incremental round
    /// under this budget instead of the classic full O(n) round.
    budget: Option<MaintenanceBudget>,
    timeline: Vec<(SimTime, usize)>,
    /// When attached, each maintenance tick first closes a telemetry
    /// window and lets the watchdog observe the *pre-repair* overlay.
    watchdog: Option<Watchdog>,
    /// Resolves domain-crash/heal events to concrete ring members.
    /// Without one, correlated events in the schedule are skipped.
    domain_map: Option<DomainMap>,
    /// Ring points a domain crash took down, per domain, so the healing
    /// edge rejoins exactly the members that failed.
    downed: HashMap<u32, Vec<keyspace::Point>>,
}

impl ChurnSimulation {
    /// Builds a converged `initial_peers`-node overlay, then schedules the
    /// churn workload and a maintenance tick every `stabilize_every`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_peers == 0` or `stabilize_every` is zero.
    pub fn new(
        initial_peers: usize,
        config: ChordConfig,
        churn: ChurnConfig,
        stabilize_every: SimDuration,
        seed: u64,
    ) -> ChurnSimulation {
        ChurnSimulation::with_schedule(
            initial_peers,
            config,
            &simnet::churn::ChurnSchedule::constant(churn),
            stabilize_every,
            seed,
        )
    }

    /// Like [`ChurnSimulation::new`], but driven by a multi-phase
    /// [`ChurnSchedule`](simnet::churn::ChurnSchedule) — churn storms,
    /// flash crowds, or any piecewise-stationary workload.
    ///
    /// # Panics
    ///
    /// Panics if `initial_peers == 0` or `stabilize_every` is zero.
    pub fn with_schedule(
        initial_peers: usize,
        config: ChordConfig,
        schedule: &simnet::churn::ChurnSchedule,
        stabilize_every: SimDuration,
        seed: u64,
    ) -> ChurnSimulation {
        assert!(initial_peers > 0, "need at least one initial peer");
        let mut rng = StdRng::seed_from_u64(seed);
        let space = KeySpace::full();
        let points = space.random_points(&mut rng, initial_peers);
        ChurnSimulation::from_parts(points, config, schedule, stabilize_every, rng)
    }

    /// Like [`ChurnSimulation::with_schedule`], but over an explicit
    /// initial placement (clustered/skewed rings under churn) instead of
    /// i.i.d. uniform points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or `stabilize_every` is zero.
    pub fn with_schedule_over(
        points: Vec<keyspace::Point>,
        config: ChordConfig,
        schedule: &simnet::churn::ChurnSchedule,
        stabilize_every: SimDuration,
        seed: u64,
    ) -> ChurnSimulation {
        assert!(!points.is_empty(), "need at least one initial peer");
        let rng = StdRng::seed_from_u64(seed);
        ChurnSimulation::from_parts(points, config, schedule, stabilize_every, rng)
    }

    fn from_parts(
        points: Vec<keyspace::Point>,
        config: ChordConfig,
        schedule: &simnet::churn::ChurnSchedule,
        stabilize_every: SimDuration,
        mut rng: StdRng,
    ) -> ChurnSimulation {
        assert!(
            !stabilize_every.is_zero(),
            "stabilization interval must be positive"
        );
        let space = KeySpace::full();
        let net = ChordNetwork::bootstrap(space, points, config);
        let mut queue = EventQueue::new();
        let horizon = SimTime::ZERO + schedule.horizon();
        for ev in schedule.generate(&mut rng) {
            queue.schedule(ev.time, Event::Churn(ev.kind));
        }
        queue.schedule(SimTime::ZERO + stabilize_every, Event::Maintenance);
        ChurnSimulation {
            net,
            queue,
            clock: SimTime::ZERO,
            horizon,
            stabilize_every,
            round: 0,
            rng,
            report: ChurnReport::default(),
            replication: None,
            budget: None,
            timeline: Vec::new(),
            watchdog: None,
            domain_map: None,
            downed: HashMap::new(),
        }
    }

    /// Attaches the failure-domain map that resolves the schedule's
    /// [`ChurnKind::DomainCrash`]/[`ChurnKind::DomainHeal`] events to
    /// concrete ring members. A schedule carrying domain events without a
    /// map skips them (no map, no correlated geometry).
    pub fn with_domain_map(mut self, map: DomainMap) -> ChurnSimulation {
        self.domain_map = Some(map);
        self
    }

    /// Enables storage anti-entropy: every maintenance tick also runs one
    /// [`replication_round`](ChordNetwork::replication_round) per live
    /// node at the given replication factor, so stored data chases
    /// ownership changes through the churn.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn with_replication(mut self, replicas: usize) -> ChurnSimulation {
        assert!(replicas > 0, "need at least one replica");
        self.replication = Some(replicas);
        self
    }

    /// Switches maintenance ticks to
    /// [`ChordNetwork::batched_maintenance_round`] under `budget`:
    /// each tick repairs only state the churn actually invalidated
    /// (amortized O(changes · log n)) instead of running the classic
    /// full round's O(n) routed lookups — the difference between 10⁶-
    /// and 10⁷-node churn runs. A finite budget deliberately lets a
    /// backlog accumulate; read it with
    /// [`ChordNetwork::maintenance_backlog`].
    pub fn with_maintenance_budget(mut self, budget: MaintenanceBudget) -> ChurnSimulation {
        self.budget = Some(budget);
        self
    }

    /// Attaches a health watchdog: every maintenance tick first closes
    /// the current telemetry window and hands it — together with the
    /// *pre-repair* overlay state — to [`Watchdog::observe`], so what
    /// the watchdog sees is the damage maintenance is about to fix, not
    /// the freshly repaired ring. Attachment also starts a clean window
    /// boundary, keeping bootstrap counters out of window 0.
    ///
    /// The watchdog runs on its own RNG stream, so attaching it changes
    /// neither the churn trajectory nor the resulting overlay.
    pub fn with_watchdog(mut self, watchdog: Watchdog) -> ChurnSimulation {
        let _ = self.net.metrics().recorder().reset_window();
        self.watchdog = Some(watchdog);
        self
    }

    /// The attached watchdog, if any.
    pub fn watchdog(&self) -> Option<&Watchdog> {
        self.watchdog.as_ref()
    }

    /// Detaches and returns the watchdog (e.g. to keep observing the
    /// overlay through a post-churn measurement phase after
    /// [`ChurnSimulation::into_network`]).
    pub fn take_watchdog(&mut self) -> Option<Watchdog> {
        self.watchdog.take()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The overlay being churned.
    pub fn network(&self) -> &ChordNetwork {
        &self.net
    }

    /// Mutable access to the overlay (e.g. to run sampler probes between
    /// [`run_until`](ChurnSimulation::run_until) calls).
    pub fn network_mut(&mut self) -> &mut ChordNetwork {
        &mut self.net
    }

    /// Consumes the simulation, returning the churned overlay (for
    /// post-churn measurement phases that outlive the schedule).
    pub fn into_network(self) -> ChordNetwork {
        self.net
    }

    /// Tally so far.
    pub fn report(&self) -> ChurnReport {
        self.report
    }

    /// The live-population timeline: one `(time, live_count)` point per
    /// membership event, for post-hoc analysis of churn runs.
    pub fn population_timeline(&self) -> &[(SimTime, usize)] {
        &self.timeline
    }

    /// Processes events up to and including time `until`. Returns `false`
    /// when the queue is exhausted.
    pub fn run_until(&mut self, until: SimTime) -> bool {
        while let Some((time, event)) = self.queue.pop_due(until) {
            self.clock = time;
            let is_membership = matches!(event, Event::Churn(_));
            self.handle(event);
            if is_membership {
                self.timeline.push((time, self.net.live_len()));
            }
        }
        if self.clock < until {
            self.clock = until;
        }
        !self.queue.is_empty()
    }

    /// Runs the simulation to the end of the schedule.
    pub fn run_to_end(&mut self) -> ChurnReport {
        self.run_until(self.horizon);
        // Drain any maintenance tick scheduled exactly at the horizon.
        while let Some((time, event)) = self.queue.pop() {
            self.clock = time;
            self.handle(event);
        }
        self.report
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Churn(ChurnKind::Join) => {
                let point = self.net.space().random_point(&mut self.rng);
                match self.random_live_node() {
                    Some(via) => match self.net.join(point, via, &mut self.rng) {
                        Ok(_) => self.report.joins += 1,
                        Err(_) => self.report.failed_joins += 1,
                    },
                    None => self.report.failed_joins += 1,
                }
            }
            Event::Churn(ChurnKind::Leave) => {
                if let Some(victim) = self.random_live_node_if_plural() {
                    self.net.leave(victim);
                    self.report.leaves += 1;
                }
            }
            Event::Churn(ChurnKind::Crash) => {
                if let Some(victim) = self.random_live_node_if_plural() {
                    self.net.crash(victim);
                    self.report.crashes += 1;
                }
            }
            Event::Churn(ChurnKind::DomainCrash { domain }) => {
                let Some(map) = self.domain_map.as_ref() else {
                    return;
                };
                // The whole domain fails atomically (one power event, not
                // n independent ones); the last live node overall always
                // survives so the overlay cannot die out entirely.
                let victims: Vec<NodeId> = self
                    .net
                    .live_slice()
                    .iter()
                    .copied()
                    .filter(|&id| map.contains(domain, self.net.node(id).point().get()))
                    .collect();
                let mut points = Vec::with_capacity(victims.len());
                for v in victims {
                    if self.net.live_len() < 2 {
                        break;
                    }
                    points.push(self.net.node(v).point());
                    self.net.crash(v);
                }
                self.downed.entry(domain).or_default().extend(points);
                self.report.domain_crashes += 1;
            }
            Event::Churn(ChurnKind::DomainHeal { domain }) => {
                let points = self.downed.remove(&domain).unwrap_or_default();
                for point in points {
                    match self.random_live_node() {
                        Some(via) => match self.net.join(point, via, &mut self.rng) {
                            Ok(_) => self.report.joins += 1,
                            Err(_) => self.report.failed_joins += 1,
                        },
                        None => self.report.failed_joins += 1,
                    }
                }
                self.report.domain_heals += 1;
            }
            Event::Maintenance => {
                if let Some(watchdog) = self.watchdog.as_mut() {
                    let window = self.net.metrics().recorder().reset_window();
                    watchdog.observe(&self.net, window, None);
                }
                match self.budget {
                    Some(budget) => {
                        self.net.batched_maintenance_round(budget, &mut self.rng);
                    }
                    None => self.net.maintenance_round(self.round, &mut self.rng),
                }
                if let Some(replicas) = self.replication {
                    for id in self.net.live_ids() {
                        self.net.replication_round(id, replicas);
                    }
                }
                self.round += 1;
                self.report.maintenance_rounds += 1;
                let next = self.clock + self.stabilize_every;
                if next <= self.horizon {
                    self.queue.schedule(next, Event::Maintenance);
                }
            }
        }
    }

    fn random_live_node(&mut self) -> Option<NodeId> {
        // live_slice is maintained incrementally, so selection is O(1)
        // instead of an O(arena) rescan per churn event.
        let live = self.net.live_slice();
        if live.is_empty() {
            return None;
        }
        Some(live[self.rng.gen_range(0..live.len())])
    }

    /// A random live node, but never the last one (the overlay must not
    /// die out entirely).
    fn random_live_node_if_plural(&mut self) -> Option<NodeId> {
        let live = self.net.live_slice();
        if live.len() < 2 {
            return None;
        }
        Some(live[self.rng.gen_range(0..live.len())])
    }
}

impl fmt::Debug for ChurnSimulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChurnSimulation")
            .field("clock", &self.clock)
            .field("live", &self.net.live_len())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn churn_cfg(horizon: u64) -> ChurnConfig {
        ChurnConfig {
            arrivals_per_1000_ticks: 10.0,
            mean_lifetime: SimDuration::from_ticks(30_000),
            crash_fraction: 0.5,
            horizon: SimDuration::from_ticks(horizon),
        }
    }

    fn sim(seed: u64) -> ChurnSimulation {
        ChurnSimulation::new(
            48,
            ChordConfig::default(),
            churn_cfg(20_000),
            SimDuration::from_ticks(250),
            seed,
        )
    }

    #[test]
    fn simulation_processes_all_events() {
        let mut s = sim(1);
        let report = s.run_to_end();
        assert!(report.joins + report.failed_joins > 100, "{report}");
        assert!(report.maintenance_rounds >= 79, "{report}");
        assert!(s.network().live_len() > 0);
    }

    #[test]
    fn population_tracks_joins_minus_departures() {
        let mut s = sim(2);
        let report = s.run_to_end();
        let expected = 48 + report.joins as i64 - report.leaves as i64 - report.crashes as i64;
        assert_eq!(s.network().live_len() as i64, expected, "{report}");
    }

    #[test]
    fn run_until_is_incremental_and_monotone() {
        let mut s = sim(3);
        let t1 = SimTime::from_ticks(5_000);
        s.run_until(t1);
        assert_eq!(s.now(), t1);
        let live_mid = s.network().live_len();
        assert!(live_mid > 0);
        s.run_until(SimTime::from_ticks(20_000));
        assert!(s.now() >= t1);
    }

    #[test]
    fn deterministic_across_same_seed() {
        let mut a = sim(4);
        let mut b = sim(4);
        let ra = a.run_to_end();
        let rb = b.run_to_end();
        assert_eq!(ra, rb);
        assert_eq!(a.network().live_len(), b.network().live_len());
    }

    #[test]
    fn ring_remains_usable_under_churn() {
        let mut s = sim(5);
        s.run_until(SimTime::from_ticks(10_000));
        // Lookups still resolve correctly against the live ground truth
        // for the overwhelming majority of targets.
        let net = s.network();
        let mut rng = StdRng::seed_from_u64(99);
        let start = net.live_ids()[0];
        let mut ok = 0;
        let trials = 100;
        for _ in 0..trials {
            let target = net.space().random_point(&mut rng);
            if let Ok(hit) = net.find_successor(start, target, &mut rng) {
                if hit.point == net.ground_truth_successor(target) {
                    ok += 1;
                }
            }
        }
        assert!(
            ok >= trials * 85 / 100,
            "only {ok}/{trials} lookups correct"
        );
    }

    #[test]
    fn maintenance_converges_ring_after_churn_stops() {
        let mut s = sim(6);
        s.run_to_end();
        let mut rng = StdRng::seed_from_u64(123);
        let report = {
            let net = s.network_mut();
            for _ in 0..3 {
                net.converge(&mut rng);
            }
            net.verify_ring()
        };
        assert!(report.is_converged(), "{report:?}");
    }

    #[test]
    fn schedule_constructor_matches_config_constructor() {
        let mut a = sim(9);
        let schedule = simnet::churn::ChurnSchedule::constant(churn_cfg(20_000));
        let mut b = ChurnSimulation::with_schedule(
            48,
            ChordConfig::default(),
            &schedule,
            SimDuration::from_ticks(250),
            9,
        );
        assert_eq!(a.run_to_end(), b.run_to_end());
        assert_eq!(a.network().live_len(), b.network().live_len());
    }

    #[test]
    fn storm_phase_crashes_dominate() {
        use simnet::churn::{ChurnPhase, ChurnSchedule};
        let schedule = ChurnSchedule::new(vec![
            ChurnPhase {
                duration: SimDuration::from_ticks(10_000),
                arrivals_per_1000_ticks: 5.0,
                mean_lifetime: SimDuration::from_ticks(200_000),
                crash_fraction: 0.0,
            },
            ChurnPhase {
                duration: SimDuration::from_ticks(10_000),
                arrivals_per_1000_ticks: 100.0,
                mean_lifetime: SimDuration::from_ticks(2_000),
                crash_fraction: 1.0,
            },
        ]);
        let mut s = ChurnSimulation::with_schedule(
            64,
            ChordConfig::default(),
            &schedule,
            SimDuration::from_ticks(250),
            10,
        );
        let report = s.run_to_end();
        assert!(report.crashes > 0, "{report}");
        assert!(
            report.crashes > report.leaves,
            "storm-phase departures are all crashes: {report}"
        );
        assert!(s.network().live_len() > 0);
    }

    #[test]
    fn domain_partition_crashes_and_heals_a_correlated_set() {
        use simnet::churn::{ChurnPhase, ChurnSchedule};
        // A quiet background so the domain outage dominates the
        // membership trajectory.
        let schedule = ChurnSchedule::new(vec![ChurnPhase {
            duration: SimDuration::from_ticks(20_000),
            arrivals_per_1000_ticks: 0.1,
            mean_lifetime: SimDuration::from_ticks(1_000_000),
            crash_fraction: 0.0,
        }])
        .with_domain_partition(
            2,
            SimTime::from_ticks(5_000),
            SimDuration::from_ticks(8_000),
        );
        let map = DomainMap::sectors(4, KeySpace::full().modulus());
        let mut s = ChurnSimulation::with_schedule(
            128,
            ChordConfig::default(),
            &schedule,
            SimDuration::from_ticks(500),
            11,
        )
        .with_domain_map(map.clone());
        let before = s.network().live_len();
        s.run_until(SimTime::from_ticks(6_000));
        let during = s.network().live_len();
        // ~1/4 of a uniform ring lives in one of 4 sectors.
        assert!(
            during < before - before / 8,
            "domain crash must remove a correlated set ({before} -> {during})"
        );
        assert!(
            s.network()
                .live_ids()
                .iter()
                .all(|&id| !map.contains(2, s.network().node(id).point().get())),
            "no live member of the crashed domain may remain"
        );
        let report = s.run_to_end();
        assert_eq!(report.domain_crashes, 1);
        assert_eq!(report.domain_heals, 1);
        let after = s.network().live_len();
        assert!(
            after > during,
            "heal must rejoin the domain ({during} -> {after})"
        );
        assert!(
            s.network()
                .live_ids()
                .iter()
                .any(|&id| map.contains(2, s.network().node(id).point().get())),
            "healed domain must have live members again"
        );
    }

    #[test]
    fn domain_events_without_a_map_are_skipped() {
        use simnet::churn::{ChurnPhase, ChurnSchedule};
        let phase = ChurnPhase {
            duration: SimDuration::from_ticks(10_000),
            arrivals_per_1000_ticks: 0.1,
            mean_lifetime: SimDuration::from_ticks(1_000_000),
            crash_fraction: 0.0,
        };
        let schedule =
            ChurnSchedule::new(vec![phase]).with_domain_crash(0, SimTime::from_ticks(2_000));
        let mut s = ChurnSimulation::with_schedule(
            32,
            ChordConfig::default(),
            &schedule,
            SimDuration::from_ticks(500),
            12,
        );
        let report = s.run_to_end();
        assert_eq!(report.domain_crashes, 0, "no map, no correlated crash");
        assert_eq!(s.network().live_len(), 32 + report.joins as usize);
    }

    #[test]
    #[should_panic(expected = "at least one initial peer")]
    fn zero_initial_peers_panics() {
        let _ = ChurnSimulation::new(
            0,
            ChordConfig::default(),
            churn_cfg(100),
            SimDuration::from_ticks(10),
            1,
        );
    }

    #[test]
    fn report_and_debug_display() {
        let mut s = sim(7);
        assert!(format!("{s:?}").contains("live"));
        let report = s.run_to_end();
        assert!(report.to_string().contains("joins"));
    }

    #[test]
    fn population_timeline_tracks_membership() {
        let mut s = sim(8);
        let report = s.run_to_end();
        let timeline = s.population_timeline();
        let membership_events = report.joins + report.failed_joins + report.leaves
            + report.crashes
            // Leaves/crashes skipped on a singleton ring still count as
            // churn events in the timeline only when applied; failed
            // joins are recorded too.
            ;
        assert!(!timeline.is_empty());
        assert!(timeline.len() as u64 <= membership_events + 16);
        // Times are non-decreasing and the final point matches the net.
        for pair in timeline.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
        assert_eq!(timeline.last().unwrap().1, s.network().live_len());
    }
}
