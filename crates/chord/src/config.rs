use core::fmt;

use simnet::LatencyModel;

/// Tuning parameters of the Chord protocol.
///
/// Defaults follow the SIGCOMM paper's recommendations scaled to
/// simulation: a successor list of `O(log n)` entries (8 covers the sizes
/// used in the experiments) and unit message delays.
///
/// # Example
///
/// ```
/// use chord::ChordConfig;
///
/// let config = ChordConfig::default().with_successor_list_len(16);
/// assert_eq!(config.successor_list_len(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChordConfig {
    successor_list_len: usize,
    max_hops: u32,
    latency: LatencyModel,
}

impl ChordConfig {
    /// Creates the default configuration (successor list 8, hop cap 256,
    /// unit latency).
    pub fn new() -> ChordConfig {
        ChordConfig {
            successor_list_len: 8,
            max_hops: 256,
            latency: LatencyModel::UNIT,
        }
    }

    /// Sets the successor-list length `r`.
    ///
    /// Chord tolerates up to `r − 1` consecutive successor failures; the
    /// SIGCOMM paper recommends `r = Θ(log n)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn with_successor_list_len(mut self, len: usize) -> ChordConfig {
        assert!(len > 0, "successor list needs at least one entry");
        self.successor_list_len = len;
        self
    }

    /// Sets the routing hop cap (fail-safe against routing loops in
    /// heavily churned rings).
    ///
    /// # Panics
    ///
    /// Panics if `max_hops == 0`.
    pub fn with_max_hops(mut self, max_hops: u32) -> ChordConfig {
        assert!(max_hops > 0, "hop cap must be positive");
        self.max_hops = max_hops;
        self
    }

    /// Sets the per-message latency model.
    pub fn with_latency(mut self, latency: LatencyModel) -> ChordConfig {
        self.latency = latency;
        self
    }

    /// The successor-list length `r`.
    pub fn successor_list_len(&self) -> usize {
        self.successor_list_len
    }

    /// The routing hop cap.
    pub fn max_hops(&self) -> u32 {
        self.max_hops
    }

    /// The per-message latency model.
    pub fn latency(&self) -> LatencyModel {
        self.latency
    }
}

impl Default for ChordConfig {
    fn default() -> ChordConfig {
        ChordConfig::new()
    }
}

impl fmt::Display for ChordConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ChordConfig(r = {}, max_hops = {}, latency = {})",
            self.successor_list_len, self.max_hops, self.latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ChordConfig::default();
        assert_eq!(c.successor_list_len(), 8);
        assert_eq!(c.max_hops(), 256);
        assert_eq!(c.latency(), LatencyModel::UNIT);
    }

    #[test]
    fn builders_override() {
        let c = ChordConfig::new()
            .with_successor_list_len(3)
            .with_max_hops(10)
            .with_latency(LatencyModel::Constant(5));
        assert_eq!(c.successor_list_len(), 3);
        assert_eq!(c.max_hops(), 10);
        assert_eq!(c.latency(), LatencyModel::Constant(5));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_successors_panics() {
        let _ = ChordConfig::new().with_successor_list_len(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_hops_panics() {
        let _ = ChordConfig::new().with_max_hops(0);
    }

    #[test]
    fn display_mentions_r() {
        assert!(ChordConfig::default().to_string().contains("r = 8"));
    }
}
