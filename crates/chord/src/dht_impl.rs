use std::cell::RefCell;

use keyspace::{KeySpace, Point};
use peer_sampling::{Cost, Dht, DhtError, Resolved};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::network::{ChordNetwork, NodeId};
use crate::{FaultPlan, LookupError};

/// Adapter exposing a [`ChordNetwork`] as the paper's DHT interface.
///
/// The view is anchored at a `start` node — the peer "running" the
/// algorithm: `h(x)` is a routed [`find_successor`] *from that node* (so
/// its cost is the real hop count), and `next(p)` is one successor-pointer
/// query at `p`.
///
/// The adapter holds its own latency RNG behind a `RefCell` because the
/// [`Dht`] trait takes `&self` (the sampler must not be able to mutate the
/// network) while latency sampling needs mutable RNG state.
///
/// # Example
///
/// ```
/// use chord::{ChordConfig, ChordDht, ChordNetwork};
/// use keyspace::KeySpace;
/// use peer_sampling::{Sampler, SamplerConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let space = KeySpace::full();
/// let net = ChordNetwork::bootstrap(
///     space,
///     space.random_points(&mut rng, 200),
///     ChordConfig::default(),
/// );
/// let dht = ChordDht::new(&net, net.live_ids()[0], 42);
/// let sampler = Sampler::new(SamplerConfig::new(200));
/// let sample = sampler.sample(&dht, &mut rng)?;
/// assert!(net.node(sample.peer).is_alive());
/// # Ok::<(), peer_sampling::SampleError>(())
/// ```
///
/// [`find_successor`]: ChordNetwork::find_successor
#[derive(Debug)]
pub struct ChordDht<'a> {
    net: &'a ChordNetwork,
    start: NodeId,
    rng: RefCell<StdRng>,
    faults: FaultPlan,
    /// The plan `h` lookups route under: equal to `faults`, except that a
    /// verifying client strips ownership claims (a naked claim cannot
    /// terminate an iterative lookup it drives itself).
    route_faults: FaultPlan,
    verified_positions: bool,
}

impl<'a> ChordDht<'a> {
    /// Anchors a DHT view at `start` with a dedicated latency-RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `start` is dead — a dead peer cannot run the algorithm.
    pub fn new(net: &'a ChordNetwork, start: NodeId, latency_seed: u64) -> ChordDht<'a> {
        assert!(
            net.node(start).is_alive(),
            "anchor node {start} must be alive"
        );
        ChordDht {
            net,
            start,
            rng: RefCell::new(StdRng::seed_from_u64(latency_seed)),
            faults: FaultPlan::none(),
            route_faults: FaultPlan::none(),
            verified_positions: false,
        }
    }

    /// Applies a routing fault plan: every `h(x)` lookup and `next(p)`
    /// probe issued through this view is subject to the plan's Byzantine
    /// behaviours (see [`FaultPlan`]).
    pub fn with_fault_plan(mut self, faults: FaultPlan) -> ChordDht<'a> {
        self.faults = faults;
        self.route_faults = if self.verified_positions {
            self.faults.clone().without_ownership_claims()
        } else {
            self.faults.clone()
        };
        self
    }

    /// Only accepts `h(x)` answer positions corroborated by the overlay's
    /// own tables (the neighbours and routing hops that learned the
    /// answer node's point at join time), never a per-answer assertion.
    ///
    /// By default a resolved peer confirms its own ring position — the
    /// natural reading of the paper's cost model, where `l(h(s))` travels
    /// in the final response — which is the surface both position lies
    /// forge: a capturing hop reports the target itself
    /// ([`FaultPlan::claims_ownership`]) and an adaptive arc-liar
    /// stretches its arc ([`FaultPlan::forges_owned_position`]). A
    /// verifying client demands interval evidence instead, with two
    /// consequences:
    ///
    /// * every answer carries the resolved node's true ring point (the
    ///   position its neighbours learned at join time);
    /// * a naked ownership claim cannot *terminate* the lookup — the
    ///   client drives the iterative routing itself, and a hop whose
    ///   claim carries no corroborating evidence is simply routed past
    ///   (the capture attack degrades from redirection to nothing; what
    ///   remains for the adversary on `h` is at most denial, which the
    ///   quorum's redundant entries in `adversary::DefendedSampler`
    ///   absorb).
    pub fn with_verified_positions(mut self) -> ChordDht<'a> {
        self.verified_positions = true;
        self.route_faults = self.faults.clone().without_ownership_claims();
        self
    }

    /// The fault plan in effect (empty for an honest view).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// The anchor node.
    pub fn start(&self) -> NodeId {
        self.start
    }

    /// The underlying network.
    pub fn network(&self) -> &ChordNetwork {
        self.net
    }
}

impl Dht for ChordDht<'_> {
    type Peer = NodeId;

    fn space(&self) -> KeySpace {
        self.net.space()
    }

    fn h(&self, x: Point) -> Result<Resolved<NodeId>, DhtError> {
        let mut rng = self.rng.borrow_mut();
        // The policy entry point delegates verbatim to the plain routed
        // lookup when no `RetryPolicy` is armed on the network, so honest
        // and adversarial arms without one are byte-identical to before.
        match self
            .net
            .find_successor_with_policy(self.start, x, &self.route_faults, &mut *rng)
        {
            Ok(hit) => {
                let point = if self.verified_positions {
                    // Verified mode: only positions corroborated by the
                    // network's own tables are trusted, so every answer
                    // carries the resolved node's true ring point — a
                    // capturing hop or forging owner can still *name*
                    // itself, but cannot place itself; the sampler's
                    // exact interval check then does the rejecting.
                    self.net.node(hit.node).point()
                } else if hit.node != self.start && self.faults.forges_owned_position(hit.node) {
                    // The adaptive arc-liar: the genuine owner of `x`
                    // confirms ownership but self-reports its position as
                    // the target, stretching the SMALL acceptance over
                    // its whole trailing arc. The origin never lies to
                    // itself.
                    self.net
                        .metrics()
                        .recorder()
                        .incr(self.net.counters().lookup_forged_position);
                    x
                } else {
                    hit.point
                };
                Ok(Resolved {
                    peer: hit.node,
                    point,
                    cost: hit.cost,
                })
            }
            Err(e) => Err(lookup_to_dht_error(e)),
        }
    }

    fn next(&self, p: NodeId) -> Result<Resolved<NodeId>, DhtError> {
        if !self.net.node(p).is_alive() {
            return Err(DhtError::PeerUnavailable);
        }
        let latency = self.net.config().latency();
        let mut rng = self.rng.borrow_mut();
        let mut cost = Cost::FREE;
        // A Byzantine `p` eclipses its true successor: it skips the first
        // live entry and reports the one after it, erasing an honest peer
        // from any scan passing through `p`. (With fewer than two live
        // entries there is nothing to hide behind; it answers honestly so
        // the lie stays plausible.)
        let mut eclipses_left = if self.faults.eclipses_next(p) {
            let live = self
                .net
                .node(p)
                .successors()
                .iter()
                .filter(|&s| self.net.node(s).is_alive())
                .count();
            usize::from(live >= 2)
        } else {
            0
        };
        // Probe the successor list in order; each probe is one message.
        for cand in self.net.node(p).successors().iter() {
            cost.messages += 1;
            cost.latency += latency.sample(&mut *rng).ticks();
            if self.net.node(cand).is_alive() {
                if eclipses_left > 0 {
                    eclipses_left -= 1;
                    continue;
                }
                return Ok(Resolved {
                    peer: cand,
                    point: self.net.node(cand).point(),
                    cost,
                });
            }
        }
        // The whole successor list is dead: a correlated outage took the
        // arc clockwise of `p` with it. Under an armed `RetryPolicy` the
        // probe degrades instead of failing — the same verified-quorum
        // directory that backs `h`'s last-resort tier resolves the first
        // live node strictly after `p`, charged at quorum cost.
        if let Some(policy) = self.net.retry_policy() {
            let after = self
                .net
                .space()
                .add(self.net.node(p).point(), keyspace::Distance::new(1));
            if let Some(owner) = self.net.truth_successor_id(after) {
                cost.messages += policy.quorum_messages;
                cost.latency += latency.sample(&mut *rng).ticks();
                self.net
                    .metrics()
                    .recorder()
                    .add(self.net.counters().lookup_fallback_depth, 3);
                return Ok(Resolved {
                    peer: owner,
                    point: self.net.node(owner).point(),
                    cost,
                });
            }
        }
        Err(DhtError::RoutingFailed {
            hops: cost.messages,
        })
    }

    fn point_of(&self, p: NodeId) -> Result<Point, DhtError> {
        if !self.net.node(p).is_alive() {
            return Err(DhtError::PeerUnavailable);
        }
        Ok(self.net.node(p).point())
    }
}

fn lookup_to_dht_error(e: LookupError) -> DhtError {
    match e {
        LookupError::StartDead => DhtError::PeerUnavailable,
        LookupError::HopLimitExceeded { max_hops } => DhtError::RoutingFailed {
            hops: max_hops as u64,
        },
        LookupError::SuccessorsAllDead => DhtError::RoutingFailed { hops: 0 },
        LookupError::TimedOut { .. } => DhtError::PeerUnavailable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChordConfig;
    use peer_sampling::{NetworkSizeEstimator, Sampler};

    fn bootstrap(n: usize, seed: u64) -> ChordNetwork {
        let space = KeySpace::full();
        let mut r = StdRng::seed_from_u64(seed);
        ChordNetwork::bootstrap(
            space,
            space.random_points(&mut r, n),
            ChordConfig::default(),
        )
    }

    #[test]
    fn h_matches_oracle() {
        let net = bootstrap(128, 1);
        let dht = ChordDht::new(&net, net.live_ids()[0], 2);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let x = net.space().random_point(&mut rng);
            let hit = dht.h(x).unwrap();
            assert_eq!(hit.point, net.ground_truth_successor(x));
            assert!(hit.cost.messages > 0, "routed lookups cost messages");
        }
    }

    #[test]
    fn next_walks_the_ring_in_order() {
        let net = bootstrap(64, 2);
        let dht = ChordDht::new(&net, net.live_ids()[0], 3);
        // Walk the full ring via next: must visit all 64 nodes.
        let start = net.live_ids()[0];
        let mut seen = std::collections::HashSet::new();
        let mut cur = start;
        loop {
            let nxt = dht.next(cur).unwrap();
            assert_eq!(nxt.cost.messages, 1, "healthy next is one message");
            cur = nxt.peer;
            if cur == start {
                break;
            }
            assert!(seen.insert(cur), "ring walk revisited {cur} early");
        }
        assert_eq!(seen.len(), 63);
    }

    #[test]
    fn next_skips_crashed_successor_at_extra_cost() {
        let mut net = bootstrap(64, 3);
        let ids = net.live_ids();
        let anchor = ids[0];
        let succ = net.first_live_successor(anchor).unwrap();
        net.crash(succ);
        let dht = ChordDht::new(&net, anchor, 4);
        let nxt = dht.next(anchor).unwrap();
        assert!(net.node(nxt.peer).is_alive());
        assert!(nxt.cost.messages >= 2, "dead probe must be paid for");
    }

    #[test]
    fn dead_peer_operations_error() {
        let mut net = bootstrap(16, 4);
        let ids = net.live_ids();
        let victim = ids[5];
        net.crash(victim);
        let dht = ChordDht::new(&net, ids[0], 5);
        assert_eq!(dht.next(victim).unwrap_err(), DhtError::PeerUnavailable);
        assert_eq!(dht.point_of(victim).unwrap_err(), DhtError::PeerUnavailable);
    }

    #[test]
    #[should_panic(expected = "must be alive")]
    fn anchoring_at_dead_node_panics() {
        let mut net = bootstrap(8, 5);
        let id = net.live_ids()[0];
        net.crash(id);
        let _ = ChordDht::new(&net, id, 6);
    }

    #[test]
    fn full_sampler_stack_runs_on_chord() {
        let net = bootstrap(300, 6);
        let dht = ChordDht::new(&net, net.live_ids()[0], 7);
        let mut rng = StdRng::seed_from_u64(8);
        // Estimate n through the real protocol, then sample with it.
        let est = NetworkSizeEstimator::default()
            .estimate(&dht, dht.start())
            .unwrap();
        assert!(
            est.n_hat > 40.0 && est.n_hat < 2100.0,
            "n_hat {}",
            est.n_hat
        );
        let sampler = Sampler::new(est.to_sampler_config());
        let mut total_messages = 0u64;
        let draws = 20;
        for _ in 0..draws {
            let s = sampler.sample(&dht, &mut rng).unwrap();
            assert!(net.node(s.peer).is_alive());
            total_messages += s.cost.messages;
        }
        // Theorem 7 shape: expected messages are O(m_h + log n) per trial
        // with O(1) expected trials — far below n per sample on average
        // (individual samples have geometric tails).
        let mean = total_messages as f64 / draws as f64;
        assert!(mean < 300.0, "mean cost {mean} too high for n = 300");
    }

    #[test]
    fn eclipsing_next_skips_the_true_successor() {
        let net = bootstrap(64, 31);
        let anchor = net.live_ids()[0];
        let honest = ChordDht::new(&net, anchor, 32);
        let true_succ = honest.next(anchor).unwrap().peer;
        let lying = ChordDht::new(&net, anchor, 32)
            .with_fault_plan(FaultPlan::for_nodes([anchor]).without_ownership_claims());
        let reported = lying.next(anchor).unwrap().peer;
        assert_ne!(reported, true_succ, "the true successor must be eclipsed");
        // The reported node is the successor-after-next on a healthy ring.
        assert_eq!(honest.next(true_succ).unwrap().peer, reported);
        assert!(lying.fault_plan().is_byzantine(anchor));
    }

    #[test]
    fn byzantine_h_biases_samples_toward_the_adversary() {
        use peer_sampling::SamplerConfig;
        let net = bootstrap(200, 33);
        let mut rng = StdRng::seed_from_u64(34);
        let anchor = net.live_ids()[0];
        // 10% of remote nodes capture lookups.
        let plan = FaultPlan::sample_fraction(&net, 0.10, &mut rng).without_next_eclipse();
        let byz: std::collections::HashSet<_> = plan.byzantine_nodes().into_iter().collect();
        let dht = ChordDht::new(&net, anchor, 35).with_fault_plan(plan);
        let sampler = Sampler::new(SamplerConfig::new(200).with_max_trials(256));
        let draws = 400;
        let mut captured = 0;
        for _ in 0..draws {
            let s = sampler.sample(&dht, &mut rng).unwrap();
            if byz.contains(&s.peer) {
                captured += 1;
            }
        }
        let share = captured as f64 / draws as f64;
        // Under honesty the adversary's share would be ~10%; ownership
        // claims inflate it far beyond that.
        assert!(
            share > 0.2,
            "10% Byzantine routers captured only {:.1}% of samples",
            share * 100.0
        );
    }

    #[test]
    fn arc_liar_forges_self_reported_position_but_not_route_position() {
        use crate::NodeFaults;
        let net = bootstrap(128, 41);
        let anchor = net.live_ids()[0];
        let mut rng = StdRng::seed_from_u64(42);
        // Find a target owned by a remote node.
        let (x, owner) = loop {
            let x = net.space().random_point(&mut rng);
            let honest = ChordDht::new(&net, anchor, 43);
            let hit = honest.h(x).unwrap();
            if hit.peer != anchor {
                break (x, hit);
            }
        };
        assert_ne!(owner.point, x, "pick a target off the owner's point");
        let plan = FaultPlan::with_behavior(
            [owner.peer],
            NodeFaults {
                forge_owned_position: true,
                ..NodeFaults::HONEST
            },
        );
        // Undefended view: the owner's self-report is the forged target.
        let lying = ChordDht::new(&net, anchor, 43).with_fault_plan(plan.clone());
        let forged = lying.h(x).unwrap();
        assert_eq!(forged.peer, owner.peer, "ownership is genuine");
        assert_eq!(forged.point, x, "position is forged to the target");
        // Verified-position view: the route's table knowledge survives.
        let defended = ChordDht::new(&net, anchor, 43)
            .with_fault_plan(plan)
            .with_verified_positions();
        let routed = defended.h(x).unwrap();
        assert_eq!(routed.peer, owner.peer);
        assert_eq!(routed.point, owner.point, "route position is honest");
    }

    #[test]
    fn arc_liar_never_lies_to_itself() {
        use crate::NodeFaults;
        let net = bootstrap(32, 44);
        let anchor = net.live_ids()[3];
        let plan = FaultPlan::with_behavior(
            [anchor],
            NodeFaults {
                forge_owned_position: true,
                ..NodeFaults::HONEST
            },
        );
        let dht = ChordDht::new(&net, anchor, 45).with_fault_plan(plan);
        // A target the anchor itself owns: the self-report is honest.
        let own_point = net.node(anchor).point();
        let hit = dht.h(own_point).unwrap();
        assert_eq!(hit.peer, anchor);
        assert_eq!(hit.point, own_point);
    }

    #[test]
    fn h_degrades_gracefully_under_a_retry_policy() {
        let mut net = bootstrap(64, 51);
        net.enable_adaptive_routing(crate::AdaptiveConfig::default());
        net.enable_retry_policy(crate::RetryPolicy::default());
        let mut ring = net.live_ids();
        ring.sort_by_key(|&id| net.node(id).point());
        // A dead arc longer than the successor list partitions plain
        // routing; `h` must still resolve every target through fallback.
        let arc = ring[10..26].to_vec();
        for &v in &arc {
            net.crash(v);
        }
        let dht = ChordDht::new(&net, ring[0], 52);
        for &v in &arc {
            let x = net.node(v).point();
            let hit = dht.h(x).unwrap();
            assert_eq!(hit.point, net.ground_truth_successor(x));
            assert!(net.node(hit.peer).is_alive());
        }
        assert!(net.metrics().get("lookup.fallback_depth") > 0);
    }

    #[test]
    fn next_degrades_gracefully_under_a_retry_policy() {
        let mut net = bootstrap(64, 53);
        let mut ring = net.live_ids();
        ring.sort_by_key(|&id| net.node(id).point());
        // Kill the whole successor window after ring[9]: every entry in
        // its list is dead, so a plain `next` probe has nothing left.
        let arc = ring[10..26].to_vec();
        for &v in &arc {
            net.crash(v);
        }
        let plain = ChordDht::new(&net, ring[0], 54);
        assert!(matches!(
            plain.next(ring[9]).unwrap_err(),
            DhtError::RoutingFailed { .. }
        ));
        net.enable_retry_policy(crate::RetryPolicy::default());
        let fallback = ChordDht::new(&net, ring[0], 54);
        let nxt = fallback.next(ring[9]).unwrap();
        assert_eq!(nxt.peer, ring[26], "first live node after the dead arc");
        assert!(
            nxt.cost.messages > crate::RetryPolicy::default().quorum_messages,
            "the degraded probe pays the dead probes plus the quorum"
        );
        assert!(net.metrics().get("lookup.fallback_depth") > 0);
    }

    #[test]
    fn accessors() {
        let net = bootstrap(8, 7);
        let dht = ChordDht::new(&net, net.live_ids()[2], 9);
        assert_eq!(dht.start(), net.live_ids()[2]);
        assert_eq!(dht.network().live_len(), 8);
        assert_eq!(dht.space().modulus(), net.space().modulus());
    }
}
