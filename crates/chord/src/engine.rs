//! Async message-passing lookup engine: in-flight lookups through simnet.
//!
//! The sync walk ([`find_successor_with_policy`]) resolves a lookup in
//! one call; this engine decomposes the *same* protocol into serialized
//! [`Message`]s driven through a [`simnet::EventQueue`], so delay-based
//! faults become expressible: per-hop [`simnet::LatencyModel`] delays stretch
//! into simulated wall-clock, a [`SlowOverlay`] can make a ring sector
//! slow-but-alive, per-attempt deadlines feed the existing
//! [`RetryPolicy`](crate::RetryPolicy) tiers, and thousands of requests
//! multiplex over one deterministic event loop.
//!
//! Equivalence is the design invariant, pinned by
//! `tests/engine_equivalence.rs`: every routing decision and every
//! recorder side effect goes through the exact code the sync walk uses
//! ([`hop_step`] per delivered `FindSuccessor`, [`fallback_resolve`] when
//! attempts are exhausted), so a sequentially-driven engine with
//! deadlines disarmed is **bit-identical** to the sync walk — same
//! owners, same hops, same costs, same ordinals, same trace digest.
//! Concurrency then changes *interleaving* only: requests draw latency
//! from per-request RNG streams and routing consumes randomness nowhere
//! else, which is what makes 10k interleaved lookups replay
//! byte-identically and submission order not matter.
//!
//! One modeling artifact is deliberate: a request's lifecycle is
//! attributed to its *origin*. `NextHop`/`Notify` answers return to the
//! origin, which re-issues the next `FindSuccessor` in the same tick —
//! iterative Chord, like the sync walk, not recursive routing.
//!
//! [`find_successor_with_policy`]: ChordNetwork::find_successor_with_policy
//! [`hop_step`]: ChordNetwork
//! [`fallback_resolve`]: ChordNetwork

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use keyspace::Point;
use peer_sampling::Cost;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::{EventQueue, SimDuration, SimTime};
use telemetry::TraceOutcome;

use crate::lookup::{HopOutcome, TraceBuilder};
use crate::msg::{Message, NO_NEXT};
use crate::network::{ChordNetwork, NodeId};
use crate::{LookupError, LookupResult};

/// Knobs of one [`LookupEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Per-attempt deadline in ticks; `None` disarms deadlines entirely
    /// (no timeout events are ever scheduled — the equivalence tests run
    /// this way so stranded wakeups cannot advance the clock). When a
    /// deadline fires with a [`RetryPolicy`](crate::RetryPolicy) armed,
    /// the attempt is preempted into the policy's retry/fallback tiers;
    /// without one it only counts (`engine.timeouts`) and re-arms.
    pub timeout_ticks: Option<u64>,
    /// In-flight cap: requests beyond it queue in submission order and
    /// are admitted as completions free slots.
    pub max_inflight: usize,
    /// Master seed for the per-request RNG streams (latency draws).
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            timeout_ticks: None,
            max_inflight: usize::MAX,
            seed: 0,
        }
    }
}

/// A latency-skewed (not dead) ring sector: while `from <= now < until`,
/// every delivery produced by a hop processed at a node in `nodes` takes
/// `factor`× its sampled latency in wall-clock. Protocol *cost*
/// accounting is untouched — the slowdown shows up purely as in-flight
/// age, which is exactly what the watchdog's in-flight-age SLO measures.
#[derive(Debug, Clone)]
pub struct SlowOverlay {
    /// The slow sector's members.
    pub nodes: BTreeSet<NodeId>,
    /// Wall-clock multiplier (≥ 2 to mean anything).
    pub factor: u64,
    /// First tick of the slowdown window.
    pub from: SimTime,
    /// First tick after the slowdown window.
    pub until: SimTime,
}

/// One finished request: the terminal record the determinism tests
/// digest. Wall-clock fields are simulated time; with deadlines disarmed
/// and no slow overlay, `completed_at − started_at` equals the result's
/// accounted latency exactly (the latency-wiring invariant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// Caller-chosen request tag (unique per engine).
    pub tag: u64,
    /// When the request entered the engine (backlog included).
    pub submitted_at: SimTime,
    /// When it was admitted in-flight and its first attempt began.
    pub started_at: SimTime,
    /// When the terminal answer landed at the origin.
    pub completed_at: SimTime,
    /// Routed attempts consumed (1 = no retry).
    pub attempts: u8,
    /// Deadlines that fired against this request.
    pub timeouts: u32,
    /// The lookup's outcome, cost fully attributed as in the sync walk.
    pub result: Result<LookupResult, LookupError>,
}

/// Per-request in-flight state (the request table).
struct Pending {
    from: NodeId,
    target: Point,
    /// Private latency stream — `derive_seed(engine seed, tag)` — so a
    /// request's draws are independent of interleaving.
    rng: StdRng,
    /// 1-based attempt counter.
    attempt: u8,
    /// Attempt generation: bumped on every retry, which strands every
    /// message (and deadline) the preempted attempt still has in flight.
    generation: u32,
    /// The walk resolved; the final `Notify` is in flight. Deadlines no
    /// longer preempt (the answer is already on the wire), making
    /// completion exactly-once.
    resolved: bool,
    /// Cost folded in from failed/preempted attempts plus backoff.
    spent: Cost,
    /// Running cost of the current attempt.
    cost: Cost,
    /// Demoted-probe latency of the current attempt (span attribution).
    skip: u64,
    /// Hops taken by the current attempt.
    hops: u32,
    /// Op ordinal of the current attempt (exemplar / trace id).
    ordinal: u64,
    trace: Option<TraceBuilder>,
    submitted_at: SimTime,
    started_at: SimTime,
    /// Node whose answer the origin is currently waiting on — the peer a
    /// firing deadline penalizes in the score table.
    current: NodeId,
    timeouts: u32,
}

/// The deterministic async lookup event loop. See the module docs.
///
/// The engine holds no borrow of the network: every method takes
/// `&ChordNetwork`, so a driver can interleave `run_until` windows with
/// churn (`crash`/`join`/maintenance, which need `&mut`) — in-flight
/// requests then observe the ring changing under them, exactly the
/// production hazard the sync walk cannot express.
pub struct LookupEngine {
    config: EngineConfig,
    queue: EventQueue<Message>,
    now: SimTime,
    pending: BTreeMap<u64, Pending>,
    backlog: VecDeque<(u64, NodeId, Point)>,
    completions: Vec<Completion>,
    seen_tags: BTreeSet<u64>,
    slow: Option<SlowOverlay>,
    next_tag: u64,
}

impl LookupEngine {
    /// Creates an idle engine at tick 0.
    pub fn new(config: EngineConfig) -> LookupEngine {
        LookupEngine {
            config,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            pending: BTreeMap::new(),
            backlog: VecDeque::new(),
            completions: Vec::new(),
            seen_tags: BTreeSet::new(),
            slow: None,
            next_tag: 0,
        }
    }

    /// Installs (or clears) the slow-sector overlay.
    pub fn set_slow_overlay(&mut self, slow: Option<SlowOverlay>) {
        self.slow = slow;
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Requests admitted and not yet completed.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Requests waiting for an in-flight slot.
    pub fn backlog(&self) -> usize {
        self.backlog.len()
    }

    /// Everything completed so far, in completion order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Submits a lookup with the next sequential tag; returns the tag.
    pub fn submit(&mut self, net: &ChordNetwork, from: NodeId, target: Point) -> u64 {
        let tag = self.next_tag;
        self.submit_tagged(net, tag, from, target);
        tag
    }

    /// Submits a lookup under a caller-chosen `tag` (the permutation
    /// tests submit one workload in shuffled order but with stable
    /// per-request identity, hence stable per-request RNG streams).
    ///
    /// # Panics
    ///
    /// If `tag` was already submitted to this engine.
    pub fn submit_tagged(&mut self, net: &ChordNetwork, tag: u64, from: NodeId, target: Point) {
        assert!(self.seen_tags.insert(tag), "duplicate request tag {tag}");
        self.next_tag = self.next_tag.max(tag + 1);
        self.backlog.push_back((tag, from, target));
        self.admit(net);
    }

    /// Runs the event loop up to and including `deadline`, then parks the
    /// clock there. Apply churn between calls — never during one.
    pub fn run_until(&mut self, net: &ChordNetwork, faults: &crate::FaultPlan, deadline: SimTime) {
        self.admit(net);
        while let Some((t, msg)) = self.queue.pop_due(deadline) {
            self.now = t;
            self.process(net, faults, msg);
        }
        self.now = self.now.max(deadline);
    }

    /// Runs until every admitted *and backlogged* request has completed.
    pub fn drain(&mut self, net: &ChordNetwork, faults: &crate::FaultPlan) {
        self.admit(net);
        while let Some((t, msg)) = self.queue.pop() {
            self.now = t;
            self.process(net, faults, msg);
        }
    }

    /// FNV-1a digest of every completion, keyed by tag — independent of
    /// completion order, so it is the byte-identity the determinism and
    /// permutation-invariance tests compare. Covers outcomes, costs,
    /// attempts/timeouts and simulated wall-clock stamps; excludes op
    /// ordinals (global submission-order artifacts by design).
    pub fn report_digest(&self) -> u64 {
        let mut sorted: Vec<&Completion> = self.completions.iter().collect();
        sorted.sort_by_key(|c| c.tag);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut put = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for c in sorted {
            put(c.tag);
            put(c.submitted_at.ticks());
            put(c.started_at.ticks());
            put(c.completed_at.ticks());
            put(u64::from(c.attempts));
            put(u64::from(c.timeouts));
            match &c.result {
                Ok(hit) => {
                    put(1);
                    put(hit.node.index() as u64);
                    put(hit.point.get());
                    put(u64::from(hit.hops));
                    put(hit.cost.messages);
                    put(hit.cost.latency);
                }
                Err(e) => {
                    put(2);
                    put(match e {
                        LookupError::StartDead => 1,
                        LookupError::HopLimitExceeded { .. } => 2,
                        LookupError::SuccessorsAllDead => 3,
                        LookupError::TimedOut { .. } => 4,
                    });
                }
            }
        }
        h
    }

    /// Wall-clock delay of a delivery produced by a hop processed at
    /// `at`: the accounted latency, stretched by the slow overlay when
    /// `at` sits in the slow sector during its window.
    fn wall_delay(&self, at: NodeId, latency: u64) -> SimDuration {
        let factor = match &self.slow {
            Some(o) if self.now >= o.from && self.now < o.until && o.nodes.contains(&at) => {
                o.factor
            }
            _ => 1,
        };
        SimDuration::from_ticks(latency.saturating_mul(factor))
    }

    fn schedule_in(&mut self, delay: SimDuration, msg: Message) {
        self.queue.schedule(self.now.saturating_add(delay), msg);
    }

    /// Admits backlogged requests while in-flight slots are free.
    fn admit(&mut self, net: &ChordNetwork) {
        while self.pending.len() < self.config.max_inflight {
            let Some((tag, from, target)) = self.backlog.pop_front() else {
                return;
            };
            self.start_request(net, tag, from, target);
        }
    }

    fn start_request(&mut self, net: &ChordNetwork, tag: u64, from: NodeId, target: Point) {
        let rng = StdRng::seed_from_u64(simnet::rng::derive_seed(self.config.seed, tag));
        let p = Pending {
            from,
            target,
            rng,
            attempt: 1,
            generation: 0,
            resolved: false,
            spent: Cost::FREE,
            cost: Cost::FREE,
            skip: 0,
            hops: 0,
            ordinal: 0,
            trace: None,
            submitted_at: self.now,
            started_at: self.now,
            current: from,
            timeouts: 0,
        };
        self.pending.insert(tag, p);
        self.start_attempt(net, tag);
    }

    /// Begins the current attempt of `tag`: the sync walk's per-attempt
    /// preamble (backoff charge on retries, then the `route_attempt`
    /// entry sequence — liveness check, ordinal draw, trace allocation)
    /// in the same recorder order, then the first `FindSuccessor` and the
    /// attempt's deadline go on the queue.
    fn start_attempt(&mut self, net: &ChordNetwork, tag: u64) {
        let counters = net.counters();
        let recorder = net.metrics().recorder();
        let p = self
            .pending
            .get_mut(&tag)
            .expect("attempt for live request");
        let mut start_delay = SimDuration::ZERO;
        if p.attempt > 1 {
            let policy = net.retry_policy().expect("retries imply a policy");
            // Backoff is pure waiting: latency (and wall-clock), no
            // messages — identical accounting to the sync retry loop.
            let backoff = policy.backoff_ticks(p.attempt - 1);
            p.spent.latency += backoff;
            recorder.incr(counters.lookup_retries);
            recorder
                .profiler()
                .add(counters.span_retry_backoff, backoff);
            start_delay = SimDuration::from_ticks(backoff);
        }
        if !net.node(p.from).is_alive() {
            // Mirrors `route_attempt`'s dead-origin exit, including the
            // sync wrapper's (empty) finger-walk span close.
            recorder.profiler().add(counters.span_finger_walk, 0);
            let at = self.now.saturating_add(start_delay);
            self.complete(net, tag, Err(LookupError::StartDead), at);
            return;
        }
        // Drawn whether or not tracing is on, so exemplar ids agree
        // between traced and untraced replays of the same seed.
        p.ordinal = recorder.next_op_ordinal();
        p.cost = Cost::FREE;
        p.skip = 0;
        p.hops = 0;
        p.current = p.from;
        p.trace = recorder.tracing_enabled().then(|| TraceBuilder {
            from: net.node(p.from).point(),
            target: p.target,
            hops: Vec::new(),
            seen_latency: 0,
            attempt: p.attempt - 1,
            ordinal: p.ordinal,
        });
        let gen = p.generation;
        let at = u32::try_from(p.from.index()).expect("arena indexes fit u32");
        self.schedule_in(
            start_delay,
            Message::FindSuccessor {
                req: tag,
                gen,
                at,
                hops: 0,
            },
        );
        if let Some(ticks) = self.config.timeout_ticks {
            let deadline = SimDuration::from_ticks(start_delay.ticks().saturating_add(ticks));
            self.schedule_in(deadline, Message::Timeout { req: tag, gen });
        }
    }

    fn process(&mut self, net: &ChordNetwork, faults: &crate::FaultPlan, msg: Message) {
        match msg {
            Message::FindSuccessor { req, gen, at, hops } => {
                self.on_find(net, faults, req, gen, at, hops)
            }
            Message::NextHop { req, gen, next } => self.on_next(net, req, gen, next),
            Message::Notify {
                req,
                gen,
                owner,
                hops,
                captured,
            } => self.on_notify(net, req, gen, owner, hops, captured),
            Message::Timeout { req, gen } => self.on_timeout(net, req, gen),
        }
    }

    /// A hop processes one step of the walk — the engine's only call
    /// into the shared routing code.
    fn on_find(
        &mut self,
        net: &ChordNetwork,
        faults: &crate::FaultPlan,
        req: u64,
        gen: u32,
        at: u32,
        hops: u32,
    ) {
        let Some(p) = self.pending.get_mut(&req) else {
            return;
        };
        if p.generation != gen || p.resolved {
            return; // stale: the attempt was retried out from under it
        }
        let current = NodeId::from_index(at as usize);
        p.current = current;
        p.hops = hops;

        // Hop-cap check, origin-side like the sync loop's.
        if hops > net.config().max_hops() {
            if let Some(t) = p.trace.take() {
                t.finish(net, TraceOutcome::Unresolved, &p.cost);
            }
            let e = LookupError::HopLimitExceeded {
                max_hops: net.config().max_hops(),
            };
            self.attempt_failed(net, req, e);
            return;
        }

        // The hop died while the request was in flight (churn the sync
        // walk cannot see): the probe costs one timed-out message and
        // reports no progress; the policy tiers take it from there.
        if !net.node(current).is_alive() {
            p.cost.messages += 1;
            let d = net.config().latency().sample(&mut p.rng).ticks();
            p.cost.latency += d;
            let delay = self.wall_delay(current, d);
            self.schedule_in(
                delay,
                Message::NextHop {
                    req,
                    gen,
                    next: NO_NEXT,
                },
            );
            return;
        }

        let before = p.cost.latency;
        let target = p.target;
        let ordinal = p.ordinal;
        let mut cost = p.cost;
        let mut skip = p.skip;
        let mut trace = p.trace.take();
        let outcome = net.hop_step(
            current, target, faults, hops, ordinal, &mut cost, &mut skip, &mut trace, &mut p.rng,
        );
        p.cost = cost;
        p.skip = skip;
        p.trace = trace;
        let step_latency = p.cost.latency - before;
        let attempt_latency = p.cost.latency;
        let skip_total = p.skip;
        let attempt = p.attempt;
        if matches!(outcome, HopOutcome::Done(_)) {
            p.resolved = true;
        }
        let delay = self.wall_delay(current, step_latency);
        match outcome {
            HopOutcome::Done(hit) => {
                // Attempt resolved: close its spans and charge the
                // policy bookkeeping now (sync order); the answer itself
                // still has to travel back to the origin.
                let profiler = net.metrics().recorder().profiler();
                profiler.add(
                    net.counters().span_finger_walk,
                    attempt_latency - skip_total,
                );
                if skip_total > 0 {
                    profiler.add(net.counters().span_demoted_skip, skip_total);
                }
                if attempt > 1 {
                    net.metrics()
                        .recorder()
                        .add(net.counters().lookup_fallback_depth, 1);
                }
                let captured = hit.point != net.node(hit.node).point();
                self.schedule_in(
                    delay,
                    Message::Notify {
                        req,
                        gen,
                        owner: u32::try_from(hit.node.index()).expect("arena indexes fit u32"),
                        hops: hit.hops,
                        captured,
                    },
                );
            }
            HopOutcome::Forward(next) => {
                self.schedule_in(
                    delay,
                    Message::NextHop {
                        req,
                        gen,
                        next: u32::try_from(next.index()).expect("arena indexes fit u32"),
                    },
                );
            }
            HopOutcome::Failed(e) => {
                debug_assert_eq!(e, LookupError::SuccessorsAllDead);
                // The failure still travels back to the origin before the
                // policy reacts (its probes' latency is already charged).
                self.schedule_in(
                    delay,
                    Message::NextHop {
                        req,
                        gen,
                        next: NO_NEXT,
                    },
                );
            }
        }
    }

    /// The origin hears back from a hop: either forward the walk one
    /// step (same tick — iterative routing charges nothing between
    /// hops), or fail the attempt into the policy tiers.
    fn on_next(&mut self, net: &ChordNetwork, req: u64, gen: u32, next: u32) {
        let Some(p) = self.pending.get_mut(&req) else {
            return;
        };
        if p.generation != gen || p.resolved {
            return;
        }
        if next == NO_NEXT {
            self.attempt_failed(net, req, LookupError::SuccessorsAllDead);
            return;
        }
        let hops = p.hops + 1;
        self.schedule_in(
            SimDuration::ZERO,
            Message::FindSuccessor {
                req,
                gen,
                at: next,
                hops,
            },
        );
    }

    /// The terminal answer lands at the origin: exactly-once completion.
    fn on_notify(
        &mut self,
        net: &ChordNetwork,
        req: u64,
        gen: u32,
        owner: u32,
        hops: u32,
        captured: bool,
    ) {
        let Some(p) = self.pending.get(&req) else {
            return;
        };
        if p.generation != gen || !p.resolved {
            return;
        }
        let node = NodeId::from_index(owner as usize);
        let point = if captured {
            p.target
        } else {
            net.node(node).point()
        };
        let cost = Cost {
            messages: p.cost.messages + p.spent.messages,
            latency: p.cost.latency + p.spent.latency,
        };
        let result = LookupResult {
            node,
            point,
            hops,
            cost,
        };
        self.complete(net, req, Ok(result), self.now);
    }

    /// A deadline fired. Stale generations and resolved attempts (the
    /// answer is already on the wire) are no-ops; a live one counts,
    /// penalizes the peer being waited on, and — with a policy armed —
    /// preempts the attempt into retry/fallback. Without a policy it
    /// merely re-arms: pure observation.
    fn on_timeout(&mut self, net: &ChordNetwork, req: u64, gen: u32) {
        let Some(p) = self.pending.get_mut(&req) else {
            return;
        };
        if p.generation != gen || p.resolved {
            return;
        }
        let timeout_ticks = self
            .config
            .timeout_ticks
            .expect("a deadline fired, so deadlines are armed");
        let recorder = net.metrics().recorder();
        recorder.incr(net.counters().engine_timeouts);
        p.timeouts += 1;
        // A deadline is stronger evidence than one failed probe: record
        // two strikes, enough to penalize a slow-but-alive peer on the
        // spot, so the retry (and every concurrent lookup) routes around
        // it while the overlay lasts.
        if let Some(scores) = net.scores() {
            let mut scores = scores.borrow_mut();
            scores.record(p.current, false);
            scores.record(p.current, false);
        }
        if net.retry_policy().is_none() {
            let gen = p.generation;
            let deadline = SimDuration::from_ticks(timeout_ticks);
            self.schedule_in(deadline, Message::Timeout { req, gen });
            return;
        }
        // Preempt: the attempt's probes were paid for even though it
        // never failed outright.
        if let Some(t) = p.trace.take() {
            t.finish(net, TraceOutcome::Unresolved, &p.cost);
        }
        let e = LookupError::TimedOut { timeout_ticks };
        self.attempt_failed(net, req, e);
    }

    /// Shared failure path: close the attempt's spans, fold its cost
    /// into `spent`, then retry (next generation), degrade through
    /// [`fallback_resolve`](ChordNetwork) or complete with the error —
    /// the sync policy loop's control flow, replayed at event time.
    fn attempt_failed(&mut self, net: &ChordNetwork, req: u64, e: LookupError) {
        let counters = net.counters();
        let recorder = net.metrics().recorder();
        let p = self
            .pending
            .get_mut(&req)
            .expect("failed attempt has state");
        let profiler = recorder.profiler();
        profiler.add(counters.span_finger_walk, p.cost.latency - p.skip);
        if p.skip > 0 {
            profiler.add(counters.span_demoted_skip, p.skip);
        }
        p.spent.messages += p.cost.messages;
        p.spent.latency += p.cost.latency;
        p.cost = Cost::FREE;
        p.skip = 0;
        let Some(policy) = net.retry_policy() else {
            self.complete(net, req, Err(e), self.now);
            return;
        };
        if p.attempt < policy.max_attempts.max(1) {
            p.attempt += 1;
            p.generation += 1;
            self.start_attempt(net, req);
            return;
        }
        // Attempts exhausted: degrade through the shared fallback tiers.
        // They resolve synchronously (walk hops are successor-chain
        // traversals from the origin, the quorum is an out-of-band
        // directory round); the wall-clock charge is their latency delta.
        let entry_latency = p.spent.latency;
        let spent = p.spent;
        let from = p.from;
        let target = p.target;
        let result = net.fallback_resolve(from, target, spent, e, &mut p.rng);
        let completed_at = match &result {
            Ok(hit) => self
                .now
                .saturating_add(SimDuration::from_ticks(hit.cost.latency - entry_latency)),
            Err(_) => self.now,
        };
        self.complete(net, req, result, completed_at);
    }

    /// Removes the request, records the engine-level telemetry
    /// (`engine.completions`, the `engine.inflight_age` tail the
    /// watchdog gates), stores the [`Completion`] and admits backlog.
    fn complete(
        &mut self,
        net: &ChordNetwork,
        tag: u64,
        result: Result<LookupResult, LookupError>,
        completed_at: SimTime,
    ) {
        let p = self.pending.remove(&tag).expect("completion has state");
        let recorder = net.metrics().recorder();
        recorder.incr(net.counters().engine_completions);
        let age = completed_at - p.submitted_at;
        recorder.record_with_exemplar(net.counters().engine_age_hist, age.ticks(), p.ordinal);
        self.completions.push(Completion {
            tag,
            submitted_at: p.submitted_at,
            started_at: p.started_at,
            completed_at,
            attempts: p.attempt,
            timeouts: p.timeouts,
            result,
        });
        self.admit(net);
    }
}
