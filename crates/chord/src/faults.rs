//! Routing-level fault injection: Byzantine nodes that misreport the
//! protocol's primitives.
//!
//! King & Saia's guarantees assume every peer answers `h(x)` and `next(p)`
//! honestly. A Byzantine router can bias the sampler two ways:
//!
//! * **Claiming ownership** — when a lookup reaches it, it answers
//!   `find_successor` with *itself* regardless of the target, forging its
//!   reported ring position as the target so the caller's interval checks
//!   pass. `h(x)` then resolves to the adversary for every start point
//!   routed through it (a classic capture attack on DHT lookups). Without
//!   the position forgery the sampler's exact `|I(s, l(h(s)))| < λ` test
//!   rejects almost every claim — a robustness property the scenario
//!   experiments measure.
//! * **Eclipsing the next hop** — when asked for its successor it skips
//!   the true one and reports the peer after it, erasing an honest peer
//!   from every supplementation scan that passes through the adversary.
//!
//! A [`FaultPlan`] names the Byzantine nodes and which misbehaviours they
//! exercise; [`ChordNetwork::find_successor_with_faults`] and
//! [`ChordDht::with_fault_plan`] apply it without touching honest-path
//! code.
//!
//! [`ChordNetwork::find_successor_with_faults`]: crate::ChordNetwork::find_successor_with_faults
//! [`ChordDht::with_fault_plan`]: crate::ChordDht::with_fault_plan

use std::collections::HashSet;

use rand::Rng;

use crate::network::{ChordNetwork, NodeId};

/// Which nodes are Byzantine and how they misbehave.
///
/// # Example
///
/// ```
/// use chord::{ChordConfig, ChordNetwork, FaultPlan};
/// use keyspace::KeySpace;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let space = KeySpace::full();
/// let net = ChordNetwork::bootstrap(
///     space,
///     space.random_points(&mut rng, 64),
///     ChordConfig::default(),
/// );
/// let plan = FaultPlan::sample_fraction(&net, 0.25, &mut rng);
/// assert_eq!(plan.byzantine_count(), 16);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    byzantine: HashSet<NodeId>,
    claim_ownership: bool,
    eclipse_next: bool,
}

impl FaultPlan {
    /// A plan with no Byzantine nodes (honest network).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Marks an explicit set of nodes Byzantine, with both misbehaviours
    /// enabled.
    pub fn for_nodes(nodes: impl IntoIterator<Item = NodeId>) -> FaultPlan {
        FaultPlan {
            byzantine: nodes.into_iter().collect(),
            claim_ownership: true,
            eclipse_next: true,
        }
    }

    /// Samples `⌊fraction · live⌋` live nodes as Byzantine, uniformly
    /// without replacement, with both misbehaviours enabled.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ fraction ≤ 1`.
    pub fn sample_fraction<R: Rng + ?Sized>(
        net: &ChordNetwork,
        fraction: f64,
        rng: &mut R,
    ) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "byzantine fraction {fraction} outside [0, 1]"
        );
        let mut live = net.live_ids();
        let count = (live.len() as f64 * fraction).floor() as usize;
        // Partial Fisher–Yates: the first `count` entries are a uniform
        // sample without replacement.
        for i in 0..count {
            let j = rng.gen_range(i..live.len());
            live.swap(i, j);
        }
        live.truncate(count);
        FaultPlan::for_nodes(live)
    }

    /// Disables the `find_successor` capture behaviour.
    pub fn without_ownership_claims(mut self) -> FaultPlan {
        self.claim_ownership = false;
        self
    }

    /// Disables the `next(p)` eclipse behaviour.
    pub fn without_next_eclipse(mut self) -> FaultPlan {
        self.eclipse_next = false;
        self
    }

    /// Whether `node` is Byzantine.
    pub fn is_byzantine(&self, node: NodeId) -> bool {
        self.byzantine.contains(&node)
    }

    /// Whether `node` answers lookups by claiming ownership of the target.
    pub fn claims_ownership(&self, node: NodeId) -> bool {
        self.claim_ownership && self.is_byzantine(node)
    }

    /// Whether `node` misreports its successor pointer.
    pub fn eclipses_next(&self, node: NodeId) -> bool {
        self.eclipse_next && self.is_byzantine(node)
    }

    /// Number of Byzantine nodes in the plan.
    pub fn byzantine_count(&self) -> usize {
        self.byzantine.len()
    }

    /// The Byzantine nodes, in arena order (deterministic).
    pub fn byzantine_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.byzantine.iter().copied().collect();
        nodes.sort_unstable();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChordConfig;
    use keyspace::KeySpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bootstrap(n: usize, seed: u64) -> ChordNetwork {
        let space = KeySpace::full();
        let mut r = StdRng::seed_from_u64(seed);
        ChordNetwork::bootstrap(
            space,
            space.random_points(&mut r, n),
            ChordConfig::default(),
        )
    }

    #[test]
    fn none_is_honest() {
        let plan = FaultPlan::none();
        assert_eq!(plan.byzantine_count(), 0);
        assert!(!plan.claims_ownership(NodeId::from_index(0)));
        assert!(!plan.eclipses_next(NodeId::from_index(0)));
    }

    #[test]
    fn sample_fraction_is_exact_and_live() {
        let net = bootstrap(80, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let plan = FaultPlan::sample_fraction(&net, 0.25, &mut rng);
        assert_eq!(plan.byzantine_count(), 20);
        for id in plan.byzantine_nodes() {
            assert!(net.node(id).is_alive());
        }
    }

    #[test]
    fn behaviours_can_be_disabled_independently() {
        let node = NodeId::from_index(3);
        let plan = FaultPlan::for_nodes([node]);
        assert!(plan.claims_ownership(node));
        assert!(plan.eclipses_next(node));
        let no_claim = plan.clone().without_ownership_claims();
        assert!(!no_claim.claims_ownership(node));
        assert!(no_claim.eclipses_next(node));
        let no_eclipse = plan.without_next_eclipse();
        assert!(no_eclipse.claims_ownership(node));
        assert!(!no_eclipse.eclipses_next(node));
    }

    #[test]
    fn sample_fraction_deterministic_per_seed() {
        let net = bootstrap(40, 3);
        let a = FaultPlan::sample_fraction(&net, 0.5, &mut StdRng::seed_from_u64(9));
        let b = FaultPlan::sample_fraction(&net, 0.5, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.byzantine_nodes(), b.byzantine_nodes());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_fraction_panics() {
        let net = bootstrap(8, 4);
        let _ = FaultPlan::sample_fraction(&net, 1.5, &mut StdRng::seed_from_u64(5));
    }
}
