//! Routing-level fault injection: Byzantine nodes that misreport the
//! protocol's primitives.
//!
//! King & Saia's guarantees assume every peer answers `h(x)` and `next(p)`
//! honestly. A Byzantine router can bias the sampler three ways, one per
//! protocol surface:
//!
//! * **Claiming ownership** (`h` routing) — when a lookup reaches it, it
//!   answers `find_successor` with *itself* regardless of the target,
//!   forging its reported ring position as the target so the caller's
//!   interval checks pass. `h(x)` then resolves to the adversary for every
//!   start point routed through it (a classic capture attack on DHT
//!   lookups). Without the position forgery the sampler's exact
//!   `|I(s, l(h(s)))| < λ` test rejects almost every claim — a robustness
//!   property the scenario experiments measure.
//! * **Forging its own position** (`h` answer) — when it genuinely owns
//!   the looked-up point it confirms ownership but self-reports its
//!   position *as the target*, so the SMALL check `|I(s, l(h(s)))| < λ`
//!   passes for every point of its trailing arc instead of only the last
//!   `λ` of it. This is the *adaptive arc-liar*: the lie is arc-local
//!   (the node really is `h(s)`; only the position is false), so no
//!   honest peer ever contradicts the ownership claim and detection
//!   requires independent position evidence (see
//!   `adversary::DefendedSampler`).
//! * **Eclipsing the next hop** (`next`) — when asked for its successor
//!   it skips the true one and reports the peer after it, erasing an
//!   honest peer from every supplementation scan that passes through the
//!   adversary.
//!
//! A [`FaultPlan`] maps each Byzantine node to the [`NodeFaults`] it
//! exercises. Plans are *composable*: [`FaultPlan::merge`] layers one
//! plan's behaviours onto another's without clobbering (a coalition plan
//! can ride on top of a hand-built plan), and [`FaultPlan::clear`] resets
//! a plan to honest. [`ChordNetwork::find_successor_with_faults`] and
//! [`ChordDht::with_fault_plan`] apply a plan without touching
//! honest-path code.
//!
//! [`ChordNetwork::find_successor_with_faults`]: crate::ChordNetwork::find_successor_with_faults
//! [`ChordDht::with_fault_plan`]: crate::ChordDht::with_fault_plan

use std::collections::HashMap;

use rand::Rng;

use crate::network::{ChordNetwork, NodeId};

/// The misbehaviours one Byzantine node exercises, one flag per protocol
/// surface it can lie on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeFaults {
    /// Captures routed `find_successor` lookups passing through the node
    /// (answering with itself, position forged as the target).
    pub claim_ownership: bool,
    /// Skips the true successor when answering `next(p)`.
    pub eclipse_next: bool,
    /// Self-reports its position as the target when it is the genuine
    /// answer of an `h(x)` lookup (the adaptive arc-liar).
    pub forge_owned_position: bool,
}

impl NodeFaults {
    /// Every behaviour enabled.
    pub const ALL: NodeFaults = NodeFaults {
        claim_ownership: true,
        eclipse_next: true,
        forge_owned_position: true,
    };

    /// The two classic router faults (capture + eclipse), as enabled by
    /// [`FaultPlan::for_nodes`].
    pub const ROUTER: NodeFaults = NodeFaults {
        claim_ownership: true,
        eclipse_next: true,
        forge_owned_position: false,
    };

    /// No misbehaviour (an honest node).
    pub const HONEST: NodeFaults = NodeFaults {
        claim_ownership: false,
        eclipse_next: false,
        forge_owned_position: false,
    };

    /// Whether any behaviour is enabled.
    pub fn is_byzantine(self) -> bool {
        self.claim_ownership || self.eclipse_next || self.forge_owned_position
    }

    /// The union of two behaviour sets (per-flag OR).
    pub fn union(self, other: NodeFaults) -> NodeFaults {
        NodeFaults {
            claim_ownership: self.claim_ownership || other.claim_ownership,
            eclipse_next: self.eclipse_next || other.eclipse_next,
            forge_owned_position: self.forge_owned_position || other.forge_owned_position,
        }
    }
}

/// Which nodes are Byzantine and how each one misbehaves.
///
/// # Example
///
/// ```
/// use chord::{ChordConfig, ChordNetwork, FaultPlan};
/// use keyspace::KeySpace;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let space = KeySpace::full();
/// let net = ChordNetwork::bootstrap(
///     space,
///     space.random_points(&mut rng, 64),
///     ChordConfig::default(),
/// );
/// let plan = FaultPlan::sample_fraction(&net, 0.25, &mut rng);
/// assert_eq!(plan.byzantine_count(), 16);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    byzantine: HashMap<NodeId, NodeFaults>,
}

impl FaultPlan {
    /// A plan with no Byzantine nodes (honest network).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Marks an explicit set of nodes Byzantine with the classic router
    /// misbehaviours (capture + eclipse) enabled.
    pub fn for_nodes(nodes: impl IntoIterator<Item = NodeId>) -> FaultPlan {
        FaultPlan::with_behavior(nodes, NodeFaults::ROUTER)
    }

    /// Marks an explicit set of nodes Byzantine with the given behaviour
    /// set.
    pub fn with_behavior(nodes: impl IntoIterator<Item = NodeId>, faults: NodeFaults) -> FaultPlan {
        FaultPlan {
            byzantine: nodes.into_iter().map(|id| (id, faults)).collect(),
        }
    }

    /// Samples `⌊fraction · live⌋` live nodes as Byzantine, uniformly
    /// without replacement, with the classic router misbehaviours enabled.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ fraction ≤ 1`.
    pub fn sample_fraction<R: Rng + ?Sized>(
        net: &ChordNetwork,
        fraction: f64,
        rng: &mut R,
    ) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "byzantine fraction {fraction} outside [0, 1]"
        );
        let mut live = net.live_ids();
        let count = (live.len() as f64 * fraction).floor() as usize;
        // Partial Fisher–Yates: the first `count` entries are a uniform
        // sample without replacement.
        for i in 0..count {
            let j = rng.gen_range(i..live.len());
            live.swap(i, j);
        }
        live.truncate(count);
        FaultPlan::for_nodes(live)
    }

    /// Marks every *live* node whose ring point falls in failure domain
    /// `domain` of `map` with `behavior` — the correlated-fault
    /// counterpart of [`for_nodes`](FaultPlan::for_nodes): a whole rack
    /// or region misbehaves (or is studied) as a unit.
    ///
    /// The result composes through [`merge`](FaultPlan::merge) like any
    /// other plan, so overlapping domains union per node rather than
    /// clobbering each other.
    pub fn for_domain(
        net: &ChordNetwork,
        map: &simnet::DomainMap,
        domain: u32,
        behavior: NodeFaults,
    ) -> FaultPlan {
        FaultPlan::with_behavior(
            net.live_ids()
                .into_iter()
                .filter(|&id| map.contains(domain, net.node(id).point().get())),
            behavior,
        )
    }

    /// Layers `other`'s behaviours on top of this plan: nodes present in
    /// both keep the *union* of their behaviour sets, so merging never
    /// disables anything either plan enabled. This is what lets a
    /// coalition plan ride on a hand-built plan without clobbering it.
    pub fn merge(&mut self, other: &FaultPlan) {
        for (&id, &faults) in &other.byzantine {
            let entry = self.byzantine.entry(id).or_insert(NodeFaults::HONEST);
            *entry = entry.union(faults);
        }
    }

    /// Returns this plan merged with `other` (builder-style
    /// [`merge`](FaultPlan::merge)).
    pub fn merged(mut self, other: &FaultPlan) -> FaultPlan {
        self.merge(other);
        self
    }

    /// Resets the plan to honest (no Byzantine nodes).
    pub fn clear(&mut self) {
        self.byzantine.clear();
    }

    /// Disables the `find_successor` capture behaviour on every node.
    pub fn without_ownership_claims(mut self) -> FaultPlan {
        for faults in self.byzantine.values_mut() {
            faults.claim_ownership = false;
        }
        self
    }

    /// Disables the `next(p)` eclipse behaviour on every node.
    pub fn without_next_eclipse(mut self) -> FaultPlan {
        for faults in self.byzantine.values_mut() {
            faults.eclipse_next = false;
        }
        self
    }

    /// The behaviour set of `node` ([`NodeFaults::HONEST`] if absent).
    pub fn faults_of(&self, node: NodeId) -> NodeFaults {
        self.byzantine
            .get(&node)
            .copied()
            .unwrap_or(NodeFaults::HONEST)
    }

    /// Whether `node` is Byzantine (has any behaviour enabled).
    pub fn is_byzantine(&self, node: NodeId) -> bool {
        self.faults_of(node).is_byzantine()
    }

    /// Whether `node` answers lookups by claiming ownership of the target.
    pub fn claims_ownership(&self, node: NodeId) -> bool {
        self.faults_of(node).claim_ownership
    }

    /// Whether `node` misreports its successor pointer.
    pub fn eclipses_next(&self, node: NodeId) -> bool {
        self.faults_of(node).eclipse_next
    }

    /// Whether `node` forges its self-reported position when it is the
    /// genuine answer of a lookup.
    pub fn forges_owned_position(&self, node: NodeId) -> bool {
        self.faults_of(node).forge_owned_position
    }

    /// Number of Byzantine nodes in the plan (nodes whose behaviour set is
    /// empty — e.g. after `without_*` stripped it — don't count).
    pub fn byzantine_count(&self) -> usize {
        self.byzantine.values().filter(|f| f.is_byzantine()).count()
    }

    /// The Byzantine nodes, in arena order (deterministic).
    pub fn byzantine_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self
            .byzantine
            .iter()
            .filter(|(_, f)| f.is_byzantine())
            .map(|(&id, _)| id)
            .collect();
        nodes.sort_unstable();
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChordConfig;
    use keyspace::KeySpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bootstrap(n: usize, seed: u64) -> ChordNetwork {
        let space = KeySpace::full();
        let mut r = StdRng::seed_from_u64(seed);
        ChordNetwork::bootstrap(
            space,
            space.random_points(&mut r, n),
            ChordConfig::default(),
        )
    }

    #[test]
    fn none_is_honest() {
        let plan = FaultPlan::none();
        assert_eq!(plan.byzantine_count(), 0);
        assert!(!plan.claims_ownership(NodeId::from_index(0)));
        assert!(!plan.eclipses_next(NodeId::from_index(0)));
        assert!(!plan.forges_owned_position(NodeId::from_index(0)));
    }

    #[test]
    fn sample_fraction_is_exact_and_live() {
        let net = bootstrap(80, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let plan = FaultPlan::sample_fraction(&net, 0.25, &mut rng);
        assert_eq!(plan.byzantine_count(), 20);
        for id in plan.byzantine_nodes() {
            assert!(net.node(id).is_alive());
        }
    }

    #[test]
    fn behaviours_can_be_disabled_independently() {
        let node = NodeId::from_index(3);
        let plan = FaultPlan::for_nodes([node]);
        assert!(plan.claims_ownership(node));
        assert!(plan.eclipses_next(node));
        assert!(!plan.forges_owned_position(node), "not a router fault");
        let no_claim = plan.clone().without_ownership_claims();
        assert!(!no_claim.claims_ownership(node));
        assert!(no_claim.eclipses_next(node));
        let no_eclipse = plan.without_next_eclipse();
        assert!(no_eclipse.claims_ownership(node));
        assert!(!no_eclipse.eclipses_next(node));
    }

    #[test]
    fn sample_fraction_deterministic_per_seed() {
        let net = bootstrap(40, 3);
        let a = FaultPlan::sample_fraction(&net, 0.5, &mut StdRng::seed_from_u64(9));
        let b = FaultPlan::sample_fraction(&net, 0.5, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.byzantine_nodes(), b.byzantine_nodes());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_fraction_panics() {
        let net = bootstrap(8, 4);
        let _ = FaultPlan::sample_fraction(&net, 1.5, &mut StdRng::seed_from_u64(5));
    }

    #[test]
    fn merge_takes_the_union_per_node() {
        let a_node = NodeId::from_index(1);
        let shared = NodeId::from_index(2);
        let b_node = NodeId::from_index(3);
        let mut plan = FaultPlan::with_behavior(
            [a_node, shared],
            NodeFaults {
                claim_ownership: true,
                ..NodeFaults::HONEST
            },
        );
        let other = FaultPlan::with_behavior(
            [shared, b_node],
            NodeFaults {
                eclipse_next: true,
                ..NodeFaults::HONEST
            },
        );
        plan.merge(&other);
        assert_eq!(plan.byzantine_count(), 3);
        // The shared node keeps both behaviours: merging never clobbers.
        assert!(plan.claims_ownership(shared));
        assert!(plan.eclipses_next(shared));
        assert!(plan.claims_ownership(a_node) && !plan.eclipses_next(a_node));
        assert!(plan.eclipses_next(b_node) && !plan.claims_ownership(b_node));
    }

    #[test]
    fn merged_is_builder_style_merge() {
        let x = NodeId::from_index(7);
        let plan = FaultPlan::none().merged(&FaultPlan::with_behavior(
            [x],
            NodeFaults {
                forge_owned_position: true,
                ..NodeFaults::HONEST
            },
        ));
        assert!(plan.forges_owned_position(x));
        assert!(!plan.claims_ownership(x));
    }

    #[test]
    fn clear_resets_to_honest() {
        let mut plan = FaultPlan::for_nodes([NodeId::from_index(0), NodeId::from_index(1)]);
        assert_eq!(plan.byzantine_count(), 2);
        plan.clear();
        assert_eq!(plan.byzantine_count(), 0);
        assert!(plan.byzantine_nodes().is_empty());
    }

    #[test]
    fn stripped_nodes_do_not_count_as_byzantine() {
        let node = NodeId::from_index(4);
        let plan = FaultPlan::for_nodes([node])
            .without_ownership_claims()
            .without_next_eclipse();
        assert!(!plan.is_byzantine(node), "no behaviour left");
        assert_eq!(plan.byzantine_count(), 0);
        assert!(plan.byzantine_nodes().is_empty());
    }

    #[test]
    fn for_domain_marks_exactly_the_domains_live_members() {
        let net = bootstrap(96, 6);
        let map = simnet::DomainMap::sectors(4, net.space().modulus());
        let plan = FaultPlan::for_domain(&net, &map, 1, NodeFaults::ROUTER);
        let mut expected: Vec<NodeId> = net
            .live_ids()
            .into_iter()
            .filter(|&id| map.contains(1, net.node(id).point().get()))
            .collect();
        expected.sort_unstable();
        assert!(!expected.is_empty(), "a quarter-ring sector holds nodes");
        assert_eq!(plan.byzantine_nodes(), expected);
        for id in net.live_ids() {
            assert_eq!(
                plan.is_byzantine(id),
                map.contains(1, net.node(id).point().get()),
                "membership must follow the domain map exactly"
            );
        }
    }

    #[test]
    fn overlapping_domain_plans_merge_per_node_and_clear() {
        let net = bootstrap(128, 7);
        let modulus = net.space().modulus();
        // Domain 0 of the fine map is the first quarter of the ring;
        // domain 0 of the coarse map is the first half — the fine domain
        // is wholly contained in the coarse one, so the two plans overlap
        // on every fine-domain node.
        let fine = simnet::DomainMap::sectors(4, modulus);
        let coarse = simnet::DomainMap::sectors(2, modulus);
        let claims = NodeFaults {
            claim_ownership: true,
            ..NodeFaults::HONEST
        };
        let eclipses = NodeFaults {
            eclipse_next: true,
            ..NodeFaults::HONEST
        };
        let mut plan = FaultPlan::for_domain(&net, &coarse, 0, claims);
        let fine_plan = FaultPlan::for_domain(&net, &fine, 0, eclipses);
        assert!(!fine_plan.byzantine_nodes().is_empty());
        plan.merge(&fine_plan);
        for id in net.live_ids() {
            let p = net.node(id).point().get();
            let in_fine = fine.contains(0, p);
            let in_coarse = coarse.contains(0, p);
            assert!(!in_fine || in_coarse, "fine sector nests in coarse");
            // Overlap keeps the union; coarse-only nodes keep only the
            // coarse behaviour; outsiders stay honest.
            assert_eq!(plan.claims_ownership(id), in_coarse);
            assert_eq!(plan.eclipses_next(id), in_fine);
        }
        plan.clear();
        assert_eq!(plan.byzantine_count(), 0);
        assert!(plan.byzantine_nodes().is_empty());
    }

    #[test]
    fn for_domain_skips_dead_nodes() {
        let mut net = bootstrap(64, 8);
        let map = simnet::DomainMap::sectors(2, net.space().modulus());
        let victim = FaultPlan::for_domain(&net, &map, 0, NodeFaults::ROUTER).byzantine_nodes()[0];
        net.crash(victim);
        let plan = FaultPlan::for_domain(&net, &map, 0, NodeFaults::ROUTER);
        assert!(
            !plan.is_byzantine(victim),
            "dead nodes are not part of a domain plan"
        );
    }

    #[test]
    fn node_faults_union_and_predicates() {
        assert!(NodeFaults::ALL.is_byzantine());
        assert!(!NodeFaults::HONEST.is_byzantine());
        let forged = NodeFaults {
            forge_owned_position: true,
            ..NodeFaults::HONEST
        };
        assert!(forged.is_byzantine());
        assert_eq!(NodeFaults::ROUTER.union(forged), NodeFaults::ALL);
    }
}
