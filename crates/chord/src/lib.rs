//! A Chord DHT simulation — the substrate the paper's cost model assumes.
//!
//! King & Saia assume "a standard DHT like Chord \[16\]" providing the lookup
//! `h(x)` at `O(log n)` messages/latency and the successor pointer `next(p)`
//! at `O(1)`. This crate implements the actual Chord protocol (Stoica et
//! al., SIGCOMM 2001) so those costs are *measured*, not asserted:
//!
//! * [`ChordNetwork`] — the node arena: per-node successor lists, a
//!   predecessor pointer and a full finger table, stored column-wise in a
//!   compact struct-of-arrays [`arena`] (run-length
//!   compressed fingers, shared flat buffers — ~130 routing bytes per
//!   node, which is what lets chord arms run at 10⁶ nodes); iterative
//!   [`find_successor`](ChordNetwork::find_successor) routing with per-hop
//!   message/latency accounting; [`join`](ChordNetwork::join) /
//!   [`leave`](ChordNetwork::leave) / [`crash`](ChordNetwork::crash)
//!   membership and the periodic maintenance trio
//!   [`stabilize`](ChordNetwork::stabilize) /
//!   [`fix_finger`](ChordNetwork::fix_finger) /
//!   [`check_predecessor`](ChordNetwork::check_predecessor); an
//!   incrementally maintained consistency report, so
//!   [`verify_ring`](ChordNetwork::verify_ring) polling is O(1) per call
//!   instead of an O(n log n) re-scan (its reverse indexes live in
//!   compact sorted-run multimaps at ~37 B/node); and **batched
//!   incremental maintenance**
//!   ([`batched_maintenance_round`](ChordNetwork::batched_maintenance_round)
//!   under a [`MaintenanceBudget`]), which repairs only the dirty state
//!   churn actually invalidated — amortized O(changes · log n) per round
//!   instead of O(n) routed lookups, the change that runs 10⁷-node
//!   chord arms.
//! * [`ChordDht`] — an adapter implementing `peer_sampling::Dht`, so the
//!   paper's sampler runs over real Chord routing unchanged.
//! * [`ChurnSimulation`] — an event-driven run of a churning Chord overlay
//!   (joins/leaves/crashes from `simnet::churn`, interleaved with
//!   stabilization ticks), used by experiment E11.
//!
//! # Example
//!
//! ```
//! use chord::{ChordConfig, ChordNetwork};
//! use keyspace::KeySpace;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let space = KeySpace::full();
//! let net = ChordNetwork::bootstrap(
//!     space,
//!     space.random_points(&mut rng, 128),
//!     ChordConfig::default(),
//! );
//! let target = space.random_point(&mut rng);
//! let hit = net.find_successor(net.node_ids()[0], target, &mut rng)?;
//! // Routed answer matches the ground truth.
//! assert_eq!(hit.point, net.ground_truth_successor(target));
//! // ...in O(log n) hops.
//! assert!(hit.hops <= 2 * 7); // 2·log2(128)
//! # Ok::<(), chord::LookupError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
mod churn_sim;
mod config;
mod dht_impl;
pub mod engine;
pub mod faults;
mod lookup;
mod maintenance;
pub mod msg;
mod multimap;
mod network;
pub mod score;
mod shadow;
mod storage;
pub mod watchdog;

pub use arena::{Fingers, NodeRef, Successors};
pub use churn_sim::{ChurnReport, ChurnSimulation};
pub use config::ChordConfig;
pub use dht_impl::ChordDht;
pub use engine::{Completion, EngineConfig, LookupEngine, SlowOverlay};
pub use faults::{FaultPlan, NodeFaults};
pub use lookup::{LookupError, LookupResult};
pub use maintenance::{MaintenanceBudget, MaintenanceWork};
pub use network::{ChordCounters, ChordNetwork, NodeId, RingReport};
pub use score::{AdaptiveConfig, PeerScores, RetryPolicy};
pub use storage::{GetResult, PutReceipt};
pub use watchdog::{HealthEvent, HealthKind, LookupOutcomes, SloConfig, SloRule, Watchdog};
