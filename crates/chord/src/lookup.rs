use core::fmt;

use keyspace::Point;
use peer_sampling::Cost;
use rand::Rng;
use telemetry::{FallbackTier, HopRecord, LookupTrace, TraceOutcome};

use crate::network::{ChordNetwork, NodeId};

/// Per-lookup trace state, allocated only when the recorder's tracing
/// flag is on — the disabled hot path pays one relaxed atomic load.
/// Crate-visible so the async [`engine`](crate::engine) builds the same
/// traces hop-for-hop.
pub(crate) struct TraceBuilder {
    pub(crate) from: Point,
    pub(crate) target: Point,
    pub(crate) hops: Vec<HopRecord>,
    /// Latency accounted so far, to attribute per-hop deltas (probe
    /// timeouts included in the hop that paid for them).
    pub(crate) seen_latency: u64,
    /// Retry attempt stamped on every routed hop (0 = first try).
    pub(crate) attempt: u8,
    /// Operation ordinal (from `Recorder::next_op_ordinal`) — the id
    /// histogram exemplars carry, so tail buckets join back to traces.
    pub(crate) ordinal: u64,
}

impl TraceBuilder {
    pub(crate) fn hop(
        &mut self,
        net: &ChordNetwork,
        origin: Point,
        to: NodeId,
        forged: bool,
        cost: &Cost,
    ) {
        let to_point = net.node(to).point();
        let distance = net.space().distance(origin, to_point).get();
        let finger_level = if distance == 0 {
            0
        } else {
            (64 - distance.leading_zeros()) as u8
        };
        self.hops.push(HopRecord {
            node: to_point.get(),
            finger_level,
            forged,
            latency: cost.latency - self.seen_latency,
            attempt: self.attempt,
            tier: FallbackTier::Direct,
        });
        self.seen_latency = cost.latency;
    }

    /// A synthetic fallback-tier hop (successor-walk step or quorum
    /// round); `finger_level` is 0 — no finger resolved it.
    pub(crate) fn fallback_hop(&mut self, node: Point, tier: FallbackTier, total_latency: u64) {
        self.hops.push(HopRecord {
            node: node.get(),
            finger_level: 0,
            forged: false,
            latency: total_latency - self.seen_latency,
            attempt: self.attempt,
            tier,
        });
        self.seen_latency = total_latency;
    }

    pub(crate) fn finish(self, net: &ChordNetwork, outcome: TraceOutcome, cost: &Cost) {
        net.metrics().recorder().push_trace(LookupTrace {
            from: self.from.get(),
            target: self.target.get(),
            hops: self.hops,
            outcome,
            messages: cost.messages,
            latency: cost.latency,
            ordinal: self.ordinal,
        });
    }
}

/// Error from a routed Chord lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupError {
    /// The starting node is dead.
    StartDead,
    /// The hop cap was exceeded (routing loop or pathological churn).
    HopLimitExceeded {
        /// Configured cap that was hit.
        max_hops: u32,
    },
    /// A hop's entire successor list was dead — the ring is partitioned
    /// from this node's perspective.
    SuccessorsAllDead,
    /// Every async-engine attempt ran past its deadline (the routed walk
    /// never failed outright — it was simply too slow). Sync lookups
    /// never return this; only the [`engine`](crate::engine) arms
    /// deadlines.
    TimedOut {
        /// The per-attempt deadline that expired, in ticks.
        timeout_ticks: u64,
    },
}

impl fmt::Display for LookupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LookupError::StartDead => write!(f, "lookup started at a dead node"),
            LookupError::HopLimitExceeded { max_hops } => {
                write!(f, "lookup exceeded the {max_hops}-hop cap")
            }
            LookupError::SuccessorsAllDead => {
                write!(f, "every successor of a hop was dead (ring partition)")
            }
            LookupError::TimedOut { timeout_ticks } => {
                write!(
                    f,
                    "every attempt ran past its {timeout_ticks}-tick deadline"
                )
            }
        }
    }
}

impl std::error::Error for LookupError {}

/// A successful routed lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// The node owning the target point (its successor on the ring).
    pub node: NodeId,
    /// That node's point.
    pub point: Point,
    /// Routing hops taken (nodes traversed).
    pub hops: u32,
    /// Messages and latency spent, **including** probes of dead nodes
    /// (failure detection is not free).
    pub cost: Cost,
}

/// What one [`ChordNetwork::hop_step`] decided: the routed walk either
/// resolved, must forward to a next hop, or cannot make progress.
pub(crate) enum HopOutcome {
    /// The lookup resolved (or was Byzantine-captured) at this hop.
    Done(LookupResult),
    /// Forward the lookup to this next node (one more hop).
    Forward(NodeId),
    /// The hop could not make progress; the walk fails with this error.
    Failed(LookupError),
}

impl ChordNetwork {
    /// Routes a lookup for `target` starting at node `from`, returning the
    /// live node whose point is the clockwise successor of `target`.
    ///
    /// This is the iterative Chord algorithm (SIGCOMM Fig. 5): at each hop
    /// the current node either answers from its successor list (when the
    /// target falls between itself and a live successor) or forwards to
    /// the closest preceding finger. Each contacted node costs one message
    /// and one latency sample; contacting a dead node costs the same (a
    /// timed-out probe) and the router falls back to the next candidate.
    ///
    /// # Errors
    ///
    /// * [`LookupError::StartDead`] — `from` is dead.
    /// * [`LookupError::SuccessorsAllDead`] — some hop lost its entire
    ///   successor list (only possible when churn outpaces stabilization).
    /// * [`LookupError::HopLimitExceeded`] — the configured cap was hit.
    pub fn find_successor<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        target: Point,
        rng: &mut R,
    ) -> Result<LookupResult, LookupError> {
        self.find_successor_with_faults(from, target, &crate::FaultPlan::none(), rng)
    }

    /// [`find_successor`](ChordNetwork::find_successor) with routing-level
    /// fault injection: any hop that reaches a node for which
    /// [`FaultPlan::claims_ownership`](crate::FaultPlan::claims_ownership)
    /// holds is answered by that node claiming the target for itself,
    /// regardless of ring position. The originating node is exempt (a peer
    /// trusts its own state; the attack is on *remote* answers).
    ///
    /// With an empty plan this is byte-for-byte the honest lookup.
    ///
    /// # Errors
    ///
    /// Same as [`find_successor`](ChordNetwork::find_successor).
    pub fn find_successor_with_faults<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        target: Point,
        faults: &crate::FaultPlan,
        rng: &mut R,
    ) -> Result<LookupResult, LookupError> {
        self.route_with_faults(from, target, faults, 0, rng)
            .map_err(|(e, _)| e)
    }

    /// The routing loop behind
    /// [`find_successor_with_faults`](ChordNetwork::find_successor_with_faults),
    /// reporting the cost spent on *failed* lookups too so the retry
    /// policy can attribute it instead of losing it with the `Err`.
    /// `attempt` is stamped on every traced hop (0 = first try).
    ///
    /// Wraps the routing loop with span attribution: routed latency is
    /// charged to `lookup;finger_walk`, minus the share burnt probing
    /// score-demoted candidates, which goes to `lookup;demoted_skip`.
    fn route_with_faults<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        target: Point,
        faults: &crate::FaultPlan,
        attempt: u8,
        rng: &mut R,
    ) -> Result<LookupResult, (LookupError, Cost)> {
        let mut skip = 0u64;
        let out = self.route_attempt(from, target, faults, attempt, &mut skip, rng);
        let total = match &out {
            Ok(hit) => hit.cost.latency,
            Err((_, cost)) => cost.latency,
        };
        let profiler = self.metrics().recorder().profiler();
        profiler.add(self.counters().span_finger_walk, total - skip);
        if skip > 0 {
            profiler.add(self.counters().span_demoted_skip, skip);
        }
        out
    }

    /// One routed attempt (the iterative walk itself); `skip` accumulates
    /// the latency of dead probes against score-demoted candidates, for
    /// the `lookup;demoted_skip` span.
    fn route_attempt<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        target: Point,
        faults: &crate::FaultPlan,
        attempt: u8,
        skip: &mut u64,
        rng: &mut R,
    ) -> Result<LookupResult, (LookupError, Cost)> {
        if !self.node(from).is_alive() {
            return Err((LookupError::StartDead, Cost::FREE));
        }
        let recorder = self.metrics().recorder();
        // Drawn whether or not tracing is on, so exemplar ids agree
        // between traced and untraced replays of the same seed.
        let ordinal = recorder.next_op_ordinal();
        let mut cost = Cost::FREE;
        let mut trace = recorder.tracing_enabled().then(|| TraceBuilder {
            from: self.node(from).point(),
            target,
            hops: Vec::new(),
            seen_latency: 0,
            attempt,
            ordinal,
        });

        let mut current = from;
        let mut hops = 0u32;
        loop {
            if hops > self.config().max_hops() {
                if let Some(t) = trace.take() {
                    t.finish(self, TraceOutcome::Unresolved, &cost);
                }
                return Err((
                    LookupError::HopLimitExceeded {
                        max_hops: self.config().max_hops(),
                    },
                    cost,
                ));
            }
            match self.hop_step(
                current, target, faults, hops, ordinal, &mut cost, skip, &mut trace, rng,
            ) {
                HopOutcome::Done(hit) => return Ok(hit),
                HopOutcome::Failed(e) => return Err((e, cost)),
                HopOutcome::Forward(next) => {
                    current = next;
                    hops += 1;
                }
            }
        }
    }

    /// One hop of the iterative walk, shared verbatim between the sync
    /// loop above and the async [`engine`](crate::engine) (which runs
    /// exactly one `hop_step` per delivered `FindSuccessor` message).
    /// All recorder/score side effects happen here in a fixed order, so
    /// the two drivers stay bit-identical; the hop-cap check stays with
    /// the caller (the engine enforces it at the origin on `NextHop`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn hop_step<R: Rng + ?Sized>(
        &self,
        current: NodeId,
        target: Point,
        faults: &crate::FaultPlan,
        hops: u32,
        ordinal: u64,
        cost: &mut Cost,
        skip: &mut u64,
        trace: &mut Option<TraceBuilder>,
        rng: &mut R,
    ) -> HopOutcome {
        let counters = self.counters();
        let recorder = self.metrics().recorder();
        let latency_model = self.config().latency();
        let cur_point = self.node(current).point();

        // Fault injection: a Byzantine hop answers the lookup with
        // itself instead of routing on, *and* forges its reported ring
        // position as the target itself — the most advantageous lie,
        // since any interval check the caller runs (the sampler's
        // `|I(s, l(h(s)))| < λ` test in particular) then passes. The
        // origin never lies to itself, so `hops > 0` guards the first
        // iteration.
        if hops > 0 && faults.claims_ownership(current) {
            recorder.incr(counters.lookup_byzantine_claim);
            recorder.add(counters.lookup_hops, hops as u64);
            recorder.record_with_exemplar(counters.hop_hist, hops as u64, ordinal);
            if let Some(t) = trace.take() {
                t.finish(self, TraceOutcome::Captured(cur_point.get()), cost);
            }
            return HopOutcome::Done(LookupResult {
                node: current,
                point: target,
                hops,
                cost: *cost,
            });
        }

        // Singleton special case: a node that is its own successor
        // owns the whole ring.
        let successors = self.node(current).successors();
        if successors.len() == 1 && successors.first() == Some(current) {
            recorder.add(counters.lookup_hops, hops as u64);
            recorder.record_with_exemplar(counters.hop_hist, hops as u64, ordinal);
            if let Some(t) = trace.take() {
                t.finish(self, TraceOutcome::Resolved(cur_point.get()), cost);
            }
            return HopOutcome::Done(LookupResult {
                node: current,
                point: cur_point,
                hops,
                cost: *cost,
            });
        }

        // Case 1: the target falls between us and some successor-list
        // entry. The first such entry is the locally-believed answer;
        // if it turns out dead, the next live list entry is the true
        // successor (list entries are consecutive ring nodes), at the
        // price of one timed-out probe per dead entry.
        if successors.is_empty() {
            if let Some(t) = trace.take() {
                t.finish(self, TraceOutcome::Unresolved, cost);
            }
            return HopOutcome::Failed(LookupError::SuccessorsAllDead);
        }
        let answer_rank = successors
            .iter()
            .position(|e| self.between_open_closed(cur_point, target, self.node(e).point()));
        if let Some(rank) = answer_rank {
            let mut found = None;
            for cand in successors.iter().skip(rank) {
                // Probe / handoff message.
                cost.messages += 1;
                cost.latency += latency_model.sample(rng).ticks();
                let alive = self.node(cand).is_alive();
                if let Some(scores) = self.scores() {
                    scores.borrow_mut().record(cand, alive);
                }
                if alive {
                    found = Some(cand);
                    break;
                }
                recorder.incr(counters.lookup_dead_probe);
            }
            if let Some(cand) = found {
                recorder.add(counters.lookup_hops, (hops + 1) as u64);
                recorder.record_with_exemplar(counters.hop_hist, (hops + 1) as u64, ordinal);
                let answer_point = self.node(cand).point();
                if let Some(mut t) = trace.take() {
                    t.hop(self, cur_point, cand, faults.is_byzantine(cand), cost);
                    t.finish(self, TraceOutcome::Resolved(answer_point.get()), cost);
                }
                return HopOutcome::Done(LookupResult {
                    node: cand,
                    point: answer_point,
                    hops: hops + 1,
                    cost: *cost,
                });
            }
            // The whole tail of the list was dead: fall through to
            // finger routing, which forwards to a live node *before*
            // the target; that node's (fresher) list resolves it.
        }

        // Case 2: forward to the closest preceding live candidate
        // (fingers first, then the successor list).
        let Some(next_hop) = self.closest_preceding(current, target, cost, skip, rng) else {
            if let Some(t) = trace.take() {
                t.finish(self, TraceOutcome::Unresolved, cost);
            }
            return HopOutcome::Failed(LookupError::SuccessorsAllDead);
        };
        if let Some(t) = trace.as_mut() {
            t.hop(
                self,
                cur_point,
                next_hop,
                faults.is_byzantine(next_hop),
                cost,
            );
        }
        HopOutcome::Forward(next_hop)
    }

    /// The closest node preceding `target` among `at`'s fingers and
    /// successor list, probing candidates from closest-preceding downward
    /// and skipping dead ones (each probe costs a message). `skip`
    /// accumulates latency burnt on probes of score-demoted candidates
    /// that were dead anyway, for span attribution.
    fn closest_preceding<R: Rng + ?Sized>(
        &self,
        at: NodeId,
        target: Point,
        cost: &mut Cost,
        skip: &mut u64,
        rng: &mut R,
    ) -> Option<NodeId> {
        let at_point = self.node(at).point();
        let latency_model = self.config().latency();

        // Collect candidates strictly inside (at, target), dedup, order by
        // distance from `at` descending (closest to target first). The
        // finger table is iterated by its ~log n *distinct* run values
        // rather than all 64 bit entries — same candidate set after the
        // dedup below, a fraction of the scanning.
        let node = self.node(at);
        let mut candidates: Vec<NodeId> = node
            .fingers()
            .distinct()
            .chain(node.successors().iter())
            .filter(|&c| c != at && self.between_open(at_point, self.node(c).point(), target))
            .collect();
        candidates.sort_by_key(|&c| self.space().distance(at_point, self.node(c).point()));
        candidates.dedup();

        // Adaptive ranking: candidates the score table currently holds
        // penalized sink to the *front* of the vec — the probe loop below
        // walks it back-to-front, so they are tried last and a healthy
        // lower finger level (or successor-list entry) is preferred over
        // a closer-but-flaky one. The sort is stable, so within each
        // class the closest-preceding order is untouched; with scoring
        // disabled this block is skipped and the routing is byte-identical
        // to the pre-adaptive overlay.
        if let Some(scores) = self.scores() {
            let scores = scores.borrow();
            candidates.sort_by_key(|&c| !scores.penalized(c));
        }

        for &cand in candidates.iter().rev() {
            cost.messages += 1;
            let probe_latency = latency_model.sample(rng).ticks();
            cost.latency += probe_latency;
            let was_penalized = self
                .scores()
                .map(|s| s.borrow().penalized(cand))
                .unwrap_or(false);
            let alive = self.node(cand).is_alive();
            if let Some(scores) = self.scores() {
                scores.borrow_mut().record(cand, alive);
            }
            if alive {
                return Some(cand);
            }
            if was_penalized {
                *skip += probe_latency;
            }
            self.metrics()
                .recorder()
                .incr(self.counters().lookup_dead_probe);
        }
        // No usable finger: fall back to the first live successor, which
        // always makes clockwise progress.
        self.first_live_successor(at)
            .filter(|&s| s != at)
            .inspect(|_s| {
                cost.messages += 1;
                cost.latency += latency_model.sample(rng).ticks();
            })
    }

    /// [`find_successor_with_faults`](ChordNetwork::find_successor_with_faults)
    /// under the armed [`RetryPolicy`](crate::RetryPolicy) — the
    /// graceful-degradation entry point used by the DHT facade.
    ///
    /// With no policy armed this delegates verbatim (byte-identical cost
    /// and RNG consumption). With a policy, a failed routed attempt is
    /// retried up to `max_attempts` times, each retry paying a
    /// deterministic backoff (`backoff_base << (k − 1)` latency ticks, no
    /// messages) — with adaptive scoring on, the failed attempt's dead
    /// probes have already re-ranked the next attempt's candidates. If
    /// every routed attempt fails, the lookup *degrades* instead of
    /// erroring:
    ///
    /// * **successor-walk** (fallback depth 2): pure `next`-pointer
    ///   progress from the origin for up to `walk_limit` hops, one
    ///   message per hop — correct on any ring whose live successor
    ///   chain is intact, no fingers needed;
    /// * **verified-quorum resolution** (fallback depth 3): an
    ///   out-of-band query of the quorum-verified position directory,
    ///   charged `quorum_messages` messages plus one parallel round of
    ///   latency. Returns the true owner whenever any live node exists.
    ///
    /// All failed-attempt cost is carried into the returned
    /// [`LookupResult::cost`], and every escalation bumps
    /// `lookup.retries` / `lookup.fallback_depth`, so degraded answers
    /// arrive with their extra cost attributed.
    ///
    /// # Errors
    ///
    /// [`LookupError::StartDead`] when `from` is dead (no fallback can
    /// act for a dead origin); the last routed error only if the ring has
    /// no live nodes left to resolve against.
    pub fn find_successor_with_policy<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        target: Point,
        faults: &crate::FaultPlan,
        rng: &mut R,
    ) -> Result<LookupResult, LookupError> {
        let Some(policy) = self.retry_policy() else {
            return self.find_successor_with_faults(from, target, faults, rng);
        };
        let counters = self.counters();
        let recorder = self.metrics().recorder();
        let mut spent = Cost::FREE;
        let mut last_err = LookupError::StartDead;
        for attempt in 1..=policy.max_attempts.max(1) {
            if attempt > 1 {
                // Backoff is pure waiting: latency, no messages.
                let backoff = policy.backoff_ticks(attempt - 1);
                spent.latency += backoff;
                recorder.incr(counters.lookup_retries);
                recorder
                    .profiler()
                    .add(counters.span_retry_backoff, backoff);
            }
            match self.route_with_faults(from, target, faults, attempt - 1, rng) {
                Ok(mut hit) => {
                    hit.cost.messages += spent.messages;
                    hit.cost.latency += spent.latency;
                    if attempt > 1 {
                        recorder.add(counters.lookup_fallback_depth, 1);
                    }
                    return Ok(hit);
                }
                Err((e, cost)) => {
                    // A failed attempt still paid for its probes.
                    spent.messages += cost.messages;
                    spent.latency += cost.latency;
                    last_err = e;
                    if e == LookupError::StartDead {
                        return Err(e);
                    }
                }
            }
        }
        self.fallback_resolve(from, target, spent, last_err, rng)
    }

    /// The degradation tail shared by the sync policy entry point above
    /// and the async [`engine`](crate::engine): successor-walk, then
    /// verified-quorum resolution. `spent` carries the cost of the failed
    /// routed attempts (and any backoff) so the degraded answer arrives
    /// fully attributed; `last_err` is returned when even the quorum tier
    /// has nothing live to resolve against.
    pub(crate) fn fallback_resolve<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        target: Point,
        mut spent: Cost,
        last_err: LookupError,
        rng: &mut R,
    ) -> Result<LookupResult, LookupError> {
        let Some(policy) = self.retry_policy() else {
            return Err(last_err);
        };
        let counters = self.counters();
        let recorder = self.metrics().recorder();
        let latency_model = self.config().latency();
        // The fallback tiers are one logical operation: one ordinal
        // (drawn traced or not, keeping exemplar ids replay-stable) and
        // one trace carrying synthetic walk/quorum hops.
        let fallback_ordinal = recorder.next_op_ordinal();
        let last_attempt = policy.max_attempts.max(1) - 1;
        let mut trace = recorder.tracing_enabled().then(|| TraceBuilder {
            from: self.node(from).point(),
            target,
            hops: Vec::new(),
            seen_latency: spent.latency,
            attempt: last_attempt,
            ordinal: fallback_ordinal,
        });

        // Fallback tier: successor-walk from the origin. Immune to the
        // stale fingers that defeated routing; every hop is guaranteed
        // clockwise progress through live nodes.
        let walk_start = spent.latency;
        let mut cur = from;
        let mut walked = 0u32;
        while walked < policy.walk_limit {
            let cur_point = self.node(cur).point();
            let Some(next) = self.first_live_successor(cur).filter(|&s| s != cur) else {
                break; // the walk itself hit a dead arc: escalate
            };
            spent.messages += 1;
            spent.latency += latency_model.sample(rng).ticks();
            walked += 1;
            let next_point = self.node(next).point();
            if let Some(t) = trace.as_mut() {
                t.fallback_hop(next_point, telemetry::FallbackTier::Walk, spent.latency);
            }
            if self.between_open_closed(cur_point, target, next_point) {
                recorder.add(counters.lookup_hops, u64::from(walked));
                recorder.record_with_exemplar(
                    counters.hop_hist,
                    u64::from(walked),
                    fallback_ordinal,
                );
                recorder.add(counters.lookup_fallback_depth, 2);
                recorder
                    .profiler()
                    .add(counters.span_successor_walk, spent.latency - walk_start);
                if let Some(t) = trace.take() {
                    t.finish(self, TraceOutcome::Resolved(next_point.get()), &spent);
                }
                return Ok(LookupResult {
                    node: next,
                    point: next_point,
                    hops: walked,
                    cost: spent,
                });
            }
            cur = next;
        }
        if spent.latency > walk_start {
            recorder
                .profiler()
                .add(counters.span_successor_walk, spent.latency - walk_start);
        }

        // Last-resort tier: verified-quorum resolution against the
        // ground-truth directory — always correct while anything lives,
        // charged as a quorum of parallel queries.
        if let Some(owner) = self.truth_successor_id(target) {
            spent.messages += policy.quorum_messages;
            let quorum_latency = latency_model.sample(rng).ticks();
            spent.latency += quorum_latency;
            recorder.add(counters.lookup_fallback_depth, 3);
            recorder
                .profiler()
                .add(counters.span_verified_quorum, quorum_latency);
            let owner_point = self.node(owner).point();
            if let Some(mut t) = trace.take() {
                t.fallback_hop(owner_point, telemetry::FallbackTier::Quorum, spent.latency);
                t.finish(self, TraceOutcome::Resolved(owner_point.get()), &spent);
            }
            return Ok(LookupResult {
                node: owner,
                point: owner_point,
                hops: 0,
                cost: spent,
            });
        }
        if let Some(t) = trace.take() {
            t.finish(self, TraceOutcome::Unresolved, &spent);
        }
        Err(last_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChordConfig;
    use keyspace::KeySpace;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(11)
    }

    fn bootstrap(n: usize, seed: u64) -> ChordNetwork {
        let space = KeySpace::full();
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        ChordNetwork::bootstrap(
            space,
            space.random_points(&mut r, n),
            ChordConfig::default(),
        )
    }

    #[test]
    fn lookup_matches_ground_truth() {
        let net = bootstrap(256, 1);
        let mut r = rng();
        let start = net.live_ids()[0];
        for _ in 0..200 {
            let target = net.space().random_point(&mut r);
            let hit = net.find_successor(start, target, &mut r).unwrap();
            assert_eq!(hit.point, net.ground_truth_successor(target));
        }
    }

    #[test]
    fn lookup_from_every_start_matches() {
        let net = bootstrap(64, 2);
        let mut r = rng();
        let target = net.space().random_point(&mut r);
        let truth = net.ground_truth_successor(target);
        for start in net.live_ids() {
            let hit = net.find_successor(start, target, &mut r).unwrap();
            assert_eq!(hit.point, truth, "start {start}");
        }
    }

    #[test]
    fn hops_are_logarithmic() {
        let net = bootstrap(1024, 3);
        let mut r = rng();
        let start = net.live_ids()[0];
        let mut total_hops = 0u64;
        let lookups = 300;
        for _ in 0..lookups {
            let target = net.space().random_point(&mut r);
            let hit = net.find_successor(start, target, &mut r).unwrap();
            total_hops += hit.hops as u64;
            assert!(hit.hops <= 30, "hop count {} too high for n=1024", hit.hops);
        }
        let mean = total_hops as f64 / lookups as f64;
        // Chord's expected path length is ~½ log2 n = 5; allow slack.
        assert!((2.0..10.0).contains(&mean), "mean hops {mean}");
    }

    #[test]
    fn messages_track_hops_on_healthy_ring() {
        let net = bootstrap(128, 4);
        let mut r = rng();
        let start = net.live_ids()[0];
        let target = net.space().random_point(&mut r);
        let hit = net.find_successor(start, target, &mut r).unwrap();
        // On a fault-free ring: one message per forwarding step plus the
        // final handoff; no dead probes.
        assert!(hit.cost.messages >= hit.hops as u64);
        assert!(hit.cost.messages <= hit.hops as u64 + 2);
        assert_eq!(net.metrics().get("lookup.dead_probe"), 0);
    }

    #[test]
    fn lookup_self_point_returns_self() {
        let net = bootstrap(32, 5);
        let mut r = rng();
        let start = net.live_ids()[7];
        let hit = net
            .find_successor(start, net.node(start).point(), &mut r)
            .unwrap();
        assert_eq!(hit.node, start);
    }

    #[test]
    fn lookup_routes_around_crashes() {
        let mut net = bootstrap(128, 6);
        let mut r = rng();
        // Crash 20 nodes without any repair rounds.
        let victims: Vec<NodeId> = net.live_ids().into_iter().step_by(6).take(20).collect();
        for v in &victims {
            net.crash(*v);
        }
        let start = net.live_ids()[0];
        for _ in 0..100 {
            let target = net.space().random_point(&mut r);
            let hit = net.find_successor(start, target, &mut r).unwrap();
            assert!(net.node(hit.node).is_alive());
            assert_eq!(hit.point, net.ground_truth_successor(target));
        }
        // Dead fingers cost extra probe messages.
        assert!(net.metrics().get("lookup.dead_probe") > 0);
    }

    #[test]
    fn start_dead_is_an_error() {
        let mut net = bootstrap(8, 7);
        let mut r = rng();
        let id = net.live_ids()[0];
        net.crash(id);
        assert_eq!(
            net.find_successor(id, Point::new(1), &mut r).unwrap_err(),
            LookupError::StartDead
        );
    }

    #[test]
    fn singleton_owns_everything() {
        let space = KeySpace::full();
        let mut net = ChordNetwork::new(space, ChordConfig::default());
        let id = net.create(Point::new(99));
        let mut r = rng();
        let hit = net.find_successor(id, Point::new(5), &mut r).unwrap();
        assert_eq!(hit.node, id);
        assert_eq!(hit.hops, 0);
    }

    #[test]
    fn latency_accumulates_per_message() {
        let space = KeySpace::full();
        let mut r = rng();
        let net = ChordNetwork::bootstrap(
            space,
            space.random_points(&mut r, 64),
            ChordConfig::default().with_latency(simnet::LatencyModel::Constant(10)),
        );
        let start = net.live_ids()[0];
        let target = net.space().random_point(&mut r);
        let hit = net.find_successor(start, target, &mut r).unwrap();
        assert_eq!(hit.cost.latency, hit.cost.messages * 10);
    }

    #[test]
    fn empty_fault_plan_is_byte_identical_to_honest_routing() {
        let net = bootstrap(128, 21);
        let start = net.live_ids()[0];
        let plan = crate::FaultPlan::none();
        let mut targets = rng();
        let mut lookups = rng();
        for _ in 0..50 {
            let target = net.space().random_point(&mut targets);
            let honest = net.find_successor(start, target, &mut lookups).unwrap();
            let faulted = net
                .find_successor_with_faults(start, target, &plan, &mut lookups)
                .unwrap();
            // Unit latency draws nothing from the rng, so answers and costs
            // must match exactly.
            assert_eq!(honest.node, faulted.node);
            assert_eq!(honest.cost, faulted.cost);
        }
        assert_eq!(net.metrics().get("lookup.byzantine_claim"), 0);
    }

    #[test]
    fn byzantine_hops_capture_lookups() {
        let net = bootstrap(256, 22);
        let mut r = rng();
        let start = net.live_ids()[0];
        // Every node except the origin lies: any multi-hop lookup must be
        // captured at its first remote hop.
        let liars: Vec<NodeId> = net.live_ids().into_iter().filter(|&n| n != start).collect();
        let plan = crate::FaultPlan::for_nodes(liars);
        let mut captured = 0;
        let mut honest_answers = 0;
        for _ in 0..100 {
            let target = net.space().random_point(&mut r);
            let hit = net
                .find_successor_with_faults(start, target, &plan, &mut r)
                .unwrap();
            if hit.point == net.ground_truth_successor(target) {
                honest_answers += 1;
            } else {
                captured += 1;
                assert!(plan.is_byzantine(hit.node), "wrong answers come from liars");
            }
        }
        assert!(
            captured > 50,
            "a fully Byzantine remote ring must capture most lookups \
             (captured {captured}, honest {honest_answers})"
        );
        assert!(net.metrics().get("lookup.byzantine_claim") > 0);
    }

    #[test]
    fn origin_is_exempt_from_its_own_fault_entry() {
        let net = bootstrap(32, 23);
        let mut r = rng();
        let start = net.live_ids()[0];
        let plan = crate::FaultPlan::for_nodes([start]);
        // Targets owned by other nodes must still resolve correctly: the
        // origin does not "capture" its own lookups.
        for _ in 0..20 {
            let target = net.space().random_point(&mut r);
            let hit = net
                .find_successor_with_faults(start, target, &plan, &mut r)
                .unwrap();
            assert_eq!(hit.point, net.ground_truth_successor(target));
        }
    }

    #[test]
    fn traces_capture_hop_paths_and_attribution() {
        let net = bootstrap(256, 31);
        let rec = net.metrics().recorder();
        rec.set_tracing(true);
        let mut r = rng();
        let start = net.live_ids()[0];

        // Honest lookups: hops resolve, per-hop latency sums to the cost.
        let target = net.space().random_point(&mut r);
        let hit = net.find_successor(start, target, &mut r).unwrap();
        let traces = rec.traces();
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.from, net.node(start).point().get());
        assert_eq!(t.target, target.get());
        assert_eq!(t.hops.len(), hit.hops as usize);
        assert_eq!(t.messages, hit.cost.messages);
        assert_eq!(t.latency, hit.cost.latency);
        assert_eq!(
            t.hops.iter().map(|h| h.latency).sum::<u64>(),
            hit.cost.latency,
            "per-hop latencies must account for the whole walk"
        );
        assert!(t.hops.iter().all(|h| !h.forged));
        assert!(matches!(
            t.outcome,
            telemetry::TraceOutcome::Resolved(p) if p == hit.point.get()
        ));

        // Byzantine capture: the capturing hop is marked forged.
        let liars: Vec<NodeId> = net.live_ids().into_iter().filter(|&n| n != start).collect();
        let plan = crate::FaultPlan::for_nodes(liars);
        let mut captured_seen = false;
        for _ in 0..20 {
            let target = net.space().random_point(&mut r);
            let hit = net
                .find_successor_with_faults(start, target, &plan, &mut r)
                .unwrap();
            if hit.point != net.ground_truth_successor(target) {
                captured_seen = true;
            }
        }
        assert!(captured_seen);
        assert!(rec.traces().iter().any(|t| matches!(
            t.outcome,
            telemetry::TraceOutcome::Captured(_)
        ) && t.hops.iter().any(|h| h.forged)));

        // The hop histogram agrees with the per-lookup results.
        let hist = rec.histogram_snapshot(net.counters().hop_hist);
        assert_eq!(hist.count(), rec.traces_recorded());
    }

    #[test]
    fn tracing_disabled_records_nothing() {
        let net = bootstrap(64, 32);
        let mut r = rng();
        let start = net.live_ids()[0];
        for _ in 0..10 {
            let target = net.space().random_point(&mut r);
            net.find_successor(start, target, &mut r).unwrap();
        }
        let rec = net.metrics().recorder();
        assert_eq!(rec.traces_recorded(), 0);
        assert!(rec.traces().is_empty());
        // Counters and the hop histogram stay on regardless.
        assert!(rec.histogram_snapshot(net.counters().hop_hist).count() >= 10);
        assert!(net.metrics().get("lookup.hops") > 0);
    }

    #[test]
    fn policy_entry_without_a_policy_is_byte_identical() {
        let net = bootstrap(128, 43);
        let start = net.live_ids()[0];
        let plan = crate::FaultPlan::none();
        let mut targets = rng();
        let mut plain_rng = rng();
        let mut policy_rng = rng();
        for _ in 0..30 {
            let target = net.space().random_point(&mut targets);
            let plain = net.find_successor(start, target, &mut plain_rng).unwrap();
            let policied = net
                .find_successor_with_policy(start, target, &plan, &mut policy_rng)
                .unwrap();
            assert_eq!(plain.node, policied.node);
            assert_eq!(plain.cost, policied.cost);
        }
        assert_eq!(net.metrics().get("lookup.retries"), 0);
        assert_eq!(net.metrics().get("lookup.fallback_depth"), 0);
    }

    #[test]
    fn policy_degrades_through_a_dead_arc_and_stays_correct() {
        let mut net = bootstrap(64, 41);
        net.enable_adaptive_routing(crate::AdaptiveConfig::default());
        net.enable_retry_policy(crate::RetryPolicy::default());
        // Crash a contiguous arc longer than the successor-list depth:
        // the arc's predecessor loses its entire list, which is exactly
        // the partition plain routing cannot cross.
        let mut ring: Vec<NodeId> = net.live_ids();
        ring.sort_by_key(|&id| net.node(id).point());
        let arc = ring[20..36].to_vec();
        for &v in &arc {
            net.crash(v);
        }
        let start = ring[0];
        let target = net.node(arc[8]).point(); // deep inside the dead arc
        let mut r = rng();
        assert_eq!(
            net.find_successor(start, target, &mut r).unwrap_err(),
            LookupError::SuccessorsAllDead,
            "plain routing must fail across the dead arc"
        );
        let hit = net
            .find_successor_with_policy(start, target, &crate::FaultPlan::none(), &mut r)
            .unwrap();
        assert_eq!(
            hit.point,
            net.ground_truth_successor(target),
            "the degraded answer must still be the true owner"
        );
        assert!(
            net.metrics().get("lookup.retries") >= 1,
            "a retry must have been attempted"
        );
        assert!(
            net.metrics().get("lookup.fallback_depth") >= 2,
            "the answer came from a fallback tier"
        );
        assert!(
            hit.cost.messages > 1,
            "degradation must carry its attributed cost"
        );
    }

    #[test]
    fn walk_tier_rescues_hop_capped_lookups() {
        // A pathologically low hop cap defeats finger routing while the
        // successor chain stays fully intact: exactly the case the
        // successor-walk tier exists for.
        let space = KeySpace::full();
        let mut r = rng();
        let mut net = ChordNetwork::bootstrap(
            space,
            space.random_points(&mut r, 64),
            ChordConfig::default().with_max_hops(1),
        );
        net.enable_retry_policy(crate::RetryPolicy {
            walk_limit: 64,
            ..crate::RetryPolicy::default()
        });
        let start = net.live_ids()[0];
        let mut rescued = 0;
        for _ in 0..40 {
            let target = net.space().random_point(&mut r);
            let capped = net.find_successor(start, target, &mut r);
            let hit = net
                .find_successor_with_policy(start, target, &crate::FaultPlan::none(), &mut r)
                .unwrap();
            assert_eq!(hit.point, net.ground_truth_successor(target));
            if capped.is_err() {
                rescued += 1;
            }
        }
        assert!(rescued > 0, "some lookups must have needed the fallback");
        assert!(net.metrics().get("lookup.fallback_depth") > 0);
    }

    #[test]
    fn adaptive_scoring_learns_to_avoid_dead_fingers() {
        let mut net = bootstrap(128, 42);
        net.enable_adaptive_routing(crate::AdaptiveConfig::default());
        let victims: Vec<NodeId> = net.live_ids().into_iter().step_by(3).take(30).collect();
        for v in victims {
            net.crash(v);
        }
        let start = net.live_ids()[0];
        let mut r = rng();
        let targets: Vec<Point> = (0..60).map(|_| net.space().random_point(&mut r)).collect();
        // First pass pays dead probes and feeds the score table.
        for &t in &targets {
            net.find_successor(start, t, &mut r).unwrap();
        }
        let first_pass = net.metrics().get("lookup.dead_probe");
        assert!(first_pass > 0, "crashed fingers must cost probes initially");
        // Second pass over the same targets: penalized peers now rank
        // last, so known-dead fingers are no longer probed first.
        for &t in &targets {
            let hit = net.find_successor(start, t, &mut r).unwrap();
            assert_eq!(hit.point, net.ground_truth_successor(t));
        }
        let second_pass = net.metrics().get("lookup.dead_probe") - first_pass;
        assert!(
            second_pass < first_pass,
            "scoring must cut repeat dead probes: {first_pass} then {second_pass}"
        );
        assert!(net.score_bytes() > 0);
        assert!(net.peer_score(start) == crate::score::SCORE_MAX);
    }

    #[test]
    fn spans_and_trace_annotations_explain_degraded_lookups() {
        let mut net = bootstrap(64, 41);
        net.enable_adaptive_routing(crate::AdaptiveConfig::default());
        net.enable_retry_policy(crate::RetryPolicy::default());
        net.metrics().recorder().set_tracing(true);
        let mut ring: Vec<NodeId> = net.live_ids();
        ring.sort_by_key(|&id| net.node(id).point());
        let arc = ring[20..36].to_vec();
        for &v in &arc {
            net.crash(v);
        }
        let start = ring[0];
        let target = net.node(arc[8]).point();
        let mut r = rng();
        // A few healthy lookups first: they claim hop-histogram exemplar
        // slots and leave replayable traces behind them.
        for _ in 0..10 {
            let t = net.space().random_point(&mut r);
            net.find_successor_with_policy(start, t, &crate::FaultPlan::none(), &mut r)
                .unwrap();
        }
        let hit = net
            .find_successor_with_policy(start, target, &crate::FaultPlan::none(), &mut r)
            .unwrap();
        assert_eq!(hit.point, net.ground_truth_successor(target));

        // The profiler attributes the slow lookup to its actual causes:
        // backoff plus a fallback tier, not just the finger walk.
        let totals = net.metrics().recorder().profiler().totals();
        assert!(totals["lookup;retry_backoff"].cost > 0, "{totals:?}");
        assert!(
            totals["lookup;successor_walk"].cost > 0 || totals["lookup;verified_quorum"].cost > 0,
            "{totals:?}"
        );
        let collapsed = net.metrics().recorder().profiler().collapsed();
        assert!(collapsed.contains("lookup;finger_walk "));

        // The degradation path is visible on the trace itself.
        let traces = net.metrics().recorder().traces();
        let fallback = traces.last().unwrap();
        assert!(fallback
            .hops
            .iter()
            .any(|h| h.tier != telemetry::FallbackTier::Direct));
        assert!(fallback.hops.iter().all(|h| h.attempt > 0));

        // Exemplars link the hop histogram's buckets back to ordinals of
        // retained traces.
        let hist = net
            .metrics()
            .recorder()
            .histogram_snapshot(net.counters().hop_hist);
        assert!(!hist.exemplars().is_empty());
        let ordinals: Vec<u64> = traces.iter().map(|t| t.ordinal).collect();
        assert!(hist
            .exemplars()
            .iter()
            .any(|e| ordinals.contains(&e.trace_id)));
    }

    #[test]
    fn untraced_lookups_draw_the_same_ordinals() {
        // Exemplar trace ids must agree between traced and untraced runs
        // of the same seed, or a tail exemplar could never be replayed.
        let run = |tracing: bool| {
            let net = bootstrap(64, 44);
            net.metrics().recorder().set_tracing(tracing);
            let mut r = rng();
            let start = net.live_ids()[0];
            for _ in 0..50 {
                let target = net.space().random_point(&mut r);
                net.find_successor(start, target, &mut r).unwrap();
            }
            net.metrics()
                .recorder()
                .histogram_snapshot(net.counters().hop_hist)
                .exemplars()
                .to_vec()
        };
        let traced = run(true);
        let untraced = run(false);
        assert!(!traced.is_empty());
        assert_eq!(traced, untraced);
    }

    #[test]
    fn errors_display() {
        assert!(LookupError::StartDead.to_string().contains("dead"));
        assert!(LookupError::HopLimitExceeded { max_hops: 9 }
            .to_string()
            .contains('9'));
        assert!(LookupError::SuccessorsAllDead
            .to_string()
            .contains("partition"));
    }
}
