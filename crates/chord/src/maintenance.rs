//! Batched incremental maintenance: the dirty-set behind
//! [`ChordNetwork::batched_maintenance_round`].
//!
//! A classic maintenance round is O(n): every live node stabilizes and
//! routes one `fix_finger` lookup, whether or not anything near it
//! changed. That was the wall between the 10⁶-node chord arms and 10⁷ —
//! five rounds of ten million routed lookups each dwarf the churn they
//! repair (a few hundred membership events).
//!
//! The batched model instead keeps a **dirty set** of exactly the state
//! that is known stale, fed by the same write funnels and membership
//! events that keep the verification ledger current:
//!
//! * a per-node *sp* flag — the node's successor list or predecessor
//!   pointer disagrees with the ground truth (set by the ledger's
//!   `recompute_sp` whenever a re-check fails, cleared when one passes);
//! * a per-node *finger bitmask* — finger levels whose entry is missing
//!   or wrong (set by `recompute_finger`, which membership events invoke
//!   for precisely the ownership arcs they moved; newly joined nodes
//!   start all-dirty).
//!
//! [`ChordNetwork::batched_maintenance_round`] then walks only the dirty
//! queue: sp-dirty nodes run the ordinary `check_predecessor` +
//! `stabilize` protocol ops; dirty finger levels are refreshed by
//! **ownership-run jumping** — one routed lookup resolves the lowest
//! dirty level, and every higher dirty level whose target falls inside
//! the returned owner's arc reuses the answer (the same trick
//! `bulk_join` uses to build whole tables in O(log n) lookups). Repairs
//! that fail or return stale answers re-mark themselves through the
//! funnels and are retried next round, so convergence is still driven by
//! the protocol — the dirty set only *selects* where to spend work.
//!
//! Per round this is amortized O(changes · log n) instead of O(n) routed
//! lookups (counter-asserted in `tests/batched_maintenance.rs`), and a
//! [`MaintenanceBudget`] caps the work per round so scenarios can trade
//! staleness for repair cost — the backlog left behind is first-class
//! ([`ChordNetwork::maintenance_backlog`]) and surfaced in e16 records.
//!
//! [`ChordNetwork::batched_maintenance_round`]: crate::ChordNetwork::batched_maintenance_round
//! [`ChordNetwork::maintenance_backlog`]: crate::ChordNetwork::maintenance_backlog

use std::collections::VecDeque;

/// Work cap for one [`batched_maintenance_round`]: how many dirty
/// entries (an sp flag counts one, each dirty finger level counts one)
/// the round may repair.
///
/// [`batched_maintenance_round`]: crate::ChordNetwork::batched_maintenance_round
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaintenanceBudget {
    limit: Option<u32>,
}

impl MaintenanceBudget {
    /// No cap: the round drains every entry dirty when it started.
    pub const fn unlimited() -> MaintenanceBudget {
        MaintenanceBudget { limit: None }
    }

    /// At most `entries` dirty entries repaired per round. `0` is pure
    /// staleness: the round does nothing and the backlog only grows.
    pub const fn per_round(entries: u32) -> MaintenanceBudget {
        MaintenanceBudget {
            limit: Some(entries),
        }
    }

    /// The cap, or `None` when unlimited.
    pub const fn limit(self) -> Option<u32> {
        self.limit
    }
}

/// What one [`batched_maintenance_round`] actually did.
///
/// [`batched_maintenance_round`]: crate::ChordNetwork::batched_maintenance_round
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaintenanceWork {
    /// Nodes whose sp flag was taken (each ran `check_predecessor` +
    /// `stabilize`).
    pub sp_refreshed: usize,
    /// Finger levels written (lookups shared across a run count each
    /// level they filled).
    pub fingers_refreshed: usize,
    /// Routed lookups issued for finger repair — the quantity the
    /// O(changes · log n) bound is asserted on.
    pub lookups: u64,
    /// Dirty entries remaining after the round (budget leftovers plus
    /// repairs that re-marked themselves).
    pub backlog: usize,
}

/// The dirty-entry bookkeeping: per-node finger bitmask + sp bit, and a
/// FIFO queue of nodes with any dirty state (each node queued at most
/// once, tracked by the `queued` bitset).
pub(crate) struct DirtySet {
    fingers: Vec<u64>,
    sp: Vec<u64>,
    queued: Vec<u64>,
    queue: VecDeque<u32>,
    entries: usize,
}

#[inline]
fn get_bit(words: &[u64], i: usize) -> bool {
    words[i / 64] >> (i % 64) & 1 == 1
}

#[inline]
fn set_bit(words: &mut [u64], i: usize, on: bool) {
    let (w, b) = (i / 64, 1u64 << (i % 64));
    if on {
        words[w] |= b;
    } else {
        words[w] &= !b;
    }
}

impl DirtySet {
    pub(crate) fn new() -> DirtySet {
        DirtySet {
            fingers: Vec::new(),
            sp: Vec::new(),
            queued: Vec::new(),
            queue: VecDeque::new(),
            entries: 0,
        }
    }

    /// Registers arena slot `i` (must be called in slot order).
    pub(crate) fn push_node(&mut self, i: usize) {
        self.fingers.push(0);
        if i / 64 == self.sp.len() {
            self.sp.push(0);
            self.queued.push(0);
        }
    }

    /// Total dirty entries (sp flags + dirty finger levels).
    pub(crate) fn entries(&self) -> usize {
        self.entries
    }

    /// Bytes held by the dirty-set bookkeeping (finger masks, the two
    /// bitsets and the live queue entries) — accounted like the
    /// ledger's [`bytes`](crate::ChordNetwork::verifier_bytes): entry
    /// lengths, with reserve slack bounded by the containers' growth
    /// policies. Gated per node in `BENCH_chord_scale.json` so
    /// maintenance state cannot silently erode the scale headroom the
    /// routing-arena and verifier budgets protect.
    pub(crate) fn bytes(&self) -> usize {
        use std::mem::size_of;
        (self.fingers.len() + self.sp.len() + self.queued.len()) * size_of::<u64>()
            + self.queue.len() * size_of::<u32>()
    }

    /// Nodes currently queued for processing.
    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    fn enqueue(&mut self, i: usize) {
        if !get_bit(&self.queued, i) {
            set_bit(&mut self.queued, i, true);
            self.queue.push_back(i as u32);
        }
    }

    /// Pops the next queued node, clearing its queued bit. The caller
    /// must re-[`enqueue`](Self::enqueue) (via the mark methods) any node
    /// left or made dirty again.
    pub(crate) fn pop(&mut self) -> Option<usize> {
        let i = self.queue.pop_front()? as usize;
        set_bit(&mut self.queued, i, false);
        Some(i)
    }

    /// Re-queues `i` if it still carries dirty state (post-processing).
    pub(crate) fn requeue_if_dirty(&mut self, i: usize) {
        if self.fingers[i] != 0 || get_bit(&self.sp, i) {
            self.enqueue(i);
        }
    }

    pub(crate) fn mark_sp(&mut self, i: usize) {
        if !get_bit(&self.sp, i) {
            set_bit(&mut self.sp, i, true);
            self.entries += 1;
        }
        self.enqueue(i);
    }

    pub(crate) fn clear_sp(&mut self, i: usize) {
        if get_bit(&self.sp, i) {
            set_bit(&mut self.sp, i, false);
            self.entries -= 1;
        }
    }

    pub(crate) fn is_sp(&self, i: usize) -> bool {
        get_bit(&self.sp, i)
    }

    /// Takes (returns and clears) the sp flag.
    pub(crate) fn take_sp(&mut self, i: usize) -> bool {
        let was = get_bit(&self.sp, i);
        self.clear_sp(i);
        was
    }

    pub(crate) fn mark_finger(&mut self, i: usize, bit: usize) {
        let mask = 1u64 << bit;
        if self.fingers[i] & mask == 0 {
            self.fingers[i] |= mask;
            self.entries += 1;
        }
        self.enqueue(i);
    }

    pub(crate) fn clear_finger(&mut self, i: usize, bit: usize) {
        let mask = 1u64 << bit;
        if self.fingers[i] & mask != 0 {
            self.fingers[i] &= !mask;
            self.entries -= 1;
        }
    }

    /// Marks every level of a `bits`-wide table dirty (new joiners).
    pub(crate) fn mark_all_fingers(&mut self, i: usize, bits: usize) {
        let full = if bits == 64 { !0 } else { (1u64 << bits) - 1 };
        self.entries += (full & !self.fingers[i]).count_ones() as usize;
        self.fingers[i] = full;
        self.enqueue(i);
    }

    pub(crate) fn finger_mask(&self, i: usize) -> u64 {
        self.fingers[i]
    }

    /// Takes (returns and clears) up to `limit` of the lowest dirty
    /// finger levels.
    pub(crate) fn take_fingers(&mut self, i: usize, limit: u32) -> u64 {
        let mask = self.fingers[i];
        let available = mask.count_ones();
        let taken = if available <= limit {
            mask
        } else {
            // Lowest `limit` set bits.
            let mut m = mask;
            for _ in 0..limit {
                m &= m - 1;
            }
            mask & !m
        };
        self.fingers[i] &= !taken;
        self.entries -= taken.count_ones() as usize;
        taken
    }

    /// Forgets everything and re-registers `n` slots — the bulk-rebuild
    /// path, where the caller just made every node converged.
    pub(crate) fn reset(&mut self, n: usize) {
        self.fingers.clear();
        self.fingers.resize(n, 0);
        self.sp.clear();
        self.sp.resize(n.div_ceil(64), 0);
        self.queued.clear();
        self.queued.resize(n.div_ceil(64), 0);
        self.queue.clear();
        self.entries = 0;
    }

    /// Drops every dirty entry of a node that died.
    pub(crate) fn clear_node(&mut self, i: usize) {
        self.entries -= self.fingers[i].count_ones() as usize;
        self.fingers[i] = 0;
        self.clear_sp(i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set() -> DirtySet {
        let mut d = DirtySet::new();
        for i in 0..100 {
            d.push_node(i);
        }
        d
    }

    #[test]
    fn marking_is_idempotent_and_counts_entries() {
        let mut d = set();
        d.mark_sp(3);
        d.mark_sp(3);
        d.mark_finger(3, 7);
        d.mark_finger(3, 7);
        d.mark_finger(4, 0);
        assert_eq!(d.entries(), 3);
        assert_eq!(d.queue_len(), 2, "each node queued once");
        d.clear_sp(3);
        d.clear_sp(3);
        d.clear_finger(3, 7);
        assert_eq!(d.entries(), 1);
    }

    #[test]
    fn queue_pops_fifo_and_requeues_only_dirty() {
        let mut d = set();
        d.mark_sp(5);
        d.mark_finger(9, 2);
        assert_eq!(d.pop(), Some(5));
        assert!(d.take_sp(5));
        d.requeue_if_dirty(5); // clean now: not re-queued
        assert_eq!(d.pop(), Some(9));
        d.requeue_if_dirty(9); // finger bit still set: re-queued
        assert_eq!(d.pop(), Some(9));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn take_fingers_respects_the_limit_lowest_bits_first() {
        let mut d = set();
        d.mark_all_fingers(1, 64);
        assert_eq!(d.entries(), 64);
        let taken = d.take_fingers(1, 3);
        assert_eq!(taken, 0b111);
        assert_eq!(d.entries(), 61);
        let rest = d.take_fingers(1, u32::MAX);
        assert_eq!(rest, !0b111u64);
        assert_eq!(d.entries(), 0);
    }

    #[test]
    fn clear_node_drops_all_entries() {
        let mut d = set();
        d.mark_all_fingers(2, 16);
        d.mark_sp(2);
        assert_eq!(d.entries(), 17);
        d.clear_node(2);
        assert_eq!(d.entries(), 0);
        assert_eq!(d.finger_mask(2), 0);
        assert!(!d.is_sp(2));
    }

    #[test]
    fn budget_constructors() {
        assert_eq!(MaintenanceBudget::unlimited().limit(), None);
        assert_eq!(MaintenanceBudget::per_round(5).limit(), Some(5));
        assert_eq!(MaintenanceBudget::per_round(0).limit(), Some(0));
    }
}
