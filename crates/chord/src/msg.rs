//! Wire messages of the async lookup [`engine`](crate::engine).
//!
//! The sync walk calls [`hop_step`] as a function; the engine sends these
//! messages through a [`simnet::EventQueue`] instead, so delay, loss (a
//! hop crashing mid-flight) and preemption (a timeout firing first)
//! become expressible. The set mirrors iterative Chord: the origin asks a
//! hop to [`FindSuccessor`](Message::FindSuccessor), the hop answers
//! [`NextHop`](Message::NextHop) (or the final
//! [`Notify`](Message::Notify)), and a per-attempt
//! [`Timeout`](Message::Timeout) wakeup guards the round-trip.
//!
//! The codec pins the wire format: every variant serializes to a fixed
//! little-endian layout, so a change to the protocol shape is visible as
//! a codec-test diff, and the engine can (de)serialize its in-flight set
//! for inspection without allocating per hop.
//!
//! [`hop_step`]: crate::network::ChordNetwork

/// Sentinel node index in [`Message::NextHop`]: the hop could not route
/// (its candidate set was exhausted, or it died before answering) — the
/// origin fails the attempt with `SuccessorsAllDead` semantics.
pub const NO_NEXT: u32 = u32::MAX;

/// One serialized protocol message of the async lookup engine.
///
/// `req` is the engine-level request tag; `gen` the request's attempt
/// generation — a delivery whose generation no longer matches is stale
/// (its attempt was retried or completed) and is dropped, which is what
/// makes completion exactly-once under timeout races.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Message {
    /// Origin → hop: route one step of the walk for request `req` at
    /// node `at`, `hops` steps deep.
    FindSuccessor {
        /// Request tag.
        req: u64,
        /// Attempt generation.
        gen: u32,
        /// Node processing this step (arena index).
        at: u32,
        /// Hops taken so far.
        hops: u32,
    },
    /// Hop → origin: forward the walk to `next` ([`NO_NEXT`] = the hop
    /// failed to make progress).
    NextHop {
        /// Request tag.
        req: u64,
        /// Attempt generation.
        gen: u32,
        /// Next node to ask (arena index), or [`NO_NEXT`].
        next: u32,
    },
    /// Hop → origin: the walk resolved at `owner` after `hops` steps.
    /// `captured` marks a Byzantine capture (the answer point is the
    /// target itself — the forged lie — not the owner's ring point).
    Notify {
        /// Request tag.
        req: u64,
        /// Attempt generation.
        gen: u32,
        /// Answering node (arena index).
        owner: u32,
        /// Total hops of the resolved walk.
        hops: u32,
        /// Whether a Byzantine hop captured the lookup.
        captured: bool,
    },
    /// Self-addressed wakeup: the attempt's deadline expired. Stale once
    /// the attempt resolved or was already retried.
    Timeout {
        /// Request tag.
        req: u64,
        /// Attempt generation this deadline was armed for.
        gen: u32,
    },
}

const TAG_FIND: u8 = 1;
const TAG_NEXT: u8 = 2;
const TAG_NOTIFY: u8 = 3;
const TAG_TIMEOUT: u8 = 4;

/// Encoded size of the largest variant (`Notify`).
pub const MAX_ENCODED_LEN: usize = 1 + 8 + 4 + 4 + 4 + 1;

impl Message {
    /// Request tag this message belongs to.
    pub fn req(&self) -> u64 {
        match *self {
            Message::FindSuccessor { req, .. }
            | Message::NextHop { req, .. }
            | Message::Notify { req, .. }
            | Message::Timeout { req, .. } => req,
        }
    }

    /// Attempt generation this message was sent under.
    pub fn generation(&self) -> u32 {
        match *self {
            Message::FindSuccessor { gen, .. }
            | Message::NextHop { gen, .. }
            | Message::Notify { gen, .. }
            | Message::Timeout { gen, .. } => gen,
        }
    }

    /// Serializes to the pinned little-endian wire layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(MAX_ENCODED_LEN);
        match *self {
            Message::FindSuccessor { req, gen, at, hops } => {
                out.push(TAG_FIND);
                out.extend_from_slice(&req.to_le_bytes());
                out.extend_from_slice(&gen.to_le_bytes());
                out.extend_from_slice(&at.to_le_bytes());
                out.extend_from_slice(&hops.to_le_bytes());
            }
            Message::NextHop { req, gen, next } => {
                out.push(TAG_NEXT);
                out.extend_from_slice(&req.to_le_bytes());
                out.extend_from_slice(&gen.to_le_bytes());
                out.extend_from_slice(&next.to_le_bytes());
            }
            Message::Notify {
                req,
                gen,
                owner,
                hops,
                captured,
            } => {
                out.push(TAG_NOTIFY);
                out.extend_from_slice(&req.to_le_bytes());
                out.extend_from_slice(&gen.to_le_bytes());
                out.extend_from_slice(&owner.to_le_bytes());
                out.extend_from_slice(&hops.to_le_bytes());
                out.push(u8::from(captured));
            }
            Message::Timeout { req, gen } => {
                out.push(TAG_TIMEOUT);
                out.extend_from_slice(&req.to_le_bytes());
                out.extend_from_slice(&gen.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a message previously produced by
    /// [`encode`](Message::encode); `None` on any malformed input
    /// (unknown tag, wrong length, non-boolean flag byte).
    pub fn decode(bytes: &[u8]) -> Option<Message> {
        let (&tag, rest) = bytes.split_first()?;
        let u64_at = |off: usize| {
            rest.get(off..off + 8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        };
        let u32_at = |off: usize| {
            rest.get(off..off + 4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        };
        match tag {
            TAG_FIND if rest.len() == 20 => Some(Message::FindSuccessor {
                req: u64_at(0)?,
                gen: u32_at(8)?,
                at: u32_at(12)?,
                hops: u32_at(16)?,
            }),
            TAG_NEXT if rest.len() == 16 => Some(Message::NextHop {
                req: u64_at(0)?,
                gen: u32_at(8)?,
                next: u32_at(12)?,
            }),
            TAG_NOTIFY if rest.len() == 21 && rest[20] <= 1 => Some(Message::Notify {
                req: u64_at(0)?,
                gen: u32_at(8)?,
                owner: u32_at(12)?,
                hops: u32_at(16)?,
                captured: rest[20] == 1,
            }),
            TAG_TIMEOUT if rest.len() == 12 => Some(Message::Timeout {
                req: u64_at(0)?,
                gen: u32_at(8)?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exemplars() -> Vec<Message> {
        vec![
            Message::FindSuccessor {
                req: 7,
                gen: 2,
                at: 131,
                hops: 9,
            },
            Message::NextHop {
                req: u64::MAX,
                gen: 0,
                next: NO_NEXT,
            },
            Message::Notify {
                req: 1,
                gen: 3,
                owner: 42,
                hops: 11,
                captured: true,
            },
            Message::Notify {
                req: 1,
                gen: 3,
                owner: 42,
                hops: 11,
                captured: false,
            },
            Message::Timeout { req: 99, gen: 1 },
        ]
    }

    #[test]
    fn every_variant_roundtrips() {
        for msg in exemplars() {
            let bytes = msg.encode();
            assert!(bytes.len() <= MAX_ENCODED_LEN, "{msg:?}");
            assert_eq!(Message::decode(&bytes), Some(msg), "{msg:?}");
        }
    }

    #[test]
    fn wire_layout_is_pinned() {
        // Byte-level golden values: a layout change (field order, width,
        // endianness) must fail here, not silently re-shape the protocol.
        let msg = Message::FindSuccessor {
            req: 0x0102_0304_0506_0708,
            gen: 0x0A0B_0C0D,
            at: 5,
            hops: 6,
        };
        assert_eq!(
            msg.encode(),
            vec![1, 8, 7, 6, 5, 4, 3, 2, 1, 0x0D, 0x0C, 0x0B, 0x0A, 5, 0, 0, 0, 6, 0, 0, 0],
        );
        assert_eq!(
            Message::Timeout { req: 2, gen: 1 }.encode(),
            vec![4, 2, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0],
        );
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert_eq!(Message::decode(&[]), None);
        assert_eq!(Message::decode(&[9; 13]), None, "unknown tag");
        for msg in exemplars() {
            let bytes = msg.encode();
            assert_eq!(
                Message::decode(&bytes[..bytes.len() - 1]),
                None,
                "truncated"
            );
            let mut long = bytes.clone();
            long.push(0);
            assert_eq!(Message::decode(&long), None, "trailing garbage");
        }
        // A Notify flag byte outside {0, 1} is not a boolean.
        let mut notify = Message::Notify {
            req: 1,
            gen: 1,
            owner: 1,
            hops: 1,
            captured: false,
        }
        .encode();
        *notify.last_mut().unwrap() = 2;
        assert_eq!(Message::decode(&notify), None);
    }

    #[test]
    fn accessors_cover_every_variant() {
        for msg in exemplars() {
            assert_eq!(msg.req(), Message::decode(&msg.encode()).unwrap().req());
            assert!(msg.generation() <= 3);
        }
    }
}
