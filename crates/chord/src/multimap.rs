//! A compact sorted-run multimap from `u32` keys to `u32` values.
//!
//! The incremental verification ledger needs two reverse indexes —
//! "which nodes' derived successor is `y`?" and "which nodes' predecessor
//! pointer is `y`?" — that it consults on every membership event. The
//! obvious `Vec<Vec<u32>>` representation costs a 24-byte `Vec` header
//! per node *per index* before a single entry is stored (~48 B/node of
//! pure bookkeeping at 10⁷ nodes). [`CompactMultiMap`] stores the same
//! relation as `(key, value)` pairs packed into sorted `u64`s
//! (`key << 32 | value`) held in bounded chunks — the same
//! chunked-sorted-vec shape as `ringidx` and the arena's shared finger
//! store:
//!
//! * **lookup** of a key's values: binary search to the first packed
//!   entry of the key, then a run scan — O(log n + hits);
//! * **insert/remove**: O(log n) search plus one bounded `memmove`
//!   (≤ [`MAX_CHUNK`] entries), amortized by chunk splits and merges;
//! * **bytes**: 8 B per entry plus a few dozen bytes per 1024-entry
//!   chunk — no per-key headers at all.
//!
//! Both ledger relations hold at most one entry per live node, so the two
//! maps together cost ~16 B/node where the `Vec<Vec<u32>>` pair cost
//! ~80 B/node (headers plus r-long successor watch lists).

use core::fmt;

/// Maximum packed entries per chunk; a full chunk splits into two halves.
const MAX_CHUNK: usize = 1024;

/// Chunks below this occupancy try to merge with a neighbour after a
/// removal, bounding fragmentation under sustained churn.
const MIN_CHUNK: usize = MAX_CHUNK / 8;

#[inline]
fn pack(key: u32, value: u32) -> u64 {
    (key as u64) << 32 | value as u64
}

/// A sorted multimap of `u32 -> u32` pairs, stored as packed `u64`s in
/// bounded sorted chunks. See the [module docs](self) for the layout and
/// cost model.
#[derive(Clone, Default)]
pub(crate) struct CompactMultiMap {
    chunks: Vec<Vec<u64>>,
    len: usize,
}

impl CompactMultiMap {
    pub(crate) fn new() -> CompactMultiMap {
        CompactMultiMap::default()
    }

    /// Builds a map from arbitrary-order `(key, value)` pairs in one
    /// O(n log n) sort — the bulk-rebuild path. Exact duplicates collapse.
    pub(crate) fn bulk(pairs: impl IntoIterator<Item = (u32, u32)>) -> CompactMultiMap {
        let mut packed: Vec<u64> = pairs.into_iter().map(|(k, v)| pack(k, v)).collect();
        packed.sort_unstable();
        packed.dedup();
        let len = packed.len();
        // Fill chunks to half capacity so early inserts don't split.
        let fill = MAX_CHUNK / 2;
        let mut chunks = Vec::with_capacity(len.div_ceil(fill));
        let mut packed = packed.into_iter().peekable();
        while packed.peek().is_some() {
            chunks.push(packed.by_ref().take(fill).collect());
        }
        CompactMultiMap { chunks, len }
    }

    /// Number of `(key, value)` entries.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Inserts `(key, value)`; returns `false` if the exact pair was
    /// already present.
    pub(crate) fn insert(&mut self, key: u32, value: u32) -> bool {
        let e = pack(key, value);
        if self.chunks.is_empty() {
            self.chunks.push(vec![e]);
            self.len = 1;
            return true;
        }
        // The first chunk whose last entry is >= e holds (or should hold)
        // the pair; past-the-end entries append to the final chunk.
        let ci = self
            .chunks
            .partition_point(|c| *c.last().expect("chunks are non-empty") < e)
            .min(self.chunks.len() - 1);
        let chunk = &mut self.chunks[ci];
        match chunk.binary_search(&e) {
            Ok(_) => false,
            Err(off) => {
                chunk.insert(off, e);
                self.len += 1;
                if chunk.len() >= MAX_CHUNK {
                    let upper = chunk.split_off(MAX_CHUNK / 2);
                    self.chunks[ci].shrink_to_fit();
                    self.chunks.insert(ci + 1, upper);
                }
                true
            }
        }
    }

    /// Removes `(key, value)`; returns `false` if the pair was absent.
    pub(crate) fn remove(&mut self, key: u32, value: u32) -> bool {
        let e = pack(key, value);
        if self.chunks.is_empty() {
            return false;
        }
        let ci = self
            .chunks
            .partition_point(|c| *c.last().expect("chunks are non-empty") < e);
        if ci == self.chunks.len() {
            return false;
        }
        let Ok(off) = self.chunks[ci].binary_search(&e) else {
            return false;
        };
        self.chunks[ci].remove(off);
        self.len -= 1;
        if self.chunks[ci].is_empty() {
            self.chunks.remove(ci);
        } else if self.chunks[ci].len() < MIN_CHUNK {
            let merge_into = |a: usize, b: usize, chunks: &mut Vec<Vec<u64>>| {
                if chunks[a].len() + chunks[b].len() <= MAX_CHUNK / 2 {
                    let tail = chunks.remove(b);
                    chunks[a].extend(tail);
                    true
                } else {
                    false
                }
            };
            if ci + 1 < self.chunks.len() {
                merge_into(ci, ci + 1, &mut self.chunks);
            } else if ci > 0 {
                merge_into(ci - 1, ci, &mut self.chunks);
            }
        }
        true
    }

    /// The values stored under `key`, in ascending order.
    ///
    /// Collects into a `Vec` because every caller mutates the map (or the
    /// structures it indexes) while walking the result.
    pub(crate) fn values(&self, key: u32) -> Vec<u32> {
        let mut out = Vec::new();
        if self.chunks.is_empty() {
            return out;
        }
        let lo = pack(key, 0);
        let mut ci = self
            .chunks
            .partition_point(|c| *c.last().expect("chunks are non-empty") < lo);
        if ci == self.chunks.len() {
            return out;
        }
        let mut off = self.chunks[ci].partition_point(|&e| e < lo);
        loop {
            if off == self.chunks[ci].len() {
                ci += 1;
                off = 0;
                if ci == self.chunks.len() {
                    return out;
                }
            }
            let e = self.chunks[ci][off];
            if e >> 32 != key as u64 {
                return out;
            }
            out.push(e as u32);
            off += 1;
        }
    }

    /// Bytes of entry data plus chunk-list headers. Mirrors the ledger's
    /// historical accounting (entry lengths, not reserve capacity; the
    /// slack is bounded by the chunking constants).
    pub(crate) fn bytes(&self) -> usize {
        use std::mem::size_of;
        self.len * size_of::<u64>() + self.chunks.len() * size_of::<Vec<u64>>()
    }
}

impl fmt::Debug for CompactMultiMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompactMultiMap")
            .field("len", &self.len)
            .field("chunks", &self.chunks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut m = CompactMultiMap::new();
        assert!(m.insert(5, 10));
        assert!(m.insert(5, 7));
        assert!(!m.insert(5, 7), "exact duplicates rejected");
        assert!(m.insert(2, 1));
        assert_eq!(m.len(), 3);
        assert_eq!(m.values(5), vec![7, 10], "values sorted ascending");
        assert_eq!(m.values(2), vec![1]);
        assert_eq!(m.values(99), Vec::<u32>::new());
        assert!(m.remove(5, 10));
        assert!(!m.remove(5, 10));
        assert_eq!(m.values(5), vec![7]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn bulk_matches_incremental_construction() {
        let pairs: Vec<(u32, u32)> = (0..500).map(|i| (i % 37, i)).collect();
        let bulk = CompactMultiMap::bulk(pairs.iter().copied());
        let mut incr = CompactMultiMap::new();
        for &(k, v) in &pairs {
            assert!(incr.insert(k, v));
        }
        assert_eq!(bulk.len(), incr.len());
        for k in 0..40 {
            assert_eq!(bulk.values(k), incr.values(k), "key {k}");
        }
    }

    #[test]
    fn extreme_keys_and_values() {
        let mut m = CompactMultiMap::new();
        m.insert(u32::MAX, u32::MAX);
        m.insert(u32::MAX, 0);
        m.insert(0, u32::MAX);
        m.insert(0, 0);
        assert_eq!(m.values(u32::MAX), vec![0, u32::MAX]);
        assert_eq!(m.values(0), vec![0, u32::MAX]);
    }

    #[test]
    fn random_churn_matches_a_btreeset_model() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut m = CompactMultiMap::new();
        let mut model: BTreeSet<(u32, u32)> = BTreeSet::new();
        for step in 0..60_000 {
            let k = rng.gen_range(0..50u32);
            let v = rng.gen_range(0..200u32);
            if rng.gen_range(0..3u32) == 0 {
                assert_eq!(m.remove(k, v), model.remove(&(k, v)), "step {step}");
            } else {
                assert_eq!(m.insert(k, v), model.insert((k, v)), "step {step}");
            }
        }
        assert_eq!(m.len(), model.len());
        for k in 0..50 {
            let want: Vec<u32> = model
                .range((k, 0)..=(k, u32::MAX))
                .map(|&(_, v)| v)
                .collect();
            assert_eq!(m.values(k), want, "key {k}");
        }
    }

    #[test]
    fn chunks_split_and_merge_under_heavy_churn() {
        let mut m = CompactMultiMap::new();
        let n = 6 * MAX_CHUNK as u32;
        for i in 0..n {
            assert!(m.insert(i.wrapping_mul(0x9E37_79B9), i));
        }
        assert_eq!(m.len(), n as usize);
        assert!(m.chunks.len() > 1, "map must have split");
        for c in &m.chunks {
            assert!(c.windows(2).all(|w| w[0] < w[1]), "chunk sorted");
        }
        for i in 0..n {
            assert!(m.remove(i.wrapping_mul(0x9E37_79B9), i));
        }
        assert_eq!(m.len(), 0);
        assert!(m.chunks.is_empty());
    }

    #[test]
    fn values_walk_across_chunk_boundaries() {
        // One key with more values than a chunk holds: the run scan must
        // continue into following chunks.
        let mut m = CompactMultiMap::new();
        let n = MAX_CHUNK as u32 + MAX_CHUNK as u32 / 2;
        for v in 0..n {
            m.insert(7, v);
        }
        m.insert(6, 1);
        m.insert(8, 1);
        let vals = m.values(7);
        assert_eq!(vals.len(), n as usize);
        assert!(vals.windows(2).all(|w| w[0] + 1 == w[1]));
    }

    #[test]
    fn bytes_track_entries_not_headers_per_key() {
        let mut m = CompactMultiMap::new();
        for i in 0..1000u32 {
            m.insert(i, i);
        }
        let per_entry = m.bytes() as f64 / 1000.0;
        assert!(per_entry < 9.0, "bytes/entry {per_entry}");
        assert!(format!("{m:?}").contains("len: 1000"));
    }
}
