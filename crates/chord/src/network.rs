use core::fmt;

use keyspace::{KeySpace, Point};
use rand::Rng;
use ringidx::RingIndex;
use simnet::Metrics;

use crate::{ChordConfig, NodeState};

/// Stable handle of a node in a [`ChordNetwork`].
///
/// Ids index an arena and are never reused; a crashed or departed node
/// keeps its id (with `is_alive() == false`), so experiment histograms can
/// be keyed by `NodeId` across churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a handle from a raw arena index.
    pub const fn from_index(index: usize) -> NodeId {
        NodeId(index)
    }

    /// The raw arena index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Snapshot of ring-consistency checks, produced by
/// [`ChordNetwork::verify_ring`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingReport {
    /// Live nodes whose first successor matches the ground truth.
    pub correct_successors: usize,
    /// Live nodes whose predecessor matches the ground truth.
    pub correct_predecessors: usize,
    /// Fraction of finger-table entries pointing at the true successor of
    /// their target (over live nodes' populated fingers).
    pub finger_accuracy: f64,
    /// Number of live nodes.
    pub live: usize,
}

impl RingReport {
    /// Whether every live node has the correct successor and predecessor —
    /// the invariant Chord's stabilization converges to.
    pub fn is_converged(&self) -> bool {
        self.correct_successors == self.live && self.correct_predecessors == self.live
    }
}

/// A simulated Chord overlay.
///
/// Nodes live in an arena indexed by [`NodeId`]; all protocol logic
/// (routing in `lookup.rs`, membership and maintenance here) goes through
/// this type so message accounting lands in one [`Metrics`] registry.
///
/// Two construction modes:
///
/// * [`ChordNetwork::bootstrap`] — a fully converged ring (correct
///   successor lists, predecessors and fingers), for static experiments
///   where only lookup costs matter.
/// * [`ChordNetwork::new`] + [`join`](ChordNetwork::join) — protocol-built
///   rings, converged by repeated
///   [`maintenance_round`](ChordNetwork::maintenance_round)s, for churn
///   experiments.
pub struct ChordNetwork {
    space: KeySpace,
    config: ChordConfig,
    nodes: Vec<NodeState>,
    metrics: Metrics,
    finger_bits: usize,
    /// Live ring positions in clockwise order: the incremental ground
    /// truth behind every `truth_*` query (O(log n) instead of an arena
    /// scan), maintained on every join, leave and crash.
    index: RingIndex<NodeId>,
    /// Live ids in ascending arena order, maintained incrementally so
    /// [`live_ids`](ChordNetwork::live_ids) never re-filters dead slots.
    live_set: Vec<NodeId>,
}

impl ChordNetwork {
    /// Creates an empty overlay on `space`.
    pub fn new(space: KeySpace, config: ChordConfig) -> ChordNetwork {
        let finger_bits = (128 - (space.modulus() - 1).leading_zeros()) as usize;
        ChordNetwork {
            space,
            config,
            nodes: Vec::new(),
            metrics: Metrics::new(),
            finger_bits: finger_bits.max(1),
            index: RingIndex::new(space),
            live_set: Vec::new(),
        }
    }

    /// Builds a fully converged ring over the given points (duplicates
    /// removed).
    pub fn bootstrap(space: KeySpace, points: Vec<Point>, config: ChordConfig) -> ChordNetwork {
        let mut net = ChordNetwork::new(space, config);
        net.bulk_join(points);
        net
    }

    /// Mass-joins `points` in O(n log n), deriving all routing state from
    /// the ground-truth index instead of running n sequential gateway
    /// joins (which would cost n routed lookups plus O(n) stabilization
    /// rounds to converge).
    ///
    /// Models an out-of-band coordinated bootstrap: after the call the
    /// whole overlay — pre-existing live nodes included — has the fully
    /// converged successor lists, predecessors and fingers of
    /// [`bootstrap`](ChordNetwork::bootstrap). Input duplicates and points
    /// already occupied by a live node are skipped. Returns the ids of the
    /// newly created nodes, in clockwise point order.
    pub fn bulk_join(&mut self, mut points: Vec<Point>) -> Vec<NodeId> {
        points.sort_unstable();
        points.dedup();
        let mut created = Vec::with_capacity(points.len());
        for p in points {
            if self.index.contains_point(p) {
                continue;
            }
            let id = NodeId(self.nodes.len());
            self.nodes.push(NodeState::new(p, self.finger_bits));
            self.index.insert(p, id);
            self.live_set.push(id);
            created.push(id);
        }
        self.metrics.add("bulk_join.nodes", created.len() as u64);

        // Rebuild every live node's routing state from ring order: the
        // successor list is the next r entries, the predecessor the
        // previous one, fingers are index successor queries.
        let order: Vec<(Point, NodeId)> = self.index.entries().copied().collect();
        let n = order.len();
        if n == 0 {
            return created;
        }
        let r = self.config.successor_list_len();
        for (rank, &(point, id)) in order.iter().enumerate() {
            let succs: Vec<NodeId> = (1..=r.min(n.saturating_sub(1)).max(1))
                .map(|k| order[(rank + k) % n].1)
                .collect();
            *self.node_mut(id).successors_mut() = succs;
            let pred = order[(rank + n - 1) % n].1;
            self.node_mut(id).set_predecessor(Some(pred));
            for bit in 0..self.finger_bits {
                let target = self.finger_target(point, bit);
                let finger = self.index.successor(target).map(|(_, fid)| fid);
                self.node_mut(id).set_finger(bit, finger);
            }
        }
        created
    }

    /// The key space of the overlay.
    pub fn space(&self) -> KeySpace {
        self.space
    }

    /// The configuration in use.
    pub fn config(&self) -> &ChordConfig {
        &self.config
    }

    /// The shared message-accounting registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of finger-table entries per node (`⌈log₂ M⌉`).
    pub fn finger_bits(&self) -> usize {
        self.finger_bits
    }

    /// All node ids ever created (including dead nodes).
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len()).map(NodeId).collect()
    }

    /// Ids of currently live nodes, in arena order.
    ///
    /// O(live) copy of the incrementally maintained live set — dead arena
    /// slots are never re-scanned.
    pub fn live_ids(&self) -> Vec<NodeId> {
        self.live_set.clone()
    }

    /// Borrowed view of the live ids in arena order (allocation-free; the
    /// hot path for uniform live-node sampling under churn).
    pub fn live_slice(&self) -> &[NodeId] {
        &self.live_set
    }

    /// Number of live nodes (O(1)).
    pub fn live_len(&self) -> usize {
        self.live_set.len()
    }

    /// The ground-truth ring index over live nodes, in clockwise
    /// `(point, id)` order.
    pub fn ring_index(&self) -> &RingIndex<NodeId> {
        &self.index
    }

    /// Total arena size (live + dead).
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Borrow a node's state.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn node(&self, id: NodeId) -> &NodeState {
        &self.nodes[id.0]
    }

    pub(crate) fn node_mut(&mut self, id: NodeId) -> &mut NodeState {
        &mut self.nodes[id.0]
    }

    /// The point `2^bit` clockwise of `origin` — finger `bit`'s target.
    pub fn finger_target(&self, origin: Point, bit: usize) -> Point {
        let offset = (1u128 << bit) % self.space.modulus();
        self.space
            .add(origin, keyspace::Distance::new(offset as u64))
    }

    // ---- ground truth (oracle views used by bootstrap, repair and tests)

    /// The true successor point of `x` over live nodes.
    ///
    /// # Panics
    ///
    /// Panics if no node is live.
    pub fn ground_truth_successor(&self, x: Point) -> Point {
        self.node(self.truth_successor_id(x).expect("no live nodes"))
            .point()
    }

    /// The true successor id of `x` over live nodes, or `None` when the
    /// overlay is empty. O(log n) via the ring index.
    pub(crate) fn truth_successor_id(&self, x: Point) -> Option<NodeId> {
        self.index.successor(x).map(|(_, id)| id)
    }

    // ---- interval helpers (Chord conventions: (a, a] and (a, a) denote
    // the full ring, arising when a node is its own successor)

    pub(crate) fn between_open_closed(&self, a: Point, x: Point, b: Point) -> bool {
        if a == b {
            return true;
        }
        let dx = self.space.distance(a, x);
        !dx.is_zero() && dx <= self.space.distance(a, b)
    }

    pub(crate) fn between_open(&self, a: Point, x: Point, b: Point) -> bool {
        if a == b {
            return x != a;
        }
        let dx = self.space.distance(a, x);
        !dx.is_zero() && dx < self.space.distance(a, b)
    }

    // ---- membership

    /// Creates the overlay's first node.
    ///
    /// # Panics
    ///
    /// Panics if the overlay already has live nodes (join via a gateway
    /// instead).
    pub fn create(&mut self, point: Point) -> NodeId {
        assert_eq!(self.live_len(), 0, "use join() on a non-empty overlay");
        let id = NodeId(self.nodes.len());
        let mut node = NodeState::new(point, self.finger_bits);
        // A lone node is its own successor (Chord's base case).
        node.successors_mut().push(id);
        node.set_predecessor(Some(id));
        self.nodes.push(node);
        self.admit(point, id);
        id
    }

    /// Registers a freshly created live node with the ground-truth index
    /// and the live set. New ids are strictly increasing, so pushing keeps
    /// the live set in arena order.
    fn admit(&mut self, point: Point, id: NodeId) {
        self.index.insert(point, id);
        self.live_set.push(id);
    }

    /// Unregisters a dying node from the ground-truth index and live set.
    fn retire(&mut self, id: NodeId) {
        let point = self.node(id).point();
        self.index.remove(point, id);
        if let Ok(at) = self.live_set.binary_search(&id) {
            self.live_set.remove(at);
        }
    }

    /// Joins a new node at `point` through live gateway `via`, following
    /// the Chord join protocol: route to the point's successor, adopt it,
    /// and copy its successor list. The ring converges fully after
    /// subsequent stabilization rounds.
    ///
    /// # Errors
    ///
    /// Returns the routing error if the successor lookup fails.
    pub fn join<R: Rng + ?Sized>(
        &mut self,
        point: Point,
        via: NodeId,
        rng: &mut R,
    ) -> Result<NodeId, crate::LookupError> {
        let found = self.find_successor(via, point, rng)?;
        self.metrics.add("join.messages", found.cost.messages + 1);
        let id = NodeId(self.nodes.len());
        let mut node = NodeState::new(point, self.finger_bits);
        // Adopt the successor and splice in its list (one message,
        // included in the accounting above).
        let mut list = vec![found.node];
        list.extend_from_slice(self.node(found.node).successors());
        list.truncate(self.config.successor_list_len());
        *node.successors_mut() = list;
        self.nodes.push(node);
        self.admit(point, id);
        Ok(id)
    }

    /// Gracefully removes a node: its predecessor and successor are
    /// notified so the ring heals immediately (the paper's `next` pointer
    /// stays correct without waiting for stabilization).
    ///
    /// # Panics
    ///
    /// Panics if the node is already dead.
    pub fn leave(&mut self, id: NodeId) {
        assert!(self.node(id).is_alive(), "{id} is already dead");
        let succ = self.first_live_successor(id);
        let pred = self
            .node(id)
            .predecessor()
            .filter(|&p| p != id && self.node(p).is_alive());
        self.metrics.add("leave.messages", 2);
        // Departing nodes hand their stored data to their successor
        // before breaking links (SIGCOMM §4's key transfer).
        if let Some(succ) = succ.filter(|&s| s != id) {
            self.hand_off_store(id, succ);
        }
        if let (Some(succ), Some(pred)) = (succ, pred) {
            // Predecessor splices the departing node out of its list.
            let r = self.config.successor_list_len();
            let pred_state = self.node_mut(pred);
            let list = pred_state.successors_mut();
            list.retain(|&s| s != id);
            if list.is_empty() {
                list.push(succ);
            }
            list.truncate(r);
            // Successor adopts the departing node's predecessor.
            let succ_state = self.node_mut(succ);
            if succ_state.predecessor() == Some(id) {
                succ_state.set_predecessor(Some(pred));
            }
        }
        self.retire(id);
        let node = self.node_mut(id);
        node.set_alive(false);
        node.clear_routing();
    }

    /// Crashes a node silently: no notifications, neighbours discover the
    /// failure through probes and stabilization.
    ///
    /// # Panics
    ///
    /// Panics if the node is already dead.
    pub fn crash(&mut self, id: NodeId) {
        assert!(self.node(id).is_alive(), "{id} is already dead");
        self.retire(id);
        let node = self.node_mut(id);
        node.set_alive(false);
        node.clear_routing();
        // A crash loses the node's data copies; replicas must recover it.
        node.store_mut().clear();
    }

    // ---- maintenance (stabilize / notify / fix fingers)

    /// The first live entry of `id`'s successor list.
    pub(crate) fn first_live_successor(&self, id: NodeId) -> Option<NodeId> {
        self.node(id)
            .successors()
            .iter()
            .copied()
            .find(|&s| self.node(s).is_alive() && s != id)
            .or_else(|| {
                // A node may legitimately be its own successor (singleton).
                self.node(id)
                    .successors()
                    .iter()
                    .copied()
                    .find(|&s| self.node(s).is_alive())
            })
    }

    /// One stabilization round at `id` (SIGCOMM Fig. 7): verify the
    /// immediate successor, adopt its predecessor if closer, refresh the
    /// successor list from it, and notify it.
    ///
    /// Dead nodes and empty rings are no-ops.
    pub fn stabilize(&mut self, id: NodeId) {
        if !self.node(id).is_alive() {
            return;
        }
        // Drop dead entries from the successor list (each liveness probe
        // costs a message).
        let probes = self.node(id).successors().len() as u64;
        self.metrics.add("stabilize.messages", probes.max(1));
        let live: Vec<NodeId> = self
            .node(id)
            .successors()
            .iter()
            .copied()
            .filter(|&s| self.node(s).is_alive())
            .collect();
        *self.node_mut(id).successors_mut() = live;

        let Some(succ) = self.first_live_successor(id) else {
            // Lost every successor: fall back to self (singleton behaviour)
            // — under realistic churn the successor list makes this
            // vanishingly rare (needs r simultaneous failures).
            let me = self.node(id).point();
            let sid = self.truth_fallback(id, me);
            *self.node_mut(id).successors_mut() = vec![sid];
            return;
        };

        // succ.predecessor may be a better (closer) successor for us.
        let my_point = self.node(id).point();
        let succ_point = self.node(succ).point();
        let mut adopted = succ;
        if let Some(cand) = self.node(succ).predecessor() {
            if cand != id
                && self.node(cand).is_alive()
                && self.between_open(my_point, self.node(cand).point(), succ_point)
            {
                adopted = cand;
            }
        }

        // Refresh our list as [adopted] + adopted's list.
        let mut list = vec![adopted];
        list.extend(
            self.node(adopted)
                .successors()
                .iter()
                .copied()
                .filter(|&s| s != id && self.node(s).is_alive()),
        );
        list.dedup();
        list.truncate(self.config.successor_list_len());
        *self.node_mut(id).successors_mut() = list;

        self.notify(adopted, id);
    }

    /// `notify(candidate)` at node `at` (SIGCOMM Fig. 7): adopt the
    /// candidate as predecessor if it is closer than the current one.
    pub fn notify(&mut self, at: NodeId, candidate: NodeId) {
        if !self.node(at).is_alive() || !self.node(candidate).is_alive() {
            return;
        }
        self.metrics.incr("notify.messages");
        let at_point = self.node(at).point();
        let cand_point = self.node(candidate).point();
        let adopt = match self.node(at).predecessor() {
            None => true,
            Some(p) if !self.node(p).is_alive() => true,
            Some(p) => {
                let p_point = self.node(p).point();
                p == at || self.between_open(p_point, cand_point, at_point)
            }
        };
        if adopt && candidate != at {
            self.node_mut(at).set_predecessor(Some(candidate));
        }
    }

    /// Refreshes finger `bit` of node `id` by routing to its target.
    /// Failed lookups clear the finger (it will be retried next round).
    pub fn fix_finger<R: Rng + ?Sized>(&mut self, id: NodeId, bit: usize, rng: &mut R) {
        if !self.node(id).is_alive() {
            return;
        }
        let target = self.finger_target(self.node(id).point(), bit);
        let entry = match self.find_successor(id, target, rng) {
            Ok(found) => {
                self.metrics.add("fix_finger.messages", found.cost.messages);
                Some(found.node)
            }
            Err(_) => None,
        };
        self.node_mut(id).set_finger(bit, entry);
    }

    /// Clears the predecessor pointer if it stopped responding.
    pub fn check_predecessor(&mut self, id: NodeId) {
        if !self.node(id).is_alive() {
            return;
        }
        self.metrics.incr("check_predecessor.messages");
        if let Some(p) = self.node(id).predecessor() {
            if !self.node(p).is_alive() {
                self.node_mut(id).set_predecessor(None);
            }
        }
    }

    /// One full maintenance round: every live node checks its predecessor,
    /// stabilizes, and fixes finger `round % finger_bits`.
    ///
    /// Repeated rounds converge a protocol-built or churned ring back to
    /// the correct successor/predecessor structure (asserted by
    /// [`verify_ring`](ChordNetwork::verify_ring) in tests).
    pub fn maintenance_round<R: Rng + ?Sized>(&mut self, round: usize, rng: &mut R) {
        let ids = self.live_ids();
        let bit = round % self.finger_bits;
        for id in ids {
            self.check_predecessor(id);
            self.stabilize(id);
            self.fix_finger(id, bit, rng);
        }
    }

    /// Runs enough maintenance rounds to refresh every finger once, then
    /// returns the consistency report.
    pub fn converge<R: Rng + ?Sized>(&mut self, rng: &mut R) -> RingReport {
        for round in 0..self.finger_bits {
            self.maintenance_round(round, rng);
        }
        self.verify_ring()
    }

    /// Checks every live node's routing state against the ground truth.
    pub fn verify_ring(&self) -> RingReport {
        let live = self.live_ids();
        let mut correct_successors = 0;
        let mut correct_predecessors = 0;
        let mut fingers_total = 0usize;
        let mut fingers_right = 0usize;
        for &id in &live {
            let me = self.node(id).point();
            // True successor: closest live node strictly clockwise.
            let truth_succ = self.truth_strict_successor(id);
            if self.first_live_successor(id) == truth_succ {
                correct_successors += 1;
            }
            let truth_pred = self.truth_strict_predecessor(id);
            let pred = self
                .node(id)
                .predecessor()
                .filter(|&p| self.node(p).is_alive());
            if pred == truth_pred {
                correct_predecessors += 1;
            }
            for bit in 0..self.finger_bits {
                if let Some(f) = self.node(id).fingers()[bit] {
                    fingers_total += 1;
                    let target = self.finger_target(me, bit);
                    if Some(f) == self.truth_successor_id(target) {
                        fingers_right += 1;
                    }
                }
            }
        }
        RingReport {
            correct_successors,
            correct_predecessors,
            finger_accuracy: if fingers_total == 0 {
                1.0
            } else {
                fingers_right as f64 / fingers_total as f64
            },
            live: live.len(),
        }
    }

    fn truth_strict_successor(&self, id: NodeId) -> Option<NodeId> {
        let me = self.node(id).point();
        // A singleton ring node is its own successor.
        self.index
            .strict_successor(me, id)
            .map(|(_, nid)| nid)
            .or(Some(id))
    }

    fn truth_strict_predecessor(&self, id: NodeId) -> Option<NodeId> {
        let me = self.node(id).point();
        self.index
            .strict_predecessor(me, id)
            .map(|(_, nid)| nid)
            .or_else(|| if self.live_len() == 1 { Some(id) } else { None })
    }

    fn truth_fallback(&self, id: NodeId, _me: Point) -> NodeId {
        // Last-resort repair when every successor died: in deployment the
        // node would re-join through an out-of-band bootstrap server; we
        // model that server with the ground truth.
        self.truth_strict_successor(id).unwrap_or(id)
    }
}

impl fmt::Debug for ChordNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChordNetwork")
            .field("space", &self.space)
            .field("live", &self.live_len())
            .field("arena", &self.nodes.len())
            .field("finger_bits", &self.finger_bits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    fn bootstrap(n: usize, seed: u64) -> ChordNetwork {
        let space = KeySpace::full();
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        ChordNetwork::bootstrap(
            space,
            space.random_points(&mut r, n),
            ChordConfig::default(),
        )
    }

    #[test]
    fn bootstrap_ring_is_converged() {
        let net = bootstrap(64, 1);
        let report = net.verify_ring();
        assert!(report.is_converged(), "{report:?}");
        assert_eq!(report.live, 64);
        assert!((report.finger_accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_successor_lists_follow_ring_order() {
        let net = bootstrap(16, 2);
        for id in net.live_ids() {
            let succ = net.first_live_successor(id).unwrap();
            let truth = net.ground_truth_successor(
                net.space()
                    .add(net.node(id).point(), keyspace::Distance::new(1)),
            );
            assert_eq!(net.node(succ).point(), truth);
            assert_eq!(net.node(id).successors().len(), 8);
        }
    }

    #[test]
    fn bulk_join_from_empty_matches_bootstrap() {
        let space = KeySpace::full();
        let mut r = rng();
        let points = space.random_points(&mut r, 128);
        let boot = ChordNetwork::bootstrap(space, points.clone(), ChordConfig::default());
        let mut bulk = ChordNetwork::new(space, ChordConfig::default());
        let created = bulk.bulk_join(points);
        assert_eq!(created.len(), 128);
        assert_eq!(bulk.live_len(), boot.live_len());
        for id in boot.live_ids() {
            assert_eq!(bulk.node(id).point(), boot.node(id).point());
            assert_eq!(bulk.node(id).successors(), boot.node(id).successors());
            assert_eq!(bulk.node(id).predecessor(), boot.node(id).predecessor());
            assert_eq!(bulk.node(id).fingers(), boot.node(id).fingers());
        }
        assert!(bulk.verify_ring().is_converged());
    }

    #[test]
    fn bulk_join_into_existing_ring_is_converged() {
        let mut net = bootstrap(64, 12);
        let mut r = rng();
        let extra = net.space().random_points(&mut r, 192);
        let created = net.bulk_join(extra);
        assert_eq!(created.len(), 192);
        assert_eq!(net.live_len(), 256);
        let report = net.verify_ring();
        assert!(report.is_converged(), "{report:?}");
        assert!((report.finger_accuracy - 1.0).abs() < 1e-12);
        // Routed lookups agree with the ground truth immediately.
        let start = net.live_ids()[0];
        for _ in 0..50 {
            let target = net.space().random_point(&mut r);
            let hit = net.find_successor(start, target, &mut r).unwrap();
            assert_eq!(hit.point, net.ground_truth_successor(target));
        }
    }

    #[test]
    fn bulk_join_skips_duplicates_and_occupied_points() {
        let mut net = bootstrap(8, 13);
        let taken = net.node(net.live_ids()[0]).point();
        let created = net.bulk_join(vec![taken, Point::new(1), Point::new(1)]);
        assert_eq!(created.len(), 1);
        assert_eq!(net.live_len(), 9);
    }

    #[test]
    fn live_set_tracks_membership_incrementally() {
        let mut net = bootstrap(32, 14);
        assert_eq!(net.live_slice(), &net.live_ids()[..]);
        let victim = net.live_ids()[7];
        net.crash(victim);
        assert!(!net.live_slice().contains(&victim));
        assert_eq!(net.live_len(), 31);
        assert_eq!(net.ring_index().len(), 31);
        let leaver = net.live_ids()[3];
        net.leave(leaver);
        assert_eq!(net.live_len(), 30);
        assert!(net.live_slice().windows(2).all(|w| w[0] < w[1]));
        // The index and live set agree on membership.
        let mut from_index: Vec<NodeId> = net.ring_index().entries().map(|&(_, id)| id).collect();
        from_index.sort_unstable();
        assert_eq!(from_index, net.live_ids());
    }

    #[test]
    fn create_then_join_then_converge() {
        let space = KeySpace::full();
        let mut net = ChordNetwork::new(space, ChordConfig::default());
        let mut r = rng();
        let first = net.create(space.random_point(&mut r));
        for _ in 0..31 {
            let p = space.random_point(&mut r);
            net.join(p, first, &mut r).unwrap();
        }
        assert_eq!(net.live_len(), 32);
        // Joins leave the ring incoherent; maintenance converges it.
        let mut report = net.verify_ring();
        for _ in 0..80 {
            if report.is_converged() {
                break;
            }
            net.maintenance_round(0, &mut r);
            report = net.verify_ring();
        }
        assert!(report.is_converged(), "never converged: {report:?}");
        // Fingers converge once every bit has been refreshed.
        let report = net.converge(&mut r);
        assert!(report.finger_accuracy > 0.99, "{report:?}");
    }

    #[test]
    fn graceful_leave_heals_immediately() {
        let mut net = bootstrap(32, 3);
        let victim = net.live_ids()[5];
        let pred = net.node(victim).predecessor().unwrap();
        net.leave(victim);
        assert!(!net.node(victim).is_alive());
        assert_eq!(net.live_len(), 31);
        // The predecessor's successor pointer skips the departed node.
        let succ_of_pred = net.first_live_successor(pred).unwrap();
        assert_ne!(succ_of_pred, victim);
        let report = net.verify_ring();
        assert_eq!(report.correct_successors, 31, "{report:?}");
    }

    #[test]
    fn crash_is_repaired_by_stabilization() {
        let mut net = bootstrap(32, 4);
        let mut r = rng();
        let victim = net.live_ids()[10];
        net.crash(victim);
        // Immediately after the crash the predecessor's pointer is stale...
        let report_before = net.verify_ring();
        assert!(report_before.correct_successors <= 31);
        // ...maintenance repairs it.
        let report_after = net.converge(&mut r);
        assert!(report_after.is_converged(), "{report_after:?}");
    }

    #[test]
    fn mass_crash_survivable_with_successor_lists() {
        let mut net = bootstrap(64, 5);
        let mut r = rng();
        // Crash 25% of nodes at once (fewer than r = 8 consecutive w.h.p.).
        let victims: Vec<NodeId> = net.live_ids().into_iter().step_by(4).collect();
        for v in victims {
            net.crash(v);
        }
        assert_eq!(net.live_len(), 48);
        for _ in 0..4 {
            net.converge(&mut r);
        }
        let report = net.verify_ring();
        assert!(report.is_converged(), "{report:?}");
    }

    #[test]
    fn singleton_is_its_own_ring() {
        let space = KeySpace::full();
        let mut net = ChordNetwork::new(space, ChordConfig::default());
        let id = net.create(Point::new(42));
        assert_eq!(net.first_live_successor(id), Some(id));
        let report = net.verify_ring();
        assert!(report.is_converged(), "{report:?}");
    }

    #[test]
    #[should_panic(expected = "non-empty overlay")]
    fn create_twice_panics() {
        let space = KeySpace::full();
        let mut net = ChordNetwork::new(space, ChordConfig::default());
        net.create(Point::new(1));
        net.create(Point::new(2));
    }

    #[test]
    #[should_panic(expected = "already dead")]
    fn double_crash_panics() {
        let mut net = bootstrap(4, 6);
        let id = net.live_ids()[0];
        net.crash(id);
        net.crash(id);
    }

    #[test]
    fn interval_helpers_follow_chord_conventions() {
        let net = bootstrap(4, 7);
        let (a, b, x) = (Point::new(10), Point::new(20), Point::new(15));
        assert!(net.between_open(a, x, b));
        assert!(net.between_open_closed(a, Point::new(20), b));
        assert!(!net.between_open(a, Point::new(20), b));
        assert!(!net.between_open_closed(a, Point::new(10), b));
        // Degenerate (a, a] is the full ring; (a, a) excludes only a.
        assert!(net.between_open_closed(a, x, a));
        assert!(net.between_open(a, x, a));
        assert!(!net.between_open(a, a, a));
    }

    #[test]
    fn metrics_account_messages() {
        let mut net = bootstrap(16, 8);
        let mut r = rng();
        net.maintenance_round(0, &mut r);
        assert!(net.metrics().get("stabilize.messages") > 0);
        assert!(net.metrics().get("notify.messages") > 0);
        assert!(net.metrics().get("check_predecessor.messages") > 0);
    }

    #[test]
    fn node_ids_and_display() {
        let net = bootstrap(3, 9);
        assert_eq!(net.node_ids().len(), 3);
        assert_eq!(NodeId::from_index(2).to_string(), "n2");
        assert_eq!(NodeId::from_index(2).index(), 2);
        assert!(format!("{net:?}").contains("live"));
    }
}
