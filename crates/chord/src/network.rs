use core::fmt;
use std::cell::RefCell;

use keyspace::{Distance, KeySpace, Point};
use rand::Rng;
use ringidx::RingIndex;
use simnet::Metrics;
use telemetry::{CounterId, HistogramId, SpanId};

use crate::arena::{NodeRef, RoutingArena};
use crate::maintenance::{DirtySet, MaintenanceBudget, MaintenanceWork};
use crate::multimap::CompactMultiMap;
use crate::score::{AdaptiveConfig, PeerScores, RetryPolicy};
use crate::shadow::Shadow;
use crate::ChordConfig;

/// Sentinel for "no node" in the ledger's flat `u32` columns (mirrors the
/// arena's encoding).
const NONE32: u32 = u32::MAX;

/// Stable handle of a node in a [`ChordNetwork`].
///
/// Ids index an arena and are never reused; a crashed or departed node
/// keeps its id (with `is_alive() == false`), so experiment histograms can
/// be keyed by `NodeId` across churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a handle from a raw arena index.
    pub const fn from_index(index: usize) -> NodeId {
        NodeId(index)
    }

    /// The raw arena index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Snapshot of ring-consistency checks, produced by
/// [`ChordNetwork::verify_ring`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingReport {
    /// Live nodes whose first successor matches the ground truth.
    pub correct_successors: usize,
    /// Live nodes whose predecessor matches the ground truth.
    pub correct_predecessors: usize,
    /// Fraction of finger-table entries pointing at the true successor of
    /// their target (over live nodes' populated fingers).
    pub finger_accuracy: f64,
    /// Number of live nodes.
    pub live: usize,
}

impl RingReport {
    /// Whether every live node has the correct successor and predecessor —
    /// the invariant Chord's stabilization converges to.
    pub fn is_converged(&self) -> bool {
        self.correct_successors == self.live && self.correct_predecessors == self.live
    }
}

/// Incrementally maintained [`RingReport`] state.
///
/// Every routing write and membership event flows through a
/// `ChordNetwork` funnel that re-evaluates exactly the per-node
/// correctness predicates the event could have changed, keeping the
/// report counters current as deltas. [`ChordNetwork::verify_ring`] is
/// then an O(1) counter read instead of the seed's O(n log n) full scan,
/// which made per-round convergence polling the scale bottleneck.
///
/// Reverse dependency indexes make the delta sets exact:
///
/// * `dsucc_watch[y]` — nodes whose *derived first-live successor* is `y`
///   (the one quantity on the left side of the successor-correctness
///   predicate that `y`'s death can change; nodes merely holding `y`
///   deeper in their successor list keep the same derived successor, so
///   they need no re-check — the insight that shrinks this index from
///   `r` entries per node to one);
/// * `pred_watch[y]` — nodes whose predecessor pointer is `y`.
///
/// Both relations hold at most one entry per node and live in
/// [`CompactMultiMap`]s (flat sorted `u32`-keyed runs, the same
/// chunked-column style as the arena's finger store) instead of the
/// earlier `Vec<Vec<u32>>` pair, cutting the ledger from ~100 B/node to
/// under 40 (gated in `BENCH_chord_scale.json`).
///
/// Membership events additionally re-check the dead/new node's ring
/// neighbours (whose ground truth shifted) and, per finger bit, the
/// nodes whose finger *target* falls in the ownership arc that changed —
/// an O(log n + hits) range query per bit.
struct Ledger {
    /// Per-node counted contributions: bit 0 = successor correct,
    /// bit 1 = predecessor correct.
    flags: Vec<u8>,
    /// Per-node mask of finger bits counted as populated.
    fpop: Vec<u64>,
    /// Per-node mask of finger bits counted as correct.
    fok: Vec<u64>,
    succ_ok: usize,
    pred_ok: usize,
    fingers_total: usize,
    fingers_right: usize,
    /// Per-node derived first-live successor (`NONE32` while dead or
    /// unset) — the forward side of `dsucc_watch`.
    dsucc: Vec<u32>,
    /// `y -> nodes whose derived first-live successor is y`.
    dsucc_watch: CompactMultiMap,
    /// `y -> nodes whose predecessor pointer is y`.
    pred_watch: CompactMultiMap,
}

impl Ledger {
    fn new() -> Ledger {
        Ledger {
            flags: Vec::new(),
            fpop: Vec::new(),
            fok: Vec::new(),
            succ_ok: 0,
            pred_ok: 0,
            fingers_total: 0,
            fingers_right: 0,
            dsucc: Vec::new(),
            dsucc_watch: CompactMultiMap::new(),
            pred_watch: CompactMultiMap::new(),
        }
    }

    fn push(&mut self) {
        self.flags.push(0);
        self.fpop.push(0);
        self.fok.push(0);
        self.dsucc.push(NONE32);
    }

    /// Bytes held by the verification ledger (flags, finger masks, the
    /// derived-successor column and both reverse multimaps) — reported
    /// separately from [`ChordNetwork::routing_bytes`] because it
    /// accelerates *verification*, not routing, and the seed
    /// representation had no counterpart.
    fn bytes(&self) -> usize {
        use std::mem::size_of;
        self.flags.len()
            + (self.fpop.len() + self.fok.len()) * size_of::<u64>()
            + self.dsucc.len() * size_of::<u32>()
            + self.dsucc_watch.bytes()
            + self.pred_watch.bytes()
    }
}

/// A simulated Chord overlay.
///
/// All protocol state lives in a struct-of-arrays
/// [`RoutingArena`](crate::arena) indexed by [`NodeId`] — a flat alive
/// bitset, flat predecessor column, one shared successor-list buffer and
/// a run-length-compressed shared finger store (~130 routing bytes per
/// node instead of the seed's ~1.2 KB of per-node heap blocks; see
/// [`routing_bytes`](ChordNetwork::routing_bytes)). Protocol logic
/// (routing in `lookup.rs`, membership and maintenance here) reads that
/// state through cheap [`NodeRef`] views and writes it through funnels
/// that also keep an incremental [`RingReport`] ledger current, so
/// [`verify_ring`](ChordNetwork::verify_ring) is an O(1) read.
///
/// Two construction modes:
///
/// * [`ChordNetwork::bootstrap`] — a fully converged ring (correct
///   successor lists, predecessors and fingers), for static experiments
///   where only lookup costs matter.
/// * [`ChordNetwork::new`] + [`join`](ChordNetwork::join) — protocol-built
///   rings, converged by repeated
///   [`maintenance_round`](ChordNetwork::maintenance_round)s, for churn
///   experiments.
pub struct ChordNetwork {
    space: KeySpace,
    config: ChordConfig,
    arena: RoutingArena,
    metrics: Metrics,
    counters: ChordCounters,
    finger_bits: usize,
    /// Live ring positions in clockwise order: the incremental ground
    /// truth behind every `truth_*` query (O(log n) instead of an arena
    /// scan), maintained on every join, leave and crash.
    index: RingIndex<NodeId>,
    /// Live ids in ascending arena order, maintained incrementally so
    /// [`live_ids`](ChordNetwork::live_ids) never re-filters dead slots.
    live_set: Vec<NodeId>,
    ledger: Ledger,
    /// Known-stale routing state, fed by the same funnels as the ledger:
    /// what [`batched_maintenance_round`](ChordNetwork::batched_maintenance_round)
    /// spends its budget on.
    dirty: DirtySet,
    /// Optional mirror of the pre-arena per-node representation, for
    /// equivalence tests and memory benchmarks. See `crate::shadow`.
    shadow: Option<Box<Shadow>>,
    /// Adaptive per-peer responsiveness scores (see `crate::score`),
    /// `None` until [`enable_adaptive_routing`]. Behind a `RefCell`
    /// because lookups take `&self` yet must fold probe outcomes in;
    /// borrows never escape a single routing step.
    ///
    /// [`enable_adaptive_routing`]: ChordNetwork::enable_adaptive_routing
    scores: Option<RefCell<PeerScores>>,
    /// Retry/fallback policy applied by policy-path lookups, `None`
    /// until [`enable_retry_policy`](ChordNetwork::enable_retry_policy).
    retry: Option<RetryPolicy>,
}

/// Pre-registered telemetry handles for every chord hot-path counter plus
/// the lookup hop-count histogram, interned once per network at
/// construction — hot-path events are single lock-free atomic adds, never
/// per-event `String` allocation or registry lookups (the legacy
/// [`Metrics`] string API remains as a compat shim for cold paths).
#[derive(Debug, Clone, Copy)]
pub struct ChordCounters {
    /// `bulk_join.nodes` — nodes created by [`ChordNetwork::bulk_join`].
    pub bulk_join_nodes: CounterId,
    /// `join.messages` — protocol-join routing plus handoff messages.
    pub join_messages: CounterId,
    /// `leave.messages` — graceful-departure notifications.
    pub leave_messages: CounterId,
    /// `stabilize.messages` — liveness probes per stabilize round.
    pub stabilize_messages: CounterId,
    /// `notify.messages` — predecessor-candidate notifications.
    pub notify_messages: CounterId,
    /// `fix_finger.messages` — routed finger-refresh lookups.
    pub fix_finger_messages: CounterId,
    /// `check_predecessor.messages` — predecessor liveness probes.
    pub check_predecessor_messages: CounterId,
    /// `lookup.hops` — total forwarding hops across all lookups.
    pub lookup_hops: CounterId,
    /// `lookup.dead_probe` — probes that hit a dead node.
    pub lookup_dead_probe: CounterId,
    /// `lookup.byzantine_claim` — lookups captured by a lying hop.
    pub lookup_byzantine_claim: CounterId,
    /// `lookup.forged_position` — owners self-reporting a forged point.
    pub lookup_forged_position: CounterId,
    /// `storage.put` — store writes.
    pub storage_put: CounterId,
    /// `storage.get` — store reads.
    pub storage_get: CounterId,
    /// `storage.migrate` — keys migrated on ownership change.
    pub storage_migrate: CounterId,
    /// `storage.replicate` — replica repairs.
    pub storage_replicate: CounterId,
    /// `lookup.retries` — routed re-attempts under a [`RetryPolicy`].
    pub lookup_retries: CounterId,
    /// `lookup.fallback_depth` — cumulative degradation depth (1 = answer
    /// after retry, 2 = successor-walk tier, 3 = verified-quorum tier).
    pub lookup_fallback_depth: CounterId,
    /// `domain.events` — correlated domain crash/heal events applied.
    pub domain_events: CounterId,
    /// `engine.timeouts` — async-engine attempt deadlines that fired.
    pub engine_timeouts: CounterId,
    /// `engine.completions` — async-engine lookups completed (either way).
    pub engine_completions: CounterId,
    /// Per-lookup hop-count distribution (p50/p99/p999 in e16 records).
    pub hop_hist: HistogramId,
    /// Submit-to-completion age of async-engine lookups in simulated
    /// ticks — the latency tail (`engine.inflight_age` p999) the
    /// watchdog's in-flight-age SLO gates.
    pub engine_age_hist: HistogramId,
    /// `lookup;finger_walk` span — routed-walk latency net of demoted
    /// skips (ticks).
    pub span_finger_walk: SpanId,
    /// `lookup;demoted_skip` span — latency of probes burnt on
    /// score-demoted candidates that turned out dead (ticks).
    pub span_demoted_skip: SpanId,
    /// `lookup;retry_backoff` span — deterministic backoff waits between
    /// routed re-attempts (ticks).
    pub span_retry_backoff: SpanId,
    /// `lookup;successor_walk` span — walk-tier fallback latency (ticks).
    pub span_successor_walk: SpanId,
    /// `lookup;verified_quorum` span — quorum-tier fallback latency
    /// (ticks).
    pub span_verified_quorum: SpanId,
    /// `maintenance;repair` span — batched-round repair actions
    /// (sp + finger refreshes; unit is repairs, not ticks).
    pub span_maintenance_repair: SpanId,
}

impl ChordCounters {
    fn register(recorder: &telemetry::Recorder) -> ChordCounters {
        ChordCounters {
            bulk_join_nodes: recorder.counter("bulk_join.nodes"),
            join_messages: recorder.counter("join.messages"),
            leave_messages: recorder.counter("leave.messages"),
            stabilize_messages: recorder.counter("stabilize.messages"),
            notify_messages: recorder.counter("notify.messages"),
            fix_finger_messages: recorder.counter("fix_finger.messages"),
            check_predecessor_messages: recorder.counter("check_predecessor.messages"),
            lookup_hops: recorder.counter("lookup.hops"),
            lookup_dead_probe: recorder.counter("lookup.dead_probe"),
            lookup_byzantine_claim: recorder.counter("lookup.byzantine_claim"),
            lookup_forged_position: recorder.counter("lookup.forged_position"),
            storage_put: recorder.counter("storage.put"),
            storage_get: recorder.counter("storage.get"),
            storage_migrate: recorder.counter("storage.migrate"),
            storage_replicate: recorder.counter("storage.replicate"),
            lookup_retries: recorder.counter("lookup.retries"),
            lookup_fallback_depth: recorder.counter("lookup.fallback_depth"),
            domain_events: recorder.counter("domain.events"),
            engine_timeouts: recorder.counter("engine.timeouts"),
            engine_completions: recorder.counter("engine.completions"),
            hop_hist: recorder.histogram("lookup.hops"),
            engine_age_hist: recorder.histogram("engine.inflight_age"),
            span_finger_walk: recorder.profiler().span("lookup;finger_walk"),
            span_demoted_skip: recorder.profiler().span("lookup;demoted_skip"),
            span_retry_backoff: recorder.profiler().span("lookup;retry_backoff"),
            span_successor_walk: recorder.profiler().span("lookup;successor_walk"),
            span_verified_quorum: recorder.profiler().span("lookup;verified_quorum"),
            span_maintenance_repair: recorder.profiler().span("maintenance;repair"),
        }
    }
}

impl ChordNetwork {
    /// Creates an empty overlay on `space`.
    pub fn new(space: KeySpace, config: ChordConfig) -> ChordNetwork {
        let finger_bits = (128 - (space.modulus() - 1).leading_zeros()) as usize;
        let finger_bits = finger_bits.max(1);
        let metrics = Metrics::new();
        let counters = ChordCounters::register(metrics.recorder());
        ChordNetwork {
            space,
            config,
            arena: RoutingArena::new(finger_bits, config.successor_list_len()),
            metrics,
            counters,
            finger_bits,
            index: RingIndex::new(space),
            live_set: Vec::new(),
            ledger: Ledger::new(),
            dirty: DirtySet::new(),
            shadow: None,
            scores: None,
            retry: None,
        }
    }

    /// Builds a fully converged ring over the given points (duplicates
    /// removed).
    pub fn bootstrap(space: KeySpace, points: Vec<Point>, config: ChordConfig) -> ChordNetwork {
        let mut net = ChordNetwork::new(space, config);
        net.bulk_join(points);
        net
    }

    /// Mass-joins `points` in O(n log n), deriving all routing state from
    /// the ground-truth index instead of running n sequential gateway
    /// joins (which would cost n routed lookups plus O(n) stabilization
    /// rounds to converge).
    ///
    /// Models an out-of-band coordinated bootstrap: after the call the
    /// whole overlay — pre-existing live nodes included — has the fully
    /// converged successor lists, predecessors and fingers of
    /// [`bootstrap`](ChordNetwork::bootstrap). Input duplicates and points
    /// already occupied by a live node are skipped. Returns the ids of the
    /// newly created nodes, in clockwise point order.
    ///
    /// Fingers are built per node by walking the ~log n ownership runs of
    /// the table directly (each finger bit's target either stays inside
    /// the current successor's arc or jumps to a new one at a predictable
    /// bit), so the whole rebuild does O(log n) binary searches per node
    /// rather than one per finger bit — the difference between seconds
    /// and minutes at n = 10⁶.
    pub fn bulk_join(&mut self, points: Vec<Point>) -> Vec<NodeId> {
        let scope = self.metrics.recorder().begin_scope();
        let created = self.bulk_join_inner(points);
        self.metrics.recorder().end_scope("bulk_join", scope);
        created
    }

    fn bulk_join_inner(&mut self, mut points: Vec<Point>) -> Vec<NodeId> {
        points.sort_unstable();
        points.dedup();
        let mut created = Vec::with_capacity(points.len());
        if self.index.is_empty() {
            // From-empty fast path: one O(n log n) bulk index build
            // instead of n incremental inserts.
            let mut entries = Vec::with_capacity(points.len());
            for &p in &points {
                let id = self.push_node(p);
                self.live_set.push(id);
                entries.push((p, id));
                created.push(id);
            }
            self.index = RingIndex::bulk(self.space, entries);
        } else {
            for p in points {
                if self.index.contains_point(p) {
                    continue;
                }
                let id = self.push_node(p);
                self.index.insert(p, id);
                self.live_set.push(id);
                created.push(id);
            }
        }
        self.metrics
            .recorder()
            .add(self.counters.bulk_join_nodes, created.len() as u64);

        // Rebuild every live node's routing state from ring order: the
        // successor list is the next r entries, the predecessor the
        // previous one, fingers are ownership runs over the sorted order.
        let order: Vec<(Point, NodeId)> = self.index.entries().copied().collect();
        let n = order.len();
        if n == 0 {
            return created;
        }
        let r = self.config.successor_list_len();
        self.arena.reset_finger_store();
        let mut succs: Vec<NodeId> = Vec::with_capacity(r);
        let mut run_starts: Vec<u8> = Vec::with_capacity(self.finger_bits);
        let mut run_vals: Vec<u32> = Vec::with_capacity(self.finger_bits);
        for (rank, &(point, id)) in order.iter().enumerate() {
            succs.clear();
            for k in 1..=r.min(n.saturating_sub(1)).max(1) {
                succs.push(order[(rank + k) % n].1);
            }
            let pred = order[(rank + n - 1) % n].1;
            run_starts.clear();
            run_vals.clear();
            self.fill_finger_runs(point, &order, &mut run_starts, &mut run_vals);
            // Raw column writes: the converged ledger is rebuilt wholesale
            // below, far cheaper than n · (log n) funnel re-checks.
            self.arena.set_successors(id.0, &succs);
            self.arena.set_pred(id.0, Some(pred.0));
            self.arena.set_finger_runs(id.0, &run_starts, &run_vals);
            // Mirror decodes through the one tested run decoder instead
            // of re-expanding the runs by hand.
            let fingers = self
                .shadow
                .is_some()
                .then(|| self.node(id).fingers().to_vec());
            if let (Some(sh), Some(fingers)) = (&mut self.shadow, fingers) {
                let node = &mut sh.nodes[id.0];
                node.successors = succs.clone();
                node.predecessor = Some(pred);
                node.fingers = fingers;
            }
        }
        self.rebuild_ledger_converged(&order);
        created
    }

    /// Appends the finger table of `origin` as ownership runs: value `v`
    /// from bit `b` onward until the target distance `2^bit` outgrows
    /// `v`'s arc. `order` must be the live entries sorted by point.
    fn fill_finger_runs(
        &self,
        origin: Point,
        order: &[(Point, NodeId)],
        starts: &mut Vec<u8>,
        vals: &mut Vec<u32>,
    ) {
        let n = order.len();
        let mut bit = 0usize;
        while bit < self.finger_bits {
            let target = self.finger_target(origin, bit);
            let pos = order.partition_point(|&(p, _)| p < target);
            let (sp, sid) = order[pos % n];
            starts.push(bit as u8);
            vals.push(sid.0 as u32);
            let d = self.space.distance(origin, sp).get();
            if d == 0 {
                // Wrapped all the way back to the origin: every remaining
                // (larger) target also lands in the wrap arc.
                break;
            }
            // The next distinct successor appears at the first bit whose
            // target distance 2^bit exceeds d.
            bit = (64 - d.leading_zeros()) as usize;
        }
    }

    /// The key space of the overlay.
    pub fn space(&self) -> KeySpace {
        self.space
    }

    /// The configuration in use.
    pub fn config(&self) -> &ChordConfig {
        &self.config
    }

    /// The shared message-accounting registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The pre-registered telemetry handles for this network's recorder.
    pub fn counters(&self) -> ChordCounters {
        self.counters
    }

    /// Number of finger-table entries per node (`⌈log₂ M⌉`).
    pub fn finger_bits(&self) -> usize {
        self.finger_bits
    }

    /// All node ids ever created (including dead nodes).
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.arena.len()).map(NodeId).collect()
    }

    /// Ids of currently live nodes, in arena order.
    ///
    /// O(live) copy of the incrementally maintained live set — dead arena
    /// slots are never re-scanned.
    pub fn live_ids(&self) -> Vec<NodeId> {
        self.live_set.clone()
    }

    /// Borrowed view of the live ids in arena order (allocation-free; the
    /// hot path for uniform live-node sampling under churn).
    pub fn live_slice(&self) -> &[NodeId] {
        &self.live_set
    }

    /// Number of live nodes (O(1)).
    pub fn live_len(&self) -> usize {
        self.live_set.len()
    }

    /// The ground-truth ring index over live nodes, in clockwise
    /// `(point, id)` order.
    pub fn ring_index(&self) -> &RingIndex<NodeId> {
        &self.index
    }

    /// Total arena size (live + dead).
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Borrow a node's state as a view over the arena columns.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range id.
    pub fn node(&self, id: NodeId) -> NodeRef<'_> {
        NodeRef::new(&self.arena, id.0)
    }

    /// Bytes of routing state currently held by the arena (points, alive
    /// bitset, predecessors, successor lists, compressed fingers). The
    /// seed's per-node representation measured ~1.2 KB/node; see
    /// `BENCH_chord_scale.json` for the tracked ratio.
    pub fn routing_bytes(&self) -> usize {
        self.arena.routing_bytes()
    }

    /// Bytes held by the incremental-verification ledger (reported apart
    /// from [`routing_bytes`](ChordNetwork::routing_bytes): it buys O(1)
    /// [`verify_ring`](ChordNetwork::verify_ring), not routing).
    pub fn verifier_bytes(&self) -> usize {
        self.ledger.bytes()
    }

    /// Turns on adaptive peer scoring: routed lookups start folding every
    /// probe outcome into a per-peer [`PeerScores`] table and ranking
    /// alternative next-hops (successor-list entries, lower finger
    /// levels) penalized-last. Deterministic and RNG-free; with scoring
    /// off, lookup behaviour is byte-identical to the pre-adaptive
    /// overlay.
    pub fn enable_adaptive_routing(&mut self, config: AdaptiveConfig) {
        self.scores = Some(RefCell::new(PeerScores::new(config)));
    }

    /// Arms the retry/fallback policy used by
    /// [`find_successor_with_policy`](ChordNetwork::find_successor_with_policy)
    /// (and by the DHT facade's draws once armed).
    pub fn enable_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = Some(policy);
    }

    /// The armed retry policy, if any.
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        self.retry
    }

    /// Whether adaptive peer scoring is enabled.
    pub fn adaptive_enabled(&self) -> bool {
        self.scores.is_some()
    }

    /// Shared view of the peer-score table (`None` until
    /// [`enable_adaptive_routing`](ChordNetwork::enable_adaptive_routing)).
    pub(crate) fn scores(&self) -> Option<&RefCell<PeerScores>> {
        self.scores.as_ref()
    }

    /// Current EWMA responsiveness score of `id` (max = 255; 255 also for
    /// peers never probed, and always when scoring is disabled).
    pub fn peer_score(&self, id: NodeId) -> u8 {
        self.scores
            .as_ref()
            .map_or(crate::score::SCORE_MAX, |s| s.borrow().score(id))
    }

    /// Whether `id` is currently ranked penalized-last by adaptive
    /// routing (always `false` when scoring is disabled).
    pub fn peer_penalized(&self, id: NodeId) -> bool {
        self.scores
            .as_ref()
            .is_some_and(|s| s.borrow().penalized(id))
    }

    /// Bytes held by the adaptive peer-score table (0 when disabled;
    /// bench-gated at ≤ 8 B/node in `chord_scale`).
    pub fn score_bytes(&self) -> usize {
        self.scores.as_ref().map_or(0, |s| s.borrow().bytes())
    }

    /// Starts mirroring every routing write into the pre-arena per-node
    /// representation (see `crate::shadow`), backfilling current state.
    /// Diagnostic-only: enables [`assert_shadow_matches`] and
    /// [`shadow_routing_bytes`].
    ///
    /// [`assert_shadow_matches`]: ChordNetwork::assert_shadow_matches
    /// [`shadow_routing_bytes`]: ChordNetwork::shadow_routing_bytes
    pub fn enable_shadow_mirror(&mut self) {
        let mut sh = Shadow::new(self.finger_bits);
        for i in 0..self.arena.len() {
            sh.push(self.arena.point(i));
            let view = self.node(NodeId(i));
            let node = &mut sh.nodes[i];
            node.alive = view.is_alive();
            node.predecessor = view.predecessor();
            node.successors = view.successors().to_vec();
            node.fingers = view.fingers().to_vec();
        }
        self.shadow = Some(Box::new(sh));
    }

    /// Live routing bytes of the mirrored legacy representation, if the
    /// mirror is enabled — the measured baseline for the arena's
    /// bytes/node ratio.
    pub fn shadow_routing_bytes(&self) -> Option<usize> {
        self.shadow.as_ref().map(|sh| sh.routing_bytes())
    }

    /// Asserts the arena views are bit-for-bit equal to the mirrored
    /// legacy representation, node by node.
    ///
    /// # Panics
    ///
    /// Panics if the mirror is disabled or any node diverges.
    pub fn assert_shadow_matches(&self) {
        let sh = self
            .shadow
            .as_ref()
            .expect("shadow mirror not enabled; call enable_shadow_mirror() first");
        assert_eq!(sh.nodes.len(), self.arena.len(), "arena length");
        for (i, legacy) in sh.nodes.iter().enumerate() {
            let view = self.node(NodeId(i));
            assert_eq!(legacy.point, view.point(), "n{i} point");
            assert_eq!(legacy.alive, view.is_alive(), "n{i} alive");
            assert_eq!(legacy.predecessor, view.predecessor(), "n{i} predecessor");
            assert!(
                view.successors() == legacy.successors[..],
                "n{i} successors: arena {:?} vs legacy {:?}",
                view.successors(),
                legacy.successors
            );
            for (bit, &f) in legacy.fingers.iter().enumerate() {
                assert_eq!(f, view.fingers().get(bit), "n{i} finger bit {bit}");
            }
        }
    }

    /// The point `2^bit` clockwise of `origin` — finger `bit`'s target.
    pub fn finger_target(&self, origin: Point, bit: usize) -> Point {
        let offset = (1u128 << bit) % self.space.modulus();
        self.space.add(origin, Distance::new(offset as u64))
    }

    // ---- ground truth (oracle views used by bootstrap, repair and tests)

    /// The true successor point of `x` over live nodes.
    ///
    /// # Panics
    ///
    /// Panics if no node is live.
    pub fn ground_truth_successor(&self, x: Point) -> Point {
        self.node(self.truth_successor_id(x).expect("no live nodes"))
            .point()
    }

    /// The true successor id of `x` over live nodes, or `None` when the
    /// overlay is empty. O(log n) via the ring index.
    pub(crate) fn truth_successor_id(&self, x: Point) -> Option<NodeId> {
        self.index.successor(x).map(|(_, id)| id)
    }

    // ---- interval helpers (Chord conventions: (a, a] and (a, a) denote
    // the full ring, arising when a node is its own successor)

    pub(crate) fn between_open_closed(&self, a: Point, x: Point, b: Point) -> bool {
        if a == b {
            return true;
        }
        let dx = self.space.distance(a, x);
        !dx.is_zero() && dx <= self.space.distance(a, b)
    }

    pub(crate) fn between_open(&self, a: Point, x: Point, b: Point) -> bool {
        if a == b {
            return x != a;
        }
        let dx = self.space.distance(a, x);
        !dx.is_zero() && dx < self.space.distance(a, b)
    }

    // ---- write funnels: every routing mutation flows through one of
    // these so the arena, the optional shadow mirror and the incremental
    // verification ledger stay in lockstep.

    fn push_node(&mut self, point: Point) -> NodeId {
        assert!(
            self.arena.len() < u32::MAX as usize,
            "arena full: the compact columns store node ids as u32"
        );
        let i = self.arena.push(point);
        self.ledger.push();
        self.dirty.push_node(i);
        if let Some(sh) = &mut self.shadow {
            sh.push(point);
        }
        NodeId(i)
    }

    fn write_successors(&mut self, id: NodeId, list: &[NodeId]) {
        if self.arena.successors_eq(id.0, list) {
            return;
        }
        self.arena.set_successors(id.0, list);
        if self.shadow.is_some() {
            let stored: Vec<NodeId> = self.node(id).successors().to_vec();
            if let Some(sh) = &mut self.shadow {
                sh.nodes[id.0].successors = stored;
            }
        }
        // recompute_sp refreshes the derived-successor reverse index.
        self.recompute_sp(id.0);
        // A changed list invalidates the copies its upstream holders
        // spliced from it (stabilize builds `[succ] + succ.list`), so
        // re-mark them; the propagation reaches a fixpoint because a
        // stabilize that recomputes an identical list short-circuits
        // above and marks nothing.
        if self.arena.is_alive(id.0) {
            self.dirty_list_window(self.arena.point(id.0));
        }
    }

    fn write_pred(&mut self, id: NodeId, pred: Option<NodeId>) {
        let old = self.arena.pred(id.0);
        if old == pred.map(|p| p.0) {
            return;
        }
        if let Some(o) = old {
            self.ledger.pred_watch.remove(o as u32, id.0 as u32);
        }
        self.arena.set_pred(id.0, pred.map(|p| p.0));
        if let Some(p) = pred {
            self.ledger.pred_watch.insert(p.0 as u32, id.0 as u32);
        }
        if let Some(sh) = &mut self.shadow {
            sh.nodes[id.0].predecessor = pred;
        }
        self.recompute_sp(id.0);
    }

    fn write_finger(&mut self, id: NodeId, bit: usize, val: Option<NodeId>) {
        if self.arena.set_finger(id.0, bit, val.map(|v| v.0)) {
            if let Some(sh) = &mut self.shadow {
                sh.nodes[id.0].fingers[bit] = val;
            }
            self.recompute_finger(id.0, bit);
        }
    }

    fn clear_routing(&mut self, id: NodeId) {
        self.write_successors(id, &[]);
        self.write_pred(id, None);
        let l = &mut self.ledger;
        l.fingers_total -= l.fpop[id.0].count_ones() as usize;
        l.fingers_right -= l.fok[id.0].count_ones() as usize;
        l.fpop[id.0] = 0;
        l.fok[id.0] = 0;
        self.arena.clear_fingers(id.0);
        if let Some(sh) = &mut self.shadow {
            for f in &mut sh.nodes[id.0].fingers {
                *f = None;
            }
        }
    }

    /// Re-evaluates node `i`'s successor/predecessor correctness, folds
    /// the change into the report counters, and refreshes the
    /// derived-successor reverse index. Idempotent; O(r + log n).
    fn recompute_sp(&mut self, i: usize) {
        let id = NodeId(i);
        let alive = self.arena.is_alive(i);
        let derived = if alive {
            self.first_live_successor(id)
        } else {
            None
        };
        // The reverse index tracks the *derived* successor (what the
        // correctness predicate actually reads), so a death re-checks
        // exactly the nodes whose predicate it can flip.
        let new_raw = derived.map_or(NONE32, |s| s.0 as u32);
        let old_raw = self.ledger.dsucc[i];
        if old_raw != new_raw {
            if old_raw != NONE32 {
                self.ledger.dsucc_watch.remove(old_raw, i as u32);
            }
            if new_raw != NONE32 {
                self.ledger.dsucc_watch.insert(new_raw, i as u32);
            }
            self.ledger.dsucc[i] = new_raw;
        }
        let succ_ok = alive && derived == self.truth_strict_successor(id);
        let pred_ok = alive && {
            let pred = self
                .arena
                .pred(i)
                .map(NodeId)
                .filter(|&p| self.arena.is_alive(p.0));
            pred == self.truth_strict_predecessor(id)
        };
        let new = u8::from(succ_ok) | (u8::from(pred_ok) << 1);
        // A live node failing either predicate is maintenance work.
        // (Marked even when the flags did not change, so a node that a
        // repair attempt left incorrect is re-queued and retried. The
        // converse does not clear: sp marks also carry list-hygiene work
        // on predicate-clean nodes — see `dirty_list_window` — and are
        // consumed only when the batched round processes the node.)
        if alive && new != 3 {
            self.dirty.mark_sp(i);
        }
        let l = &mut self.ledger;
        let old = l.flags[i];
        if old == new {
            return;
        }
        if old & 1 != new & 1 {
            if new & 1 == 1 {
                l.succ_ok += 1;
            } else {
                l.succ_ok -= 1;
            }
        }
        if old & 2 != new & 2 {
            if new & 2 == 2 {
                l.pred_ok += 1;
            } else {
                l.pred_ok -= 1;
            }
        }
        l.flags[i] = new;
    }

    /// Re-evaluates one finger entry's populated/correct contribution.
    /// Idempotent; O(log n).
    fn recompute_finger(&mut self, i: usize, bit: usize) {
        let alive = self.arena.is_alive(i);
        let val = self.arena.finger(i, bit).map(NodeId);
        let pop = alive && val.is_some();
        let ok =
            pop && val == self.truth_successor_id(self.finger_target(self.arena.point(i), bit));
        // Dirty mirror: a live node's missing or wrong entry is pending
        // maintenance work; a correct (or dead) one is not.
        if alive && !ok {
            self.dirty.mark_finger(i, bit);
        } else {
            self.dirty.clear_finger(i, bit);
        }
        let mask = 1u64 << bit;
        let l = &mut self.ledger;
        if pop != (l.fpop[i] & mask != 0) {
            if pop {
                l.fingers_total += 1;
                l.fpop[i] |= mask;
            } else {
                l.fingers_total -= 1;
                l.fpop[i] &= !mask;
            }
        }
        if ok != (l.fok[i] & mask != 0) {
            if ok {
                l.fingers_right += 1;
                l.fok[i] |= mask;
            } else {
                l.fingers_right -= 1;
                l.fok[i] &= !mask;
            }
        }
    }

    /// Re-checks the finger entries whose target lies on the ownership
    /// arc a membership change at `hi` moved: the clockwise arc from the
    /// nearest *distinct* live point before `hi` (every target in it can
    /// switch owner — on a point collision the id tie-break can hand the
    /// whole arc to another co-located entry, not just the target `hi`
    /// itself). With no distinct other point (all members co-located, or
    /// a singleton) the arc degenerates to the full ring, which is then
    /// only the cluster itself. One range query per finger bit; expected
    /// O(1) hits each on a ring with n ≫ 1.
    fn dirty_finger_arc(&mut self, hi: Point) {
        let lo = self.index.predecessor(hi).map(|(q, _)| q);
        // One scratch buffer across all ~64 arc queries: the queries
        // expect O(1) hits each, so a fresh Vec per bit was the dominant
        // cost of this feed (ringidx::for_each_in_range is the
        // allocation-free visitor added for it).
        let mut hits: Vec<u32> = Vec::new();
        for bit in 0..self.finger_bits {
            let off = Distance::new(((1u128 << bit) % self.space.modulus()) as u64);
            let b = self.space.sub(hi, off);
            // A `(b, b]` arc is the full ring by the index's convention.
            let a = lo.map_or(b, |q| self.space.sub(q, off));
            hits.clear();
            self.index
                .for_each_in_range(a, b, |_, oid| hits.push(oid.0 as u32));
            for &o in &hits {
                self.recompute_finger(o as usize, bit);
            }
        }
    }

    /// Re-checks the successor/predecessor flags of every node whose
    /// ground truth can involve point `p` after a membership change
    /// there: the co-located cluster at `p` and the clusters at the
    /// nearest distinct points on either side (strict successor and
    /// predecessor ties resolve by id, so any member of those clusters
    /// may gain or lose a tie against the entries at `p`).
    fn dirty_sp_around(&mut self, p: Point) {
        let one = Distance::new(1);
        let mut ids: Vec<NodeId> = Vec::new();
        let extend_cluster = |ids: &mut Vec<NodeId>, index: &RingIndex<NodeId>, at: Point| {
            // (at - 1, at] is exactly the co-located cluster at `at`.
            index.for_each_in_range(self.space.sub(at, one), at, |_, id| ids.push(id));
        };
        extend_cluster(&mut ids, &self.index, p);
        if let Some((q, _)) = self.index.predecessor(p) {
            extend_cluster(&mut ids, &self.index, q);
        }
        if let Some((r, _)) = self.index.successor(self.space.add(p, one)) {
            extend_cluster(&mut ids, &self.index, r);
        }
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            self.recompute_sp(id.0);
        }
    }

    /// Marks the successor-*list* holders a membership change at `p` left
    /// stale: the ~r nodes counter-clockwise of `p` carry `p`'s arc
    /// inside their successor-list window, and a routed lookup may answer
    /// from *any* list entry, not just the first. The ledger's
    /// correctness predicate only covers the derived first successor, so
    /// these are hygiene marks: the batched round stabilizes each holder
    /// once (nearest holder first — queue order — so refreshed lists
    /// propagate counter-clockwise within a round). The classic full
    /// round gets this for free by stabilizing everyone.
    fn dirty_list_window(&mut self, p: Point) {
        let r = self.config.successor_list_len();
        let one = Distance::new(1);
        let mut hits: Vec<u32> = Vec::new();
        let mut at = p;
        for _ in 0..r {
            let Some((q, _)) = self.index.predecessor(at) else {
                break;
            };
            // The whole co-located cluster at q holds the same window.
            self.index
                .for_each_in_range(self.space.sub(q, one), q, |_, id| hits.push(id.0 as u32));
            if q == p {
                break; // wrapped all the way around a tiny ring
            }
            at = q;
        }
        for &h in &hits {
            if self.arena.is_alive(h as usize) {
                self.dirty.mark_sp(h as usize);
            }
        }
    }

    /// Rebuilds the ledger after [`bulk_join`](ChordNetwork::bulk_join):
    /// by construction every live node is fully converged, so counters
    /// are assigned directly and only the reverse indexes are re-derived.
    /// `order` is the post-rebuild ring order.
    fn rebuild_ledger_converged(&mut self, order: &[(Point, NodeId)]) {
        let n = self.arena.len();
        // By construction nothing is stale; the co-located recomputes
        // below re-mark the few exceptions.
        self.dirty.reset(n);
        let l = &mut self.ledger;
        l.flags.clear();
        l.flags.resize(n, 0);
        l.fpop.clear();
        l.fpop.resize(n, 0);
        l.fok.clear();
        l.fok.resize(n, 0);
        l.dsucc.clear();
        l.dsucc.resize(n, NONE32);
        let full: u64 = if self.finger_bits == 64 {
            !0
        } else {
            (1u64 << self.finger_bits) - 1
        };
        let mut spairs: Vec<(u32, u32)> = Vec::with_capacity(self.live_set.len());
        let mut ppairs: Vec<(u32, u32)> = Vec::with_capacity(self.live_set.len());
        for &id in &self.live_set {
            l.flags[id.0] = 3;
            l.fpop[id.0] = full;
            l.fok[id.0] = full;
            // A converged list is non-empty and leads with the derived
            // first-live successor (a singleton's list is `[self]`).
            let s = self.arena.successors(id.0)[0];
            l.dsucc[id.0] = s;
            spairs.push((s, id.0 as u32));
            if let Some(p) = self.arena.pred(id.0) {
                ppairs.push((p as u32, id.0 as u32));
            }
        }
        l.dsucc_watch = CompactMultiMap::bulk(spairs);
        l.pred_watch = CompactMultiMap::bulk(ppairs);
        l.succ_ok = self.live_set.len();
        l.pred_ok = self.live_set.len();
        l.fingers_total = self.live_set.len() * self.finger_bits;
        l.fingers_right = l.fingers_total;

        // Co-located entries (protocol joins that landed on an occupied
        // point) break the all-converged shortcut: strict successor and
        // predecessor ties resolve by *id*, while the rebuilt lists follow
        // ring order. Re-derive the flags of each co-located cluster and
        // its immediate ring neighbours exactly. (Fingers are unaffected:
        // the run builder already resolves point ties to the smallest id,
        // matching the ground-truth index.)
        let n = order.len();
        if n >= 2 {
            let mut affected: Vec<usize> = Vec::new();
            for i in 0..n {
                let j = (i + 1) % n;
                if order[i].0 == order[j].0 {
                    affected.extend([(i + n - 1) % n, i, j, (j + 1) % n]);
                }
            }
            affected.sort_unstable();
            affected.dedup();
            for rank in affected {
                self.recompute_sp(order[rank].1.index());
            }
        }
    }

    // ---- membership

    /// Creates the overlay's first node.
    ///
    /// # Panics
    ///
    /// Panics if the overlay already has live nodes (join via a gateway
    /// instead).
    pub fn create(&mut self, point: Point) -> NodeId {
        assert_eq!(self.live_len(), 0, "use join() on a non-empty overlay");
        let id = self.push_node(point);
        // A lone node is its own successor (Chord's base case).
        self.write_successors(id, &[id]);
        self.write_pred(id, Some(id));
        self.admit(point, id);
        id
    }

    /// Registers a freshly created live node with the ground-truth index
    /// and the live set, then re-checks the ring neighbours and finger
    /// entries whose ground truth the new member shifted. New ids are
    /// strictly increasing, so pushing keeps the live set in arena order.
    fn admit(&mut self, point: Point, id: NodeId) {
        self.index.insert(point, id);
        self.live_set.push(id);
        // A protocol joiner starts with an empty finger table: every
        // level is pending maintenance work.
        self.dirty.mark_all_fingers(id.0, self.finger_bits);
        self.recompute_sp(id.0);
        self.dirty_sp_around(point);
        self.dirty_list_window(point);
        self.dirty_finger_arc(point);
    }

    /// Unregisters a dying node from the ground-truth index and live set,
    /// marks it dead, and re-checks everything whose correctness predicate
    /// referenced it: its ring neighbours, every node holding it in a
    /// successor list or predecessor pointer, and the finger entries
    /// targeting its (former) ownership arc.
    fn remove_member(&mut self, id: NodeId) {
        let point = self.arena.point(id.0);
        self.index.remove(point, id);
        if let Ok(at) = self.live_set.binary_search(&id) {
            self.live_set.remove(at);
        }
        self.arena.set_alive(id.0, false);
        if let Some(sh) = &mut self.shadow {
            sh.nodes[id.0].alive = false;
        }
        // The dead owe no maintenance.
        self.dirty.clear_node(id.0);
        self.recompute_sp(id.0);
        self.dirty_sp_around(point);
        // Exactly the nodes whose derived successor was the deceased (one
        // entry each in the compact reverse maps; nodes holding it deeper
        // in their lists keep the same derived successor).
        for w in self.ledger.dsucc_watch.values(id.0 as u32) {
            self.recompute_sp(w as usize);
        }
        for w in self.ledger.pred_watch.values(id.0 as u32) {
            self.recompute_sp(w as usize);
        }
        self.dirty_list_window(point);
        self.dirty_finger_arc(point);
    }

    /// Joins a new node at `point` through live gateway `via`, following
    /// the Chord join protocol: route to the point's successor, adopt it,
    /// and copy its successor list. The ring converges fully after
    /// subsequent stabilization rounds.
    ///
    /// # Errors
    ///
    /// Returns the routing error if the successor lookup fails.
    pub fn join<R: Rng + ?Sized>(
        &mut self,
        point: Point,
        via: NodeId,
        rng: &mut R,
    ) -> Result<NodeId, crate::LookupError> {
        let found = self.find_successor(via, point, rng)?;
        self.metrics
            .recorder()
            .add(self.counters.join_messages, found.cost.messages + 1);
        let id = self.push_node(point);
        // Adopt the successor and splice in its list (one message,
        // included in the accounting above).
        let mut list = vec![found.node];
        list.extend(self.node(found.node).successors().iter());
        list.truncate(self.config.successor_list_len());
        self.write_successors(id, &list);
        self.admit(point, id);
        Ok(id)
    }

    /// Gracefully removes a node: its predecessor and successor are
    /// notified so the ring heals immediately (the paper's `next` pointer
    /// stays correct without waiting for stabilization).
    ///
    /// # Panics
    ///
    /// Panics if the node is already dead.
    pub fn leave(&mut self, id: NodeId) {
        assert!(self.node(id).is_alive(), "{id} is already dead");
        let succ = self.first_live_successor(id);
        let pred = self
            .node(id)
            .predecessor()
            .filter(|&p| p != id && self.node(p).is_alive());
        self.metrics.recorder().add(self.counters.leave_messages, 2);
        // Departing nodes hand their stored data to their successor
        // before breaking links (SIGCOMM §4's key transfer).
        if let Some(succ) = succ.filter(|&s| s != id) {
            self.hand_off_store(id, succ);
        }
        self.remove_member(id);
        self.clear_routing(id);
        if let (Some(succ), Some(pred)) = (succ, pred) {
            // Predecessor splices the departing node out of its list.
            let r = self.config.successor_list_len();
            let mut list = self.node(pred).successors().to_vec();
            list.retain(|&s| s != id);
            if list.is_empty() {
                list.push(succ);
            }
            list.truncate(r);
            self.write_successors(pred, &list);
            // Successor adopts the departing node's predecessor.
            if self.node(succ).predecessor() == Some(id) {
                self.write_pred(succ, Some(pred));
            }
        }
    }

    /// Crashes a node silently: no notifications, neighbours discover the
    /// failure through probes and stabilization.
    ///
    /// # Panics
    ///
    /// Panics if the node is already dead.
    pub fn crash(&mut self, id: NodeId) {
        assert!(self.node(id).is_alive(), "{id} is already dead");
        self.remove_member(id);
        self.clear_routing(id);
        // A crash loses the node's data copies; replicas must recover it.
        self.store_mut(id).clear();
    }

    pub(crate) fn store_mut(
        &mut self,
        id: NodeId,
    ) -> &mut std::collections::BTreeMap<Point, Vec<u8>> {
        self.arena.store_mut(id.0)
    }

    // ---- maintenance (stabilize / notify / fix fingers)

    /// The first live entry of `id`'s successor list.
    pub(crate) fn first_live_successor(&self, id: NodeId) -> Option<NodeId> {
        self.node(id)
            .successors()
            .iter()
            .find(|&s| self.node(s).is_alive() && s != id)
            .or_else(|| {
                // A node may legitimately be its own successor (singleton).
                self.node(id)
                    .successors()
                    .iter()
                    .find(|&s| self.node(s).is_alive())
            })
    }

    /// One stabilization round at `id` (SIGCOMM Fig. 7): verify the
    /// immediate successor, adopt its predecessor if closer, refresh the
    /// successor list from it, and notify it.
    ///
    /// Dead nodes and empty rings are no-ops.
    pub fn stabilize(&mut self, id: NodeId) {
        if !self.node(id).is_alive() {
            return;
        }
        // Drop dead entries from the successor list (each liveness probe
        // costs a message).
        let probes = self.node(id).successors().len() as u64;
        self.metrics
            .recorder()
            .add(self.counters.stabilize_messages, probes.max(1));
        let live: Vec<NodeId> = self
            .node(id)
            .successors()
            .iter()
            .filter(|&s| self.node(s).is_alive())
            .collect();
        self.write_successors(id, &live);

        let Some(succ) = self.first_live_successor(id) else {
            // Lost every successor: re-attach through the modelled
            // bootstrap server — under realistic churn the successor list
            // makes this vanishingly rare (needs r simultaneous failures).
            let sid = self.truth_fallback(id);
            self.write_successors(id, &[sid]);
            return;
        };

        // succ.predecessor may be a better (closer) successor for us.
        let my_point = self.node(id).point();
        let succ_point = self.node(succ).point();
        let mut adopted = succ;
        if let Some(cand) = self.node(succ).predecessor() {
            if cand != id
                && self.node(cand).is_alive()
                && self.between_open(my_point, self.node(cand).point(), succ_point)
            {
                adopted = cand;
            }
        }

        // Refresh our list as [adopted] + adopted's list.
        let mut list = vec![adopted];
        list.extend(
            self.node(adopted)
                .successors()
                .iter()
                .filter(|&s| s != id && self.node(s).is_alive()),
        );
        list.dedup();
        list.truncate(self.config.successor_list_len());
        self.write_successors(id, &list);

        self.notify(adopted, id);
    }

    /// `notify(candidate)` at node `at` (SIGCOMM Fig. 7): adopt the
    /// candidate as predecessor if it is closer than the current one.
    pub fn notify(&mut self, at: NodeId, candidate: NodeId) {
        if !self.node(at).is_alive() || !self.node(candidate).is_alive() {
            return;
        }
        self.metrics.recorder().incr(self.counters.notify_messages);
        let at_point = self.node(at).point();
        let cand_point = self.node(candidate).point();
        let adopt = match self.node(at).predecessor() {
            None => true,
            Some(p) if !self.node(p).is_alive() => true,
            Some(p) => {
                let p_point = self.node(p).point();
                p == at || self.between_open(p_point, cand_point, at_point)
            }
        };
        if adopt && candidate != at {
            self.write_pred(at, Some(candidate));
        }
    }

    /// Refreshes finger `bit` of node `id` by routing to its target.
    /// Failed lookups clear the finger (it will be retried next round).
    pub fn fix_finger<R: Rng + ?Sized>(&mut self, id: NodeId, bit: usize, rng: &mut R) {
        if !self.node(id).is_alive() {
            return;
        }
        let target = self.finger_target(self.node(id).point(), bit);
        let entry = match self.find_successor(id, target, rng) {
            Ok(found) => {
                self.metrics
                    .recorder()
                    .add(self.counters.fix_finger_messages, found.cost.messages);
                Some(found.node)
            }
            Err(_) => None,
        };
        self.write_finger(id, bit, entry);
    }

    /// Clears the predecessor pointer if it stopped responding.
    pub fn check_predecessor(&mut self, id: NodeId) {
        if !self.node(id).is_alive() {
            return;
        }
        self.metrics
            .recorder()
            .incr(self.counters.check_predecessor_messages);
        if let Some(p) = self.node(id).predecessor() {
            if !self.node(p).is_alive() {
                self.write_pred(id, None);
            }
        }
    }

    /// One full maintenance round: every live node checks its predecessor,
    /// stabilizes, and fixes finger `round % finger_bits`.
    ///
    /// Repeated rounds converge a protocol-built or churned ring back to
    /// the correct successor/predecessor structure (asserted by
    /// [`verify_ring`](ChordNetwork::verify_ring) in tests).
    pub fn maintenance_round<R: Rng + ?Sized>(&mut self, round: usize, rng: &mut R) {
        let ids = self.live_ids();
        let bit = round % self.finger_bits;
        for id in ids {
            self.check_predecessor(id);
            self.stabilize(id);
            self.fix_finger(id, bit, rng);
        }
    }

    /// Runs enough maintenance rounds to refresh every finger once, then
    /// returns the consistency report.
    pub fn converge<R: Rng + ?Sized>(&mut self, rng: &mut R) -> RingReport {
        for round in 0..self.finger_bits {
            self.maintenance_round(round, rng);
        }
        self.verify_ring()
    }

    // ---- batched incremental maintenance (see crate::maintenance)

    /// Dirty entries currently awaiting batched maintenance: stale
    /// successor/predecessor flags plus missing-or-wrong finger levels.
    /// Zero if and only if every live node's routing state matches the
    /// ground truth (the staleness figure e16 records surface).
    pub fn maintenance_backlog(&self) -> usize {
        self.dirty.entries()
    }

    /// Bytes held by the batched-maintenance dirty set (reported apart
    /// from [`routing_bytes`](ChordNetwork::routing_bytes) and
    /// [`verifier_bytes`](ChordNetwork::verifier_bytes); gated per node
    /// in `BENCH_chord_scale.json` alongside them).
    pub fn maintenance_bytes(&self) -> usize {
        self.dirty.bytes()
    }

    /// One **batched** maintenance round: repairs up to `budget` dirty
    /// entries instead of touching all n live nodes.
    ///
    /// Sp-dirty nodes run the ordinary [`check_predecessor`] +
    /// [`stabilize`] protocol ops; dirty finger levels are refreshed by
    /// ownership-run jumping (one routed lookup per run of levels that
    /// resolve to the same owner — `bulk_join`'s amortization applied to
    /// point repairs). Work per round is amortized O(changes · log n),
    /// vs [`maintenance_round`](ChordNetwork::maintenance_round)'s O(n)
    /// routed lookups; a repair that fails or lands on a stale answer
    /// re-marks itself through the write funnels and is retried next
    /// round, so repeated rounds converge exactly as the classic ones do.
    ///
    /// Nodes queued when the round starts are processed at most once per
    /// round (re-marked nodes wait for the next round), which keeps a
    /// round's work bounded even when repairs cascade.
    ///
    /// [`check_predecessor`]: ChordNetwork::check_predecessor
    /// [`stabilize`]: ChordNetwork::stabilize
    pub fn batched_maintenance_round<R: Rng + ?Sized>(
        &mut self,
        budget: MaintenanceBudget,
        rng: &mut R,
    ) -> MaintenanceWork {
        let scope = self.metrics.recorder().begin_scope();
        let mut work = MaintenanceWork::default();
        let mut remaining = budget.limit();
        let snapshot = self.dirty.queue_len();
        for _ in 0..snapshot {
            if remaining == Some(0) {
                break;
            }
            let Some(i) = self.dirty.pop() else { break };
            let id = NodeId(i);
            if !self.arena.is_alive(i) {
                self.dirty.clear_node(i);
                continue;
            }
            if self.dirty.is_sp(i) && remaining != Some(0) {
                self.dirty.take_sp(i);
                if let Some(r) = &mut remaining {
                    *r -= 1;
                }
                work.sp_refreshed += 1;
                self.check_predecessor(id);
                self.stabilize(id);
                // A wrong predecessor pointer is repaired from the
                // *other* side in Chord: the true predecessor's
                // stabilize ends in notify. The classic round gets this
                // for free by stabilizing everyone; here that neighbour
                // may be clean and never run, so replay its notify on
                // demand — the candidates are exactly the nodes whose
                // derived successor is this node (`dsucc_watch`).
                if self.ledger.flags[i] & 2 == 0 {
                    for w in self.ledger.dsucc_watch.values(i as u32) {
                        let cand = NodeId(w as usize);
                        if cand != id && self.arena.is_alive(cand.0) {
                            self.notify(id, cand);
                        }
                    }
                }
                // The funnels recompute only on change; force a re-check
                // so a node a repair could not fix yet stays queued.
                self.recompute_sp(i);
            }
            if self.dirty.finger_mask(i) != 0 && remaining != Some(0) {
                let taken = self.dirty.take_fingers(i, remaining.unwrap_or(u32::MAX));
                if let Some(r) = &mut remaining {
                    *r -= taken.count_ones();
                }
                self.refresh_fingers(id, taken, rng, &mut work);
            }
            self.dirty.requeue_if_dirty(i);
        }
        work.backlog = self.dirty.entries();
        let repairs = (work.sp_refreshed + work.fingers_refreshed) as u64;
        if repairs > 0 {
            self.metrics
                .recorder()
                .profiler()
                .add(self.counters.span_maintenance_repair, repairs);
        }
        self.metrics
            .recorder()
            .end_scope("maintenance.round", scope);
        work
    }

    /// Repairs the dirty finger levels in `mask` by ownership-run
    /// jumping: one routed lookup resolves the lowest level, and every
    /// higher taken level whose target falls inside the returned owner's
    /// arc reuses the answer.
    fn refresh_fingers<R: Rng + ?Sized>(
        &mut self,
        id: NodeId,
        mut mask: u64,
        rng: &mut R,
        work: &mut MaintenanceWork,
    ) {
        let origin = self.node(id).point();
        while mask != 0 {
            let bit = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let target = self.finger_target(origin, bit);
            work.lookups += 1;
            match self.find_successor(id, target, rng) {
                Ok(found) => {
                    self.metrics
                        .recorder()
                        .add(self.counters.fix_finger_messages, found.cost.messages);
                    self.write_finger(id, bit, Some(found.node));
                    // The funnel recomputes only on change; force a
                    // re-check so a repair that re-wrote the same stale
                    // answer is re-marked and retried, not silently
                    // dropped from the dirty set.
                    self.recompute_finger(id.0, bit);
                    work.fingers_refreshed += 1;
                    let d = self.space.distance(origin, found.point).get();
                    // Any level with target distance 2^b <= d lands in
                    // (origin, owner] and shares the owner; d == 0 means
                    // the lookup wrapped the whole ring, so every
                    // remaining level does.
                    let run_end = if d == 0 {
                        64
                    } else {
                        (64 - d.leading_zeros()) as usize
                    };
                    while mask != 0 {
                        let b = mask.trailing_zeros() as usize;
                        if b >= run_end {
                            break;
                        }
                        mask &= mask - 1;
                        self.write_finger(id, b, Some(found.node));
                        self.recompute_finger(id.0, b);
                        work.fingers_refreshed += 1;
                    }
                }
                Err(_) => {
                    // Clear the entry and force a re-check so it stays
                    // in the dirty set for a retry next round.
                    self.write_finger(id, bit, None);
                    self.recompute_finger(id.0, bit);
                    work.fingers_refreshed += 1;
                }
            }
        }
    }

    // ---- verification

    /// The current [`RingReport`], read in O(1) from the incrementally
    /// maintained ledger (every membership event and routing write updates
    /// the counters as a delta), so per-round convergence polling costs
    /// O(changes) instead of the seed's O(n log n) full re-scan. Equal to
    /// [`verify_ring_full`](ChordNetwork::verify_ring_full) after every
    /// operation — a property the test suite enforces.
    pub fn verify_ring(&self) -> RingReport {
        let l = &self.ledger;
        RingReport {
            correct_successors: l.succ_ok,
            correct_predecessors: l.pred_ok,
            finger_accuracy: if l.fingers_total == 0 {
                1.0
            } else {
                l.fingers_right as f64 / l.fingers_total as f64
            },
            live: self.live_set.len(),
        }
    }

    /// Checks every live node's routing state against the ground truth
    /// from scratch — the O(n log n) reference implementation the
    /// incremental [`verify_ring`](ChordNetwork::verify_ring) is tested
    /// (and benchmarked) against.
    pub fn verify_ring_full(&self) -> RingReport {
        let mut correct_successors = 0;
        let mut correct_predecessors = 0;
        let mut fingers_total = 0usize;
        let mut fingers_right = 0usize;
        for &id in &self.live_set {
            let (s, p, ft, fr) = self.check_node(id);
            correct_successors += usize::from(s);
            correct_predecessors += usize::from(p);
            fingers_total += ft;
            fingers_right += fr;
        }
        RingReport {
            correct_successors,
            correct_predecessors,
            finger_accuracy: if fingers_total == 0 {
                1.0
            } else {
                fingers_right as f64 / fingers_total as f64
            },
            live: self.live_set.len(),
        }
    }

    /// Spot-checks `k` distinct live nodes drawn uniformly at random,
    /// returning a report over the sample (`live ==` sample size). A
    /// cheap statistical cross-check of the incremental ledger on rings
    /// too large for [`verify_ring_full`](ChordNetwork::verify_ring_full)
    /// to be pleasant.
    ///
    /// Each live node is checked **at most once** per call: the sample is
    /// without replacement by construction (a sparse Fisher–Yates over
    /// the live ranks), so `k >=` the live count degrades to exactly
    /// [`verify_ring_full`](ChordNetwork::verify_ring_full)'s coverage
    /// instead of re-checking some nodes and skipping others — on tiny
    /// rings the two reports are identical. O(k) time and memory; the
    /// live set is never cloned (this runs on rings where an O(n) copy
    /// per poll is the thing being avoided).
    pub fn verify_ring_sampled<R: Rng + ?Sized>(&self, k: usize, rng: &mut R) -> RingReport {
        self.verify_ring_sampled_attributed(k, rng).0
    }

    /// [`verify_ring_sampled`](ChordNetwork::verify_ring_sampled) with
    /// per-node attribution: also returns the ring points of the sampled
    /// nodes that failed any check (wrong successor, wrong predecessor,
    /// or a stale populated finger), in ring-rank order. The health
    /// watchdog pins its breach events on these. Consumes the RNG
    /// identically to the unattributed form.
    pub fn verify_ring_sampled_attributed<R: Rng + ?Sized>(
        &self,
        k: usize,
        rng: &mut R,
    ) -> (RingReport, Vec<u64>) {
        let n = self.live_set.len();
        let k = k.min(n);
        let mut correct_successors = 0;
        let mut correct_predecessors = 0;
        let mut fingers_total = 0usize;
        let mut fingers_right = 0usize;
        let mut defects = Vec::new();
        // Sparse partial Fisher–Yates: the virtual array 0..n starts as
        // the identity and only displaced slots are materialized, so
        // ranks are distinct (a permutation prefix) in O(k) memory for
        // every k, dense or sparse.
        let mut displaced: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::with_capacity(k);
        let mut ranks: Vec<usize> = Vec::with_capacity(k);
        for i in 0..k {
            let j = rng.gen_range(i..n);
            let vi = displaced.get(&i).copied().unwrap_or(i);
            let vj = displaced.get(&j).copied().unwrap_or(j);
            ranks.push(vj);
            // Slot i is never revisited; only j's displacement matters.
            displaced.insert(j, vi);
        }
        ranks.sort_unstable(); // deterministic order for the checks
        for id in ranks.into_iter().map(|r| self.live_set[r]) {
            let (s, p, ft, fr) = self.check_node(id);
            correct_successors += usize::from(s);
            correct_predecessors += usize::from(p);
            fingers_total += ft;
            fingers_right += fr;
            if !s || !p || fr < ft {
                defects.push(self.node(id).point().get());
            }
        }
        let report = RingReport {
            correct_successors,
            correct_predecessors,
            finger_accuracy: if fingers_total == 0 {
                1.0
            } else {
                fingers_right as f64 / fingers_total as f64
            },
            live: k,
        };
        (report, defects)
    }

    /// From-scratch correctness predicates of one live node: (successor
    /// correct, predecessor correct, fingers populated, fingers right).
    fn check_node(&self, id: NodeId) -> (bool, bool, usize, usize) {
        let me = self.node(id).point();
        // True successor: closest live node strictly clockwise.
        let succ_ok = self.first_live_successor(id) == self.truth_strict_successor(id);
        let pred = self
            .node(id)
            .predecessor()
            .filter(|&p| self.node(p).is_alive());
        let pred_ok = pred == self.truth_strict_predecessor(id);
        let mut fingers_total = 0;
        let mut fingers_right = 0;
        for bit in 0..self.finger_bits {
            if let Some(f) = self.node(id).fingers().get(bit) {
                fingers_total += 1;
                let target = self.finger_target(me, bit);
                if Some(f) == self.truth_successor_id(target) {
                    fingers_right += 1;
                }
            }
        }
        (succ_ok, pred_ok, fingers_total, fingers_right)
    }

    fn truth_strict_successor(&self, id: NodeId) -> Option<NodeId> {
        let me = self.node(id).point();
        // A singleton ring node is its own successor.
        self.index
            .strict_successor(me, id)
            .map(|(_, nid)| nid)
            .or(Some(id))
    }

    fn truth_strict_predecessor(&self, id: NodeId) -> Option<NodeId> {
        let me = self.node(id).point();
        self.index
            .strict_predecessor(me, id)
            .map(|(_, nid)| nid)
            .or_else(|| if self.live_len() == 1 { Some(id) } else { None })
    }

    /// Last-resort repair when a node has lost its entire successor list:
    /// the true next live node on the ring, falling back to the node
    /// itself when it is the only survivor.
    ///
    /// In a deployment the orphan would re-join through an out-of-band
    /// bootstrap server that knows some live member; the ground-truth
    /// index stands in for that server. The repair is deliberately
    /// minimal — only the immediate successor pointer is restored, and
    /// subsequent stabilization rounds must rebuild the rest of the list
    /// and the fingers through the protocol itself.
    fn truth_fallback(&self, id: NodeId) -> NodeId {
        self.truth_strict_successor(id).unwrap_or(id)
    }
}

impl fmt::Debug for ChordNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChordNetwork")
            .field("space", &self.space)
            .field("live", &self.live_len())
            .field("arena", &self.arena.len())
            .field("finger_bits", &self.finger_bits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(7)
    }

    fn bootstrap(n: usize, seed: u64) -> ChordNetwork {
        let space = KeySpace::full();
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        ChordNetwork::bootstrap(
            space,
            space.random_points(&mut r, n),
            ChordConfig::default(),
        )
    }

    #[test]
    fn bootstrap_ring_is_converged() {
        let net = bootstrap(64, 1);
        let report = net.verify_ring();
        assert!(report.is_converged(), "{report:?}");
        assert_eq!(report.live, 64);
        assert!((report.finger_accuracy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_successor_lists_follow_ring_order() {
        let net = bootstrap(16, 2);
        for id in net.live_ids() {
            let succ = net.first_live_successor(id).unwrap();
            let truth = net.ground_truth_successor(
                net.space()
                    .add(net.node(id).point(), keyspace::Distance::new(1)),
            );
            assert_eq!(net.node(succ).point(), truth);
            assert_eq!(net.node(id).successors().len(), 8);
        }
    }

    #[test]
    fn bulk_join_from_empty_matches_bootstrap() {
        let space = KeySpace::full();
        let mut r = rng();
        let points = space.random_points(&mut r, 128);
        let boot = ChordNetwork::bootstrap(space, points.clone(), ChordConfig::default());
        let mut bulk = ChordNetwork::new(space, ChordConfig::default());
        let created = bulk.bulk_join(points);
        assert_eq!(created.len(), 128);
        assert_eq!(bulk.live_len(), boot.live_len());
        for id in boot.live_ids() {
            assert_eq!(bulk.node(id).point(), boot.node(id).point());
            assert_eq!(bulk.node(id).successors(), boot.node(id).successors());
            assert_eq!(bulk.node(id).predecessor(), boot.node(id).predecessor());
            assert_eq!(bulk.node(id).fingers(), boot.node(id).fingers());
        }
        assert!(bulk.verify_ring().is_converged());
    }

    #[test]
    fn bulk_join_into_existing_ring_is_converged() {
        let mut net = bootstrap(64, 12);
        let mut r = rng();
        let extra = net.space().random_points(&mut r, 192);
        let created = net.bulk_join(extra);
        assert_eq!(created.len(), 192);
        assert_eq!(net.live_len(), 256);
        let report = net.verify_ring();
        assert!(report.is_converged(), "{report:?}");
        assert!((report.finger_accuracy - 1.0).abs() < 1e-12);
        // Routed lookups agree with the ground truth immediately.
        let start = net.live_ids()[0];
        for _ in 0..50 {
            let target = net.space().random_point(&mut r);
            let hit = net.find_successor(start, target, &mut r).unwrap();
            assert_eq!(hit.point, net.ground_truth_successor(target));
        }
    }

    #[test]
    fn bulk_join_fingers_match_per_bit_index_queries() {
        // The run-walking finger builder must agree with the seed's
        // one-query-per-bit construction on every bit of every node.
        let net = bootstrap(97, 15);
        for id in net.live_ids() {
            let me = net.node(id).point();
            for bit in 0..net.finger_bits() {
                let truth = net.truth_successor_id(net.finger_target(me, bit));
                assert_eq!(
                    net.node(id).fingers().get(bit),
                    truth,
                    "{id} bit {bit} of {me}"
                );
            }
        }
    }

    #[test]
    fn bulk_join_skips_duplicates_and_occupied_points() {
        let mut net = bootstrap(8, 13);
        let taken = net.node(net.live_ids()[0]).point();
        let created = net.bulk_join(vec![taken, Point::new(1), Point::new(1)]);
        assert_eq!(created.len(), 1);
        assert_eq!(net.live_len(), 9);
    }

    #[test]
    fn live_set_tracks_membership_incrementally() {
        let mut net = bootstrap(32, 14);
        assert_eq!(net.live_slice(), &net.live_ids()[..]);
        let victim = net.live_ids()[7];
        net.crash(victim);
        assert!(!net.live_slice().contains(&victim));
        assert_eq!(net.live_len(), 31);
        assert_eq!(net.ring_index().len(), 31);
        let leaver = net.live_ids()[3];
        net.leave(leaver);
        assert_eq!(net.live_len(), 30);
        assert!(net.live_slice().windows(2).all(|w| w[0] < w[1]));
        // The index and live set agree on membership.
        let mut from_index: Vec<NodeId> = net.ring_index().entries().map(|&(_, id)| id).collect();
        from_index.sort_unstable();
        assert_eq!(from_index, net.live_ids());
    }

    #[test]
    fn create_then_join_then_converge() {
        let space = KeySpace::full();
        let mut net = ChordNetwork::new(space, ChordConfig::default());
        let mut r = rng();
        let first = net.create(space.random_point(&mut r));
        for _ in 0..31 {
            let p = space.random_point(&mut r);
            net.join(p, first, &mut r).unwrap();
        }
        assert_eq!(net.live_len(), 32);
        // Joins leave the ring incoherent; maintenance converges it.
        let mut report = net.verify_ring();
        for _ in 0..80 {
            if report.is_converged() {
                break;
            }
            net.maintenance_round(0, &mut r);
            report = net.verify_ring();
        }
        assert!(report.is_converged(), "never converged: {report:?}");
        // Fingers converge once every bit has been refreshed.
        let report = net.converge(&mut r);
        assert!(report.finger_accuracy > 0.99, "{report:?}");
    }

    #[test]
    fn graceful_leave_heals_immediately() {
        let mut net = bootstrap(32, 3);
        let victim = net.live_ids()[5];
        let pred = net.node(victim).predecessor().unwrap();
        net.leave(victim);
        assert!(!net.node(victim).is_alive());
        assert_eq!(net.live_len(), 31);
        // The predecessor's successor pointer skips the departed node.
        let succ_of_pred = net.first_live_successor(pred).unwrap();
        assert_ne!(succ_of_pred, victim);
        let report = net.verify_ring();
        assert_eq!(report.correct_successors, 31, "{report:?}");
    }

    #[test]
    fn crash_is_repaired_by_stabilization() {
        let mut net = bootstrap(32, 4);
        let mut r = rng();
        let victim = net.live_ids()[10];
        net.crash(victim);
        // Immediately after the crash the predecessor's pointer is stale...
        let report_before = net.verify_ring();
        assert!(report_before.correct_successors <= 31);
        // ...maintenance repairs it.
        let report_after = net.converge(&mut r);
        assert!(report_after.is_converged(), "{report_after:?}");
    }

    #[test]
    fn mass_crash_survivable_with_successor_lists() {
        let mut net = bootstrap(64, 5);
        let mut r = rng();
        // Crash 25% of nodes at once (fewer than r = 8 consecutive w.h.p.).
        let victims: Vec<NodeId> = net.live_ids().into_iter().step_by(4).collect();
        for v in victims {
            net.crash(v);
        }
        assert_eq!(net.live_len(), 48);
        for _ in 0..4 {
            net.converge(&mut r);
        }
        let report = net.verify_ring();
        assert!(report.is_converged(), "{report:?}");
    }

    #[test]
    fn incremental_report_matches_full_rescan_through_churn() {
        let mut net = bootstrap(48, 21);
        let mut r = rng();
        assert_eq!(net.verify_ring(), net.verify_ring_full());
        // Crash a batch, poll, repair, poll — the ledger must equal the
        // from-scratch reference at every step.
        for step in 0..6 {
            let victims: Vec<NodeId> = net.live_ids().into_iter().step_by(9).take(2).collect();
            for v in victims {
                net.crash(v);
            }
            assert_eq!(net.verify_ring(), net.verify_ring_full(), "step {step}");
            net.maintenance_round(step, &mut r);
            assert_eq!(net.verify_ring(), net.verify_ring_full(), "step {step}");
            let gw = net.live_ids()[0];
            let p = net.space().random_point(&mut r);
            net.join(p, gw, &mut r).unwrap();
            assert_eq!(net.verify_ring(), net.verify_ring_full(), "step {step}");
        }
    }

    #[test]
    fn colocated_tie_break_transfers_keep_the_ledger_exact() {
        // Regression: removing the lowest-id member of a co-located pair
        // hands the *entire* arc back to the previous distinct point over
        // to the surviving twin (ties resolve by id), so finger rightness
        // and neighbour succ/pred flags far from the collision point must
        // be re-derived — not just the colliding target itself.
        let space = KeySpace::with_modulus(256).unwrap();
        let mut r = rng();
        let mut net = ChordNetwork::bootstrap(
            space,
            vec![Point::new(10), Point::new(100), Point::new(200)],
            ChordConfig::default().with_successor_list_len(2),
        );
        let original = net.truth_successor_id(Point::new(100)).unwrap();
        // Join a second node at the occupied point 100 (higher id).
        let gw = net.truth_successor_id(Point::new(10)).unwrap();
        let twin = net.join(Point::new(100), gw, &mut r).unwrap();
        assert_ne!(twin, original);
        assert_eq!(net.verify_ring(), net.verify_ring_full(), "after twin join");
        // Crash the original (lowest-id) twin: node@10's fingers that
        // target (10, 100) now truly resolve to the surviving twin.
        net.crash(original);
        assert_eq!(
            net.verify_ring(),
            net.verify_ring_full(),
            "after twin crash"
        );
        net.converge(&mut r);
        assert_eq!(net.verify_ring(), net.verify_ring_full(), "after repair");
    }

    #[test]
    fn sampled_verification_agrees_on_a_converged_ring() {
        let net = bootstrap(128, 22);
        let mut r = rng();
        let report = net.verify_ring_sampled(32, &mut r);
        assert_eq!(report.live, 32);
        assert!(report.is_converged(), "{report:?}");
        assert!((report.finger_accuracy - 1.0).abs() < 1e-12);
        // Oversampling clamps to the live count.
        assert_eq!(net.verify_ring_sampled(10_000, &mut r).live, 128);
    }

    #[test]
    fn sampled_verification_is_without_replacement_on_tiny_rings() {
        // Exactly one node is stale after a crash (the successor's
        // predecessor pointer; successor lists skip the dead entry). A
        // full-coverage sample must find exactly that one defect on
        // every seed: a duplicate draw would either double-count the
        // broken node or crowd out a correct one, so this fails if
        // sampling is with replacement.
        let mut net = bootstrap(9, 31);
        net.crash(net.live_ids()[4]);
        let full = net.verify_ring_full();
        assert_eq!(full.correct_predecessors, full.live - 1, "{full:?}");
        for seed in 0..50 {
            let mut r = rand::rngs::StdRng::seed_from_u64(seed);
            // k > live count clamps to full coverage, each node once.
            let sampled = net.verify_ring_sampled(1_000, &mut r);
            assert_eq!(sampled, full, "seed {seed}");
        }
    }

    #[test]
    fn sampled_verification_draws_distinct_partial_samples() {
        // Partial samples on a converged ring: every report is clean and
        // sized exactly k (a with-replacement draw on a ring with one
        // defect has a k-dependent chance of missing it; here we at
        // least pin the sample-size contract across k regimes).
        let net = bootstrap(16, 32);
        let mut r = rng();
        for k in [1, 7, 8, 15, 16] {
            let report = net.verify_ring_sampled(k, &mut r);
            assert_eq!(report.live, k);
            assert_eq!(report.correct_successors, k, "k = {k}");
            assert_eq!(report.correct_predecessors, k, "k = {k}");
        }
    }

    #[test]
    fn routing_bytes_are_a_fraction_of_the_legacy_representation() {
        let mut net = bootstrap(512, 23);
        net.enable_shadow_mirror();
        net.assert_shadow_matches();
        let compact = net.routing_bytes();
        let legacy = net.shadow_routing_bytes().unwrap();
        let ratio = legacy as f64 / compact as f64;
        assert!(
            ratio >= 8.0,
            "memory ratio {ratio:.1} (compact {compact}, legacy {legacy})"
        );
        assert!(net.verifier_bytes() > 0);
    }

    #[test]
    fn shadow_mirror_tracks_protocol_churn() {
        let mut net = bootstrap(40, 24);
        net.enable_shadow_mirror();
        let mut r = rng();
        for round in 0..6 {
            let victim = net.live_ids()[round * 3 % net.live_len()];
            net.crash(victim);
            let gw = net.live_ids()[0];
            let p = net.space().random_point(&mut r);
            net.join(p, gw, &mut r).unwrap();
            net.maintenance_round(round, &mut r);
            net.assert_shadow_matches();
        }
        let leaver = net.live_ids()[1];
        net.leave(leaver);
        net.assert_shadow_matches();
    }

    #[test]
    fn singleton_is_its_own_ring() {
        let space = KeySpace::full();
        let mut net = ChordNetwork::new(space, ChordConfig::default());
        let id = net.create(Point::new(42));
        assert_eq!(net.first_live_successor(id), Some(id));
        let report = net.verify_ring();
        assert!(report.is_converged(), "{report:?}");
    }

    #[test]
    #[should_panic(expected = "non-empty overlay")]
    fn create_twice_panics() {
        let space = KeySpace::full();
        let mut net = ChordNetwork::new(space, ChordConfig::default());
        net.create(Point::new(1));
        net.create(Point::new(2));
    }

    #[test]
    #[should_panic(expected = "already dead")]
    fn double_crash_panics() {
        let mut net = bootstrap(4, 6);
        let id = net.live_ids()[0];
        net.crash(id);
        net.crash(id);
    }

    #[test]
    fn interval_helpers_follow_chord_conventions() {
        let net = bootstrap(4, 7);
        let (a, b, x) = (Point::new(10), Point::new(20), Point::new(15));
        assert!(net.between_open(a, x, b));
        assert!(net.between_open_closed(a, Point::new(20), b));
        assert!(!net.between_open(a, Point::new(20), b));
        assert!(!net.between_open_closed(a, Point::new(10), b));
        // Degenerate (a, a] is the full ring; (a, a) excludes only a.
        assert!(net.between_open_closed(a, x, a));
        assert!(net.between_open(a, x, a));
        assert!(!net.between_open(a, a, a));
    }

    #[test]
    fn metrics_account_messages() {
        let mut net = bootstrap(16, 8);
        let mut r = rng();
        net.maintenance_round(0, &mut r);
        assert!(net.metrics().get("stabilize.messages") > 0);
        assert!(net.metrics().get("notify.messages") > 0);
        assert!(net.metrics().get("check_predecessor.messages") > 0);
    }

    #[test]
    fn node_ids_and_display() {
        let net = bootstrap(3, 9);
        assert_eq!(net.node_ids().len(), 3);
        assert_eq!(NodeId::from_index(2).to_string(), "n2");
        assert_eq!(NodeId::from_index(2).index(), 2);
        assert!(format!("{net:?}").contains("live"));
    }
}
