use core::fmt;
use std::collections::BTreeMap;

use keyspace::Point;

use crate::network::NodeId;

/// Protocol state of one Chord node.
///
/// Mirrors the SIGCOMM paper's per-node state: an identifier on the ring,
/// a successor *list* (for fault tolerance), a predecessor pointer, and a
/// finger table where entry `i` targets `point + 2^i`.
///
/// `NodeState` is a passive record; all protocol logic lives on
/// [`ChordNetwork`](crate::ChordNetwork) so that message accounting happens
/// in one place.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeState {
    point: Point,
    alive: bool,
    predecessor: Option<NodeId>,
    successors: Vec<NodeId>,
    fingers: Vec<Option<NodeId>>,
    store: BTreeMap<Point, Vec<u8>>,
}

impl NodeState {
    /// Creates a fresh, alive node with empty routing state.
    pub(crate) fn new(point: Point, finger_bits: usize) -> NodeState {
        NodeState {
            point,
            alive: true,
            predecessor: None,
            successors: Vec::new(),
            fingers: vec![None; finger_bits],
            store: BTreeMap::new(),
        }
    }

    /// The node's ring identifier.
    pub fn point(&self) -> Point {
        self.point
    }

    /// Whether the node is currently live.
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// The predecessor pointer, if known.
    pub fn predecessor(&self) -> Option<NodeId> {
        self.predecessor
    }

    /// The successor list, nearest first. May transiently contain dead
    /// nodes between failures and the next stabilization round.
    pub fn successors(&self) -> &[NodeId] {
        &self.successors
    }

    /// The first entry of the successor list, if any.
    pub fn successor(&self) -> Option<NodeId> {
        self.successors.first().copied()
    }

    /// The finger table; entry `i` is the believed successor of
    /// `point + 2^i`.
    pub fn fingers(&self) -> &[Option<NodeId>] {
        &self.fingers
    }

    // Crate-internal mutators: protocol logic lives on ChordNetwork.

    pub(crate) fn set_alive(&mut self, alive: bool) {
        self.alive = alive;
    }

    pub(crate) fn set_predecessor(&mut self, pred: Option<NodeId>) {
        self.predecessor = pred;
    }

    pub(crate) fn successors_mut(&mut self) -> &mut Vec<NodeId> {
        &mut self.successors
    }

    pub(crate) fn set_finger(&mut self, i: usize, target: Option<NodeId>) {
        self.fingers[i] = target;
    }

    pub(crate) fn clear_routing(&mut self) {
        self.predecessor = None;
        self.successors.clear();
        for f in &mut self.fingers {
            *f = None;
        }
    }

    /// The key-value pairs this node currently holds (as owner or
    /// replica).
    pub fn store(&self) -> &BTreeMap<Point, Vec<u8>> {
        &self.store
    }

    pub(crate) fn store_mut(&mut self) -> &mut BTreeMap<Point, Vec<u8>> {
        &mut self.store
    }
}

impl fmt::Display for NodeState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Node@{} ({}, {} successors)",
            self.point,
            if self.alive { "alive" } else { "dead" },
            self.successors.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node_has_empty_routing() {
        let n = NodeState::new(Point::new(5), 64);
        assert_eq!(n.point(), Point::new(5));
        assert!(n.is_alive());
        assert_eq!(n.predecessor(), None);
        assert_eq!(n.successor(), None);
        assert!(n.successors().is_empty());
        assert_eq!(n.fingers().len(), 64);
        assert!(n.fingers().iter().all(Option::is_none));
    }

    #[test]
    fn mutators_update_state() {
        let mut n = NodeState::new(Point::new(5), 4);
        n.set_alive(false);
        assert!(!n.is_alive());
        n.set_predecessor(Some(NodeId::from_index(3)));
        assert_eq!(n.predecessor(), Some(NodeId::from_index(3)));
        n.successors_mut().push(NodeId::from_index(7));
        assert_eq!(n.successor(), Some(NodeId::from_index(7)));
        n.set_finger(2, Some(NodeId::from_index(9)));
        assert_eq!(n.fingers()[2], Some(NodeId::from_index(9)));
        n.clear_routing();
        assert_eq!(n.predecessor(), None);
        assert!(n.successors().is_empty());
        assert!(n.fingers().iter().all(Option::is_none));
    }

    #[test]
    fn display_mentions_liveness() {
        let mut n = NodeState::new(Point::new(1), 1);
        assert!(n.to_string().contains("alive"));
        n.set_alive(false);
        assert!(n.to_string().contains("dead"));
    }
}
