//! Adaptive peer scoring and the retry/fallback lookup policy.
//!
//! Two cooperating pieces of routing robustness live here:
//!
//! * [`PeerScores`] — a deterministic per-node responsiveness table fed
//!   by per-hop probe outcomes (the same events `LookupTrace` records):
//!   an integer EWMA of probe success plus a consecutive-failure
//!   counter, **2 bytes per node** total (bench-gated at ≤ 8 B/node).
//!   `find_successor`'s finger-candidate ranking consults it to sink
//!   flaky peers to the back of the probe order — the
//!   `PeerResponseTracker` first-responder idiom, without wall clocks.
//! * [`RetryPolicy`] — bounded re-attempts with deterministic backoff
//!   (latency in ticks, no RNG), then graceful degradation through two
//!   fallback tiers: a successor-walk from the origin, and finally a
//!   verified-quorum resolution that always returns the correct owner
//!   at an attributed extra message cost. A lookup under a policy
//!   *degrades* instead of failing.
//!
//! Both are opt-in on [`ChordNetwork`](crate::ChordNetwork)
//! (`enable_adaptive_routing` / `enable_retry_policy`); with neither
//! enabled every lookup code path is byte-identical to the pre-adaptive
//! overlay.

use crate::network::NodeId;

/// Tuning for the [`PeerScores`] table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// EWMA decay shift `s`: each outcome folds in with weight `1/2^s`
    /// (`ewma ← ewma − ewma/2^s + outcome/2^s`, integer arithmetic).
    pub ewma_shift: u8,
    /// A peer whose EWMA falls below this floor is *penalized* — ranked
    /// behind every non-penalized candidate at the same routing step.
    pub penalty_floor: u8,
    /// Consecutive probe failures that penalize a peer outright,
    /// regardless of its EWMA (fast reaction to a fresh crash).
    pub fail_threshold: u8,
}

impl Default for AdaptiveConfig {
    fn default() -> AdaptiveConfig {
        AdaptiveConfig {
            ewma_shift: 3,
            penalty_floor: 128,
            fail_threshold: 2,
        }
    }
}

/// Maximum score: a peer that has answered every probe (and the prior
/// for a peer never probed).
pub const SCORE_MAX: u8 = u8::MAX;

/// Deterministic per-node responsiveness scores.
///
/// Stored as two lazily grown `u8` columns indexed by arena slot —
/// exactly 2 bytes of state per node ever probed. All arithmetic is
/// integer and RNG-free, so enabling scoring cannot perturb a run's
/// random streams.
#[derive(Debug, Clone)]
pub struct PeerScores {
    config: AdaptiveConfig,
    ewma: Vec<u8>,
    fails: Vec<u8>,
}

impl PeerScores {
    /// An empty table under `config`.
    pub fn new(config: AdaptiveConfig) -> PeerScores {
        PeerScores {
            config,
            ewma: Vec::new(),
            fails: Vec::new(),
        }
    }

    /// The tuning in effect.
    pub fn config(&self) -> AdaptiveConfig {
        self.config
    }

    fn ensure(&mut self, peer: NodeId) {
        let need = peer.index() + 1;
        if self.ewma.len() < need {
            self.ewma.resize(need, SCORE_MAX);
            self.fails.resize(need, 0);
        }
    }

    /// Folds one probe outcome into `peer`'s score.
    pub fn record(&mut self, peer: NodeId, ok: bool) {
        self.ensure(peer);
        let i = peer.index();
        let s = self.config.ewma_shift.min(7) as u32;
        let decayed = self.ewma[i] - (self.ewma[i] >> s);
        self.ewma[i] = decayed + if ok { SCORE_MAX >> s } else { 0 };
        self.fails[i] = if ok {
            0
        } else {
            self.fails[i].saturating_add(1)
        };
    }

    /// Current EWMA score of `peer` ([`SCORE_MAX`] if never probed).
    pub fn score(&self, peer: NodeId) -> u8 {
        self.ewma.get(peer.index()).copied().unwrap_or(SCORE_MAX)
    }

    /// Consecutive failures recorded against `peer`.
    pub fn consecutive_failures(&self, peer: NodeId) -> u8 {
        self.fails.get(peer.index()).copied().unwrap_or(0)
    }

    /// Whether `peer` should be ranked behind non-penalized candidates:
    /// its EWMA is under the floor or its consecutive-failure streak hit
    /// the threshold.
    pub fn penalized(&self, peer: NodeId) -> bool {
        self.consecutive_failures(peer) >= self.config.fail_threshold
            || self.score(peer) < self.config.penalty_floor
    }

    /// Resident bytes of score state (the bench gates this ≤ 8 B/node).
    pub fn bytes(&self) -> usize {
        self.ewma.capacity() + self.fails.capacity()
    }
}

/// Bounded retry + graceful-degradation policy for routed lookups.
///
/// A lookup under a policy runs up to [`max_attempts`](Self::max_attempts)
/// routed attempts (each retry pays a deterministic backoff of
/// `backoff_base << (attempt − 1)` latency ticks; with adaptive scoring
/// enabled, the failed attempt's dead probes re-rank the next attempt's
/// candidates), then degrades through two tiers that trade cost for an
/// answer:
///
/// 1. **successor-walk** — pure `next`-pointer progress from the origin,
///    up to [`walk_limit`](Self::walk_limit) hops: immune to stale
///    fingers, paid per hop;
/// 2. **verified-quorum resolution** — an out-of-band query of the
///    quorum-verified position directory (the same table corroboration
///    `with_verified_positions` trusts), charged at
///    [`quorum_messages`](Self::quorum_messages) messages + one parallel
///    round's latency. Always correct when any live owner exists.
///
/// Every escalation is telemetry-countered (`lookup.retries`,
/// `lookup.fallback_depth`), so degraded answers arrive with their extra
/// cost attributed, not hidden.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Routed attempts before falling back (≥ 1).
    pub max_attempts: u8,
    /// Backoff base, in latency ticks: retry `k` (1-based) waits
    /// `backoff_base << (k − 1)` ticks before re-routing.
    pub backoff_base: u64,
    /// Hop budget of the successor-walk tier (0 skips the tier).
    pub walk_limit: u32,
    /// Message cost charged for the verified-quorum resolution tier.
    pub quorum_messages: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 2,
            backoff_base: 8,
            walk_limit: 32,
            quorum_messages: 8,
        }
    }
}

impl RetryPolicy {
    /// The backoff paid before (1-based) retry `attempt`, in ticks.
    pub fn backoff_ticks(&self, attempt: u8) -> u64 {
        debug_assert!(attempt >= 1);
        self.backoff_base << (u32::from(attempt) - 1).min(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn unprobed_peers_score_max_and_are_not_penalized() {
        let scores = PeerScores::new(AdaptiveConfig::default());
        assert_eq!(scores.score(id(42)), SCORE_MAX);
        assert_eq!(scores.consecutive_failures(id(42)), 0);
        assert!(!scores.penalized(id(42)));
        assert_eq!(scores.bytes(), 0);
    }

    #[test]
    fn successes_hold_the_score_at_max() {
        let mut scores = PeerScores::new(AdaptiveConfig::default());
        for _ in 0..50 {
            scores.record(id(3), true);
        }
        // 255 − 255/8 + 255/8 = 255: a fully responsive peer never decays.
        assert_eq!(scores.score(id(3)), SCORE_MAX);
        assert!(!scores.penalized(id(3)));
    }

    #[test]
    fn failures_decay_the_score_and_trip_the_streak() {
        let mut scores = PeerScores::new(AdaptiveConfig::default());
        scores.record(id(1), false);
        assert_eq!(scores.consecutive_failures(id(1)), 1);
        assert!(
            !scores.penalized(id(1)),
            "one failure is under the default threshold and floor"
        );
        scores.record(id(1), false);
        assert_eq!(scores.consecutive_failures(id(1)), 2);
        assert!(scores.penalized(id(1)), "streak threshold reached");
        assert!(scores.score(id(1)) < SCORE_MAX);
        // A success clears the streak.
        scores.record(id(1), true);
        assert_eq!(scores.consecutive_failures(id(1)), 0);
    }

    #[test]
    fn sustained_failures_sink_below_the_floor_and_recover_slowly() {
        let config = AdaptiveConfig::default();
        let mut scores = PeerScores::new(config);
        for _ in 0..8 {
            scores.record(id(0), false);
        }
        assert!(scores.score(id(0)) < config.penalty_floor);
        // Recovery: successes lift the EWMA back up, but the floor keeps
        // the peer penalized until enough evidence accumulates.
        let mut recoveries = 0;
        while scores.penalized(id(0)) {
            scores.record(id(0), true);
            recoveries += 1;
            assert!(recoveries < 64, "recovery must terminate");
        }
        assert!(
            recoveries > 1,
            "a flaky history must take more than one success to clear"
        );
    }

    #[test]
    fn scoring_is_two_bytes_per_tracked_node() {
        let mut scores = PeerScores::new(AdaptiveConfig::default());
        let n = 10_000;
        for i in 0..n {
            scores.record(id(i), i % 7 == 0);
        }
        // Lazy growth doubles capacity; even so the table stays well
        // under the 8 B/node bench budget.
        assert!(scores.bytes() >= 2 * n);
        assert!(
            (scores.bytes() as f64) / (n as f64) <= 8.0,
            "{} bytes for {n} nodes",
            scores.bytes()
        );
    }

    #[test]
    fn backoff_doubles_per_attempt() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff_ticks(1), policy.backoff_base);
        assert_eq!(policy.backoff_ticks(2), policy.backoff_base * 2);
        assert_eq!(policy.backoff_ticks(3), policy.backoff_base * 4);
    }

    #[test]
    fn determinism_identical_histories_identical_tables() {
        let run = || {
            let mut scores = PeerScores::new(AdaptiveConfig::default());
            for i in 0..100 {
                scores.record(id(i % 13), i % 3 == 0);
            }
            (0..13).map(|i| scores.score(id(i))).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
