//! The pre-arena per-node representation, kept as an opt-in mirror.
//!
//! Before the [`RoutingArena`](crate::arena::RoutingArena) refactor every
//! node owned a `NodeState` record: a `Vec<Option<NodeId>>` finger table,
//! a successor `Vec` and a predecessor field. The shadow reproduces that
//! representation exactly and, when enabled via
//! [`ChordNetwork::enable_shadow_mirror`], is updated through the same
//! write funnels as the arena. It serves two purposes:
//!
//! * **equivalence testing** — the property suite drives randomized
//!   join/fail/stabilize interleavings and asserts the compact views are
//!   bit-for-bit equal to the mirrored plain vectors;
//! * **honest memory accounting** — `BENCH_chord_scale.json`'s bytes/node
//!   baseline is measured from these live vectors, not from a formula.
//!
//! The mirror is diagnostic-only: nothing reads it on any routing path,
//! and a network without the mirror never allocates it.
//!
//! [`ChordNetwork::enable_shadow_mirror`]: crate::ChordNetwork::enable_shadow_mirror

use keyspace::Point;

use crate::network::NodeId;

/// One node in the legacy layout (the old `NodeState`, minus the
/// key-value store, which both representations keep out of the routing
/// accounting).
pub(crate) struct ShadowNode {
    pub(crate) point: Point,
    pub(crate) alive: bool,
    pub(crate) predecessor: Option<NodeId>,
    pub(crate) successors: Vec<NodeId>,
    pub(crate) fingers: Vec<Option<NodeId>>,
}

/// The whole-network legacy mirror.
pub(crate) struct Shadow {
    pub(crate) nodes: Vec<ShadowNode>,
    finger_bits: usize,
}

impl Shadow {
    pub(crate) fn new(finger_bits: usize) -> Shadow {
        Shadow {
            nodes: Vec::new(),
            finger_bits,
        }
    }

    pub(crate) fn push(&mut self, point: Point) {
        self.nodes.push(ShadowNode {
            point,
            alive: true,
            predecessor: None,
            successors: Vec::new(),
            fingers: vec![None; self.finger_bits],
        });
    }

    /// Live bytes of the legacy routing representation: the per-node
    /// record plus its finger and successor heap blocks (lengths, not
    /// capacities — conservative in the mirror's favour).
    pub(crate) fn routing_bytes(&self) -> usize {
        use std::mem::size_of;
        self.nodes
            .iter()
            .map(|n| {
                size_of::<ShadowNode>()
                    + n.fingers.len() * size_of::<Option<NodeId>>()
                    + n.successors.len() * size_of::<NodeId>()
            })
            .sum()
    }
}
