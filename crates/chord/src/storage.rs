//! Key-value storage over the Chord overlay — the DHT's actual job.
//!
//! The paper treats the DHT as a lookup substrate; this module completes
//! the substrate into the system Chord was built to be (SIGCOMM §4):
//! values are stored at the key's successor and replicated across its
//! successor list, so that data survives the node failures the sampling
//! experiments inject.
//!
//! * [`ChordNetwork::put`] — route to the key's owner, write there and to
//!   its `replicas − 1` successors.
//! * [`ChordNetwork::get`] — route to the owner; on a miss (e.g. a node
//!   joined between the key and the old owner moments ago) fall back to
//!   the owner's successors, paying one message per probe.
//! * [`ChordNetwork::replication_round`] — anti-entropy: each holder
//!   pushes misplaced keys counter-clockwise toward the true owner and
//!   re-replicates owned keys to its successor list. Run alongside
//!   stabilization, it restores the replication invariant after churn.
//! * Graceful [`leave`](ChordNetwork::leave) hands a node's data to its
//!   successor; a crash loses the node's copies (replicas recover them).

use keyspace::Point;
use peer_sampling::Cost;
use rand::Rng;

use crate::network::{ChordNetwork, NodeId};
use crate::LookupError;

/// Receipt of a completed put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PutReceipt {
    /// The node that owns the key (head replica).
    pub owner: NodeId,
    /// Number of replicas actually written (≤ requested; bounded by the
    /// live successor list).
    pub replicas_written: usize,
    /// Messages/latency spent (routing + one write per replica).
    pub cost: Cost,
}

/// Result of a completed get.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GetResult {
    /// The value, if any replica held it.
    pub value: Option<Vec<u8>>,
    /// The node that answered.
    pub answered_by: NodeId,
    /// Messages/latency spent (routing + replica probes).
    pub cost: Cost,
}

impl ChordNetwork {
    /// Stores `value` under `key`, replicated `replicas` times.
    ///
    /// # Errors
    ///
    /// Propagates routing failures from the owner lookup.
    ///
    /// # Panics
    ///
    /// Panics if `replicas == 0`.
    pub fn put<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        key: Point,
        value: Vec<u8>,
        replicas: usize,
        rng: &mut R,
    ) -> Result<PutReceipt, LookupError> {
        assert!(replicas > 0, "need at least one replica");
        let hit = self.find_successor(from, key, rng)?;
        let mut cost = hit.cost;
        let latency = self.config().latency();

        // Write to the owner, then walk its live successors.
        let mut targets = vec![hit.node];
        for s in self.node(hit.node).successors().iter() {
            if targets.len() >= replicas {
                break;
            }
            if self.node(s).is_alive() && !targets.contains(&s) {
                targets.push(s);
            }
        }
        for &t in &targets {
            cost.messages += 1;
            cost.latency += latency.sample(rng).ticks();
            self.store_mut(t).insert(key, value.clone());
        }
        self.metrics().recorder().incr(self.counters().storage_put);
        Ok(PutReceipt {
            owner: hit.node,
            replicas_written: targets.len(),
            cost,
        })
    }

    /// Retrieves the value under `key`.
    ///
    /// Routes to the current owner; if the owner misses (stale placement
    /// after churn), probes its successor list — the replicas — before
    /// reporting absence.
    ///
    /// # Errors
    ///
    /// Propagates routing failures from the owner lookup.
    pub fn get<R: Rng + ?Sized>(
        &self,
        from: NodeId,
        key: Point,
        rng: &mut R,
    ) -> Result<GetResult, LookupError> {
        let hit = self.find_successor(from, key, rng)?;
        let mut cost = hit.cost;
        let latency = self.config().latency();
        self.metrics().recorder().incr(self.counters().storage_get);

        let mut candidates = vec![hit.node];
        candidates.extend(self.node(hit.node).successors().iter());
        for &c in &candidates {
            if !self.node(c).is_alive() {
                continue;
            }
            cost.messages += 1;
            cost.latency += latency.sample(rng).ticks();
            if let Some(value) = self.node(c).store().get(&key) {
                return Ok(GetResult {
                    value: Some(value.clone()),
                    answered_by: c,
                    cost,
                });
            }
        }
        Ok(GetResult {
            value: None,
            answered_by: hit.node,
            cost,
        })
    }

    /// One anti-entropy round at node `id`:
    ///
    /// 1. keys this node holds but does not own migrate one step
    ///    counter-clockwise (toward the true owner) via the predecessor;
    /// 2. keys this node owns are re-pushed to its live successor list.
    ///
    /// Interleaved with stabilization, repeated rounds restore the
    /// "owner + `r − 1` successors" replication invariant after joins,
    /// leaves and crashes.
    pub fn replication_round(&mut self, id: NodeId, replicas: usize) {
        if !self.node(id).is_alive() {
            return;
        }
        let my_point = self.node(id).point();
        let pred = self
            .node(id)
            .predecessor()
            .filter(|&p| p != id && self.node(p).is_alive());

        // Partition held keys into owned and misplaced. A key k is owned
        // by this node iff k ∈ (pred, me] (all keys owned if no pred).
        let keys: Vec<Point> = self.node(id).store().keys().copied().collect();
        let mut owned = Vec::new();
        let mut misplaced = Vec::new();
        for k in keys {
            let is_owner = match pred {
                Some(p) => self.between_open_closed(self.node(p).point(), k, my_point),
                None => true,
            };
            if is_owner {
                owned.push(k);
            } else {
                misplaced.push(k);
            }
        }

        // (1) Migrate misplaced keys to the predecessor, which is strictly
        // closer to (or is) the owner. Keep our copy: we may legitimately
        // be a replica. One message per migrated key.
        if let Some(p) = pred {
            for k in &misplaced {
                let value = self.node(id).store()[k].clone();
                self.store_mut(p).insert(*k, value);
                self.metrics()
                    .recorder()
                    .incr(self.counters().storage_migrate);
            }
        }

        // (2) Re-replicate owned keys to the live successor list.
        let succs: Vec<NodeId> = self
            .node(id)
            .successors()
            .iter()
            .filter(|&s| s != id && self.node(s).is_alive())
            .take(replicas.saturating_sub(1))
            .collect();
        for k in &owned {
            let value = self.node(id).store()[k].clone();
            for &s in &succs {
                if !self.node(s).store().contains_key(k) {
                    self.store_mut(s).insert(*k, value.clone());
                    self.metrics()
                        .recorder()
                        .incr(self.counters().storage_replicate);
                }
            }
        }
    }

    /// Total key copies held across live nodes (for replication-factor
    /// assertions in tests).
    pub fn stored_copies(&self, key: Point) -> usize {
        self.live_ids()
            .into_iter()
            .filter(|&id| self.node(id).store().contains_key(&key))
            .count()
    }

    /// Hands all of `id`'s data to `target` (used by graceful leave).
    pub(crate) fn hand_off_store(&mut self, id: NodeId, target: NodeId) {
        let data: Vec<(Point, Vec<u8>)> = self
            .node(id)
            .store()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        let store = self.store_mut(target);
        for (k, v) in data {
            store.entry(k).or_insert(v);
        }
        self.store_mut(id).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChordConfig;
    use keyspace::KeySpace;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(71)
    }

    fn bootstrap(n: usize, seed: u64) -> ChordNetwork {
        let space = KeySpace::full();
        let mut r = rand::rngs::StdRng::seed_from_u64(seed);
        ChordNetwork::bootstrap(
            space,
            space.random_points(&mut r, n),
            ChordConfig::default(),
        )
    }

    #[test]
    fn put_get_round_trip() {
        let mut net = bootstrap(64, 1);
        let mut r = rng();
        let from = net.live_ids()[0];
        let key = net.space().random_point(&mut r);
        let receipt = net.put(from, key, b"hello".to_vec(), 3, &mut r).unwrap();
        assert_eq!(receipt.replicas_written, 3);
        assert_eq!(
            net.node(receipt.owner).point(),
            net.ground_truth_successor(key)
        );
        let got = net.get(from, key, &mut r).unwrap();
        assert_eq!(got.value.as_deref(), Some(b"hello".as_ref()));
        assert_eq!(got.answered_by, receipt.owner);
        assert!(got.cost.messages > 0);
    }

    #[test]
    fn missing_key_returns_none() {
        let net = bootstrap(32, 2);
        let mut r = rng();
        let from = net.live_ids()[0];
        let got = net.get(from, Point::new(12345), &mut r).unwrap();
        assert_eq!(got.value, None);
    }

    #[test]
    fn value_survives_owner_crash_via_replicas() {
        let mut net = bootstrap(64, 3);
        let mut r = rng();
        let from = net.live_ids()[0];
        let key = net.space().random_point(&mut r);
        let receipt = net.put(from, key, b"durable".to_vec(), 4, &mut r).unwrap();
        let survivor_from = net
            .live_ids()
            .into_iter()
            .find(|&id| id != receipt.owner)
            .unwrap();
        net.crash(receipt.owner);
        // Without any repair, the get must fall back to a replica.
        let got = net.get(survivor_from, key, &mut r).unwrap();
        assert_eq!(got.value.as_deref(), Some(b"durable".as_ref()));
        assert_ne!(got.answered_by, receipt.owner);
    }

    #[test]
    fn replication_round_restores_replica_count_after_crash() {
        let mut net = bootstrap(64, 4);
        let mut r = rng();
        let from = net.live_ids()[0];
        let key = net.space().random_point(&mut r);
        net.put(from, key, b"x".to_vec(), 3, &mut r).unwrap();
        assert_eq!(net.stored_copies(key), 3);
        // Crash one replica; repair restores the factor.
        let owner = net.truth_successor_id(key).unwrap();
        net.crash(owner);
        assert_eq!(net.stored_copies(key), 2);
        for _ in 0..3 {
            net.converge(&mut r);
            for id in net.live_ids() {
                net.replication_round(id, 3);
            }
        }
        assert!(
            net.stored_copies(key) >= 3,
            "replication not restored: {} copies",
            net.stored_copies(key)
        );
        // And the new owner holds it.
        let new_owner = net.truth_successor_id(key).unwrap();
        assert!(net.node(new_owner).store().contains_key(&key));
    }

    #[test]
    fn join_migrates_ownership_through_anti_entropy() {
        let mut net = bootstrap(32, 5);
        let mut r = rng();
        let from = net.live_ids()[0];
        let key = net.space().random_point(&mut r);
        net.put(from, key, b"moving".to_vec(), 3, &mut r).unwrap();
        let old_owner = net.truth_successor_id(key).unwrap();

        // Join a node whose point falls between the key and its owner, so
        // ownership must transfer to the newcomer.
        let space = net.space();
        let owner_point = net.node(old_owner).point();
        let mid = space.add(
            key,
            keyspace::Distance::new((space.distance(key, owner_point).get()) / 2),
        );
        let newcomer = net.join(mid, from, &mut r).unwrap();
        for _ in 0..2 {
            net.converge(&mut r);
            for id in net.live_ids() {
                net.replication_round(id, 3);
            }
        }
        assert_eq!(net.truth_successor_id(key), Some(newcomer));
        assert!(
            net.node(newcomer).store().contains_key(&key),
            "anti-entropy must hand the key to the new owner"
        );
        // Reads route to the newcomer and succeed directly.
        let got = net.get(from, key, &mut r).unwrap();
        assert_eq!(got.value.as_deref(), Some(b"moving".as_ref()));
    }

    #[test]
    fn graceful_leave_hands_off_data() {
        let mut net = bootstrap(32, 6);
        let mut r = rng();
        let from = net.live_ids()[0];
        let key = net.space().random_point(&mut r);
        // Single replica: the handoff is the only thing keeping it alive.
        let receipt = net.put(from, key, b"handoff".to_vec(), 1, &mut r).unwrap();
        assert_eq!(net.stored_copies(key), 1);
        let reader = net
            .live_ids()
            .into_iter()
            .find(|&id| id != receipt.owner)
            .unwrap();
        net.leave(receipt.owner);
        let got = net.get(reader, key, &mut r).unwrap();
        assert_eq!(got.value.as_deref(), Some(b"handoff".as_ref()));
    }

    #[test]
    fn bulk_workload_all_keys_retrievable() {
        let mut net = bootstrap(128, 7);
        let mut r = rng();
        let from = net.live_ids()[0];
        let keys: Vec<Point> = (0..100).map(|_| net.space().random_point(&mut r)).collect();
        for (i, &k) in keys.iter().enumerate() {
            net.put(from, k, vec![i as u8], 3, &mut r).unwrap();
        }
        for (i, &k) in keys.iter().enumerate() {
            let got = net.get(from, k, &mut r).unwrap();
            assert_eq!(got.value.as_deref(), Some([i as u8].as_ref()), "key {i}");
        }
    }

    #[test]
    fn replicas_capped_by_requested_count() {
        let mut net = bootstrap(16, 8);
        let mut r = rng();
        let from = net.live_ids()[0];
        let key = net.space().random_point(&mut r);
        let receipt = net.put(from, key, b"one".to_vec(), 1, &mut r).unwrap();
        assert_eq!(receipt.replicas_written, 1);
        assert_eq!(net.stored_copies(key), 1);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics() {
        let mut net = bootstrap(8, 9);
        let mut r = rng();
        let from = net.live_ids()[0];
        let _ = net.put(from, Point::new(1), vec![], 0, &mut r);
    }
}
