//! Health/SLO watchdog: per-window overlay health checks with attributed
//! breach/recovery events.
//!
//! The paper's guarantees (O(log n) routing, unbiased draws) are
//! steady-state claims; everything interesting under churn or attack is a
//! *transient*. The [`Watchdog`] closes one telemetry observation window
//! per maintenance round (or per draw batch), spot-checks the ring with
//! [`ChordNetwork::verify_ring_sampled`]-style sampling, evaluates the
//! SLO rules in [`SloConfig`], and emits edge-triggered [`HealthEvent`]s
//! — one breach edge when a rule first fails, one recovery edge when it
//! next holds — attributed to the offending nodes and the cost scope the
//! rule observes. Events mirror into the network recorder's health log
//! ([`telemetry::Recorder::push_health`]) so breach dumps travel with the
//! flight traces.
//!
//! Determinism: the watchdog draws from its **own** RNG (seeded by the
//! caller from a dedicated stream), so attaching it perturbs neither the
//! churn nor the draw streams — a record produced with a watchdog
//! attached is byte-identical across runs and thread schedules.

use rand::rngs::StdRng;
use rand::SeedableRng;
use telemetry::{HealthEventRecord, TimeSeries, WindowSnapshot};

use crate::network::ChordNetwork;

/// Which SLO rule a [`HealthEvent`] is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloRule {
    /// Per-window lookup hop p99 must stay ≤ `factor·log2(live) + slack`
    /// — the paper's O(log n) routing bound as a *windowed* gate.
    HopTail,
    /// Sampled ring-defect fraction — the share of spot-checked nodes
    /// failing *any* check (wrong first-live successor, wrong
    /// predecessor, or a stale finger) — must stay ≤ the configured
    /// bound. Per-finger staleness alone is insensitive to crash bursts
    /// (successor lists absorb most of the damage), so the rule gates on
    /// whole-node defects.
    Staleness,
    /// Chi-square drift: the window's draw histogram must not reject the
    /// uniform null at the configured significance.
    ChiDrift,
    /// Windowed lookup success ratio must stay ≥ the configured floor —
    /// the graceful-degradation gate for correlated-outage scenarios.
    /// Only evaluated on windows fed an outcome tally (see
    /// [`Watchdog::observe_with_outcomes`]); breaches are attributed to
    /// the suspected offenders (e.g. a crashed failure domain's members).
    SuccessRatio,
    /// Async-engine in-flight age: the window's `engine.inflight_age`
    /// p99 (submission-to-completion in simulated ticks) must stay ≤
    /// `factor · log2(live) · mean hop latency`. This is the
    /// delay-fault gate: a slow-but-alive sector fails no lookup and
    /// moves no success ratio — the *only* externally visible symptom is
    /// requests aging on the wire, which this rule detects. Evaluated
    /// only on windows where the engine recorded enough completions.
    InflightAge,
}

impl SloRule {
    /// Stable lowercase rule name used in rendered events and reports.
    pub fn name(self) -> &'static str {
        match self {
            SloRule::HopTail => "hop_p99",
            SloRule::Staleness => "staleness",
            SloRule::ChiDrift => "chi_drift",
            SloRule::SuccessRatio => "success_ratio",
            SloRule::InflightAge => "inflight_age",
        }
    }

    /// The cost-attribution scope label this rule observes.
    pub fn scope(self) -> &'static str {
        match self {
            SloRule::HopTail => "lookup",
            SloRule::Staleness => "maintenance.round",
            SloRule::ChiDrift => "draw.defended",
            SloRule::SuccessRatio => "lookup",
            SloRule::InflightAge => "engine",
        }
    }
}

/// Breach or recovery edge of a [`HealthEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthKind {
    /// The rule just went from holding to violated.
    Breach,
    /// The rule just went from violated back to holding.
    Recover,
}

/// One attributed, edge-triggered health event.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthEvent {
    /// Watchdog window index (0 = first observed window; fault injection
    /// in the gated scenarios starts at window 0).
    pub window: u64,
    /// The rule that fired.
    pub rule: SloRule,
    /// Breach or recovery edge.
    pub kind: HealthKind,
    /// The measured value checked against the bound (a hop count, a
    /// staleness fraction, or a chi-square p-value).
    pub measured: f64,
    /// The bound in force at evaluation time.
    pub bound: f64,
    /// Ring points of sampled nodes failing verification this window
    /// (capped at 8; empty for rules without per-node attribution).
    pub nodes: Vec<u64>,
}

impl HealthEvent {
    /// Compact single-line rendering, byte-stable for a given event —
    /// record fields and the 3-run identity test serialize this.
    pub fn render(&self) -> String {
        let kind = match self.kind {
            HealthKind::Breach => "breach",
            HealthKind::Recover => "recover",
        };
        let nodes = if self.nodes.is_empty() {
            String::new()
        } else {
            let hex: Vec<String> = self.nodes.iter().map(|n| format!("{n:016x}")).collect();
            format!(" nodes=[{}]", hex.join(","))
        };
        format!(
            "w{} {kind} {} measured={:.6} bound={:.6} scope={}{nodes}",
            self.window,
            self.rule.name(),
            self.measured,
            self.bound,
            self.rule.scope(),
        )
    }

    fn to_record(&self) -> HealthEventRecord {
        HealthEventRecord {
            window: self.window,
            rule: self.rule.name().to_owned(),
            breach: self.kind == HealthKind::Breach,
            measured: self.measured,
            bound: self.bound,
            scope: self.rule.scope().to_owned(),
            nodes: self.nodes.clone(),
        }
    }
}

/// SLO rule parameters. The defaults encode the repo's standing gates:
/// the hop bound matches e16's `hop_tail_violation` check and the
/// staleness bound matches the scale-arm verdict gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Hop p99 bound is `hop_p99_factor · log2(live) + hop_p99_slack`.
    pub hop_p99_factor: f64,
    /// Additive slack of the hop bound.
    pub hop_p99_slack: f64,
    /// The hop rule is only evaluated when the window recorded at least
    /// this many lookups (tiny windows have meaningless tails).
    pub min_hop_samples: u64,
    /// Sampled ring-defect fraction bound: the share of spot-checked
    /// nodes failing any ring check (see [`SloRule::Staleness`]). A
    /// converged ring measures 0.0, a healthy batched-maintenance arm
    /// idles near 0.2–0.4 under churn (one stale finger marks the whole
    /// node defective), and a 25% crash burst measures ≈ 0.7 — the
    /// default separates the last from the first two.
    pub max_staleness: f64,
    /// Live nodes spot-checked per window (sampled without replacement).
    pub sample_k: usize,
    /// Chi-square significance: the drift rule breaches when the uniform
    /// null is rejected with `p < chi_alpha`.
    pub chi_alpha: f64,
    /// The drift rule is only evaluated when the window holds at least
    /// this many draws *per category* on average — below that the
    /// chi-square approximation is noise.
    pub chi_min_per_cell: f64,
    /// Success-ratio floor: the success-ratio rule breaches when the
    /// window's `ok / (ok + failed)` lookup ratio falls below this.
    pub min_success_ratio: f64,
    /// The success-ratio rule is only evaluated when the window tallied
    /// at least this many lookups (tiny windows have meaningless ratios).
    pub min_success_samples: u64,
    /// In-flight age p99 bound is `engine_age_factor · log2(live) ·
    /// mean-hop-latency ticks` — a lookup is expected to spend O(log n)
    /// mean hop latencies on the wire; the factor is the tolerated tail
    /// stretch over that. Sized so retries and queueing under load pass
    /// while an order-of-magnitude slow sector breaches.
    pub engine_age_factor: f64,
    /// The in-flight-age rule is only evaluated when the window recorded
    /// at least this many engine completions.
    pub min_age_samples: u64,
    /// Retained windows in the watchdog's [`TimeSeries`] ring.
    pub series_capacity: usize,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            hop_p99_factor: 4.0,
            hop_p99_slack: 4.0,
            min_hop_samples: 16,
            max_staleness: 0.5,
            sample_k: 64,
            chi_alpha: 1e-3,
            chi_min_per_cell: 4.0,
            min_success_ratio: 0.99,
            min_success_samples: 16,
            engine_age_factor: 6.0,
            min_age_samples: 32,
            series_capacity: 256,
        }
    }
}

/// Per-window lookup outcome tally, fed to the watchdog's success-ratio
/// rule via [`Watchdog::observe_with_outcomes`] by harnesses that track
/// draw success (the domain-outage scenarios in particular).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LookupOutcomes {
    /// Lookups that resolved this window (degraded answers included —
    /// graceful degradation *is* success, at attributed extra cost).
    pub ok: u64,
    /// Lookups that returned an error this window.
    pub failed: u64,
    /// Ring points of suspected offenders — e.g. the members of the
    /// failure domain currently down — attached to breach events
    /// (capped at 8).
    pub suspects: Vec<u64>,
}

impl LookupOutcomes {
    /// Total lookups tallied.
    pub fn total(&self) -> u64 {
        self.ok + self.failed
    }

    /// `ok / total` (1.0 for an empty tally).
    pub fn ratio(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            self.ok as f64 / self.total() as f64
        }
    }
}

/// Gauge names the watchdog stamps into every observed window.
pub mod gauge {
    /// Live node count at observation time.
    pub const LIVE: &str = "live";
    /// Dirty-set backlog (batched maintenance only; 0 otherwise).
    pub const BACKLOG: &str = "backlog";
    /// Sampled finger staleness (`1 − finger_accuracy`).
    pub const STALENESS: &str = "staleness";
    /// Sampled ring-defect fraction (share of spot-checked nodes failing
    /// any ring check) — the measure the staleness SLO rule gates on.
    pub const DEFECT_RATE: &str = "defect_rate";
    /// Window hop p50 (0 when the window recorded no lookups).
    pub const HOP_P50: &str = "hop_p50";
    /// Window hop p99 (0 when the window recorded no lookups).
    pub const HOP_P99: &str = "hop_p99";
    /// Forged/captured hops per recorded hop in the window.
    pub const FORGED_RATE: &str = "forged_rate";
    /// Mean protocol messages per draw in the window (draw windows only).
    pub const DRAW_COST: &str = "draw_cost";
    /// Windowed lookup success ratio (outcome-fed windows only).
    pub const SUCCESS: &str = "success_ratio";
    /// Window p99 of async-engine in-flight age in ticks (engine-fed
    /// windows only).
    pub const AGE_P99: &str = "engine_age_p99";
}

const RULES: [SloRule; 5] = [
    SloRule::HopTail,
    SloRule::Staleness,
    SloRule::ChiDrift,
    SloRule::SuccessRatio,
    SloRule::InflightAge,
];

/// Maximum offending nodes attached to one event.
const ATTRIBUTION_CAP: usize = 8;

/// Per-window health/SLO watchdog over a [`ChordNetwork`].
///
/// Feed it one closed [`WindowSnapshot`] per observation point via
/// [`Watchdog::observe`]; it stamps the longitudinal gauges, evaluates
/// the rules, pushes the window into its [`TimeSeries`], and emits
/// edge-triggered [`HealthEvent`]s. See the module docs for the
/// determinism contract.
#[derive(Debug)]
pub struct Watchdog {
    config: SloConfig,
    rng: StdRng,
    window: u64,
    breached: [bool; RULES.len()],
    first_breach: Option<u64>,
    last_recover: Option<u64>,
    breaches: u64,
    events: Vec<HealthEvent>,
    series: TimeSeries,
}

impl Watchdog {
    /// Creates a watchdog with its own RNG stream. Callers derive `seed`
    /// from a dedicated stream so attaching the watchdog perturbs no
    /// other randomness in the run.
    pub fn new(config: SloConfig, seed: u64) -> Watchdog {
        Watchdog {
            config,
            rng: StdRng::seed_from_u64(seed),
            window: 0,
            breached: [false; RULES.len()],
            first_breach: None,
            last_recover: None,
            breaches: 0,
            events: Vec::new(),
            series: TimeSeries::new(config.series_capacity.max(1)),
        }
    }

    /// The active rule parameters.
    pub fn config(&self) -> &SloConfig {
        &self.config
    }

    /// Observes one closed window: stamps gauges, evaluates every rule,
    /// stores the window, and emits breach/recovery events (also mirrored
    /// into `net`'s recorder health log). `draw_counts`, when given, is
    /// the window's per-live-peer draw tally for the chi-square drift
    /// rule (churn-phase windows pass `None`).
    ///
    /// The window's index is rewritten to the watchdog's own 0-based
    /// clock, so event windows and series indices agree regardless of
    /// how many recorder windows elapsed before attachment.
    pub fn observe(
        &mut self,
        net: &ChordNetwork,
        window: WindowSnapshot,
        draw_counts: Option<&[u64]>,
    ) {
        self.observe_with_outcomes(net, window, draw_counts, None);
    }

    /// [`observe`](Watchdog::observe) plus a per-window lookup outcome
    /// tally for the success-ratio rule. Windows observed without a tally
    /// leave that rule unevaluated (its state unchanged) and stamp no
    /// success gauge, so harnesses that never tally are byte-identical to
    /// the pre-rule watchdog.
    pub fn observe_with_outcomes(
        &mut self,
        net: &ChordNetwork,
        mut window: WindowSnapshot,
        draw_counts: Option<&[u64]>,
        outcomes: Option<&LookupOutcomes>,
    ) {
        window.index = self.window;
        let live = net.live_len();

        // Sampled spot-check runs every window (fixed RNG consumption),
        // with per-node defect attribution.
        let (report, mut defects) =
            net.verify_ring_sampled_attributed(self.config.sample_k, &mut self.rng);
        let defect_rate = defects.len() as f64 / report.live.max(1) as f64;
        defects.truncate(ATTRIBUTION_CAP);
        let staleness = 1.0 - report.finger_accuracy;

        // Window hop tail off the per-window delta histogram.
        let (hop_samples, hop_p50, hop_p99) = match window.hist("lookup.hops") {
            Some(h) if !h.is_empty() => (h.count(), h.p50(), h.p99()),
            _ => (0, 0, 0),
        };
        let hops_delta = window.counter("lookup.hops");
        let forged_delta =
            window.counter("lookup.forged_position") + window.counter("lookup.byzantine_claim");
        let forged_rate = if hops_delta == 0 {
            0.0
        } else {
            forged_delta as f64 / hops_delta as f64
        };

        window.set_gauge(gauge::LIVE, live as f64);
        window.set_gauge(gauge::BACKLOG, net.maintenance_backlog() as f64);
        window.set_gauge(gauge::STALENESS, staleness);
        window.set_gauge(gauge::DEFECT_RATE, defect_rate);
        window.set_gauge(gauge::HOP_P50, hop_p50 as f64);
        window.set_gauge(gauge::HOP_P99, hop_p99 as f64);
        window.set_gauge(gauge::FORGED_RATE, forged_rate);
        if let Some(counts) = draw_counts {
            let draws: u64 = counts.iter().sum();
            if draws > 0 {
                let messages: u64 = window
                    .counters
                    .iter()
                    .filter(|(name, _)| name.ends_with(".messages") || *name == "lookup.hops")
                    .map(|(_, &v)| v)
                    .sum();
                window.set_gauge(gauge::DRAW_COST, messages as f64 / draws as f64);
            }
        }
        if let Some(tally) = outcomes {
            window.set_gauge(gauge::SUCCESS, tally.ratio());
        }

        // Engine in-flight age tail, from the per-window delta histogram
        // the async engine feeds. Windows without engine activity stamp
        // no gauge and leave the rule unevaluated, so sync-only
        // harnesses stay byte-identical to the pre-rule watchdog.
        let (age_samples, age_p99) = match window.hist("engine.inflight_age") {
            Some(h) if !h.is_empty() => (h.count(), h.p99()),
            _ => (0, 0),
        };
        if age_samples > 0 {
            window.set_gauge(gauge::AGE_P99, age_p99 as f64);
        }

        // Rule evaluation, fixed order. `None` = not evaluable this
        // window (state unchanged); `Some((violated, measured, bound,
        // nodes))` drives the breach/recover edge detector.
        for rule in RULES {
            let verdict = match rule {
                SloRule::HopTail => (hop_samples >= self.config.min_hop_samples).then(|| {
                    let bound = self.config.hop_p99_factor * (live.max(2) as f64).log2()
                        + self.config.hop_p99_slack;
                    (hop_p99 as f64 > bound, hop_p99 as f64, bound, Vec::new())
                }),
                SloRule::Staleness => Some((
                    defect_rate > self.config.max_staleness,
                    defect_rate,
                    self.config.max_staleness,
                    defects.clone(),
                )),
                SloRule::ChiDrift => draw_counts.and_then(|counts| {
                    let total: u64 = counts.iter().sum();
                    let enough = counts.len() >= 2
                        && total as f64 >= self.config.chi_min_per_cell * counts.len() as f64;
                    if !enough {
                        return None;
                    }
                    let p = stats::ChiSquare::uniform(counts).ok()?.p_value();
                    Some((
                        p < self.config.chi_alpha,
                        p,
                        self.config.chi_alpha,
                        Vec::new(),
                    ))
                }),
                SloRule::SuccessRatio => outcomes.and_then(|tally| {
                    if tally.total() < self.config.min_success_samples {
                        return None;
                    }
                    let mut suspects = tally.suspects.clone();
                    suspects.truncate(ATTRIBUTION_CAP);
                    Some((
                        tally.ratio() < self.config.min_success_ratio,
                        tally.ratio(),
                        self.config.min_success_ratio,
                        suspects,
                    ))
                }),
                SloRule::InflightAge => (age_samples >= self.config.min_age_samples).then(|| {
                    let bound = self.config.engine_age_factor
                        * (live.max(2) as f64).log2()
                        * net.config().latency().mean_ticks();
                    (age_p99 as f64 > bound, age_p99 as f64, bound, Vec::new())
                }),
            };
            if let Some((violated, measured, bound, nodes)) = verdict {
                self.edge(net, rule, violated, measured, bound, nodes);
            }
        }

        self.series.push(window);
        self.window += 1;
    }

    fn edge(
        &mut self,
        net: &ChordNetwork,
        rule: SloRule,
        violated: bool,
        measured: f64,
        bound: f64,
        nodes: Vec<u64>,
    ) {
        let slot = RULES.iter().position(|&r| r == rule).expect("known rule");
        if violated == self.breached[slot] {
            return;
        }
        self.breached[slot] = violated;
        let kind = if violated {
            self.breaches += 1;
            self.first_breach.get_or_insert(self.window);
            HealthKind::Breach
        } else {
            self.last_recover = Some(self.window);
            HealthKind::Recover
        };
        let event = HealthEvent {
            window: self.window,
            rule,
            kind,
            measured,
            bound,
            nodes,
        };
        net.metrics().recorder().push_health(event.to_record());
        self.events.push(event);
    }

    /// Every event emitted so far, in emission order.
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// The windowed series (ring of the most recent windows).
    pub fn series(&self) -> &TimeSeries {
        &self.series
    }

    /// Windows observed so far.
    pub fn windows_observed(&self) -> u64 {
        self.window
    }

    /// Total breach edges emitted.
    pub fn breaches(&self) -> u64 {
        self.breaches
    }

    /// Whether no rule is currently in the breached state.
    pub fn healthy(&self) -> bool {
        self.breached.iter().all(|&b| !b)
    }

    /// Window index of the first breach, as a time-to-detect figure:
    /// fault injection in the gated scenarios starts at window 0, so
    /// this *is* the detection delay in windows. −1 = never breached.
    pub fn time_to_detect(&self) -> i64 {
        self.first_breach.map_or(-1, |w| w as i64)
    }

    /// Windows from the first breach to the last recovery: 0 when no
    /// rule ever breached, −1 when some rule is still breached at the
    /// end (recovery unconfirmed), otherwise `last_recover −
    /// first_breach`.
    pub fn time_to_recover(&self) -> i64 {
        match (self.first_breach, self.last_recover, self.healthy()) {
            (None, _, _) => 0,
            (Some(_), _, false) => -1,
            (Some(b), Some(r), true) => (r - b) as i64,
            // Unreachable in practice: a breach with no recovery leaves
            // the rule breached. Kept total for robustness.
            (Some(_), None, true) => -1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChordConfig, ChordNetwork};
    use keyspace::KeySpace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_net(n: usize, seed: u64) -> ChordNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let space = KeySpace::full();
        ChordNetwork::bootstrap(
            space,
            space.random_points(&mut rng, n),
            ChordConfig::default(),
        )
    }

    fn observe_once(wd: &mut Watchdog, net: &ChordNetwork, draws: Option<&[u64]>) {
        let win = net.metrics().recorder().reset_window();
        wd.observe(net, win, draws);
    }

    #[test]
    fn healthy_ring_emits_no_events() {
        let net = tiny_net(64, 1);
        let mut wd = Watchdog::new(SloConfig::default(), 7);
        for _ in 0..3 {
            observe_once(&mut wd, &net, None);
        }
        assert!(wd.events().is_empty());
        assert!(wd.healthy());
        assert_eq!(wd.time_to_detect(), -1);
        assert_eq!(wd.time_to_recover(), 0);
        assert_eq!(wd.windows_observed(), 3);
        assert_eq!(wd.series().len(), 3);
        assert!(wd.series().latest().unwrap().gauge(gauge::LIVE) == 64.0);
        assert!(net.metrics().recorder().health_events().is_empty());
    }

    #[test]
    fn crash_burst_breaches_staleness_and_maintenance_recovers_it() {
        let mut net = tiny_net(96, 2);
        let mut wd = Watchdog::new(SloConfig::default(), 9);
        observe_once(&mut wd, &net, None);
        assert!(wd.healthy(), "converged bootstrap ring starts healthy");
        // Crash a quarter of the ring: sampled staleness jumps.
        let mut rng = StdRng::seed_from_u64(3);
        for id in net.live_ids().into_iter().take(24) {
            net.crash(id);
        }
        observe_once(&mut wd, &net, None);
        assert!(!wd.healthy(), "crash burst must breach");
        assert_eq!(wd.time_to_detect(), 1);
        let breach = &wd.events()[0];
        assert_eq!(breach.rule, SloRule::Staleness);
        assert_eq!(breach.kind, HealthKind::Breach);
        assert!(!breach.nodes.is_empty(), "breach carries node attribution");
        assert!(breach.nodes.len() <= 8);
        // Batched repair drains the dirty set; the watchdog logs recovery.
        while net.maintenance_backlog() > 0 {
            net.batched_maintenance_round(crate::MaintenanceBudget::unlimited(), &mut rng);
        }
        observe_once(&mut wd, &net, None);
        assert!(wd.healthy(), "maintenance must recover the ring");
        assert_eq!(wd.time_to_recover(), 1);
        let recover = wd.events().last().unwrap();
        assert_eq!(recover.kind, HealthKind::Recover);
        // Events mirror into the recorder's health log.
        let log = net.metrics().recorder().health_events();
        assert_eq!(log.len(), wd.events().len());
        assert!(log[0].breach && !log[1].breach);
    }

    #[test]
    fn chi_drift_flags_biased_draw_windows() {
        let net = tiny_net(32, 4);
        let mut wd = Watchdog::new(SloConfig::default(), 11);
        // Heavily biased window: one peer soaks half the draws.
        let mut counts = vec![8u64; 32];
        counts[0] = 300;
        observe_once(&mut wd, &net, Some(&counts));
        assert!(!wd.healthy());
        assert!(wd
            .events()
            .iter()
            .any(|e| e.rule == SloRule::ChiDrift && e.kind == HealthKind::Breach));
        // A uniform window recovers the rule.
        observe_once(&mut wd, &net, Some(&vec![10u64; 32]));
        assert!(wd.healthy());
        // Too little mass: rule skipped, state unchanged.
        observe_once(&mut wd, &net, Some(&vec![1u64; 32]));
        assert!(wd.healthy());
        assert_eq!(wd.time_to_detect(), 0);
        assert_eq!(wd.time_to_recover(), 1);
    }

    #[test]
    fn same_seed_gives_byte_identical_event_streams() {
        let run = || {
            let mut net = tiny_net(96, 5);
            let mut wd = Watchdog::new(SloConfig::default(), 13);
            observe_once(&mut wd, &net, None);
            for id in net.live_ids().into_iter().take(30) {
                net.crash(id);
            }
            observe_once(&mut wd, &net, None);
            wd.events()
                .iter()
                .map(HealthEvent::render)
                .collect::<Vec<_>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.iter().any(|line| line.contains("breach staleness")));
    }

    #[test]
    fn success_ratio_breaches_attributed_and_recovers() {
        let net = tiny_net(64, 6);
        let mut wd = Watchdog::new(SloConfig::default(), 15);
        let healthy = LookupOutcomes {
            ok: 100,
            failed: 0,
            suspects: Vec::new(),
        };
        let win = net.metrics().recorder().reset_window();
        wd.observe_with_outcomes(&net, win, None, Some(&healthy));
        assert!(wd.healthy());
        assert_eq!(
            wd.series().latest().unwrap().gauge(gauge::SUCCESS),
            1.0,
            "outcome-fed windows stamp the success gauge"
        );
        // Outage window: a fifth of the lookups fail; the breach names
        // the downed domain's members.
        let outage = LookupOutcomes {
            ok: 80,
            failed: 20,
            suspects: vec![0xdead, 0xbeef],
        };
        let win = net.metrics().recorder().reset_window();
        wd.observe_with_outcomes(&net, win, None, Some(&outage));
        assert!(!wd.healthy());
        assert_eq!(wd.time_to_detect(), 1);
        let breach = wd.events().last().unwrap();
        assert_eq!(breach.rule, SloRule::SuccessRatio);
        assert_eq!(breach.kind, HealthKind::Breach);
        assert_eq!(breach.measured, 0.8);
        assert_eq!(breach.bound, 0.99);
        assert_eq!(breach.nodes, vec![0xdead, 0xbeef]);
        // Recovery window.
        let win = net.metrics().recorder().reset_window();
        wd.observe_with_outcomes(&net, win, None, Some(&healthy));
        assert!(wd.healthy());
        assert_eq!(wd.time_to_recover(), 1);
        // An under-sampled tally leaves the rule unevaluated.
        let tiny = LookupOutcomes {
            ok: 1,
            failed: 5,
            suspects: Vec::new(),
        };
        let win = net.metrics().recorder().reset_window();
        wd.observe_with_outcomes(&net, win, None, Some(&tiny));
        assert!(wd.healthy(), "6 samples are under the 16-sample floor");
    }

    #[test]
    fn plain_observe_never_touches_the_success_rule() {
        let net = tiny_net(64, 7);
        let mut wd = Watchdog::new(SloConfig::default(), 17);
        for _ in 0..3 {
            observe_once(&mut wd, &net, None);
        }
        assert!(wd.healthy());
        assert!(wd.events().is_empty());
        assert!(
            !wd.series()
                .latest()
                .unwrap()
                .gauges
                .contains_key(gauge::SUCCESS),
            "no tally, no success gauge"
        );
    }

    #[test]
    fn inflight_age_breaches_on_slow_windows_and_recovers() {
        let net = tiny_net(64, 8);
        let mut wd = Watchdog::new(SloConfig::default(), 19);
        let hist = net.metrics().recorder().histogram("engine.inflight_age");
        // Default UNIT latency, 64 live: bound = 6·log2(64)·1 = 36 ticks.
        let feed = |age: u64| {
            for _ in 0..40 {
                net.metrics().recorder().record(hist, age);
            }
        };

        // No engine activity: rule unevaluated, no gauge.
        observe_once(&mut wd, &net, None);
        assert!(wd.healthy());
        assert!(
            !wd.series()
                .latest()
                .unwrap()
                .gauges
                .contains_key(gauge::AGE_P99),
            "no engine activity, no age gauge"
        );

        // Healthy engine window: ages well under the bound.
        feed(10);
        observe_once(&mut wd, &net, None);
        assert!(wd.healthy());
        assert_eq!(wd.series().latest().unwrap().gauge(gauge::AGE_P99), 10.0);

        // Slow-sector window: requests age an order of magnitude past
        // the bound; the rule breaches with the engine scope.
        feed(500);
        observe_once(&mut wd, &net, None);
        assert!(!wd.healthy());
        let breach = wd.events().last().unwrap();
        assert_eq!(breach.rule, SloRule::InflightAge);
        assert_eq!(breach.kind, HealthKind::Breach);
        assert!((500.0..=512.0).contains(&breach.measured), "bucketed p99");
        assert_eq!(breach.bound, 36.0);
        assert!(breach.render().contains("breach inflight_age"));
        assert!(breach.render().contains("scope=engine"));

        // Ages come back down: edge-triggered recovery.
        feed(12);
        observe_once(&mut wd, &net, None);
        assert!(wd.healthy());
        assert_eq!(wd.events().last().unwrap().kind, HealthKind::Recover);

        // Under-sampled window: unevaluated, breached state unchanged.
        net.metrics().recorder().record(hist, 10_000);
        observe_once(&mut wd, &net, None);
        assert!(wd.healthy(), "1 sample is under the 32-sample floor");
    }

    #[test]
    fn outcome_ratio_arithmetic() {
        assert_eq!(LookupOutcomes::default().ratio(), 1.0);
        let t = LookupOutcomes {
            ok: 3,
            failed: 1,
            suspects: Vec::new(),
        };
        assert_eq!(t.total(), 4);
        assert_eq!(t.ratio(), 0.75);
    }

    #[test]
    fn render_is_compact_and_attributed() {
        let e = HealthEvent {
            window: 3,
            rule: SloRule::Staleness,
            kind: HealthKind::Breach,
            measured: 0.25,
            bound: 0.05,
            nodes: vec![0xabc],
        };
        assert_eq!(
            e.render(),
            "w3 breach staleness measured=0.250000 bound=0.050000 \
             scope=maintenance.round nodes=[0000000000000abc]"
        );
    }
}
