//! Equivalence properties of the compact routing arena.
//!
//! Two invariants, checked after **every** operation of randomized
//! join/fail/stabilize interleavings:
//!
//! * the run-length-compressed finger store and shared successor buffers
//!   are bit-for-bit equal to the pre-arena per-node representation
//!   (`Vec<Option<NodeId>>` fingers, successor `Vec`), mirrored through
//!   the same write funnels (`ChordNetwork::assert_shadow_matches`);
//! * the incrementally maintained `RingReport` equals a from-scratch
//!   `verify_ring_full()` re-scan — counters drift for no event order.
//!
//! Two regimes: the full 2⁶⁴ ring (the experiment configuration) and a
//! tiny modulus-256 ring, where point collisions force the co-located
//! tie-break paths in the ground-truth index and the finger tables are
//! only 8 bits wide.

use chord::{ChordConfig, ChordNetwork};
use keyspace::{KeySpace, Point};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One scripted operation; fields are interpreted modulo current state.
type Op = (u8, u64, u64);

fn splat(x: u64) -> u64 {
    // Cheap avalanche so small strategy ranges cover the whole ring.
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31)
}

fn check(net: &ChordNetwork, what: &str) {
    net.assert_shadow_matches();
    assert_eq!(
        net.verify_ring(),
        net.verify_ring_full(),
        "incremental report diverged after {what}"
    );
}

fn run_script(space: KeySpace, initial: usize, succ_len: usize, ops: &[Op]) {
    let mut rng = StdRng::seed_from_u64(0xC0FF_EE00);
    let mut net = ChordNetwork::bootstrap(
        space,
        space.random_points(&mut rng, initial),
        ChordConfig::default().with_successor_list_len(succ_len),
    );
    net.enable_shadow_mirror();
    check(&net, "bootstrap");
    for &(kind, a, b) in ops {
        let live = net.live_ids();
        match kind % 7 {
            0 => {
                // Protocol join through a random live gateway; collisions
                // with occupied points are allowed on small rings.
                let via = live[splat(a) as usize % live.len()];
                let point = Point::new((splat(b) as u128 % space.modulus()) as u64);
                let _ = net.join(point, via, &mut rng);
            }
            1 => {
                if live.len() > 2 {
                    net.crash(live[splat(a) as usize % live.len()]);
                }
            }
            2 => {
                if live.len() > 2 {
                    net.leave(live[splat(a) as usize % live.len()]);
                }
            }
            3 => net.stabilize(live[splat(a) as usize % live.len()]),
            4 => {
                let id = live[splat(a) as usize % live.len()];
                net.fix_finger(id, splat(b) as usize % net.finger_bits(), &mut rng);
            }
            5 => net.maintenance_round(a as usize, &mut rng),
            6 => {
                let batch: Vec<Point> = (0..3)
                    .map(|k| Point::new((splat(a ^ (b + k)) as u128 % space.modulus()) as u64))
                    .collect();
                net.bulk_join(batch);
            }
            _ => unreachable!(),
        }
        check(&net, &format!("op ({kind}, {a}, {b})"));
    }
    // A final full convergence keeps the scripts from only ever visiting
    // degraded states.
    net.converge(&mut rng);
    check(&net, "converge");
}

fn ops_strategy(len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..7, 0u64..1 << 48, 0u64..1 << 48), 0..len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn full_ring_views_and_report_stay_equivalent(ops in ops_strategy(36)) {
        run_script(KeySpace::full(), 20, 4, &ops);
    }

    #[test]
    fn tiny_colliding_ring_views_and_report_stay_equivalent(ops in ops_strategy(36)) {
        run_script(KeySpace::with_modulus(256).unwrap(), 12, 3, &ops);
    }

    #[test]
    fn dense_collision_ring_views_and_report_stay_equivalent(ops in ops_strategy(36)) {
        // Modulus 64 with 8 initial peers: joins land on occupied points
        // constantly, hammering the id tie-break paths (whole-arc
        // ownership transfers between co-located twins).
        run_script(KeySpace::with_modulus(64).unwrap(), 8, 2, &ops);
    }
}

#[test]
fn long_mixed_run_stays_equivalent() {
    // One deeper deterministic soak than the proptest cases: heavy churn
    // with interleaved maintenance, shadow-checked at every step.
    let space = KeySpace::full();
    let ops: Vec<Op> = (0..220)
        .map(|i| (splat(i) as u8, splat(i ^ 0xAA), splat(i ^ 0x55)))
        .collect();
    run_script(space, 32, 8, &ops);
}
