//! Batched incremental maintenance: budget edge cases and the
//! O(changes · log n) work bound.
//!
//! The batched round (`ChordNetwork::batched_maintenance_round`) repairs
//! a dirty set fed by the verification ledger's write funnels instead of
//! walking all n live nodes. These tests pin its contract:
//!
//! * **budget = 0** is pure staleness — a round performs no repairs and
//!   the backlog only grows with churn;
//! * **budget ≥ dirty set** drains to full convergence, bit-for-bit
//!   equal to the from-scratch `verify_ring_full()` reference at every
//!   step (and to what classic full-refresh rounds converge to);
//! * a **churn burst** followed by small-budget rounds drains the
//!   backlog monotonically without ever desyncing the ledger;
//! * total routed lookups across a drain are **O(changes · log n)**,
//!   counter-asserted — the property that lets 10⁷-node rings run
//!   maintenance proportional to their churn, not their size.

use chord::{ChordConfig, ChordNetwork, MaintenanceBudget, NodeId};
use keyspace::KeySpace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bootstrap(n: usize, seed: u64) -> (ChordNetwork, StdRng) {
    let space = KeySpace::full();
    let mut rng = StdRng::seed_from_u64(seed);
    let net = ChordNetwork::bootstrap(
        space,
        space.random_points(&mut rng, n),
        ChordConfig::default(),
    );
    (net, rng)
}

/// Crashes `crashes` spread-out nodes and joins `joins` fresh points
/// through the protocol, returning the number of membership events.
fn churn_burst(net: &mut ChordNetwork, crashes: usize, joins: usize, rng: &mut StdRng) -> usize {
    let victims: Vec<NodeId> = net
        .live_ids()
        .into_iter()
        .step_by((net.live_len() / crashes.max(1)).max(1))
        .take(crashes)
        .collect();
    for v in &victims {
        net.crash(*v);
    }
    let gw = net.live_ids()[0];
    for _ in 0..joins {
        let p = net.space().random_point(rng);
        net.join(p, gw, rng).unwrap();
    }
    crashes + joins
}

/// Runs batched rounds under `budget` until the backlog is empty,
/// asserting ledger exactness each round. Returns (rounds, lookups).
fn drain(net: &mut ChordNetwork, budget: MaintenanceBudget, rng: &mut StdRng) -> (usize, u64) {
    let mut rounds = 0;
    let mut lookups = 0;
    while net.maintenance_backlog() > 0 {
        let work = net.batched_maintenance_round(budget, rng);
        lookups += work.lookups;
        rounds += 1;
        assert_eq!(
            net.verify_ring(),
            net.verify_ring_full(),
            "ledger desynced in round {rounds}"
        );
        assert!(
            rounds <= 10_000,
            "drain failed to converge: backlog {} after {rounds} rounds",
            net.maintenance_backlog()
        );
    }
    (rounds, lookups)
}

#[test]
fn bootstrap_ring_has_no_backlog() {
    let (net, _) = bootstrap(128, 1);
    assert_eq!(net.maintenance_backlog(), 0, "converged rings owe nothing");
}

#[test]
fn zero_budget_is_pure_staleness() {
    let (mut net, mut rng) = bootstrap(96, 2);
    let before_report = net.verify_ring();
    churn_burst(&mut net, 6, 6, &mut rng);
    let backlog = net.maintenance_backlog();
    assert!(backlog > 0, "churn must dirty something");

    let work = net.batched_maintenance_round(MaintenanceBudget::per_round(0), &mut rng);
    assert_eq!(work.sp_refreshed, 0);
    assert_eq!(work.fingers_refreshed, 0);
    assert_eq!(work.lookups, 0);
    assert_eq!(work.backlog, backlog, "nothing repaired, nothing forgotten");
    assert_eq!(net.maintenance_backlog(), backlog);
    // The ring stays exactly as stale as the churn left it.
    assert_ne!(net.verify_ring(), before_report);
    assert_eq!(net.verify_ring(), net.verify_ring_full());
}

#[test]
fn unlimited_budget_drains_to_the_full_refresh_fixpoint() {
    let (mut net, mut rng) = bootstrap(200, 3);
    churn_burst(&mut net, 10, 10, &mut rng);

    // Reference: the classic full-refresh path on an identical twin
    // (same seed stream -> same churn -> same routing state).
    let (mut reference, mut ref_rng) = bootstrap(200, 3);
    churn_burst(&mut reference, 10, 10, &mut ref_rng);
    reference.converge(&mut ref_rng);
    let ref_report = reference.verify_ring();
    assert!(ref_report.is_converged(), "{ref_report:?}");

    let (rounds, _) = drain(&mut net, MaintenanceBudget::unlimited(), &mut rng);
    assert!(rounds > 0);
    let report = net.verify_ring();
    // Backlog zero means *nothing* is stale: converged ring, every
    // finger populated and correct — bit-for-bit the from-scratch
    // reference, and the same fixpoint full refresh converges to.
    assert_eq!(report, net.verify_ring_full());
    assert!(report.is_converged(), "{report:?}");
    assert!((report.finger_accuracy - 1.0).abs() < 1e-12, "{report:?}");
    assert_eq!(report.live, ref_report.live);
    assert_eq!(report.correct_successors, ref_report.correct_successors);
    // The drain's fixpoint is at least as good as the classic path's:
    // `converge()` refreshes each finger level exactly once (possibly
    // while the ring is still stale), while the drain retries until
    // every level matches the ground truth.
    assert!(report.finger_accuracy >= ref_report.finger_accuracy);
}

#[test]
fn churn_burst_backlog_drains_monotonically_under_a_small_budget() {
    let (mut net, mut rng) = bootstrap(150, 4);
    churn_burst(&mut net, 12, 12, &mut rng);
    let mut backlog = net.maintenance_backlog();
    assert!(backlog > 50, "burst too small to exercise the queue");

    let budget = MaintenanceBudget::per_round(16);
    let mut rounds = 0;
    while net.maintenance_backlog() > 0 {
        let work = net.batched_maintenance_round(budget, &mut rng);
        rounds += 1;
        assert!(
            work.sp_refreshed + work.fingers_refreshed <= 16,
            "budget exceeded: {work:?}"
        );
        // Monotone drain: a round may surface a few new entries through
        // its own repairs (a notify fixing a neighbour), but the backlog
        // must trend to zero, never ratchet upward.
        assert!(
            work.backlog <= backlog + 4,
            "backlog grew {backlog} -> {} in round {rounds}",
            work.backlog
        );
        backlog = work.backlog;
        assert_eq!(net.verify_ring(), net.verify_ring_full(), "round {rounds}");
        assert!(rounds <= 5_000, "never drained: backlog {backlog}");
    }
    assert!(net.verify_ring().is_converged());
    assert!(
        rounds >= 4,
        "a 16-entry budget must need several rounds, got {rounds}"
    );
}

#[test]
fn drain_work_is_proportional_to_changes_not_ring_size() {
    // The acceptance counter-assert: lookups across a drain are
    // O(changes * log n) with a small constant, nowhere near the O(n)
    // per round of the classic path.
    let n = 4_096;
    let (mut net, mut rng) = bootstrap(n, 5);
    let changes = churn_burst(&mut net, 16, 16, &mut rng);
    let (_, lookups) = drain(&mut net, MaintenanceBudget::unlimited(), &mut rng);
    let log_n = (n as f64).log2();
    let bound = 4.0 * changes as f64 * log_n;
    assert!(
        (lookups as f64) <= bound,
        "drain spent {lookups} lookups > 4 * {changes} changes * log2({n}) = {bound:.0}"
    );
    // ...and strictly below a single classic round's n lookups.
    assert!(
        lookups < n as u64,
        "batched drain ({lookups}) must undercut one full round ({n})"
    );
}

#[test]
fn batched_rounds_are_deterministic() {
    let run = |seed: u64| {
        let (mut net, mut rng) = bootstrap(120, seed);
        churn_burst(&mut net, 8, 8, &mut rng);
        let mut trace = Vec::new();
        while net.maintenance_backlog() > 0 {
            let work = net.batched_maintenance_round(MaintenanceBudget::per_round(24), &mut rng);
            trace.push((work.sp_refreshed, work.fingers_refreshed, work.backlog));
            assert!(trace.len() < 5_000);
        }
        (trace, net.verify_ring())
    };
    assert_eq!(run(6), run(6), "same seed, same drain trajectory");
}

#[test]
fn interleaved_churn_and_budgeted_rounds_stay_exact() {
    // Churn keeps arriving while a small budget lags behind: the ledger
    // and dirty set must stay exact through the standing backlog.
    let (mut net, mut rng) = bootstrap(100, 7);
    for step in 0..12 {
        let victim = net.live_ids()[step * 5 % net.live_len()];
        net.crash(victim);
        let gw = net.live_ids()[0];
        let p = net.space().random_point(&mut rng);
        net.join(p, gw, &mut rng).unwrap();
        net.batched_maintenance_round(MaintenanceBudget::per_round(8), &mut rng);
        assert_eq!(net.verify_ring(), net.verify_ring_full(), "step {step}");
    }
    // Once churn stops, the standing backlog drains fully.
    drain(&mut net, MaintenanceBudget::unlimited(), &mut rng);
    assert!(net.verify_ring().is_converged());
}
