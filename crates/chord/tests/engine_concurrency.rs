//! Determinism of the async engine *under concurrency*: 10k in-flight
//! lookups multiplexed over one event loop, interleaved with churn,
//! must produce byte-identical reports across runs and independent of
//! submission order — and a delayed (not dead) hop must trigger the
//! timeout/retry tiers without ever double-delivering a completion.

use std::collections::BTreeSet;

use chord::{
    AdaptiveConfig, ChordConfig, ChordNetwork, EngineConfig, FaultPlan, LookupEngine, NodeId,
    RetryPolicy, SlowOverlay,
};
use keyspace::{KeySpace, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use simnet::{LatencyModel, SimTime};

const SEED: u64 = 0x10_4B1D;

fn build_net(n: usize, latency: LatencyModel) -> ChordNetwork {
    let space = KeySpace::full();
    let mut rng = StdRng::seed_from_u64(SEED);
    ChordNetwork::bootstrap(
        space,
        space.random_points(&mut rng, n),
        ChordConfig::default().with_latency(latency),
    )
}

/// A seeded workload: (origin, target) pairs over the live ring.
fn workload(net: &ChordNetwork, count: usize, seed: u64) -> Vec<(NodeId, Point)> {
    let live = net.live_ids();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let origin = live[rng.gen_range(0..live.len())];
            (origin, net.space().random_point(&mut rng))
        })
        .collect()
}

fn shuffled<T>(mut items: Vec<T>, seed: u64) -> Vec<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    for i in (1..items.len()).rev() {
        items.swap(i, rng.gen_range(0..=i));
    }
    items
}

/// One full churn run: submit the whole workload up front, then advance
/// the clock in windows, crashing a deterministic batch of nodes between
/// windows so in-flight requests observe the ring changing under them.
fn churn_run(lookups: usize) -> (u64, usize) {
    let mut net = build_net(512, LatencyModel::Uniform { lo: 1, hi: 5 });
    net.enable_retry_policy(RetryPolicy::default());
    net.enable_adaptive_routing(AdaptiveConfig::default());
    let work = workload(&net, lookups, SEED ^ 1);

    let mut engine = LookupEngine::new(EngineConfig {
        seed: SEED ^ 2,
        ..EngineConfig::default()
    });
    let faults = FaultPlan::none();
    for (tag, &(origin, target)) in work.iter().enumerate() {
        engine.submit_tagged(&net, tag as u64, origin, target);
    }
    let mut churn_rng = StdRng::seed_from_u64(SEED ^ 3);
    for window in 1..=8u64 {
        engine.run_until(&net, &faults, SimTime::from_ticks(window * 16));
        // Crash a batch of survivors mid-flight (deterministic victims).
        let mut live = net.live_ids();
        live.sort_by_key(|&id| net.node(id).point());
        for _ in 0..6 {
            let victim = live.swap_remove(churn_rng.gen_range(0..live.len()));
            net.crash(victim);
        }
    }
    engine.drain(&net, &faults);
    (engine.report_digest(), engine.completions().len())
}

/// 10k concurrent lookups under churn: the terminal report is a pure
/// function of (ring seed, workload seed, engine seed, churn seed) —
/// byte-identical across three fresh runs.
#[test]
fn ten_thousand_churning_lookups_replay_byte_identically() {
    let (d1, n1) = churn_run(10_000);
    let (d2, n2) = churn_run(10_000);
    let (d3, n3) = churn_run(10_000);
    assert_eq!(n1, 10_000, "every request must complete exactly once");
    assert_eq!((n1, d1), (n2, d2), "report must replay byte-identically");
    assert_eq!((n1, d1), (n3, d3), "report must replay byte-identically");
}

/// Submission order is not identity: the same tagged workload submitted
/// in a permuted order produces the same tag-keyed report, because each
/// request's latency stream is derived from its tag, routing consumes no
/// randomness, and (with scoring off) requests share no mutable state.
#[test]
fn permuted_submission_order_produces_identical_reports() {
    let run = |order_seed: Option<u64>| {
        let mut net = build_net(256, LatencyModel::Uniform { lo: 1, hi: 9 });
        net.enable_retry_policy(RetryPolicy::default());
        let mut work: Vec<(u64, NodeId, Point)> = workload(&net, 4_000, SEED ^ 4)
            .into_iter()
            .enumerate()
            .map(|(tag, (o, t))| (tag as u64, o, t))
            .collect();
        if let Some(s) = order_seed {
            work = shuffled(work, s);
        }
        let mut engine = LookupEngine::new(EngineConfig {
            seed: SEED ^ 5,
            ..EngineConfig::default()
        });
        for &(tag, origin, target) in &work {
            engine.submit_tagged(&net, tag, origin, target);
        }
        engine.drain(&net, &FaultPlan::none());
        assert_eq!(engine.completions().len(), 4_000);
        engine.report_digest()
    };
    let in_order = run(None);
    assert_eq!(in_order, run(Some(11)));
    assert_eq!(in_order, run(Some(12)));
}

/// The PR's delay-fault scenario in miniature: a ring sector is slow —
/// not dead — so the walk's answers still arrive, just late. Deadlines
/// fire, the policy retries with backoff, peers get penalized, and every
/// request completes exactly once with the right owner: the stale
/// attempt's late answers are stranded by the generation guard, never
/// double-delivered.
#[test]
fn delayed_hop_times_out_retries_and_completes_exactly_once() {
    let mut net = build_net(256, LatencyModel::Constant(4));
    net.enable_retry_policy(RetryPolicy::default());
    net.enable_adaptive_routing(AdaptiveConfig::default());

    // Slow sector: a contiguous arc of the ring, 32× slower for a while.
    let mut ring = net.live_ids();
    ring.sort_by_key(|&id| net.node(id).point());
    let slow_nodes: BTreeSet<NodeId> = ring[64..128].iter().copied().collect();
    let mut engine = LookupEngine::new(EngineConfig {
        timeout_ticks: Some(96),
        seed: SEED ^ 6,
        ..EngineConfig::default()
    });
    engine.set_slow_overlay(Some(SlowOverlay {
        nodes: slow_nodes.clone(),
        factor: 32,
        from: SimTime::ZERO,
        until: SimTime::from_ticks(1 << 20),
    }));

    // Origins outside the slow sector (a slow origin cannot be routed
    // around); targets spread over the whole ring so many walks must
    // traverse or terminate inside it.
    let fast: Vec<NodeId> = ring
        .iter()
        .copied()
        .filter(|id| !slow_nodes.contains(id))
        .collect();
    let mut rng = StdRng::seed_from_u64(SEED ^ 7);
    let work: Vec<(NodeId, Point)> = (0..500)
        .map(|_| {
            let origin = fast[rng.gen_range(0..fast.len())];
            (origin, net.space().random_point(&mut rng))
        })
        .collect();
    for (tag, &(origin, target)) in work.iter().enumerate() {
        engine.submit_tagged(&net, tag as u64, origin, target);
    }
    engine.drain(&net, &FaultPlan::none());

    // Exactly-once: every tag completed, none twice.
    let tags: BTreeSet<u64> = engine.completions().iter().map(|c| c.tag).collect();
    assert_eq!(engine.completions().len(), work.len());
    assert_eq!(tags.len(), work.len());

    // The slowdown was *observed* (deadlines fired, retries happened)...
    assert!(
        net.metrics().get("engine.timeouts") > 0,
        "deadlines must fire"
    );
    let retried = engine
        .completions()
        .iter()
        .filter(|c| c.attempts > 1)
        .count();
    assert!(
        retried > 0,
        "timed-out attempts must re-enter the retry tier"
    );
    assert!(
        engine
            .completions()
            .iter()
            .any(|c| c.timeouts > 0 && c.result.is_ok()),
        "a timed-out request must still complete with an answer"
    );

    // ...and answered around: nothing was dead, so every lookup must
    // land on the true owner, late or not.
    for c in engine.completions() {
        let hit = c.result.as_ref().unwrap_or_else(|e| {
            panic!("tag {} failed: {e} (nothing is dead)", c.tag);
        });
        assert_eq!(hit.point, net.ground_truth_successor(hit.point));
        assert!(c.completed_at >= c.started_at);
    }
}

/// The in-flight cap is honoured: excess requests queue in the backlog
/// and are admitted as completions free slots, and the cap costs nothing
/// in answers.
#[test]
fn backlog_respects_the_inflight_cap() {
    let net = build_net(128, LatencyModel::Constant(2));
    let mut engine = LookupEngine::new(EngineConfig {
        max_inflight: 8,
        seed: SEED ^ 8,
        ..EngineConfig::default()
    });
    let work = workload(&net, 200, SEED ^ 9);
    for (tag, &(origin, target)) in work.iter().enumerate() {
        engine.submit_tagged(&net, tag as u64, origin, target);
    }
    assert_eq!(engine.in_flight(), 8);
    assert_eq!(engine.backlog(), 192);

    // Step the clock one tick at a time so the cap is observable at
    // every quiescent point of the loop.
    let faults = FaultPlan::none();
    let mut t = 0u64;
    while engine.completions().len() < work.len() {
        t += 1;
        engine.run_until(&net, &faults, SimTime::from_ticks(t));
        assert!(engine.in_flight() <= 8, "cap breached at tick {t}");
        assert!(t < 1 << 20, "lookups must make progress");
    }
    assert_eq!(engine.backlog(), 0);
    for c in engine.completions() {
        let hit = c.result.as_ref().unwrap();
        assert_eq!(hit.point, net.ground_truth_successor(hit.point));
    }
}

/// Wakeup cancellation at the engine level: an answer and its own
/// deadline landing in the same tick must resolve to the answer. The
/// walk resolved when the final hop was processed (the `resolved` guard
/// flips before the answer travels home), so the deadline — even though
/// FIFO pops it first at that tick — is stranded, not fired.
#[test]
fn completion_beats_its_own_deadline_on_the_same_tick() {
    // Two nodes, Constant(3): the origin's single successor probe costs
    // exactly 3 ticks, so the answer lands at tick 3 — the very tick the
    // deadline is armed for.
    let net = build_net(2, LatencyModel::Constant(3));
    let mut engine = LookupEngine::new(EngineConfig {
        timeout_ticks: Some(3),
        seed: 1,
        ..EngineConfig::default()
    });
    let mut ring = net.live_ids();
    ring.sort_by_key(|&id| net.node(id).point());
    let origin = ring[0];
    let target = net.node(ring[1]).point();
    engine.submit(&net, origin, target);
    engine.drain(&net, &FaultPlan::none());

    let c = &engine.completions()[0];
    assert_eq!(c.timeouts, 0, "deadline must lose the tie and be stranded");
    assert_eq!(c.attempts, 1);
    assert!(c.result.is_ok());
    assert_eq!(net.metrics().get("engine.timeouts"), 0);
}
