//! The async engine's ground-truth pin: sync equivalence.
//!
//! PR 3–9 built every verdict on the sync walk, so the engine must
//! answer **identically** before it is allowed to add time. Two
//! properties, over arbitrary rings, crash plans and Byzantine fault
//! plans:
//!
//! 1. At zero (unit-constant) latency — where the latency model draws
//!    nothing from the RNG — a sequentially-driven engine with deadlines
//!    disarmed is *bit-identical* to the sync walk: same owner, same
//!    hops, same fully-attributed cost, same hop-counter totals and the
//!    same trace digest (traces, ordinals and outcomes byte-for-byte).
//! 2. At nonzero (randomized) latency the costs legitimately diverge
//!    (different RNG streams), but the *answer* may not: routing
//!    decisions consume no randomness, so the owner is timing-independent.

use chord::{
    ChordConfig, ChordNetwork, EngineConfig, FaultPlan, LookupEngine, NodeId, RetryPolicy,
};
use keyspace::{KeySpace, Point};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use simnet::LatencyModel;

fn build_net(n: usize, seed: u64, latency: LatencyModel, tracing: bool) -> ChordNetwork {
    let space = KeySpace::full();
    let mut rng = StdRng::seed_from_u64(seed);
    let net = ChordNetwork::bootstrap(
        space,
        space.random_points(&mut rng, n),
        ChordConfig::default().with_latency(latency),
    );
    net.metrics().recorder().set_tracing(tracing);
    net
}

/// A deterministic churn + fault plan derived from the proptest inputs:
/// crash a contiguous arc (correlated outage) plus a strided scatter,
/// and mark a strided subset of survivors Byzantine.
struct Plan {
    dead: Vec<NodeId>,
    faults: FaultPlan,
    origin: NodeId,
}

fn apply_plan(
    net: &mut ChordNetwork,
    arc_start: usize,
    arc_len: usize,
    liar_stride: usize,
) -> Plan {
    let mut ring = net.live_ids();
    ring.sort_by_key(|&id| net.node(id).point());
    let n = ring.len();
    let dead: Vec<NodeId> = (0..arc_len.min(n / 4))
        .map(|k| ring[(arc_start + k) % n])
        .collect();
    for &id in &dead {
        net.crash(id);
    }
    let survivors: Vec<NodeId> = ring
        .iter()
        .copied()
        .filter(|id| !dead.contains(id))
        .collect();
    let origin = survivors[arc_start % survivors.len()];
    let liars: Vec<NodeId> = survivors
        .iter()
        .copied()
        .filter(|&id| id != origin)
        .step_by(liar_stride)
        .collect();
    Plan {
        dead,
        faults: FaultPlan::for_nodes(liars),
        origin,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Property 1: zero-latency async == sync walk, bit for bit.
    #[test]
    fn zero_latency_async_is_bit_identical_to_sync(
        n in 32usize..=96,
        seed in 0u64..500,
        arc_start in 0usize..96,
        arc_len in 0usize..16,
        liar_stride in 3usize..8,
        with_policy in any::<bool>(),
        targets in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        // Two identical worlds: the sync driver and the engine driver.
        let mut sync_net = build_net(n, seed, LatencyModel::UNIT, true);
        let mut async_net = build_net(n, seed, LatencyModel::UNIT, true);
        let plan = apply_plan(&mut sync_net, arc_start, arc_len, liar_stride);
        let async_plan = apply_plan(&mut async_net, arc_start, arc_len, liar_stride);
        prop_assert_eq!(plan.dead.len(), async_plan.dead.len());
        if with_policy {
            sync_net.enable_retry_policy(RetryPolicy::default());
            async_net.enable_retry_policy(RetryPolicy::default());
        }

        // Sync pass. Unit-constant latency draws nothing from the RNG,
        // so the two drivers' different RNG plumbing cannot diverge.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xE9_61_7E);
        let mut sync_results = Vec::new();
        for &raw in &targets {
            let r = sync_net.find_successor_with_policy(
                plan.origin, Point::new(raw), &plan.faults, &mut rng);
            sync_results.push(r);
        }

        // Engine pass: sequential (submit one, drain it) — concurrency
        // off, deadlines disarmed, so only the message decomposition is
        // under test.
        let mut engine = LookupEngine::new(EngineConfig { seed, ..EngineConfig::default() });
        for &raw in &targets {
            let tag = engine.submit(&async_net, async_plan.origin, Point::new(raw));
            engine.drain(&async_net, &async_plan.faults);
            prop_assert_eq!(engine.completions().last().unwrap().tag, tag);
        }

        for (done, sync) in engine.completions().iter().zip(&sync_results) {
            match (&done.result, sync) {
                (Ok(a), Ok(s)) => {
                    prop_assert_eq!(a.node, s.node);
                    prop_assert_eq!(a.point, s.point);
                    prop_assert_eq!(a.hops, s.hops);
                    prop_assert_eq!(a.cost, s.cost, "cost attribution must match");
                    // The latency-wiring invariant: simulated wall-clock
                    // is exactly the accounted latency.
                    prop_assert_eq!(
                        (done.completed_at - done.started_at).ticks(),
                        a.cost.latency
                    );
                }
                (Err(a), Err(s)) => prop_assert_eq!(a, s),
                (a, s) => prop_assert!(false, "outcome mismatch: {a:?} vs {s:?}"),
            }
        }

        // Bit-identity of the observable record: hop counters and the
        // full trace stream (ordinals, hop paths, outcomes, latencies).
        for key in ["lookup.hops", "lookup.dead_probe", "lookup.byzantine_claim",
                    "lookup.retries", "lookup.fallback_depth"] {
            prop_assert_eq!(
                sync_net.metrics().get(key), async_net.metrics().get(key), "{}", key);
        }
        prop_assert_eq!(
            sync_net.metrics().recorder().trace_digest(),
            async_net.metrics().recorder().trace_digest(),
            "trace digests must be bit-identical"
        );
    }

    /// Property 2: under randomized per-message latency the answer is
    /// timing-independent — same owner, whatever the delays did.
    #[test]
    fn nonzero_latency_still_returns_the_same_owner(
        n in 32usize..=96,
        seed in 0u64..500,
        arc_start in 0usize..96,
        arc_len in 0usize..16,
        targets in proptest::collection::vec(any::<u64>(), 1..6),
    ) {
        let latency = LatencyModel::Uniform { lo: 1, hi: 9 };
        let mut sync_net = build_net(n, seed, LatencyModel::UNIT, false);
        let mut async_net = build_net(n, seed, latency, false);
        let plan = apply_plan(&mut sync_net, arc_start, arc_len, 7);
        let async_plan = apply_plan(&mut async_net, arc_start, arc_len, 7);
        sync_net.enable_retry_policy(RetryPolicy::default());
        async_net.enable_retry_policy(RetryPolicy::default());

        let mut rng = StdRng::seed_from_u64(seed ^ 0x0DD);
        let mut engine = LookupEngine::new(EngineConfig { seed: seed ^ 0xA5, ..EngineConfig::default() });
        for (i, &raw) in targets.iter().enumerate() {
            let sync = sync_net.find_successor_with_policy(
                plan.origin, Point::new(raw), &plan.faults, &mut rng);
            engine.submit_tagged(&async_net, i as u64, async_plan.origin, Point::new(raw));
            engine.drain(&async_net, &async_plan.faults);
            match (&engine.completions()[i].result, &sync) {
                (Ok(a), Ok(s)) => {
                    prop_assert_eq!(a.node, s.node, "owner must be timing-independent");
                    prop_assert_eq!(a.point, s.point);
                }
                (Err(a), Err(s)) => prop_assert_eq!(a, s),
                (a, s) => prop_assert!(false, "outcome mismatch: {a:?} vs {s:?}"),
            }
        }
    }
}

/// The walk/quorum degradation tiers answer identically through the
/// engine: a dead arc longer than the successor list defeats routed
/// attempts in both drivers, and both degrade to the same owner with the
/// same attributed cost.
#[test]
fn degradation_tiers_are_equivalent_through_the_engine() {
    let build = || {
        let mut net = build_net(64, 41, LatencyModel::UNIT, true);
        net.enable_retry_policy(RetryPolicy::default());
        let mut ring = net.live_ids();
        ring.sort_by_key(|&id| net.node(id).point());
        let arc = ring[20..36].to_vec();
        for &v in &arc {
            net.crash(v);
        }
        let target = net.node(arc[8]).point();
        (net, ring[0], target)
    };
    let (sync_net, origin, target) = build();
    let (async_net, a_origin, a_target) = build();
    assert_eq!(origin, a_origin);

    let mut rng = StdRng::seed_from_u64(7);
    let sync = sync_net
        .find_successor_with_policy(origin, target, &FaultPlan::none(), &mut rng)
        .unwrap();

    let mut engine = LookupEngine::new(EngineConfig::default());
    engine.submit(&async_net, a_origin, a_target);
    engine.drain(&async_net, &FaultPlan::none());
    let done = engine.completions()[0].result.as_ref().unwrap();

    assert_eq!(done.node, sync.node);
    assert_eq!(done.point, sync.point);
    assert_eq!(done.hops, sync.hops);
    assert_eq!(done.cost, sync.cost);
    assert_eq!(
        sync_net.metrics().get("lookup.fallback_depth"),
        async_net.metrics().get("lookup.fallback_depth")
    );
    assert_eq!(
        sync_net.metrics().recorder().trace_digest(),
        async_net.metrics().recorder().trace_digest()
    );
}

/// Regression for the latency-model wiring (the silent no-op this PR
/// fixes for scenarios): scaling the constant model must scale both the
/// accounted latency and the engine's simulated wall-clock by exactly
/// the message count.
#[test]
fn latency_model_scales_wall_clock_and_cost_together() {
    for ticks in [1u64, 10, 25] {
        let net = build_net(64, 11, LatencyModel::Constant(ticks), false);
        let origin = net.live_ids()[0];
        let mut engine = LookupEngine::new(EngineConfig::default());
        let mut r = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let target = net.space().random_point(&mut r);
            engine.submit(&net, origin, target);
        }
        engine.drain(&net, &FaultPlan::none());
        assert_eq!(engine.completions().len(), 20);
        for c in engine.completions() {
            let hit = c.result.as_ref().unwrap();
            assert_eq!(hit.point, net.ground_truth_successor(hit.point));
            assert_eq!(
                hit.cost.latency,
                hit.cost.messages * ticks,
                "latency must scale with the model"
            );
            assert_eq!((c.completed_at - c.started_at).ticks(), hit.cost.latency);
        }
    }
}
