//! Correctness of the retry/fallback degradation tiers.
//!
//! Property: on a converged ring that then loses a random contiguous arc
//! (a correlated rack/region crash of up to ~25% of the nodes, the band
//! the e16 domain battery exercises), a policy-armed lookup from any
//! live origin **never returns a wrong owner** — whatever tier answers
//! (a late routed attempt, the successor-walk, or the verified-quorum
//! directory), the returned peer is exactly the first live successor of
//! the target. Degradation may cost more; it may not lie.

use chord::{ChordConfig, ChordNetwork, FaultPlan, RetryPolicy};
use keyspace::{KeySpace, Point};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn converged_ring(n: usize, seed: u64) -> ChordNetwork {
    let space = KeySpace::full();
    let mut rng = StdRng::seed_from_u64(seed);
    ChordNetwork::bootstrap(
        space,
        space.random_points(&mut rng, n),
        ChordConfig::default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn policy_fallback_never_returns_a_wrong_owner(
        n in 48usize..=96,
        seed in 0u64..1_000,
        arc_start in 0usize..96,
        arc_frac in 1usize..=25,
        targets in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let mut net = converged_ring(n, seed);
        let mut ring = net.live_ids();
        ring.sort_by_key(|&id| net.node(id).point());

        // Crash a contiguous arc of `arc_frac`% of the ring, starting
        // at an arbitrary ring position — the correlated-domain shape.
        let arc_len = (n * arc_frac / 100).max(1);
        let start = arc_start % n;
        let dead: Vec<_> = (0..arc_len).map(|k| ring[(start + k) % n]).collect();
        for &id in &dead {
            net.crash(id);
        }
        net.enable_retry_policy(RetryPolicy::default());

        let mut rng = StdRng::seed_from_u64(seed ^ 0xFA11_BACC);
        let survivors: Vec<_> = ring
            .iter()
            .copied()
            .filter(|id| !dead.contains(id))
            .collect();
        for (i, &raw) in targets.iter().enumerate() {
            let from = survivors[(start + i) % survivors.len()];
            let target = Point::new(raw);
            let truth = net.ground_truth_successor(target);
            let hit = net
                .find_successor_with_policy(from, target, &FaultPlan::none(), &mut rng)
                .expect("a policy-armed lookup from a live origin must degrade, not fail");
            prop_assert_eq!(
                hit.point,
                truth,
                "degraded answer must still be the first live successor"
            );
        }
    }
}
