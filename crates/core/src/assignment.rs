//! Exhaustive verification of the interval assignment (Theorem 6).
//!
//! The proof of Theorem 6 shows that the deterministic part of Figure 1
//! partitions the circle so every peer owns points of total measure exactly
//! `λ`. Because this crate uses a **discrete** ring, that statement becomes
//! finite and checkable: on a small ring we can run the deterministic scan
//! for *every* start point `s` and count each peer's preimages.
//!
//! [`owner_map`] computes that full map through direct ring indexing — an
//! implementation *independent of the [`Dht`](crate::Dht) plumbing* — and
//! the test suite cross-checks it against [`Sampler::trial`] point by
//! point, then asserts the exact-measure invariant:
//!
//! * with an untruncated scan, **every peer owns exactly `λ` points**;
//! * with the paper's `R = 6 ln n′` bound, ownership can only shrink
//!   (never move to a different peer), which is what makes truncation
//!   bias-free in the accepted region.
//!
//! [`Sampler::trial`]: crate::Sampler::trial

use keyspace::{Point, SortedRing};

/// Computes the owner (peer rank) of a single start point `s`, or `None`
/// if the scan rejects within `step_limit` steps.
///
/// This follows Figure 1 exactly but against the ring directly, bypassing
/// the `Dht` abstraction, so it can serve as an independent reference for
/// the sampler.
///
/// # Panics
///
/// Panics if the ring is empty or `lambda == 0`.
pub fn owner_of(ring: &SortedRing, lambda: u64, step_limit: u32, s: Point) -> Option<usize> {
    assert!(!ring.is_empty(), "assignment needs at least one peer");
    assert!(lambda > 0, "lambda must be positive");
    let space = ring.space();
    let lambda = lambda as i128;

    let first = ring.successor_of(s);
    let mut t: i128 = space.distance(s, ring.point(first)).to_u128() as i128 - lambda;
    if t < 0 {
        return Some(first);
    }
    let mut current = first;
    for _ in 0..step_limit {
        let nxt = ring.next_index(current);
        t += space
            .distance(ring.point(current), ring.point(nxt))
            .to_u128() as i128
            - lambda;
        // Strict `< 0`, matching the sampler's discrete boundary
        // convention (see `Sampler` docs): the unique convention giving
        // every peer exactly λ points.
        if t < 0 {
            return Some(nxt);
        }
        current = nxt;
    }
    None
}

/// Computes the owner of **every** point of a small ring.
///
/// Index `i` of the result is the owner of `Point(i)` (or `None` for
/// rejected points). Intended for exhaustive verification and for the E5a
/// experiment; refuses rings large enough to make enumeration silly.
///
/// # Panics
///
/// Panics if the modulus exceeds `2^24`, the ring is empty, or
/// `lambda == 0`.
pub fn owner_map(ring: &SortedRing, lambda: u64, step_limit: u32) -> Vec<Option<usize>> {
    let modulus = ring.space().modulus();
    assert!(
        modulus <= 1 << 24,
        "owner_map enumerates every ring point; modulus {modulus} is too large"
    );
    (0..modulus as u64)
        .map(|c| owner_of(ring, lambda, step_limit, Point::new(c)))
        .collect()
}

/// Counts how many ring points each peer owns under the assignment.
///
/// Theorem 6's discrete form: with an untruncated scan every entry equals
/// `λ` exactly.
///
/// # Panics
///
/// As [`owner_map`].
pub fn measure_per_peer(ring: &SortedRing, lambda: u64, step_limit: u32) -> Vec<u64> {
    let mut counts = vec![0u64; ring.len()];
    for owner in owner_map(ring, lambda, step_limit).into_iter().flatten() {
        counts[owner] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyspace::KeySpace;
    use rand::SeedableRng;

    fn ring(modulus: u128, n: usize, seed: u64) -> SortedRing {
        let space = KeySpace::with_modulus(modulus).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        SortedRing::new(space, space.random_distinct_points(&mut rng, n))
    }

    #[test]
    fn untruncated_assignment_gives_every_peer_exactly_lambda() {
        // The discrete Theorem 6, checked exhaustively across seeds.
        for seed in 0..8 {
            let r = ring(1 << 14, 24, seed);
            let lambda = (1u64 << 14) / (7 * 24);
            let counts = measure_per_peer(&r, lambda, r.len() as u32 + 1);
            for (peer, &c) in counts.iter().enumerate() {
                assert_eq!(
                    c, lambda,
                    "seed {seed}: peer {peer} owns {c} points, expected {lambda}"
                );
            }
        }
    }

    #[test]
    fn truncation_shrinks_but_never_moves_ownership() {
        let r = ring(1 << 14, 24, 3);
        let lambda = (1u64 << 14) / (7 * 24);
        let full = owner_map(&r, lambda, r.len() as u32 + 1);
        let cut = owner_map(&r, lambda, 2);
        for (s, (f, c)) in full.iter().zip(&cut).enumerate() {
            match (f, c) {
                (Some(a), Some(b)) => assert_eq!(a, b, "point {s} moved owner"),
                (None, Some(_)) => panic!("truncation created ownership at {s}"),
                _ => {}
            }
        }
        let owned_full = full.iter().flatten().count();
        let owned_cut = cut.iter().flatten().count();
        assert!(owned_cut <= owned_full);
    }

    #[test]
    fn paper_step_bound_loses_nothing_on_typical_rings() {
        // With R = ⌈6 ln n⌉ and a healthy ring, property 3 holds and no
        // point is truncated — acceptance measure is exactly n·λ.
        let n = 24;
        let r = ring(1 << 14, n, 5);
        let lambda = (1u64 << 14) / (7 * n as u64);
        let step_bound = (6.0 * (n as f64).ln()).ceil() as u32;
        let counts = measure_per_peer(&r, lambda, step_bound);
        assert!(counts.iter().all(|&c| c == lambda), "{counts:?}");
    }

    #[test]
    fn owner_is_deterministic_and_total_measure_bounded() {
        let r = ring(1 << 12, 10, 7);
        let lambda = (1u64 << 12) / 70;
        let map1 = owner_map(&r, lambda, 64);
        let map2 = owner_map(&r, lambda, 64);
        assert_eq!(map1, map2);
        let owned = map1.iter().flatten().count() as u64;
        assert_eq!(owned, lambda * 10, "total accepted measure is n·λ");
    }

    #[test]
    fn peer_points_own_themselves() {
        let r = ring(1 << 12, 16, 9);
        let lambda = (1u64 << 12) / (7 * 16);
        for rank in 0..r.len() {
            let p = r.point(rank);
            assert_eq!(
                owner_of(&r, lambda, 64, p),
                Some(rank),
                "peer point must be owned by its peer (SMALL case, d = 0)"
            );
        }
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn owner_map_refuses_huge_rings() {
        let space = KeySpace::full();
        let r = SortedRing::new(space, vec![Point::new(1)]);
        let _ = owner_map(&r, 1, 1);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn zero_lambda_panics() {
        let r = ring(1 << 10, 4, 1);
        let _ = owner_of(&r, 0, 4, Point::new(0));
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn empty_ring_panics() {
        let space = KeySpace::with_modulus(1 << 10).unwrap();
        let r = SortedRing::new(space, vec![]);
        let _ = owner_of(&r, 1, 1, Point::new(0));
    }
}
