//! Batch sampling conveniences built on the single-draw primitive.
//!
//! Applications rarely want exactly one peer: data collection polls
//! hundreds, committee election needs `c` *distinct* members. These
//! helpers keep the per-draw guarantees while handling the bookkeeping
//! (cost aggregation, duplicate rejection) once, correctly.

use core::fmt;

use rand::Rng;

use crate::{Cost, Dht, Sample, SampleError, Sampler};

/// A batch of independent uniform draws (duplicates possible — sampling
/// *with* replacement).
#[derive(Debug, Clone)]
pub struct Batch<P> {
    /// The draws, in order.
    pub samples: Vec<Sample<P>>,
    /// Total messages/latency across the batch.
    pub cost: Cost,
}

/// A set of distinct uniform peers (sampling *without* replacement, by
/// rejection of duplicates).
#[derive(Debug, Clone)]
pub struct DistinctBatch<P> {
    /// The distinct peers, in draw order.
    pub peers: Vec<P>,
    /// Draws spent, including duplicates that were rejected.
    pub draws: u64,
    /// Total messages/latency across all draws.
    pub cost: Cost,
}

/// Error from [`Sampler::sample_distinct`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistinctError {
    /// A single draw failed.
    Sample(SampleError),
    /// Too many consecutive duplicates — `count` is probably close to or
    /// above the population size.
    DuplicatesExhausted {
        /// Distinct peers found before giving up.
        found: usize,
        /// Draws spent.
        draws: u64,
    },
}

impl fmt::Display for DistinctError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistinctError::Sample(e) => write!(f, "draw failed: {e}"),
            DistinctError::DuplicatesExhausted { found, draws } => write!(
                f,
                "only {found} distinct peers after {draws} draws; is the requested count near n?"
            ),
        }
    }
}

impl std::error::Error for DistinctError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistinctError::Sample(e) => Some(e),
            DistinctError::DuplicatesExhausted { .. } => None,
        }
    }
}

impl From<SampleError> for DistinctError {
    fn from(e: SampleError) -> DistinctError {
        DistinctError::Sample(e)
    }
}

impl Sampler {
    /// Draws `count` independent uniform peers (with replacement).
    ///
    /// # Errors
    ///
    /// Fails on the first draw that fails; prior draws are discarded
    /// (uniformity of a partial batch is still guaranteed, but returning
    /// it would invite ignoring the error).
    pub fn sample_many<D: Dht, R: Rng + ?Sized>(
        &self,
        dht: &D,
        count: usize,
        rng: &mut R,
    ) -> Result<Batch<D::Peer>, SampleError> {
        let mut samples = Vec::with_capacity(count);
        let mut cost = Cost::FREE;
        for _ in 0..count {
            let s = self.sample(dht, rng)?;
            cost += s.cost;
            samples.push(s);
        }
        Ok(Batch { samples, cost })
    }

    /// Draws `count` **distinct** uniform peers by rejecting duplicates.
    ///
    /// Conditioned on the returned set, every `count`-subset of peers is
    /// equally likely (the draw sequence is exchangeable and duplicates
    /// are rejected symmetrically). Intended for `count ≪ n`: the
    /// expected number of draws is `n·(H(n) − H(n − count)) ≈ count` in
    /// that regime. Gives up after `64 + 16·count` consecutive duplicate
    /// draws.
    ///
    /// # Errors
    ///
    /// * [`DistinctError::Sample`] — an underlying draw failed.
    /// * [`DistinctError::DuplicatesExhausted`] — the duplicate budget ran
    ///   out (requested count too close to the population size).
    pub fn sample_distinct<D: Dht, R: Rng + ?Sized>(
        &self,
        dht: &D,
        count: usize,
        rng: &mut R,
    ) -> Result<DistinctBatch<D::Peer>, DistinctError> {
        let mut peers: Vec<D::Peer> = Vec::with_capacity(count);
        let mut cost = Cost::FREE;
        let mut draws = 0u64;
        let mut consecutive_duplicates = 0u64;
        let budget = 64 + 16 * count as u64;
        while peers.len() < count {
            let s = self.sample(dht, rng)?;
            draws += 1;
            cost += s.cost;
            if peers.contains(&s.peer) {
                consecutive_duplicates += 1;
                if consecutive_duplicates > budget {
                    return Err(DistinctError::DuplicatesExhausted {
                        found: peers.len(),
                        draws,
                    });
                }
            } else {
                consecutive_duplicates = 0;
                peers.push(s.peer);
            }
        }
        Ok(DistinctBatch { peers, draws, cost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OracleDht, SamplerConfig};
    use keyspace::{KeySpace, SortedRing};
    use rand::SeedableRng;

    fn dht(n: usize, seed: u64) -> OracleDht {
        let space = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        OracleDht::new(SortedRing::new(space, space.random_points(&mut rng, n)))
    }

    #[test]
    fn sample_many_aggregates_costs() {
        let d = dht(100, 1);
        let sampler = Sampler::new(SamplerConfig::new(100));
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let batch = sampler.sample_many(&d, 25, &mut rng).unwrap();
        assert_eq!(batch.samples.len(), 25);
        let sum: Cost = batch.samples.iter().map(|s| s.cost).sum();
        assert_eq!(batch.cost, sum);
        assert!(batch.samples.iter().all(|s| s.peer < 100));
    }

    #[test]
    fn sample_distinct_returns_distinct_peers() {
        let d = dht(200, 3);
        let sampler = Sampler::new(SamplerConfig::new(200));
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let batch = sampler.sample_distinct(&d, 30, &mut rng).unwrap();
        assert_eq!(batch.peers.len(), 30);
        let set: std::collections::HashSet<_> = batch.peers.iter().collect();
        assert_eq!(set.len(), 30, "peers must be distinct");
        assert!(batch.draws >= 30);
        assert!(batch.cost.messages > 0);
    }

    #[test]
    fn sample_distinct_covers_whole_tiny_population() {
        let d = dht(5, 5);
        let sampler = Sampler::new(SamplerConfig::new(5));
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let batch = sampler.sample_distinct(&d, 5, &mut rng).unwrap();
        let mut peers = batch.peers.clone();
        peers.sort_unstable();
        assert_eq!(peers, vec![0, 1, 2, 3, 4]);
        assert!(batch.draws >= 5, "coupon collection costs extra draws");
    }

    #[test]
    fn sample_distinct_exhausts_when_count_exceeds_population() {
        let d = dht(3, 7);
        let sampler = Sampler::new(SamplerConfig::new(3));
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let err = sampler.sample_distinct(&d, 4, &mut rng).unwrap_err();
        match err {
            DistinctError::DuplicatesExhausted { found, draws } => {
                assert_eq!(found, 3);
                assert!(draws > 64);
            }
            other => panic!("expected exhaustion, got {other}"),
        }
        assert!(err.to_string().contains("distinct"));
    }

    #[test]
    fn distinct_sets_are_uniform_over_subsets() {
        // n = 6, count = 2: each unordered pair should appear ~1/15 of
        // the time.
        let d = dht(6, 9);
        let sampler = Sampler::new(SamplerConfig::new(6));
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let mut pair_counts = std::collections::HashMap::new();
        let rounds = 6000;
        for _ in 0..rounds {
            let batch = sampler.sample_distinct(&d, 2, &mut rng).unwrap();
            let mut pair = [batch.peers[0], batch.peers[1]];
            pair.sort_unstable();
            *pair_counts.entry(pair).or_insert(0u64) += 1;
        }
        assert_eq!(pair_counts.len(), 15, "all 15 pairs must occur");
        let expected = rounds as f64 / 15.0;
        for (pair, &c) in &pair_counts {
            assert!(
                (c as f64 - expected).abs() < expected * 0.35,
                "pair {pair:?}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn errors_propagate_from_draws() {
        use crate::FaultyDht;
        let broken = FaultyDht::new(dht(50, 11), 1.0, 12);
        let sampler = Sampler::new(SamplerConfig::new(50));
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        assert!(sampler.sample_many(&broken, 3, &mut rng).is_err());
        let err = sampler.sample_distinct(&broken, 3, &mut rng).unwrap_err();
        assert!(matches!(err, DistinctError::Sample(_)));
        use std::error::Error;
        assert!(err.source().is_some());
    }
}
