use core::fmt;

use keyspace::KeySpace;

/// The paper's interval-measure denominator: `λ = 1/(7 n̂)`.
pub const DEFAULT_LAMBDA_DENOMINATOR: u64 = 7;

/// Default cap on rejection-sampling retries.
///
/// Theorem 7 shows each trial succeeds with probability `n·λ = Ω(1)`
/// (at worst `≈ 1/147` with the loosest legal estimate), so 4096 trials
/// fail with probability below `(1 − 1/147)^4096 < 10^{-12}` — if the cap
/// is ever hit, the configuration is wrong, not unlucky.
pub const DEFAULT_MAX_TRIALS: u32 = 4096;

/// Error from an inconsistent [`SamplerConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `λ = ⌊M / (denominator · n_upper)⌋` came out zero: the ring modulus
    /// is too small for this population bound. Use a bigger modulus.
    LambdaVanishes {
        /// Ring modulus.
        modulus: u128,
        /// Configured denominator.
        denominator: u64,
        /// Configured population upper bound.
        n_upper: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::LambdaVanishes {
                modulus,
                denominator,
                n_upper,
            } => write!(
                f,
                "lambda is zero: modulus {modulus} < {denominator} * {n_upper}; use a larger key space"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Parameters of the *Choose Random Peer* algorithm (Figure 1).
///
/// The single load-bearing input is `n_upper`, an estimate of the peer
/// count that must satisfy `n ≤ n_upper = O(n)` with high probability —
/// this is the paper's `n′ = n̂/γ₁`. From it the sampler derives
///
/// * `λ = ⌊M / (denominator · n_upper)⌋` — each peer's exact measure of
///   ring points ([`SamplerConfig::lambda`]), and
/// * the scan bound `R = ⌈6 ln n_upper⌉` — Figure 1's "repeat `6 ln n′`
///   times" ([`SamplerConfig::step_bound`]).
///
/// In deployment, `n_upper` comes from
/// [`Estimate::to_sampler_config`](crate::Estimate::to_sampler_config),
/// which divides the §2 estimate by its proven lower ratio `γ₁ = 2/7`.
/// Tests and experiments that know the true `n` use
/// [`SamplerConfig::new`] directly.
///
/// # Example
///
/// ```
/// use keyspace::KeySpace;
/// use peer_sampling::SamplerConfig;
///
/// let config = SamplerConfig::new(1000);
/// let space = KeySpace::full();
/// // Each peer owns exactly this many ring points.
/// assert_eq!(config.lambda(space).unwrap() as u128, (1u128 << 64) / 7000);
/// assert_eq!(config.step_bound(), (6.0f64 * 1000f64.ln()).ceil() as u32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    n_upper: u64,
    lambda_denominator: u64,
    max_trials: u32,
    step_limit: Option<u32>,
}

impl SamplerConfig {
    /// Creates a config for a population upper bound `n_upper ≥ n`.
    ///
    /// # Panics
    ///
    /// Panics if `n_upper == 0`.
    pub fn new(n_upper: u64) -> SamplerConfig {
        assert!(n_upper > 0, "population bound must be at least 1");
        SamplerConfig {
            n_upper,
            lambda_denominator: DEFAULT_LAMBDA_DENOMINATOR,
            max_trials: DEFAULT_MAX_TRIALS,
            step_limit: None,
        }
    }

    /// Builds a config from a raw `(γ₁, γ₂)`-approximate size estimate by
    /// inflating it to an upper bound: `n_upper = ⌈n̂ / γ₁⌉`.
    ///
    /// With the §2 estimator, `γ₁ = 2/7` (Lemma 3).
    ///
    /// # Panics
    ///
    /// Panics if `n_hat` or `gamma1` is not positive and finite.
    pub fn from_raw_estimate(n_hat: f64, gamma1: f64) -> SamplerConfig {
        assert!(
            n_hat.is_finite() && n_hat > 0.0,
            "estimate must be positive, got {n_hat}"
        );
        assert!(
            gamma1.is_finite() && gamma1 > 0.0,
            "gamma1 must be positive, got {gamma1}"
        );
        SamplerConfig::new((n_hat / gamma1).ceil().max(1.0) as u64)
    }

    /// Overrides the `λ` denominator (the paper's 7). Smaller values give
    /// higher per-trial acceptance but need a stronger Lemma 4 margin; the
    /// E-ablation benches sweep this.
    ///
    /// # Panics
    ///
    /// Panics if `denominator == 0`.
    pub fn with_lambda_denominator(mut self, denominator: u64) -> SamplerConfig {
        assert!(denominator > 0, "denominator must be positive");
        self.lambda_denominator = denominator;
        self
    }

    /// Overrides the retry cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_trials == 0`.
    pub fn with_max_trials(mut self, max_trials: u32) -> SamplerConfig {
        assert!(max_trials > 0, "need at least one trial");
        self.max_trials = max_trials;
        self
    }

    /// Overrides the scan bound `R` (Figure 1's `6 ln n′`). Used by the
    /// exhaustive verification, which sets it high enough that no scan is
    /// ever truncated.
    ///
    /// # Panics
    ///
    /// Panics if `step_limit == 0`.
    pub fn with_step_limit(mut self, step_limit: u32) -> SamplerConfig {
        assert!(step_limit > 0, "step limit must be positive");
        self.step_limit = Some(step_limit);
        self
    }

    /// The configured population upper bound `n′`.
    pub fn n_upper(&self) -> u64 {
        self.n_upper
    }

    /// The `λ` denominator.
    pub fn lambda_denominator(&self) -> u64 {
        self.lambda_denominator
    }

    /// The retry cap.
    pub fn max_trials(&self) -> u32 {
        self.max_trials
    }

    /// The per-peer measure `λ` in ring points:
    /// `⌊M / (denominator · n_upper)⌋`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::LambdaVanishes`] when the modulus is too
    /// small to give every peer at least one point.
    pub fn lambda(&self, space: KeySpace) -> Result<u64, ConfigError> {
        let denom = self.lambda_denominator as u128 * self.n_upper as u128;
        let lambda = space.modulus() / denom;
        if lambda == 0 {
            Err(ConfigError::LambdaVanishes {
                modulus: space.modulus(),
                denominator: self.lambda_denominator,
                n_upper: self.n_upper,
            })
        } else {
            Ok(lambda as u64)
        }
    }

    /// The scan bound `R`: explicit override, or `⌈6 ln n_upper⌉` (at
    /// least 1).
    pub fn step_bound(&self) -> u32 {
        if let Some(limit) = self.step_limit {
            return limit;
        }
        let r = (6.0 * (self.n_upper as f64).ln()).ceil();
        (r as u32).max(1)
    }
}

impl fmt::Display for SamplerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SamplerConfig(n' = {}, lambda = 1/({} n'), R = {}, max_trials = {})",
            self.n_upper,
            self.lambda_denominator,
            self.step_bound(),
            self.max_trials
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_matches_formula() {
        let space = KeySpace::with_modulus(1_000_000).unwrap();
        let cfg = SamplerConfig::new(100);
        assert_eq!(cfg.lambda(space).unwrap(), 1_000_000 / 700);
    }

    #[test]
    fn lambda_vanishes_on_tiny_ring() {
        let space = KeySpace::with_modulus(100).unwrap();
        let cfg = SamplerConfig::new(100);
        let err = cfg.lambda(space).unwrap_err();
        assert!(matches!(err, ConfigError::LambdaVanishes { .. }));
        assert!(err.to_string().contains("larger key space"));
    }

    #[test]
    fn step_bound_is_six_ln_n() {
        assert_eq!(SamplerConfig::new(1000).step_bound(), 42); // 6 ln 1000 ≈ 41.45
        assert_eq!(SamplerConfig::new(1).step_bound(), 1); // floor at 1
        assert_eq!(SamplerConfig::new(1000).with_step_limit(7).step_bound(), 7);
    }

    #[test]
    fn from_raw_estimate_inflates_by_gamma() {
        // Raw estimate 200 with γ₁ = 2/7 → n_upper = 700.
        let cfg = SamplerConfig::from_raw_estimate(200.0, 2.0 / 7.0);
        assert_eq!(cfg.n_upper(), 700);
        // Tiny estimates floor at 1.
        assert_eq!(SamplerConfig::from_raw_estimate(0.1, 1.0).n_upper(), 1);
    }

    #[test]
    fn builders_override_fields() {
        let cfg = SamplerConfig::new(10)
            .with_lambda_denominator(5)
            .with_max_trials(9);
        assert_eq!(cfg.lambda_denominator(), 5);
        assert_eq!(cfg.max_trials(), 9);
        assert_eq!(cfg.n_upper(), 10);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_population_panics() {
        let _ = SamplerConfig::new(0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_estimate_panics() {
        let _ = SamplerConfig::from_raw_estimate(f64::NAN, 1.0);
    }

    #[test]
    fn display_mentions_parameters() {
        let s = SamplerConfig::new(10).to_string();
        assert!(s.contains("n' = 10"));
        assert!(s.contains("max_trials"));
    }
}
