use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign};

/// Resource cost of a DHT operation, in the paper's two currencies.
///
/// Theorem 7 bounds the sampler by `O(m_h + log n)` **messages** and
/// `O(t_h + log n)` **latency** (sequential message delays). Every [`Dht`]
/// operation reports both so the experiment harness can measure the real
/// constants.
///
/// Costs form a monoid under `+`; latency adds because the sampler issues
/// its operations sequentially.
///
/// # Example
///
/// ```
/// use peer_sampling::Cost;
///
/// let lookup = Cost::new(10, 10);
/// let step = Cost::new(1, 1);
/// assert_eq!(lookup + step, Cost::new(11, 11));
/// ```
///
/// [`Dht`]: crate::Dht
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cost {
    /// Messages sent.
    pub messages: u64,
    /// Latency in ticks (one tick = one message delay under the paper's
    /// unit-delay model).
    pub latency: u64,
}

impl Cost {
    /// The zero cost (local computation).
    pub const FREE: Cost = Cost {
        messages: 0,
        latency: 0,
    };

    /// A cost of `messages` messages and `latency` latency ticks.
    pub const fn new(messages: u64, latency: u64) -> Cost {
        Cost { messages, latency }
    }
}

impl Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        Cost {
            messages: self.messages + rhs.messages,
            latency: self.latency + rhs.latency,
        }
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::FREE, Add::add)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} msgs / {} ticks", self.messages, self.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_is_componentwise() {
        let a = Cost::new(3, 5) + Cost::new(4, 1);
        assert_eq!(a, Cost::new(7, 6));
        let mut b = Cost::FREE;
        b += Cost::new(2, 2);
        assert_eq!(b, Cost::new(2, 2));
    }

    #[test]
    fn free_is_identity() {
        assert_eq!(Cost::new(9, 9) + Cost::FREE, Cost::new(9, 9));
        assert_eq!(Cost::default(), Cost::FREE);
    }

    #[test]
    fn sum_of_costs() {
        let total: Cost = (1..=3).map(|i| Cost::new(i, 2 * i)).sum();
        assert_eq!(total, Cost::new(6, 12));
    }

    #[test]
    fn display_mentions_both_currencies() {
        let s = Cost::new(1, 2).to_string();
        assert!(s.contains("msgs") && s.contains("ticks"));
    }
}
