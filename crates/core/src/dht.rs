use core::fmt;

use keyspace::{KeySpace, Point};

use crate::Cost;

/// Error returned by [`Dht`] operations.
///
/// The oracle backend never fails; the Chord backend returns these under
/// churn (crashed nodes, stale routing state) so experiment E11 can measure
/// the sampler's behaviour in an imperfect network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhtError {
    /// The DHT has no live peers.
    EmptyRing,
    /// The peer handle refers to a node that is no longer part of the ring.
    PeerUnavailable,
    /// A routed lookup gave up (e.g. all successors of some hop crashed).
    RoutingFailed {
        /// Hops completed before the failure (for cost attribution).
        hops: u64,
    },
}

impl fmt::Display for DhtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DhtError::EmptyRing => write!(f, "the DHT has no live peers"),
            DhtError::PeerUnavailable => write!(f, "peer is no longer part of the ring"),
            DhtError::RoutingFailed { hops } => {
                write!(f, "lookup routing failed after {hops} hops")
            }
        }
    }
}

impl std::error::Error for DhtError {}

/// A successfully resolved peer, with the cost of resolving it.
///
/// Both `h` and `next` return the peer's point alongside its handle
/// because the sampling algorithms always need `l(p)` immediately — making
/// callers pay a second round-trip for it would misrepresent the paper's
/// cost model (the point travels in the response message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolved<P> {
    /// Handle of the resolved peer.
    pub peer: P,
    /// The peer's point `l(peer)` on the ring.
    pub point: Point,
    /// Messages/latency spent resolving.
    pub cost: Cost,
}

/// The two primitive operations the paper assumes of a DHT, plus local
/// introspection.
///
/// Implementations:
///
/// * [`OracleDht`](crate::OracleDht) — direct sorted-array queries with a
///   configurable synthetic cost; used for algorithm-correctness tests
///   where DHT routing bugs must not interfere.
/// * `chord::ChordDht` — real iterative Chord routing with measured hop
///   counts; used for every cost experiment.
///
/// # Contract
///
/// * `h(x)` returns the live peer whose point is closest **clockwise** of
///   `x` (inclusive of `x` itself).
/// * `next(p)` returns the live peer strictly clockwise of `p`'s point; on
///   a single-peer ring it returns `p` itself.
/// * `point_of(p)` is free (a local field read at peer `p`).
pub trait Dht {
    /// Handle by which the implementation names peers.
    type Peer: Copy + Eq + fmt::Debug;

    /// The key space the DHT operates on.
    fn space(&self) -> KeySpace;

    /// Resolves `h(x)`: the peer closest clockwise of point `x`.
    ///
    /// # Errors
    ///
    /// Returns [`DhtError::EmptyRing`] when no peers are live, or
    /// [`DhtError::RoutingFailed`] when routing cannot complete.
    fn h(&self, x: Point) -> Result<Resolved<Self::Peer>, DhtError>;

    /// Resolves `next(p)`: the immediate clockwise successor of peer `p`.
    ///
    /// # Errors
    ///
    /// Returns [`DhtError::PeerUnavailable`] if `p` is gone.
    fn next(&self, p: Self::Peer) -> Result<Resolved<Self::Peer>, DhtError>;

    /// The ring point of peer `p` (a free local read).
    ///
    /// # Errors
    ///
    /// Returns [`DhtError::PeerUnavailable`] if `p` is gone.
    fn point_of(&self, p: Self::Peer) -> Result<Point, DhtError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(DhtError::EmptyRing.to_string().contains("no live peers"));
        assert!(DhtError::PeerUnavailable.to_string().contains("no longer"));
        assert!(DhtError::RoutingFailed { hops: 3 }
            .to_string()
            .contains('3'));
    }

    #[test]
    fn resolved_is_plain_data() {
        let r = Resolved {
            peer: 7usize,
            point: Point::new(9),
            cost: Cost::new(1, 1),
        };
        let copy = r;
        assert_eq!(copy, r);
    }
}
