use core::fmt;

use crate::{Cost, Dht, DhtError, SamplerConfig};

/// Proven lower approximation ratio of the §2 estimator (Lemma 3):
/// `n̂ ≥ (2/7 − ε) n` with high probability.
pub const ESTIMATE_GAMMA_LOWER: f64 = 2.0 / 7.0;

/// Proven upper approximation ratio of the §2 estimator (Lemma 3):
/// `n̂ ≤ (6 + ε) n` with high probability.
pub const ESTIMATE_GAMMA_UPPER: f64 = 6.0;

/// Result of the *Estimate n* algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// The estimate `n̂₂ = s / t` (paper notation), or the exact count when
    /// the probe walk looped the whole ring.
    pub n_hat: f64,
    /// The coarse first-stage estimate `n̂₁ = 1/d(l(p), l(next(p)))`.
    pub n_hat_coarse: f64,
    /// Number of `next` probes actually issued (the paper's `s`, possibly
    /// truncated by a full loop).
    pub probes: u64,
    /// Whether the walk returned to the origin, making `n_hat` exact.
    pub exact: bool,
    /// Total messages/latency spent.
    pub cost: Cost,
}

impl Estimate {
    /// Converts the estimate into a sampler configuration by inflating it
    /// with the proven lower ratio `γ₁ = 2/7`, so the configured `n_upper`
    /// is `≥ n` with high probability (exact estimates are used as-is).
    pub fn to_sampler_config(&self) -> SamplerConfig {
        if self.exact {
            SamplerConfig::new(self.n_hat.round().max(1.0) as u64)
        } else {
            SamplerConfig::from_raw_estimate(self.n_hat, ESTIMATE_GAMMA_LOWER)
        }
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n_hat = {:.1}{} ({} probes, {})",
            self.n_hat,
            if self.exact { " (exact)" } else { "" },
            self.probes,
            self.cost
        )
    }
}

/// The §2 *Estimate n* algorithm.
///
/// A peer estimates the total peer count in two stages:
///
/// 1. **Coarse**: `n̂₁ = 1 / d(l(p), l(next(p)))` — by Lemma 1 the arc to
///    the immediate successor is between `1/n³` and `≈ log n / n` w.h.p.,
///    so `ln n̂₁ = Θ(ln n)`.
/// 2. **Refine**: walk `s = ⌈c₁ ln n̂₁⌉` successors, measure the total arc
///    `t` they span, and return `n̂₂ = s/t` — the local peer density. By
///    Lemma 2, `t` concentrates around `s/n`, giving a constant-factor
///    approximation (Lemma 3: within `(2/7 − ε, 6 + ε)`).
///
/// **Deviation from the paper (documented in DESIGN.md):** on small rings
/// the walk length `s` can exceed `n`; the paper implicitly assumes
/// `s ≪ n`. We detect the walk returning to its origin, in which case the
/// count is *exact* — strictly more accurate at no extra cost, and
/// asymptotically irrelevant.
///
/// # Example
///
/// ```
/// use keyspace::{KeySpace, SortedRing};
/// use peer_sampling::{NetworkSizeEstimator, OracleDht};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let space = KeySpace::full();
/// let ring = SortedRing::new(space, space.random_points(&mut rng, 2000));
/// let dht = OracleDht::new(ring);
/// let est = NetworkSizeEstimator::default().estimate(&dht, 0)?;
/// // Lemma 3 band (slack for the small-n constant effects):
/// assert!(est.n_hat > 2000.0 * 0.2 && est.n_hat < 2000.0 * 7.0);
/// # Ok::<(), peer_sampling::DhtError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkSizeEstimator {
    c1: f64,
}

impl NetworkSizeEstimator {
    /// Default probe multiplier `c₁`.
    ///
    /// The paper's proof wants a large constant (`C > 144/(α₁ε²)`); in
    /// practice the estimate is already within Lemma 3's band for modest
    /// `c₁`, and experiment E3 sweeps this to show the trade-off between
    /// probe cost and tightness.
    pub const DEFAULT_C1: f64 = 8.0;

    /// Creates an estimator with probe multiplier `c1`.
    ///
    /// # Panics
    ///
    /// Panics unless `c1` is positive and finite.
    pub fn new(c1: f64) -> NetworkSizeEstimator {
        assert!(c1.is_finite() && c1 > 0.0, "c1 must be positive, got {c1}");
        NetworkSizeEstimator { c1 }
    }

    /// The probe multiplier.
    pub fn c1(&self) -> f64 {
        self.c1
    }

    /// Runs *Estimate n* from peer `origin`.
    ///
    /// # Errors
    ///
    /// Propagates [`DhtError`] from `next` probes (only possible on a
    /// faulty/churning DHT backend).
    pub fn estimate<D: Dht>(&self, dht: &D, origin: D::Peer) -> Result<Estimate, DhtError> {
        let space = dht.space();
        let origin_point = dht.point_of(origin)?;

        // Stage 1: n̂₁ from the arc to the immediate successor.
        let first = dht.next(origin)?;
        let mut cost = first.cost;
        if first.peer == origin {
            // Singleton ring: next(p) = p. The estimate is exact.
            return Ok(Estimate {
                n_hat: 1.0,
                n_hat_coarse: 1.0,
                probes: 1,
                exact: true,
                cost,
            });
        }
        let d1 = space.distance(origin_point, first.point);
        debug_assert!(!d1.is_zero(), "distinct peers share a point");
        let n_hat_coarse = space.modulus() as f64 / d1.to_u128() as f64;

        // Stage 2: walk s = ⌈c₁ ln n̂₁⌉ successors, summing their arcs.
        let s = (self.c1 * n_hat_coarse.ln()).ceil().max(1.0) as u64;
        let mut probes = 1u64; // the stage-1 probe is the walk's first step
        let mut span = d1.to_u128();
        let mut current = first;
        let mut exact = false;
        while probes < s {
            let step = dht.next(current.peer)?;
            cost += step.cost;
            probes += 1;
            span += space.distance(current.point, step.point).to_u128();
            current = step;
            if step.peer == origin {
                // Walked the entire ring back to the origin: the ring has
                // exactly `probes` peers.
                exact = true;
                break;
            }
        }

        let n_hat = if exact {
            probes as f64
        } else {
            // n̂₂ = s/t with t in circle fractions: s · M / span.
            probes as f64 * space.modulus() as f64 / span as f64
        };
        Ok(Estimate {
            n_hat,
            n_hat_coarse,
            probes,
            exact,
            cost,
        })
    }
}

impl Default for NetworkSizeEstimator {
    fn default() -> NetworkSizeEstimator {
        NetworkSizeEstimator::new(NetworkSizeEstimator::DEFAULT_C1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OracleDht;
    use keyspace::{KeySpace, Point, SortedRing};
    use rand::SeedableRng;

    fn uniform_dht(n: usize, seed: u64) -> OracleDht {
        let space = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        OracleDht::new(SortedRing::new(space, space.random_points(&mut rng, n)))
    }

    #[test]
    fn estimate_within_lemma3_band() {
        for n in [500usize, 2000, 8000] {
            for seed in 0..5 {
                let dht = uniform_dht(n, seed);
                let est = NetworkSizeEstimator::default().estimate(&dht, 0).unwrap();
                let ratio = est.n_hat / n as f64;
                assert!(
                    (0.15..8.0).contains(&ratio),
                    "n = {n}, seed = {seed}: ratio {ratio}"
                );
            }
        }
    }

    #[test]
    fn singleton_ring_is_exact() {
        let space = KeySpace::full();
        let dht = OracleDht::new(SortedRing::new(space, vec![Point::new(42)]));
        let est = NetworkSizeEstimator::default().estimate(&dht, 0).unwrap();
        assert_eq!(est.n_hat, 1.0);
        assert!(est.exact);
    }

    #[test]
    fn tiny_ring_detects_full_loop_and_is_exact() {
        // 5 peers: s = c1·ln(n̂₁) will exceed 5, so the walk loops.
        let dht = uniform_dht(5, 3);
        let est = NetworkSizeEstimator::default().estimate(&dht, 2).unwrap();
        assert!(est.exact, "walk must detect the loop");
        assert_eq!(est.n_hat, 5.0);
    }

    #[test]
    fn probes_scale_logarithmically() {
        let small = uniform_dht(256, 1);
        let large = uniform_dht(65536, 1);
        let e_small = NetworkSizeEstimator::default().estimate(&small, 0).unwrap();
        let e_large = NetworkSizeEstimator::default().estimate(&large, 0).unwrap();
        assert!(e_large.probes > e_small.probes);
        // probes = Θ(log n): doubling the exponent should not explode them.
        assert!(
            (e_large.probes as f64) < 4.0 * e_small.probes as f64,
            "small: {}, large: {}",
            e_small.probes,
            e_large.probes
        );
    }

    #[test]
    fn cost_counts_next_probes() {
        let dht = uniform_dht(1000, 7);
        let est = NetworkSizeEstimator::default().estimate(&dht, 0).unwrap();
        // OracleDht charges 1 message per next.
        assert_eq!(est.cost.messages, est.probes);
    }

    #[test]
    fn larger_c1_gives_more_probes() {
        let dht = uniform_dht(1000, 11);
        let few = NetworkSizeEstimator::new(2.0).estimate(&dht, 0).unwrap();
        let many = NetworkSizeEstimator::new(32.0).estimate(&dht, 0).unwrap();
        assert!(many.probes > few.probes);
        assert_eq!(NetworkSizeEstimator::new(2.0).c1(), 2.0);
    }

    #[test]
    fn to_sampler_config_is_an_upper_bound_whp() {
        let n = 4000usize;
        for seed in 0..10 {
            let dht = uniform_dht(n, 100 + seed);
            let est = NetworkSizeEstimator::default().estimate(&dht, 0).unwrap();
            let cfg = est.to_sampler_config();
            assert!(
                cfg.n_upper() >= n as u64 / 2,
                "seed {seed}: n_upper {} far below n {n}",
                cfg.n_upper()
            );
        }
    }

    #[test]
    fn exact_estimate_config_not_inflated() {
        let dht = uniform_dht(5, 3);
        let est = NetworkSizeEstimator::default().estimate(&dht, 0).unwrap();
        assert!(est.exact);
        assert_eq!(est.to_sampler_config().n_upper(), 5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_c1_panics() {
        let _ = NetworkSizeEstimator::new(0.0);
    }

    #[test]
    fn display_mentions_probes() {
        let dht = uniform_dht(100, 2);
        let est = NetworkSizeEstimator::default().estimate(&dht, 0).unwrap();
        assert!(est.to_string().contains("probes"));
    }
}
