//! Deterministic fault injection for DHT backends.
//!
//! [`FaultyDht`] wraps any [`Dht`] and makes each operation fail with a
//! configured probability, letting tests and experiments exercise the
//! sampler's error paths (retry exhaustion, estimate failure, partial
//! scans) without standing up a churning Chord network. Failures are
//! drawn from a dedicated seeded RNG, so failure *schedules* are
//! reproducible independent of the sampler's own randomness.

use std::cell::RefCell;

use keyspace::{KeySpace, Point};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Dht, DhtError, Resolved};

/// A wrapper injecting random operation failures into any DHT backend.
///
/// # Example
///
/// ```
/// use keyspace::{KeySpace, SortedRing};
/// use peer_sampling::{Dht, FaultyDht, OracleDht};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let space = KeySpace::full();
/// let inner = OracleDht::new(SortedRing::new(space, space.random_points(&mut rng, 50)));
/// // Every operation fails.
/// let broken = FaultyDht::new(inner, 1.0, 9);
/// assert!(broken.h(space.random_point(&mut rng)).is_err());
/// ```
#[derive(Debug)]
pub struct FaultyDht<D> {
    inner: D,
    failure_probability: f64,
    rng: RefCell<StdRng>,
    injected: std::cell::Cell<u64>,
}

impl<D: Dht> FaultyDht<D> {
    /// Wraps `inner`, failing each `h`/`next` call independently with
    /// `failure_probability`.
    ///
    /// # Panics
    ///
    /// Panics unless `failure_probability ∈ [0, 1]`.
    pub fn new(inner: D, failure_probability: f64, seed: u64) -> FaultyDht<D> {
        assert!(
            (0.0..=1.0).contains(&failure_probability),
            "failure probability {failure_probability} outside [0, 1]"
        );
        FaultyDht {
            inner,
            failure_probability,
            rng: RefCell::new(StdRng::seed_from_u64(seed)),
            injected: std::cell::Cell::new(0),
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Unwraps the backend.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Number of failures injected so far.
    pub fn injected_failures(&self) -> u64 {
        self.injected.get()
    }

    fn maybe_fail(&self) -> Result<(), DhtError> {
        if self.rng.borrow_mut().gen::<f64>() < self.failure_probability {
            self.injected.set(self.injected.get() + 1);
            Err(DhtError::RoutingFailed { hops: 0 })
        } else {
            Ok(())
        }
    }
}

impl<D: Dht> Dht for FaultyDht<D> {
    type Peer = D::Peer;

    fn space(&self) -> KeySpace {
        self.inner.space()
    }

    fn h(&self, x: Point) -> Result<Resolved<D::Peer>, DhtError> {
        self.maybe_fail()?;
        self.inner.h(x)
    }

    fn next(&self, p: D::Peer) -> Result<Resolved<D::Peer>, DhtError> {
        self.maybe_fail()?;
        self.inner.next(p)
    }

    fn point_of(&self, p: D::Peer) -> Result<Point, DhtError> {
        // Local reads don't traverse the network; they never fail.
        self.inner.point_of(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkSizeEstimator, OracleDht, SampleError, Sampler, SamplerConfig};
    use keyspace::SortedRing;

    fn oracle(n: usize, seed: u64) -> OracleDht {
        let space = KeySpace::full();
        let mut rng = StdRng::seed_from_u64(seed);
        OracleDht::new(SortedRing::new(space, space.random_points(&mut rng, n)))
    }

    #[test]
    fn zero_probability_is_transparent() {
        let dht = FaultyDht::new(oracle(100, 1), 0.0, 2);
        let sampler = Sampler::new(SamplerConfig::new(100));
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            assert!(sampler.sample(&dht, &mut rng).is_ok());
        }
        assert_eq!(dht.injected_failures(), 0);
    }

    #[test]
    fn total_failure_surfaces_dht_error() {
        let dht = FaultyDht::new(oracle(100, 4), 1.0, 5);
        let sampler = Sampler::new(SamplerConfig::new(100));
        let mut rng = StdRng::seed_from_u64(6);
        let err = sampler.sample(&dht, &mut rng).unwrap_err();
        assert!(matches!(
            err,
            SampleError::Dht(DhtError::RoutingFailed { .. })
        ));
        assert!(dht.injected_failures() > 0);
    }

    #[test]
    fn estimator_propagates_injected_failures() {
        let dht = FaultyDht::new(oracle(500, 7), 1.0, 8);
        let err = NetworkSizeEstimator::default()
            .estimate(&dht, 0)
            .unwrap_err();
        assert_eq!(err, DhtError::RoutingFailed { hops: 0 });
    }

    #[test]
    fn moderate_failure_rate_still_usually_succeeds_with_retries() {
        // A full sample touches ~15 DHT ops (≈7 trials × 2 ops), so even
        // a 2% per-op failure rate fails ~26% of samples — the
        // application-level retry loop absorbs that.
        let dht = FaultyDht::new(oracle(200, 9), 0.02, 10);
        let sampler = Sampler::new(SamplerConfig::new(200));
        let mut rng = StdRng::seed_from_u64(11);
        let mut ok = 0;
        for _ in 0..100 {
            for _ in 0..8 {
                if sampler.sample(&dht, &mut rng).is_ok() {
                    ok += 1;
                    break;
                }
            }
        }
        assert!(ok >= 97, "only {ok}/100 samples succeeded with retries");
        assert!(dht.injected_failures() > 0, "failures must actually occur");
    }

    #[test]
    fn failure_schedule_is_reproducible() {
        let run = |seed| {
            let dht = FaultyDht::new(oracle(100, 12), 0.3, seed);
            let sampler = Sampler::new(SamplerConfig::new(100));
            let mut rng = StdRng::seed_from_u64(13);
            let results: Vec<bool> = (0..50)
                .map(|_| sampler.sample(&dht, &mut rng).is_ok())
                .collect();
            (results, dht.injected_failures())
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).0, run(100).0);
    }

    #[test]
    fn point_of_never_fails() {
        let dht = FaultyDht::new(oracle(10, 14), 1.0, 15);
        assert!(dht.point_of(3).is_ok());
        assert_eq!(dht.inner().len(), 10);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn bad_probability_panics() {
        let _ = FaultyDht::new(oracle(10, 16), 1.5, 17);
    }

    #[test]
    fn into_inner_round_trips() {
        let dht = FaultyDht::new(oracle(10, 18), 0.5, 19);
        assert_eq!(dht.into_inner().len(), 10);
    }
}
