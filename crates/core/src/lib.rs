//! `peer-sampling` — King & Saia, *Choosing a Random Peer* (PODC 2004).
//!
//! This crate implements the paper's contribution: the first fully
//! distributed algorithm that chooses a peer **uniformly at random** from
//! all peers of a DHT, using only the two primitive DHT operations
//!
//! * `h(x)` — the peer closest clockwise of an arbitrary ring point `x`
//!   (a DHT lookup, `O(log n)` messages in Chord), and
//! * `next(p)` — the immediate clockwise successor of a peer (`O(1)`).
//!
//! Both primitives are abstracted by the [`Dht`] trait, so the algorithms
//! run unchanged against the zero-cost [`OracleDht`] (for correctness
//! testing) and against the full Chord protocol from the `chord` crate (for
//! cost measurements).
//!
//! # The two algorithms
//!
//! * [`NetworkSizeEstimator`] — §2's *Estimate n*: a peer estimates the
//!   network size within a constant factor from `O(log n)` `next` probes.
//! * [`Sampler`] — §3's *Choose Random Peer* (Figure 1): rejection sampling
//!   over a conceptual partition of the ring that assigns every peer
//!   intervals of total measure **exactly** `λ`, making every accepted
//!   draw exactly uniform (Theorem 6) at `O(log n)` expected cost
//!   (Theorem 7).
//!
//! All decision arithmetic is exact integer arithmetic on the discrete
//! ring — no floating point — so Theorem 6 is *exhaustively verifiable*:
//! see [`assignment::owner_map`], which enumerates every ring point on a
//! small ring and checks that each peer owns exactly `λ` of them.
//!
//! # Quickstart
//!
//! ```
//! use keyspace::{KeySpace, SortedRing};
//! use peer_sampling::{OracleDht, Sampler, SamplerConfig};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let space = KeySpace::full();
//! let ring = SortedRing::new(space, space.random_points(&mut rng, 500));
//! let dht = OracleDht::new(ring);
//!
//! // In deployment n is unknown; here we build the config from the truth.
//! let config = SamplerConfig::new(dht.len() as u64);
//! let sampler = Sampler::new(config);
//! let sample = sampler.sample(&dht, &mut rng)?;
//! assert!(sample.peer < dht.len());
//! # Ok::<(), peer_sampling::SampleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod weighted;

mod batch;
mod config;
mod cost;
mod dht;
mod estimate;
mod faulty;
mod oracle;
mod sampler;
pub mod theory;

pub use batch::{Batch, DistinctBatch, DistinctError};
pub use config::{ConfigError, SamplerConfig, DEFAULT_LAMBDA_DENOMINATOR};
pub use cost::Cost;
pub use dht::{Dht, DhtError, Resolved};
pub use estimate::{Estimate, NetworkSizeEstimator, ESTIMATE_GAMMA_LOWER, ESTIMATE_GAMMA_UPPER};
pub use faulty::FaultyDht;
pub use oracle::OracleDht;
pub use sampler::{Sample, SampleError, Sampler, TrialOutcome};
