use keyspace::{KeySpace, Point, SortedRing};

use crate::{Cost, Dht, DhtError, Resolved};

/// An idealized DHT backed by a sorted array of peer points.
///
/// `OracleDht` answers `h` and `next` by direct binary search — no routing,
/// no failures — while charging a configurable *synthetic* cost per call so
/// that cost-sensitive code paths (trial accounting, expected-message
/// experiments) still exercise realistically. The defaults mimic a standard
/// DHT: `h` costs `⌈log₂ n⌉` messages and the same latency; `next` costs
/// one message.
///
/// Peers are identified by their clockwise **rank** (`usize`), matching
/// [`SortedRing`] indices, which makes selection histograms trivial to
/// build.
///
/// Use this backend to test *algorithm* correctness in isolation; use
/// `chord::ChordDht` to *measure* costs on a real protocol.
///
/// # Example
///
/// ```
/// use keyspace::{KeySpace, Point, SortedRing};
/// use peer_sampling::{Dht, OracleDht};
///
/// let space = KeySpace::with_modulus(100).unwrap();
/// let ring = SortedRing::new(space, vec![Point::new(10), Point::new(60)]);
/// let dht = OracleDht::new(ring);
/// let hit = dht.h(Point::new(42))?;
/// assert_eq!(hit.point, Point::new(60));
/// let succ = dht.next(hit.peer)?;
/// assert_eq!(succ.point, Point::new(10)); // wraps
/// # Ok::<(), peer_sampling::DhtError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OracleDht {
    ring: SortedRing,
    h_cost: Cost,
    next_cost: Cost,
}

impl OracleDht {
    /// Wraps a ring with standard-DHT synthetic costs
    /// (`h`: `⌈log₂ n⌉` messages/ticks, `next`: 1/1).
    pub fn new(ring: SortedRing) -> OracleDht {
        let hops = (ring.len().max(2) as f64).log2().ceil() as u64;
        OracleDht::with_costs(ring, Cost::new(hops, hops), Cost::new(1, 1))
    }

    /// Wraps a ring with explicit per-operation costs.
    pub fn with_costs(ring: SortedRing, h_cost: Cost, next_cost: Cost) -> OracleDht {
        OracleDht {
            ring,
            h_cost,
            next_cost,
        }
    }

    /// Wraps a ring with zero-cost operations (pure correctness testing).
    pub fn free(ring: SortedRing) -> OracleDht {
        OracleDht::with_costs(ring, Cost::FREE, Cost::FREE)
    }

    /// Builds the oracle's membership view from an incrementally
    /// maintained [`RingIndex`](ringidx::RingIndex) in O(n), instead of
    /// re-collecting and re-sorting a member list. Co-located entries
    /// (distinct ids at one point) collapse to a single peer, exactly as
    /// [`SortedRing::new`] deduplicates.
    ///
    /// This is the scale path for churned oracle runs: the caller applies
    /// each join/leave/crash to the index in O(log n) and snapshots the
    /// view here when sampling starts.
    pub fn from_index<I: Copy + Ord>(index: &ringidx::RingIndex<I>) -> OracleDht {
        OracleDht::new(SortedRing::from_sorted(index.space(), index.points()))
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the DHT has no peers.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Borrow the underlying ring (for assertions and theory predicates).
    pub fn ring(&self) -> &SortedRing {
        &self.ring
    }
}

impl Dht for OracleDht {
    type Peer = usize;

    fn space(&self) -> KeySpace {
        self.ring.space()
    }

    fn h(&self, x: Point) -> Result<Resolved<usize>, DhtError> {
        if self.ring.is_empty() {
            return Err(DhtError::EmptyRing);
        }
        let rank = self.ring.successor_of(x);
        Ok(Resolved {
            peer: rank,
            point: self.ring.point(rank),
            cost: self.h_cost,
        })
    }

    fn next(&self, p: usize) -> Result<Resolved<usize>, DhtError> {
        if p >= self.ring.len() {
            return Err(DhtError::PeerUnavailable);
        }
        let rank = self.ring.next_index(p);
        Ok(Resolved {
            peer: rank,
            point: self.ring.point(rank),
            cost: self.next_cost,
        })
    }

    fn point_of(&self, p: usize) -> Result<Point, DhtError> {
        if p >= self.ring.len() {
            return Err(DhtError::PeerUnavailable);
        }
        Ok(self.ring.point(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn dht() -> OracleDht {
        let space = KeySpace::with_modulus(100).unwrap();
        OracleDht::new(SortedRing::new(
            space,
            vec![Point::new(10), Point::new(40), Point::new(90)],
        ))
    }

    #[test]
    fn h_finds_clockwise_successor() {
        let d = dht();
        assert_eq!(d.h(Point::new(11)).unwrap().peer, 1);
        assert_eq!(d.h(Point::new(40)).unwrap().peer, 1); // inclusive
        assert_eq!(d.h(Point::new(95)).unwrap().peer, 0); // wraps
    }

    #[test]
    fn next_wraps_and_reports_point() {
        let d = dht();
        let r = d.next(2).unwrap();
        assert_eq!(r.peer, 0);
        assert_eq!(r.point, Point::new(10));
    }

    #[test]
    fn default_costs_are_logarithmic() {
        let space = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let ring = SortedRing::new(space, space.random_points(&mut rng, 1024));
        let d = OracleDht::new(ring);
        let h = d.h(Point::new(1)).unwrap();
        assert_eq!(h.cost, Cost::new(10, 10)); // log2(1024) = 10
        let n = d.next(0).unwrap();
        assert_eq!(n.cost, Cost::new(1, 1));
    }

    #[test]
    fn free_costs_nothing() {
        let space = KeySpace::with_modulus(100).unwrap();
        let d = OracleDht::free(SortedRing::new(space, vec![Point::new(1)]));
        assert_eq!(d.h(Point::new(0)).unwrap().cost, Cost::FREE);
    }

    #[test]
    fn errors_on_empty_and_stale() {
        let space = KeySpace::with_modulus(100).unwrap();
        let empty = OracleDht::new(SortedRing::new(space, vec![]));
        assert_eq!(empty.h(Point::new(0)).unwrap_err(), DhtError::EmptyRing);
        assert!(empty.is_empty());
        let d = dht();
        assert_eq!(d.next(3).unwrap_err(), DhtError::PeerUnavailable);
        assert_eq!(d.point_of(9).unwrap_err(), DhtError::PeerUnavailable);
    }

    #[test]
    fn point_of_is_rank_point() {
        let d = dht();
        assert_eq!(d.point_of(1).unwrap(), Point::new(40));
        assert_eq!(d.len(), 3);
        assert_eq!(d.ring().len(), 3);
        assert_eq!(d.space().modulus(), 100);
    }

    #[test]
    fn from_index_matches_member_list_construction() {
        let space = KeySpace::with_modulus(100).unwrap();
        let points = vec![
            Point::new(90),
            Point::new(10),
            Point::new(40),
            Point::new(40),
        ];
        let mut index = ringidx::RingIndex::new(space);
        for (i, &p) in points.iter().enumerate() {
            index.insert(p, i as u64);
        }
        let from_index = OracleDht::from_index(&index);
        let from_list = OracleDht::new(SortedRing::new(space, points));
        assert_eq!(from_index.ring(), from_list.ring());
        assert_eq!(from_index.len(), 3, "co-located peers collapse");
        assert_eq!(from_index.h(Point::new(15)).unwrap().point, Point::new(40));
    }

    #[test]
    fn single_peer_next_is_self() {
        let space = KeySpace::with_modulus(100).unwrap();
        let d = OracleDht::new(SortedRing::new(space, vec![Point::new(5)]));
        let r = d.next(0).unwrap();
        assert_eq!(r.peer, 0, "singleton ring: next(p) = p");
    }
}
