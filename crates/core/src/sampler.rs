use core::fmt;

use keyspace::Point;
use rand::Rng;

use crate::{ConfigError, Cost, Dht, DhtError, SamplerConfig};

/// Error returned by [`Sampler::sample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleError {
    /// A DHT operation failed (possible only on faulty/churning backends).
    Dht(DhtError),
    /// The rejection loop hit the retry cap — with a sane configuration
    /// this indicates a misconfigured `n_upper`, not bad luck (the
    /// default cap of 4096 trials fails with probability below `10⁻¹²`
    /// even at the loosest legal estimate).
    TrialsExhausted {
        /// Number of trials attempted.
        attempts: u32,
    },
    /// The configuration is inconsistent with the key space.
    Config(ConfigError),
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::Dht(e) => write!(f, "DHT operation failed: {e}"),
            SampleError::TrialsExhausted { attempts } => {
                write!(f, "no trial succeeded in {attempts} attempts")
            }
            SampleError::Config(e) => write!(f, "invalid sampler configuration: {e}"),
        }
    }
}

impl std::error::Error for SampleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SampleError::Dht(e) => Some(e),
            SampleError::Config(e) => Some(e),
            SampleError::TrialsExhausted { .. } => None,
        }
    }
}

impl From<DhtError> for SampleError {
    fn from(e: DhtError) -> SampleError {
        SampleError::Dht(e)
    }
}

impl From<ConfigError> for SampleError {
    fn from(e: ConfigError) -> SampleError {
        SampleError::Config(e)
    }
}

/// A successfully drawn uniform random peer, with full cost attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample<P> {
    /// The chosen peer — uniform over all peers (Theorem 6).
    pub peer: P,
    /// The chosen peer's ring point.
    pub point: Point,
    /// Trials used (geometric with `Ω(1)` success probability, Theorem 7).
    pub trials: u32,
    /// Total `h` lookups issued (one per trial).
    pub h_calls: u64,
    /// Total `next` steps issued (at most `R` per trial).
    pub next_calls: u64,
    /// Total messages/latency across all trials.
    pub cost: Cost,
}

/// Outcome of one deterministic trial of Figure 1 for a fixed start point.
///
/// Exposed so tests and the exhaustive verifier can drive the deterministic
/// part directly: after `s` is fixed, the algorithm either maps `s` to a
/// unique peer or rejects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome<P> {
    /// `s` belongs to an interval owned by this peer.
    Accepted {
        /// The owning peer.
        peer: P,
        /// The owning peer's ring point.
        point: Point,
        /// `next` steps the scan consumed.
        steps: u32,
        /// Messages/latency the scan consumed (including the `h` lookup).
        cost: Cost,
    },
    /// `s` belongs to no peer's intervals (or the scan bound truncated the
    /// walk); the caller must redraw `s`.
    Rejected {
        /// `next` steps the failed scan consumed.
        steps: u32,
        /// Messages/latency the failed scan consumed.
        cost: Cost,
    },
}

impl<P: Copy> TrialOutcome<P> {
    /// The accepted peer, if any.
    pub fn accepted_peer(&self) -> Option<P> {
        match *self {
            TrialOutcome::Accepted { peer, .. } => Some(peer),
            TrialOutcome::Rejected { .. } => None,
        }
    }

    /// `next` steps consumed by the scan.
    pub fn steps(&self) -> u32 {
        match *self {
            TrialOutcome::Accepted { steps, .. } | TrialOutcome::Rejected { steps, .. } => steps,
        }
    }

    /// Messages/latency consumed by the scan.
    pub fn cost(&self) -> Cost {
        match *self {
            TrialOutcome::Accepted { cost, .. } | TrialOutcome::Rejected { cost, .. } => cost,
        }
    }
}

/// The *Choose Random Peer* algorithm (Figure 1).
///
/// Conceptually the ring is partitioned so that every peer owns intervals
/// of total measure exactly `λ` (its own trailing arc if long enough,
/// supplemented from preceding peerless intervals otherwise). A trial draws
/// `s` uniformly, resolves `first = h(s)` and runs the exact accumulator
///
/// ```text
/// T ← |I(s, l(first))| − λ                  // accept first if T < 0 (SMALL)
/// repeat ≤ R times:
///     T ← T + |I(l(cur), l(next(cur)))| − λ
///     accept next(cur) if T < 0
/// ```
///
/// Acceptance maps each `s` to at most one peer, and each peer receives
/// **exactly `λ`** of the ring's `M` points, so conditioned on acceptance
/// the chosen peer is exactly uniform. All arithmetic is `i128`-exact; see
/// [`assignment`](crate::assignment) for the exhaustive verification.
///
/// **Deviation from the paper (documented in DESIGN.md):** Figure 1 accepts
/// on `T ≤ 0` inside the loop but `T < 0` at step 2. On the continuous
/// circle the `T = 0` boundary has measure zero, so the mixed convention is
/// immaterial; on a discrete ring the boundary is a real point and the
/// mixed convention hands every "needy" peer `λ + 1` points. We use strict
/// `T < 0` uniformly, which is the unique convention under which every
/// peer's measure is exactly `λ` — the discrete Theorem 6.
///
/// # Example
///
/// ```
/// use keyspace::{KeySpace, SortedRing};
/// use peer_sampling::{OracleDht, Sampler, SamplerConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let space = KeySpace::full();
/// let dht = OracleDht::new(SortedRing::new(space, space.random_points(&mut rng, 100)));
/// let sampler = Sampler::new(SamplerConfig::new(100));
/// let sample = sampler.sample(&dht, &mut rng)?;
/// assert!(sample.trials >= 1);
/// # Ok::<(), peer_sampling::SampleError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampler {
    config: SamplerConfig,
}

impl Sampler {
    /// Creates a sampler with the given configuration.
    pub fn new(config: SamplerConfig) -> Sampler {
        Sampler { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SamplerConfig {
        &self.config
    }

    /// Draws one uniform random peer.
    ///
    /// Retries rejected trials up to `config.max_trials()` times; each
    /// trial succeeds with probability `n·λ/M = Ω(1)` (Theorem 7), so the
    /// expected number of trials is `O(1)`.
    ///
    /// # Errors
    ///
    /// * [`SampleError::Config`] — `λ` is zero on this key space.
    /// * [`SampleError::Dht`] — a lookup failed (churning backend).
    /// * [`SampleError::TrialsExhausted`] — the retry cap was hit.
    pub fn sample<D: Dht, R: Rng + ?Sized>(
        &self,
        dht: &D,
        rng: &mut R,
    ) -> Result<Sample<D::Peer>, SampleError> {
        let space = dht.space();
        let mut total_cost = Cost::FREE;
        let mut next_calls = 0u64;
        for trial in 1..=self.config.max_trials() {
            let s = space.random_point(rng);
            match self.trial(dht, s)? {
                TrialOutcome::Accepted {
                    peer,
                    point,
                    steps,
                    cost,
                } => {
                    return Ok(Sample {
                        peer,
                        point,
                        trials: trial,
                        // Exactly one h lookup per trial.
                        h_calls: trial as u64,
                        next_calls: next_calls + steps as u64,
                        cost: total_cost + cost,
                    });
                }
                TrialOutcome::Rejected { steps, cost } => {
                    next_calls += steps as u64;
                    total_cost += cost;
                }
            }
        }
        Err(SampleError::TrialsExhausted {
            attempts: self.config.max_trials(),
        })
    }

    /// Runs the deterministic part of one trial for a fixed start point
    /// `s` (everything after Figure 1's step 1).
    ///
    /// Exposed for the exhaustive uniformity verification and for
    /// experiments that want per-trial telemetry.
    ///
    /// # Errors
    ///
    /// * [`SampleError::Config`] — `λ` is zero on this key space.
    /// * [`SampleError::Dht`] — a lookup failed.
    pub fn trial<D: Dht>(&self, dht: &D, s: Point) -> Result<TrialOutcome<D::Peer>, SampleError> {
        let space = dht.space();
        let lambda = self.config.lambda(space)? as i128;

        let first = dht.h(s)?;
        let mut cost = first.cost;

        // Step 2: |I(s, l(h(s)))| < λ (SMALL) → return h(s).
        let mut t: i128 = space.distance(s, first.point).to_u128() as i128 - lambda;
        if t < 0 {
            return Ok(TrialOutcome::Accepted {
                peer: first.peer,
                point: first.point,
                steps: 0,
                cost,
            });
        }

        // Step 3: walk successors, accumulating T; accept on T < 0 (strict,
        // see the type-level docs on the discrete boundary convention).
        //
        // Exact short-circuit (behaviour-preserving; DESIGN.md): each step
        // lowers T by at most λ (arcs are non-negative), so once
        // T ≥ remaining·λ the trial cannot accept and is rejected
        // immediately. This leaves the accept/reject map bit-identical to
        // Figure 1 while cutting the expected cost of rejected trials from
        // Θ(log n) next-steps to O(1).
        let bound = self.config.step_bound();
        if t >= bound as i128 * lambda {
            return Ok(TrialOutcome::Rejected { steps: 0, cost });
        }
        let mut current = first;
        for step in 1..=bound {
            let nxt = dht.next(current.peer)?;
            cost += nxt.cost;
            t += space.distance(current.point, nxt.point).to_u128() as i128 - lambda;
            if t < 0 {
                return Ok(TrialOutcome::Accepted {
                    peer: nxt.peer,
                    point: nxt.point,
                    steps: step,
                    cost,
                });
            }
            if t >= (bound - step) as i128 * lambda {
                return Ok(TrialOutcome::Rejected { steps: step, cost });
            }
            current = nxt;
        }
        Ok(TrialOutcome::Rejected { steps: bound, cost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OracleDht;
    use keyspace::{KeySpace, SortedRing};
    use rand::SeedableRng;

    fn dht(n: usize, seed: u64) -> OracleDht {
        let space = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        OracleDht::new(SortedRing::new(space, space.random_points(&mut rng, n)))
    }

    #[test]
    fn sample_returns_valid_peer() {
        let d = dht(200, 1);
        let sampler = Sampler::new(SamplerConfig::new(200));
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let s = sampler.sample(&d, &mut rng).unwrap();
            assert!(s.peer < d.len());
            assert_eq!(d.ring().point(s.peer), s.point);
            assert!(s.trials >= 1);
            assert!(s.cost.messages > 0);
            assert_eq!(s.h_calls, s.trials as u64);
        }
    }

    #[test]
    fn trials_are_few_in_expectation() {
        // With n_upper = n, success prob per trial is ≈ n·λ/M = 1/7.
        let d = dht(500, 3);
        let sampler = Sampler::new(SamplerConfig::new(500));
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let total: u32 = (0..400)
            .map(|_| sampler.sample(&d, &mut rng).unwrap().trials)
            .sum();
        let mean = total as f64 / 400.0;
        assert!(
            (4.0..12.0).contains(&mean),
            "mean trials {mean}, expected ≈ 7"
        );
    }

    #[test]
    fn deterministic_trial_is_a_function_of_s() {
        let d = dht(100, 5);
        let sampler = Sampler::new(SamplerConfig::new(100));
        let space = d.space();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        for _ in 0..200 {
            let s = space.random_point(&mut rng);
            let a = sampler.trial(&d, s).unwrap();
            let b = sampler.trial(&d, s).unwrap();
            assert_eq!(a.accepted_peer(), b.accepted_peer());
            assert_eq!(a.steps(), b.steps());
            assert_eq!(a.cost(), b.cost());
        }
    }

    #[test]
    fn s_on_peer_point_accepts_that_peer() {
        // d(s, l(h(s))) = 0 < λ: the SMALL case fires immediately.
        let d = dht(50, 7);
        let sampler = Sampler::new(SamplerConfig::new(50));
        let s = d.ring().point(13);
        let outcome = sampler.trial(&d, s).unwrap();
        assert_eq!(outcome.accepted_peer(), Some(13));
        assert_eq!(outcome.steps(), 0);
    }

    #[test]
    fn truncating_scan_only_rejects_never_redirects() {
        // Truncating the scan may convert acceptances to rejections but
        // must never change which peer an accepted point maps to. Plant a
        // ring with a tight cluster of peers after a huge gap, so the
        // cluster's tail peers need deep supplementation scans.
        let space = KeySpace::full();
        let cluster: Vec<keyspace::Point> =
            (0..30).map(|i| keyspace::Point::new(1000 + i)).collect();
        let d = OracleDht::new(SortedRing::new(space, cluster));
        let full = Sampler::new(SamplerConfig::new(30).with_step_limit(64));
        let cut = Sampler::new(SamplerConfig::new(30).with_step_limit(2));
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut truncated = 0;
        for _ in 0..2000 {
            let s = space.random_point(&mut rng);
            let a = full.trial(&d, s).unwrap().accepted_peer();
            let b = cut.trial(&d, s).unwrap().accepted_peer();
            match (a, b) {
                (Some(x), Some(y)) => assert_eq!(x, y),
                (Some(_), None) => truncated += 1,
                (None, Some(_)) => panic!("truncation cannot create acceptances"),
                (None, None) => {}
            }
        }
        assert!(truncated > 0, "a 2-step limit should truncate deep scans");
    }

    #[test]
    fn exhausted_trials_reported() {
        // An over-inflated n_upper with step limit 1 makes acceptance rare;
        // max_trials 1 makes exhaustion likely within a few attempts.
        let d = dht(10, 10);
        let sampler = Sampler::new(
            SamplerConfig::new(1_000_000)
                .with_max_trials(1)
                .with_step_limit(1),
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut saw_exhaustion = false;
        for _ in 0..200 {
            if let Err(SampleError::TrialsExhausted { attempts }) = sampler.sample(&d, &mut rng) {
                assert_eq!(attempts, 1);
                saw_exhaustion = true;
                break;
            }
        }
        assert!(saw_exhaustion, "tiny λ + 1 trial should sometimes exhaust");
    }

    #[test]
    fn config_error_propagates() {
        let space = KeySpace::with_modulus(100).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let d = OracleDht::new(SortedRing::new(space, space.random_points(&mut rng, 30)));
        let sampler = Sampler::new(SamplerConfig::new(1000)); // λ = 100/7000 = 0
        let err = sampler.sample(&d, &mut rng).unwrap_err();
        assert!(matches!(err, SampleError::Config(_)));
        assert!(err.to_string().contains("configuration"));
    }

    #[test]
    fn empty_ring_errors() {
        let space = KeySpace::full();
        let d = OracleDht::new(SortedRing::new(space, vec![]));
        let sampler = Sampler::new(SamplerConfig::new(1));
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        assert_eq!(
            sampler.sample(&d, &mut rng).unwrap_err(),
            SampleError::Dht(DhtError::EmptyRing)
        );
    }

    #[test]
    fn singleton_ring_always_returns_the_peer() {
        let space = KeySpace::full();
        let d = OracleDht::new(SortedRing::new(space, vec![keyspace::Point::new(5)]));
        let sampler = Sampler::new(SamplerConfig::new(1));
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        for _ in 0..20 {
            assert_eq!(sampler.sample(&d, &mut rng).unwrap().peer, 0);
        }
    }

    #[test]
    fn cost_accumulates_across_rejected_trials() {
        let d = dht(300, 15);
        let sampler = Sampler::new(SamplerConfig::new(300));
        let mut rng = rand::rngs::StdRng::seed_from_u64(16);
        // Find a multi-trial sample; its cost must exceed one h lookup.
        for _ in 0..100 {
            let s = sampler.sample(&d, &mut rng).unwrap();
            if s.trials > 1 {
                let h_cost = d.h(keyspace::Point::new(0)).unwrap().cost;
                assert!(s.cost.messages > h_cost.messages);
                return;
            }
        }
        panic!("never saw a multi-trial sample at 1/7 acceptance");
    }

    #[test]
    fn error_sources_chain() {
        use std::error::Error;
        let e = SampleError::Dht(DhtError::EmptyRing);
        assert!(e.source().is_some());
        let t = SampleError::TrialsExhausted { attempts: 3 };
        assert!(t.source().is_none());
        assert!(t.to_string().contains('3'));
    }
}
