//! Executable forms of the paper's supporting lemmas.
//!
//! Theorem 6 holds *conditioned on the hash function having properties
//! (1)–(3)* (Lemmas 1, 2, 4), each of which holds with probability
//! `≥ 1 − 1/n` over the random peer placement. This module turns each
//! property into a predicate over a concrete [`SortedRing`] so experiments
//! E1/E2/E4 can measure how often and how tightly they hold at practical
//! network sizes.

use keyspace::SortedRing;

/// Per-peer report for Lemma 1.
///
/// Lemma 1: w.h.p., for every peer `p`,
/// `ln n − ln ln n − 2 ≤ ln(1/d(l(p), l(next(p)))) ≤ 3 ln n`.
#[derive(Debug, Clone, PartialEq)]
pub struct Lemma1Report {
    /// `ln(1/d)` for each peer's successor arc, in rank order.
    pub values: Vec<f64>,
    /// The lemma's lower bound `ln n − ln ln n − 2`.
    pub lower: f64,
    /// The lemma's upper bound `3 ln n`.
    pub upper: f64,
    /// Number of peers violating either bound.
    pub violations: usize,
}

impl Lemma1Report {
    /// Whether every peer satisfies the bounds.
    pub fn holds(&self) -> bool {
        self.violations == 0
    }
}

/// Evaluates Lemma 1 on a ring.
///
/// # Panics
///
/// Panics if the ring has fewer than 3 peers (`ln ln n` needs `n ≥ 3`).
pub fn lemma1(ring: &SortedRing) -> Lemma1Report {
    let n = ring.len();
    assert!(n >= 3, "Lemma 1 needs at least 3 peers, got {n}");
    let space = ring.space();
    let ln_n = (n as f64).ln();
    let lower = ln_n - ln_n.ln() - 2.0;
    let upper = 3.0 * ln_n;
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let frac = space.fraction(ring.arc_after(i)).max(f64::MIN_POSITIVE);
            (1.0 / frac).ln()
        })
        .collect();
    let violations = values.iter().filter(|&&v| v < lower || v > upper).count();
    Lemma1Report {
        values,
        lower,
        upper,
        violations,
    }
}

/// Report for Lemma 4 / Corollary 5.
///
/// Lemma 4: w.h.p. the sum of the lengths of any `⌈6 ln n⌉` consecutive
/// maximally peerless intervals (= consecutive successor arcs) is at least
/// `(ln n)/n` of the circle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lemma4Report {
    /// Window size `⌈6 ln n⌉` used.
    pub window: usize,
    /// The smallest window sum observed, in ring points.
    pub min_window_sum: u128,
    /// The lemma's threshold `(ln n / n) · M`, in ring points.
    pub threshold: u128,
}

impl Lemma4Report {
    /// Whether the minimum window clears the threshold.
    pub fn holds(&self) -> bool {
        self.min_window_sum as f64 >= self.threshold as f64
    }

    /// Ratio of the observed minimum to the threshold (≥ 1 when the lemma
    /// holds; the margin the sampler actually enjoys).
    pub fn margin(&self) -> f64 {
        self.min_window_sum as f64 / self.threshold as f64
    }
}

/// Evaluates Lemma 4 on a ring, checking every window position.
///
/// # Panics
///
/// Panics if the ring has fewer than 2 peers.
pub fn lemma4(ring: &SortedRing) -> Lemma4Report {
    let n = ring.len();
    assert!(n >= 2, "Lemma 4 needs at least 2 peers, got {n}");
    let ln_n = (n as f64).ln();
    let window = ((6.0 * ln_n).ceil() as usize).max(1);
    let threshold = (ln_n / n as f64 * ring.space().modulus() as f64) as u128;

    // Sliding window over the circular arc sequence, O(n).
    let arcs: Vec<u128> = ring.arcs().map(|d| d.to_u128()).collect();
    let mut sum: u128 = (0..window).map(|i| arcs[i % n]).sum();
    let mut min_sum = sum;
    for start in 1..n {
        sum -= arcs[start - 1];
        sum += arcs[(start - 1 + window) % n];
        min_sum = min_sum.min(sum);
    }
    Lemma4Report {
        window,
        min_window_sum: min_sum,
        threshold,
    }
}

/// Report for Theorem 8: the minimum peer-to-peer arc is `Θ(1/n²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinArcReport {
    /// Minimum arc as a fraction of the circle.
    pub min_arc_fraction: f64,
    /// `min_arc_fraction · n²` — Theorem 8 says this is `Θ(1)`, so across
    /// seeds and sizes it should sit in a constant band.
    pub normalized: f64,
}

/// Evaluates Theorem 8's statistic on a ring.
///
/// # Panics
///
/// Panics if the ring has fewer than 2 peers.
pub fn min_arc(ring: &SortedRing) -> MinArcReport {
    let n = ring.len();
    let arc = ring.min_arc().expect("Theorem 8 needs at least 2 peers");
    let frac = ring.space().fraction(arc);
    MinArcReport {
        min_arc_fraction: frac,
        normalized: frac * (n as f64) * (n as f64),
    }
}

/// The naive heuristic's predicted bias (§1): the longest arc over the
/// shortest arc, which is the ratio of the most- to least-likely peer
/// under `h(random point)`. The paper predicts `Θ(n log n · n) /` well,
/// `longest = Θ(log n / n)` and `shortest = Θ(1/n²)`, so the ratio is
/// `Θ(n log n)`.
///
/// # Panics
///
/// Panics if the ring has fewer than 2 peers.
pub fn naive_bias_ratio(ring: &SortedRing) -> f64 {
    let min = ring
        .min_arc()
        .expect("bias ratio needs at least 2 peers")
        .to_u128() as f64;
    let max = ring.max_arc().expect("checked above").to_u128() as f64;
    if min == 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keyspace::KeySpace;
    use rand::SeedableRng;

    fn ring(n: usize, seed: u64) -> SortedRing {
        let space = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        SortedRing::new(space, space.random_points(&mut rng, n))
    }

    #[test]
    fn lemma1_holds_on_typical_rings() {
        // The union-bound failure probability at n = 4096 is ≤ 1/n; one
        // seed failing would be a surprise, several would be a bug.
        let mut failures = 0;
        for seed in 0..10 {
            let report = lemma1(&ring(4096, seed));
            assert_eq!(report.values.len(), 4096);
            if !report.holds() {
                failures += 1;
            }
        }
        assert!(failures <= 1, "{failures}/10 rings violated Lemma 1");
    }

    #[test]
    fn lemma1_bounds_are_ordered() {
        let report = lemma1(&ring(100, 1));
        assert!(report.lower < report.upper);
        // For n = 100: lower = ln 100 − ln ln 100 − 2 ≈ 1.078.
        assert!((report.lower - (100f64.ln() - 100f64.ln().ln() - 2.0)).abs() < 1e-12);
    }

    #[test]
    fn lemma1_detects_planted_violation() {
        // Two adjacent peers 1 point apart on the full ring: d ≈ 2^-64,
        // ln(1/d) ≈ 44 > 3 ln 8.
        let space = KeySpace::full();
        let mut pts = space.random_points(&mut rand::rngs::StdRng::seed_from_u64(3), 6);
        pts.push(keyspace::Point::new(1000));
        pts.push(keyspace::Point::new(1001));
        let r = SortedRing::new(space, pts);
        let report = lemma1(&r);
        assert!(!report.holds());
        assert!(report.violations >= 1);
    }

    #[test]
    fn lemma4_holds_with_margin_on_typical_rings() {
        for seed in 0..10 {
            let report = lemma4(&ring(2048, seed));
            assert!(
                report.holds(),
                "seed {seed}: min window {} < threshold {}",
                report.min_window_sum,
                report.threshold
            );
            assert!(report.margin() >= 1.0);
            assert_eq!(report.window, (6.0 * 2048f64.ln()).ceil() as usize);
        }
    }

    #[test]
    fn lemma4_window_sum_is_correct_on_small_ring() {
        use keyspace::Point;
        let space = KeySpace::with_modulus(100).unwrap();
        let r = SortedRing::new(space, vec![Point::new(0), Point::new(10), Point::new(50)]);
        // n = 3 → window = ⌈6 ln 3⌉ = 7; every window of 7 arcs wraps the
        // 3-arc circle twice plus one arc: sums = 200 + arc_i.
        let report = lemma4(&r);
        assert_eq!(report.window, 7);
        assert_eq!(report.min_window_sum, 200 + 10);
    }

    #[test]
    fn theorem8_normalized_min_arc_in_constant_band() {
        // min arc × n² should be Θ(1): across seeds it stays within a
        // generous constant band (exponential with mean 1, roughly).
        let mut values = Vec::new();
        for seed in 0..20 {
            values.push(min_arc(&ring(4096, seed)).normalized);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!(
            (0.05..5.0).contains(&mean),
            "normalized min arc mean {mean} outside constant band"
        );
    }

    #[test]
    fn naive_bias_grows_superlinearly() {
        // Θ(n log n): at n = 4096 the ratio must exceed n = 4096 on most
        // seeds, and certainly on average.
        let mut ratios = Vec::new();
        for seed in 0..10 {
            ratios.push(naive_bias_ratio(&ring(4096, seed)));
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean > 4096.0, "mean bias ratio {mean} not superlinear");
    }

    #[test]
    #[should_panic(expected = "at least 3 peers")]
    fn lemma1_needs_three_peers() {
        let _ = lemma1(&ring(2, 1));
    }

    #[test]
    #[should_panic(expected = "at least 2 peers")]
    fn lemma4_needs_two_peers() {
        let _ = lemma4(&ring(1, 1));
    }
}
