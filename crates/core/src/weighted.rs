//! Biased peer selection — the paper's third open problem (§4).
//!
//! > "In some applications, we may want to choose a peer with a biased
//! > probability. For example, we may want to choose a peer with
//! > probability that is inversely proportional to its distance from us
//! > on the unit circle."
//!
//! Figure 1 generalizes directly: instead of subtracting one global `λ`
//! per visited peer, the scan subtracts a **per-peer measure** `λ(p)`
//! computed from the peer's ring point alone. The telescoping argument of
//! Theorem 6 is unchanged — the quantity
//! `f_p(s) = d(s, l(p)) − Σ_{q ∈ (s, p]} λ(q)` is still piecewise linear
//! with unit slope and per-peer drops — so each peer `p` owns **exactly
//! `λ(p)`** ring points provided the total demanded measure
//! `Σ_p λ(p)` does not exceed the ring:
//!
//! * acceptance probability per trial is exactly `Σ_p λ(p) / M`, and
//! * conditioned on acceptance, peer `p` is chosen with probability
//!   exactly `λ(p) / Σ_q λ(q)`.
//!
//! Both statements are verified **exhaustively** in the test suite (every
//! ring point enumerated), the same way Theorem 6 is.
//!
//! The weight function must be computable *locally* from a peer's point —
//! exactly the information the scan already has in hand — which is what
//! keeps the cost profile of Figure 1 (`1 × h` + `O(log n) × next`).
//! [`InverseDistanceWeight`] implements the paper's own example.

use core::fmt;

use keyspace::{KeySpace, Point};
use rand::Rng;

use crate::{Cost, Dht, SampleError, Sampler, SamplerConfig};

/// A locally computable per-peer measure `λ(p)`, in ring points.
///
/// Implementations must be deterministic: the exactness proof requires
/// every trial to see the same `λ(p)` for the same peer.
pub trait PeerWeight {
    /// The measure (number of ring points) assigned to the peer whose
    /// point is `peer_point`. Returning 0 makes the peer unselectable.
    fn lambda(&self, peer_point: Point) -> u64;
}

impl<F: Fn(Point) -> u64> PeerWeight for F {
    fn lambda(&self, peer_point: Point) -> u64 {
        self(peer_point)
    }
}

/// Uniform weights: every peer gets the same `λ`, recovering Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformWeight {
    /// The common per-peer measure.
    pub lambda: u64,
}

impl PeerWeight for UniformWeight {
    fn lambda(&self, _peer_point: Point) -> u64 {
        self.lambda
    }
}

/// The paper's example bias: selection probability inversely proportional
/// to the clockwise distance from the caller.
///
/// `λ(p) = scale / max(d(origin, l(p)), 1)` — near peers get large
/// measures, antipodal peers small ones. `scale` trades acceptance rate
/// against feasibility: the total demanded measure must stay below the
/// ring size (callers can check a sample of peers or use
/// [`suggested_scale`](InverseDistanceWeight::suggested_scale)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InverseDistanceWeight {
    space: KeySpace,
    origin: Point,
    scale: u128,
}

impl InverseDistanceWeight {
    /// Creates the weight function for a caller at `origin`.
    pub fn new(space: KeySpace, origin: Point, scale: u128) -> InverseDistanceWeight {
        InverseDistanceWeight {
            space,
            origin,
            scale,
        }
    }

    /// A scale under which `n` peers demand roughly a `1/7` fraction of
    /// the ring in total (mirroring Figure 1's acceptance rate): the
    /// expected total measure of `n` i.i.d. peers is `≈ scale · ln M`,
    /// so `scale = M / (7 ln M · n)` ... conservatively rounded down.
    pub fn suggested_scale(space: KeySpace, n: u64) -> u128 {
        let ln_m = 128 - space.modulus().leading_zeros() as u128; // ≈ log2 M ≥ ln M
        (space.modulus() / (7 * ln_m * n as u128)).max(1)
    }
}

impl PeerWeight for InverseDistanceWeight {
    fn lambda(&self, peer_point: Point) -> u64 {
        let d = self
            .space
            .distance(self.origin, peer_point)
            .to_u128()
            .max(1);
        // λ = scale·M/d, capped at half the ring so one adjacent peer can
        // never demand the whole circle.
        let m = self.space.modulus();
        (self.scale.saturating_mul(m) / d).min(m / 2) as u64
    }
}

/// A uniform-at-random sample drawn from the biased distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightedSample<P> {
    /// The chosen peer.
    pub peer: P,
    /// The chosen peer's ring point.
    pub point: Point,
    /// The measure `λ(p)` of the chosen peer (its selection weight).
    pub lambda: u64,
    /// Trials used.
    pub trials: u32,
    /// Total messages/latency across all trials.
    pub cost: Cost,
}

/// The weighted generalization of *Choose Random Peer*.
///
/// # Example
///
/// ```
/// use keyspace::{KeySpace, SortedRing};
/// use peer_sampling::weighted::{UniformWeight, WeightedSampler};
/// use peer_sampling::OracleDht;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// let space = KeySpace::full();
/// let dht = OracleDht::new(SortedRing::new(space, space.random_points(&mut rng, 100)));
/// // Uniform weights recover the paper's Figure 1 exactly.
/// let lambda = (space.modulus() / 700) as u64;
/// let sampler = WeightedSampler::new(64, 4096);
/// let sample = sampler.sample(&dht, &UniformWeight { lambda }, &mut rng)?;
/// assert_eq!(sample.lambda, lambda);
/// # Ok::<(), peer_sampling::SampleError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightedSampler {
    step_bound: u32,
    max_trials: u32,
}

impl WeightedSampler {
    /// Creates a sampler with an explicit scan bound and retry cap.
    ///
    /// Use `step_bound = ⌈6 ln n′⌉` for uniform-magnitude weights; skewed
    /// weights may need a deeper scan for the heavy peers' supplementation
    /// chains (the E14 ablation quantifies this).
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(step_bound: u32, max_trials: u32) -> WeightedSampler {
        assert!(step_bound > 0, "step bound must be positive");
        assert!(max_trials > 0, "need at least one trial");
        WeightedSampler {
            step_bound,
            max_trials,
        }
    }

    /// The scan bound.
    pub fn step_bound(&self) -> u32 {
        self.step_bound
    }

    /// The retry cap.
    pub fn max_trials(&self) -> u32 {
        self.max_trials
    }

    /// Draws one peer with probability proportional to `weights`.
    ///
    /// # Errors
    ///
    /// * [`SampleError::Dht`] — a lookup failed.
    /// * [`SampleError::TrialsExhausted`] — the retry cap was hit (check
    ///   that the total demanded measure is a constant fraction of the
    ///   ring).
    pub fn sample<D: Dht, W: PeerWeight + ?Sized, R: Rng + ?Sized>(
        &self,
        dht: &D,
        weights: &W,
        rng: &mut R,
    ) -> Result<WeightedSample<D::Peer>, SampleError> {
        let space = dht.space();
        let mut total_cost = Cost::FREE;
        for trial in 1..=self.max_trials {
            let s = space.random_point(rng);
            match self.trial(dht, weights, s)? {
                WeightedTrial::Accepted {
                    peer,
                    point,
                    lambda,
                    cost,
                } => {
                    return Ok(WeightedSample {
                        peer,
                        point,
                        lambda,
                        trials: trial,
                        cost: total_cost + cost,
                    });
                }
                WeightedTrial::Rejected { cost } => total_cost += cost,
            }
        }
        Err(SampleError::TrialsExhausted {
            attempts: self.max_trials,
        })
    }

    /// The deterministic scan for a fixed start point (exposed for the
    /// exhaustive verification).
    ///
    /// # Errors
    ///
    /// Propagates DHT failures.
    pub fn trial<D: Dht, W: PeerWeight + ?Sized>(
        &self,
        dht: &D,
        weights: &W,
        s: Point,
    ) -> Result<WeightedTrial<D::Peer>, SampleError> {
        let space = dht.space();
        let first = dht.h(s)?;
        let mut cost = first.cost;
        let lambda_first = weights.lambda(first.point) as i128;
        let mut t: i128 = space.distance(s, first.point).to_u128() as i128 - lambda_first;
        if t < 0 {
            return Ok(WeightedTrial::Accepted {
                peer: first.peer,
                point: first.point,
                lambda: lambda_first as u64,
                cost,
            });
        }
        let mut current = first;
        for _ in 0..self.step_bound {
            let nxt = dht.next(current.peer)?;
            cost += nxt.cost;
            let lambda_next = weights.lambda(nxt.point) as i128;
            t += space.distance(current.point, nxt.point).to_u128() as i128 - lambda_next;
            if t < 0 {
                return Ok(WeightedTrial::Accepted {
                    peer: nxt.peer,
                    point: nxt.point,
                    lambda: lambda_next as u64,
                    cost,
                });
            }
            current = nxt;
        }
        Ok(WeightedTrial::Rejected { cost })
    }
}

/// Outcome of one weighted trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightedTrial<P> {
    /// The start point belongs to this peer's intervals.
    Accepted {
        /// The owning peer.
        peer: P,
        /// Its ring point.
        point: Point,
        /// Its measure `λ(p)`.
        lambda: u64,
        /// Scan cost.
        cost: Cost,
    },
    /// The start point is unassigned; redraw.
    Rejected {
        /// Scan cost.
        cost: Cost,
    },
}

impl<P: Copy> WeightedTrial<P> {
    /// The accepted peer, if any.
    pub fn accepted_peer(&self) -> Option<P> {
        match *self {
            WeightedTrial::Accepted { peer, .. } => Some(peer),
            WeightedTrial::Rejected { .. } => None,
        }
    }
}

impl From<Sampler> for WeightedSampler {
    /// A uniform [`Sampler`]'s parameters reused for weighted sampling.
    fn from(sampler: Sampler) -> WeightedSampler {
        WeightedSampler::new(sampler.config().step_bound(), sampler.config().max_trials())
    }
}

/// Convenience: the uniform weight equivalent to a [`SamplerConfig`] on a
/// given space (for cross-checking the two samplers against each other).
///
/// # Errors
///
/// Returns the config's own error if `λ` vanishes.
pub fn uniform_weight_of(
    config: &SamplerConfig,
    space: KeySpace,
) -> Result<UniformWeight, crate::ConfigError> {
    Ok(UniformWeight {
        lambda: config.lambda(space)?,
    })
}

impl fmt::Display for WeightedSampler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WeightedSampler(R = {}, max_trials = {})",
            self.step_bound, self.max_trials
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OracleDht;
    use keyspace::SortedRing;
    use rand::SeedableRng;

    fn small_ring(modulus: u128, n: usize, seed: u64) -> SortedRing {
        let space = KeySpace::with_modulus(modulus).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        SortedRing::new(space, space.random_distinct_points(&mut rng, n))
    }

    /// Exhaustively count each peer's preimages under the weighted scan.
    fn measure_per_peer<W: PeerWeight>(
        ring: &SortedRing,
        weights: &W,
        step_bound: u32,
    ) -> Vec<u64> {
        let dht = OracleDht::free(ring.clone());
        let sampler = WeightedSampler::new(step_bound, 1);
        let mut counts = vec![0u64; ring.len()];
        for c in 0..ring.space().modulus() as u64 {
            if let Some(peer) = sampler
                .trial(&dht, weights, Point::new(c))
                .unwrap()
                .accepted_peer()
            {
                counts[peer] += 1;
            }
        }
        counts
    }

    #[test]
    fn uniform_weights_reproduce_figure_1_exactly() {
        let n = 16usize;
        let ring = small_ring(1 << 13, n, 1);
        let lambda = (1u64 << 13) / (7 * n as u64);
        let counts = measure_per_peer(&ring, &UniformWeight { lambda }, n as u32 + 1);
        assert!(counts.iter().all(|&c| c == lambda), "{counts:?}");
    }

    #[test]
    fn heterogeneous_weights_give_each_peer_exactly_lambda_p() {
        // λ(p) derived deterministically from the point: 20 + (p mod 37).
        let n = 12usize;
        let ring = small_ring(1 << 13, n, 2);
        let weight = |p: Point| 20 + p.get() % 37;
        let counts = measure_per_peer(&ring, &weight, n as u32 + 1);
        for (rank, &count) in counts.iter().enumerate() {
            let expected = weight(ring.point(rank));
            assert_eq!(
                count, expected,
                "peer {rank} owns {count} != lambda(p) {expected}"
            );
        }
    }

    #[test]
    fn extreme_skew_still_exact() {
        // One peer demands 50x the measure of the others.
        let n = 10usize;
        let ring = small_ring(1 << 13, n, 3);
        let heavy = ring.point(4);
        let weight = move |p: Point| if p == heavy { 500 } else { 10 };
        let counts = measure_per_peer(&ring, &weight, n as u32 * 4);
        for (rank, &count) in counts.iter().enumerate() {
            let expected = if rank == 4 { 500 } else { 10 };
            assert_eq!(count, expected, "rank {rank}");
        }
    }

    #[test]
    fn zero_weight_peer_is_never_chosen() {
        let n = 8usize;
        let ring = small_ring(1 << 12, n, 4);
        let excluded = ring.point(3);
        let weight = move |p: Point| if p == excluded { 0 } else { 40 };
        let counts = measure_per_peer(&ring, &weight, n as u32 + 1);
        assert_eq!(counts[3], 0);
        for (rank, &c) in counts.iter().enumerate() {
            if rank != 3 {
                assert_eq!(c, 40, "rank {rank}");
            }
        }
    }

    #[test]
    fn acceptance_probability_is_total_measure() {
        let n = 10usize;
        let modulus = 1u128 << 12;
        let ring = small_ring(modulus, n, 5);
        let weight = |p: Point| 15 + p.get() % 11;
        let counts = measure_per_peer(&ring, &weight, n as u32 + 1);
        let total_owned: u64 = counts.iter().sum();
        let total_demanded: u64 = (0..n).map(|r| weight(ring.point(r))).sum();
        assert_eq!(total_owned, total_demanded);
    }

    #[test]
    fn sampled_frequencies_match_weights() {
        let n = 6usize;
        let modulus = 1u128 << 12;
        let ring = small_ring(modulus, n, 6);
        // Weights 1:2:3:4:5:6 (scaled to be a decent ring fraction).
        let points: Vec<Point> = (0..n).map(|r| ring.point(r)).collect();
        let weight = move |p: Point| {
            let rank = points.iter().position(|&q| q == p).unwrap() as u64;
            (rank + 1) * 40
        };
        let dht = OracleDht::free(ring.clone());
        let sampler = WeightedSampler::new(n as u32 + 1, 4096);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut counts = vec![0u64; n];
        let draws = 42_000;
        for _ in 0..draws {
            let s = sampler.sample(&dht, &weight, &mut rng).unwrap();
            counts[ring.index_of(s.point).unwrap()] += 1;
        }
        let total_weight = 21.0 * 40.0;
        for (rank, &c) in counts.iter().enumerate() {
            let expected = draws as f64 * ((rank as f64 + 1.0) * 40.0) / total_weight;
            assert!(
                (c as f64 - expected).abs() < expected * 0.12,
                "rank {rank}: {c} vs {expected}"
            );
        }
    }

    #[test]
    fn inverse_distance_weight_biases_toward_origin() {
        let space = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let n = 200usize;
        let ring = SortedRing::new(space, space.random_points(&mut rng, n));
        let origin = ring.point(0);
        let scale = InverseDistanceWeight::suggested_scale(space, n as u64);
        let weight = InverseDistanceWeight::new(space, origin, scale);
        let dht = OracleDht::free(ring.clone());
        let sampler = WeightedSampler::new(128, 4096);
        // Peers just clockwise of the origin should be chosen far more
        // often than peers near the antipode.
        let mut near = 0u64;
        let mut far = 0u64;
        for _ in 0..3000 {
            let s = sampler.sample(&dht, &weight, &mut rng).unwrap();
            let d = space.distance(origin, s.point).to_u128();
            if d < space.modulus() / 8 {
                near += 1;
            } else if d > space.modulus() * 3 / 8 {
                far += 1;
            }
        }
        assert!(
            near > 4 * far.max(1),
            "inverse-distance bias missing: near {near}, far {far}"
        );
    }

    #[test]
    fn from_sampler_inherits_parameters() {
        let sampler = Sampler::new(SamplerConfig::new(100).with_max_trials(9));
        let weighted = WeightedSampler::from(sampler);
        assert_eq!(weighted.max_trials(), 9);
        assert_eq!(weighted.step_bound(), sampler.config().step_bound());
        assert!(weighted.to_string().contains("max_trials = 9"));
    }

    #[test]
    fn uniform_weight_of_matches_config_lambda() {
        let space = KeySpace::with_modulus(1 << 20).unwrap();
        let config = SamplerConfig::new(100);
        let w = uniform_weight_of(&config, space).unwrap();
        assert_eq!(w.lambda, config.lambda(space).unwrap());
    }

    #[test]
    #[should_panic(expected = "step bound")]
    fn zero_step_bound_panics() {
        let _ = WeightedSampler::new(0, 1);
    }
}
