//! Workspace facade for the King & Saia (PODC 2004) reproduction.
//!
//! This crate exists to anchor the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`); the implementation lives
//! in the member crates, re-exported here for discoverability:
//!
//! * [`keyspace`] — the discrete ring `ℤ_M` and sorted peer rings.
//! * [`peer_sampling`] — the paper's algorithms (estimate-n, choose-random-peer).
//! * [`ringidx`] — the incremental ordered ring index behind every oracle view.
//! * [`chord`] — the Chord DHT substrate with measured routing costs.
//! * [`simnet`] — deterministic simulation substrate (clock, events, churn).
//! * [`stats`] — the statistical verification toolkit.
//! * [`baselines`] — the competing samplers the paper argues against.
//! * [`adversary`] — coalition attacks and the verified-sampling defense.
//! * [`apps`] — application-level workloads built on uniform sampling.
//! * [`scenarios`] — declarative adversarial workloads and multi-seed sweeps.
//!
//! The repo-level `README.md` maps the whole workspace;
//! `docs/ARCHITECTURE.md` traces a lookup and a membership event through
//! every layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use adversary;
pub use apps;
pub use baselines;
pub use chord;
pub use keyspace;
pub use peer_sampling;
pub use ringidx;
pub use scenarios;
pub use simnet;
pub use stats;
