use core::fmt;

/// A clockwise arc length on the key-space circle.
///
/// `Distance` is the discrete analogue of the paper's `d(x, y)` — the length
/// of the clockwise arc from `x` to `y`. It is always smaller than the
/// modulus `M` of the [`KeySpace`](crate::KeySpace) that produced it, so a
/// full turn of the circle is *not* representable: `d(x, x) = 0`.
///
/// Distances of a single space are totally ordered and can be summed; sums
/// may exceed `M` (e.g. when accumulating consecutive arcs), so
/// [`Distance::to_u128`] is provided for overflow-free aggregation.
///
/// # Example
///
/// ```
/// use keyspace::{KeySpace, Point};
///
/// let space = KeySpace::with_modulus(100).unwrap();
/// let d = space.distance(Point::new(90), Point::new(30));
/// assert_eq!(d.get(), 40);
/// assert_eq!(space.fraction(d), 0.4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Distance(u64);

impl Distance {
    /// The zero arc length.
    pub const ZERO: Distance = Distance(0);

    /// Creates a distance from a raw arc length.
    ///
    /// The value must be smaller than the modulus of every
    /// [`KeySpace`](crate::KeySpace) it is used with.
    pub const fn new(length: u64) -> Distance {
        Distance(length)
    }

    /// Returns the raw arc length.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the arc length widened to `u128`, for overflow-free sums.
    pub const fn to_u128(self) -> u128 {
        self.0 as u128
    }

    /// Returns whether this is the empty arc.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating difference of two distances (`self - other`, floored at 0).
    pub const fn saturating_sub(self, other: Distance) -> Distance {
        Distance(self.0.saturating_sub(other.0))
    }
}

impl fmt::Display for Distance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Distance {
    fn from(length: u64) -> Distance {
        Distance(length)
    }
}

impl From<Distance> for u64 {
    fn from(distance: Distance) -> u64 {
        distance.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let d = Distance::new(9);
        assert_eq!(d.get(), 9);
        assert_eq!(u64::from(d), 9);
        assert_eq!(Distance::from(9u64), d);
        assert_eq!(d.to_u128(), 9u128);
    }

    #[test]
    fn zero_checks() {
        assert!(Distance::ZERO.is_zero());
        assert!(!Distance::new(1).is_zero());
        assert_eq!(Distance::default(), Distance::ZERO);
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        assert_eq!(Distance::new(5).saturating_sub(Distance::new(3)).get(), 2);
        assert_eq!(Distance::new(3).saturating_sub(Distance::new(5)).get(), 0);
    }

    #[test]
    fn ordering_is_length_order() {
        assert!(Distance::new(1) < Distance::new(2));
    }
}
