use core::fmt;

use crate::Point;

/// A half-open clockwise arc `(start, end]` on the key-space circle.
///
/// This mirrors the paper's interval notation `I(a, b)` — "the interval
/// `(a, b]` on the unit circle from point `a` clockwise to point `b`". The
/// degenerate interval with `start == end` is **empty** (length 0), not the
/// full circle; see [`KeySpace::length`](crate::KeySpace::length).
///
/// `Interval` stores only its endpoints; length and membership queries need
/// the modulus and therefore live on [`KeySpace`](crate::KeySpace).
///
/// # Example
///
/// ```
/// use keyspace::{Interval, KeySpace, Point};
///
/// let space = KeySpace::with_modulus(100).unwrap();
/// let i = Interval::new(Point::new(90), Point::new(10));
/// assert_eq!(space.length(i).get(), 20);
/// assert!(space.interval_contains(i, Point::new(0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Interval {
    start: Point,
    end: Point,
}

impl Interval {
    /// Creates the interval `(start, end]`.
    pub const fn new(start: Point, end: Point) -> Interval {
        Interval { start, end }
    }

    /// The open (excluded) counter-clockwise endpoint `a` of `(a, b]`.
    pub const fn start(self) -> Point {
        self.start
    }

    /// The closed (included) clockwise endpoint `b` of `(a, b]`.
    pub const fn end(self) -> Point {
        self.end
    }

    /// Whether the interval is degenerate (`start == end`, hence empty).
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let i = Interval::new(Point::new(3), Point::new(9));
        assert_eq!(i.start(), Point::new(3));
        assert_eq!(i.end(), Point::new(9));
        assert!(!i.is_empty());
    }

    #[test]
    fn degenerate_is_empty() {
        assert!(Interval::new(Point::new(5), Point::new(5)).is_empty());
    }

    #[test]
    fn display_uses_half_open_notation() {
        assert_eq!(
            Interval::new(Point::new(1), Point::new(2)).to_string(),
            "(1, 2]"
        );
    }
}
