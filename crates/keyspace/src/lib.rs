//! Discrete unit-circle key space arithmetic.
//!
//! King & Saia's *Choosing a Random Peer* (PODC 2004) models a DHT key space
//! as the unit circle `(0, 1]`. Real DHTs use a **discrete** ring of `m`-bit
//! identifiers (Chord uses `m = 160`); this crate provides that discrete ring
//! with exact integer arithmetic so that the paper's exact-uniformity theorem
//! (Theorem 6) can be verified without floating-point error.
//!
//! The central type is [`KeySpace`], a ring `ℤ_M` for a modulus
//! `2 ≤ M ≤ 2^64`. Points on the ring are [`Point`]s, clockwise arc lengths
//! are [`Distance`]s, and half-open clockwise arcs `(a, b]` are
//! [`Interval`]s — the same `(a, b]` convention the paper uses for `I(a, b)`.
//!
//! [`SortedRing`] holds a set of *peer points* in ring order and answers the
//! two primitive queries the paper assumes of the DHT — `h(x)` (closest peer
//! clockwise of `x`, [`SortedRing::successor_of`]) and `next(p)`
//! ([`SortedRing::next_index`]) — in their idealized, zero-cost form. The
//! `chord` crate provides the same queries as a real routed protocol.
//!
//! # Example
//!
//! ```
//! use keyspace::{KeySpace, Point, SortedRing};
//! use rand::SeedableRng;
//!
//! let space = KeySpace::full(); // M = 2^64
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let points = space.random_points(&mut rng, 100);
//! let ring = SortedRing::new(space, points);
//! assert_eq!(ring.len(), 100);
//!
//! // h(x): the peer point closest clockwise of an arbitrary x.
//! let x = space.random_point(&mut rng);
//! let i = ring.successor_of(x);
//! assert!(space.distance(x, ring.point(i)) <= space.distance(x, ring.point(ring.next_index(i))));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distance;
mod interval;
mod point;
mod ring;
mod space;

pub use distance::Distance;
pub use interval::Interval;
pub use point::Point;
pub use ring::{ArcLengths, SortedRing};
pub use space::{KeySpace, KeySpaceError};
