use core::fmt;

/// A point on the discrete key-space circle.
///
/// A `Point` is a bare `u64` coordinate; it is only meaningful relative to a
/// [`KeySpace`](crate::KeySpace) whose modulus `M` it must be smaller than.
/// All arithmetic (clockwise distance, offset, interval membership) lives on
/// `KeySpace` so that the modulus is always explicit.
///
/// The paper's `l(p)` — "the peer point of peer `p`" — is a `Point`.
///
/// # Example
///
/// ```
/// use keyspace::{KeySpace, Point};
///
/// let space = KeySpace::with_modulus(1000).unwrap();
/// let a = Point::new(990);
/// let b = Point::new(10);
/// // Clockwise distance wraps across zero.
/// assert_eq!(space.distance(a, b).get(), 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point(u64);

impl Point {
    /// The point at coordinate zero.
    pub const ZERO: Point = Point(0);

    /// Creates a point at the given raw coordinate.
    ///
    /// The coordinate must be smaller than the modulus of every [`KeySpace`]
    /// the point is used with; `KeySpace` methods check this with
    /// `debug_assert!`.
    ///
    /// [`KeySpace`]: crate::KeySpace
    pub const fn new(coordinate: u64) -> Point {
        Point(coordinate)
    }

    /// Returns the raw coordinate.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Point {
    fn from(coordinate: u64) -> Point {
        Point(coordinate)
    }
}

impl From<Point> for u64 {
    fn from(point: Point) -> u64 {
        point.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_round_trip() {
        let p = Point::new(42);
        assert_eq!(p.get(), 42);
        assert_eq!(u64::from(p), 42);
        assert_eq!(Point::from(42u64), p);
    }

    #[test]
    fn zero_is_default() {
        assert_eq!(Point::default(), Point::ZERO);
        assert_eq!(Point::ZERO.get(), 0);
    }

    #[test]
    fn ordering_is_coordinate_order() {
        assert!(Point::new(1) < Point::new(2));
        assert!(Point::new(u64::MAX) > Point::new(0));
    }

    #[test]
    fn display_is_plain_number() {
        assert_eq!(Point::new(17).to_string(), "17");
    }
}
