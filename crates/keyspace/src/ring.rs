use core::fmt;

use crate::{Distance, KeySpace, Point};

/// A set of peer points in clockwise ring order, with idealized DHT queries.
///
/// `SortedRing` is the "god's-eye view" of the DHT: it stores every peer
/// point in sorted order and answers the paper's two primitive operations —
/// `h(x)` ([`SortedRing::successor_of`]) and `next(p)`
/// ([`SortedRing::next_index`]) — directly, with no routing. It backs the
/// oracle DHT used for algorithm-level correctness tests, the theory
/// predicates (Lemmas 1, 2, 4; Theorem 8), and the reference data for Chord
/// integration tests.
///
/// Peers are identified by their **rank**: index `i` is the `i`-th point in
/// clockwise order starting from the smallest coordinate.
///
/// # Example
///
/// ```
/// use keyspace::{KeySpace, Point, SortedRing};
///
/// let space = KeySpace::with_modulus(100).unwrap();
/// let ring = SortedRing::new(space, vec![Point::new(70), Point::new(10), Point::new(40)]);
/// assert_eq!(ring.point(0), Point::new(10));
/// assert_eq!(ring.successor_of(Point::new(50)), 2);      // h(50) = peer at 70
/// assert_eq!(ring.successor_of(Point::new(90)), 0);      // wraps to peer at 10
/// assert_eq!(ring.next_index(2), 0);                     // next(peer@70) = peer@10
/// assert_eq!(ring.arc_after(2).get(), 40);               // 70 → 10 wraps: 40
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedRing {
    space: KeySpace,
    points: Vec<Point>,
}

impl SortedRing {
    /// Builds a ring from peer points, sorting and removing duplicates.
    ///
    /// Duplicate coordinates collapse to a single peer, so `len()` may be
    /// smaller than `points.len()`; with i.i.d. uniform placement on the
    /// `2^64` ring, collisions are vanishingly rare.
    pub fn new(space: KeySpace, mut points: Vec<Point>) -> SortedRing {
        debug_assert!(points.iter().all(|&p| space.contains_point(p)));
        points.sort_unstable();
        points.dedup();
        SortedRing { space, points }
    }

    /// Builds a ring from points already in ascending order, skipping the
    /// O(n log n) sort — the constructor for index-backed membership views
    /// that maintain ring order incrementally. Consecutive duplicates
    /// (co-located peers) still collapse to one peer.
    ///
    /// # Panics
    ///
    /// Debug-panics if `points` is not sorted.
    pub fn from_sorted(space: KeySpace, mut points: Vec<Point>) -> SortedRing {
        debug_assert!(points.iter().all(|&p| space.contains_point(p)));
        debug_assert!(
            points.windows(2).all(|w| w[0] <= w[1]),
            "from_sorted requires ascending points"
        );
        points.dedup();
        SortedRing { space, points }
    }

    /// The key space this ring lives on.
    pub const fn space(&self) -> KeySpace {
        self.space
    }

    /// Number of peers.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the ring has no peers.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The peer point at clockwise rank `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn point(&self, index: usize) -> Point {
        self.points[index]
    }

    /// All peer points in clockwise order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The rank of an exact peer point, if present.
    pub fn index_of(&self, point: Point) -> Option<usize> {
        self.points.binary_search(&point).ok()
    }

    /// `h(x)`: the rank of the peer whose point is closest **clockwise** of
    /// `x` (inclusive: if `x` is itself a peer point, that peer is returned).
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn successor_of(&self, x: Point) -> usize {
        assert!(!self.points.is_empty(), "successor_of on empty ring");
        match self.points.binary_search(&x) {
            Ok(i) => i,
            Err(i) => {
                if i == self.points.len() {
                    0
                } else {
                    i
                }
            }
        }
    }

    /// The rank of the peer strictly clockwise of peer `index` — the paper's
    /// `next(p)`. Wraps around the ring.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn next_index(&self, index: usize) -> usize {
        assert!(index < self.points.len());
        if index + 1 == self.points.len() {
            0
        } else {
            index + 1
        }
    }

    /// The rank of the peer strictly counter-clockwise of peer `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn prev_index(&self, index: usize) -> usize {
        assert!(index < self.points.len());
        if index == 0 {
            self.points.len() - 1
        } else {
            index - 1
        }
    }

    /// The rank reached from `index` by `k` applications of `next` —
    /// the paper's `next^(k)(p)`.
    pub fn next_k(&self, index: usize, k: usize) -> usize {
        assert!(index < self.points.len());
        let n = self.points.len();
        (index + k % n) % n
    }

    /// Arc length from peer `index` clockwise to its successor:
    /// `d(l(p), l(next(p)))`. This is the arc the naive heuristic implicitly
    /// assigns to `next(p)`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`. For a single-peer ring the arc is 0
    /// (the "full circle" is not representable; callers treating a singleton
    /// ring should special-case it).
    pub fn arc_after(&self, index: usize) -> Distance {
        let next = self.next_index(index);
        self.space.distance(self.points[index], self.points[next])
    }

    /// Arc length from the predecessor of peer `index` clockwise to it.
    ///
    /// This is the arc that makes the naive heuristic `h(s)` biased: peer
    /// `p` is selected with probability proportional to `arc_before(p)`.
    pub fn arc_before(&self, index: usize) -> Distance {
        let prev = self.prev_index(index);
        self.space.distance(self.points[prev], self.points[index])
    }

    /// Iterator over all `arc_after` lengths in rank order.
    ///
    /// For `len() ≥ 2` the arcs partition the circle: they sum to `M`.
    pub fn arcs(&self) -> ArcLengths<'_> {
        ArcLengths {
            ring: self,
            index: 0,
        }
    }

    /// The shortest peer-to-peer arc (Theorem 8 studies its scaling).
    ///
    /// Returns `None` when the ring has fewer than 2 peers.
    pub fn min_arc(&self) -> Option<Distance> {
        if self.points.len() < 2 {
            return None;
        }
        self.arcs().min()
    }

    /// The longest peer-to-peer arc (w.h.p. `Θ(log n / n)` of the circle).
    ///
    /// Returns `None` when the ring has fewer than 2 peers.
    pub fn max_arc(&self) -> Option<Distance> {
        if self.points.len() < 2 {
            return None;
        }
        self.arcs().max()
    }

    /// Sum of `count` consecutive arcs starting with `arc_after(start)`,
    /// as a `u128` (sums may exceed one full turn if `count > len()`).
    ///
    /// Lemma 4 lower-bounds these window sums for `count = 6 ln n`.
    pub fn window_arc_sum(&self, start: usize, count: usize) -> u128 {
        assert!(start < self.points.len());
        let mut total = 0u128;
        let mut i = start;
        for _ in 0..count {
            total += self.arc_after(i).to_u128();
            i = self.next_index(i);
        }
        total
    }
}

impl fmt::Display for SortedRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SortedRing({} peers on {})",
            self.points.len(),
            self.space
        )
    }
}

/// Iterator over consecutive arc lengths of a [`SortedRing`], produced by
/// [`SortedRing::arcs`].
#[derive(Debug, Clone)]
pub struct ArcLengths<'a> {
    ring: &'a SortedRing,
    index: usize,
}

impl Iterator for ArcLengths<'_> {
    type Item = Distance;

    fn next(&mut self) -> Option<Distance> {
        if self.index >= self.ring.len() {
            return None;
        }
        let arc = self.ring.arc_after(self.index);
        self.index += 1;
        Some(arc)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.ring.len() - self.index;
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for ArcLengths<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn space() -> KeySpace {
        KeySpace::with_modulus(100).unwrap()
    }

    fn ring() -> SortedRing {
        SortedRing::new(
            space(),
            vec![
                Point::new(70),
                Point::new(10),
                Point::new(40),
                Point::new(95),
            ],
        )
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let r = SortedRing::new(
            space(),
            vec![Point::new(40), Point::new(10), Point::new(40)],
        );
        assert_eq!(r.points(), &[Point::new(10), Point::new(40)]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn from_sorted_matches_new() {
        let pts = vec![
            Point::new(10),
            Point::new(40),
            Point::new(40),
            Point::new(95),
        ];
        let sorted = SortedRing::from_sorted(space(), pts.clone());
        assert_eq!(sorted, SortedRing::new(space(), pts));
        assert_eq!(sorted.len(), 3);
    }

    #[test]
    fn successor_of_basic_and_wrapping() {
        let r = ring();
        assert_eq!(r.successor_of(Point::new(0)), 0); // → 10
        assert_eq!(r.successor_of(Point::new(10)), 0); // exact hit
        assert_eq!(r.successor_of(Point::new(11)), 1); // → 40
        assert_eq!(r.successor_of(Point::new(71)), 3); // → 95
        assert_eq!(r.successor_of(Point::new(96)), 0); // wraps → 10
    }

    #[test]
    fn successor_minimizes_clockwise_distance() {
        let s = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let r = SortedRing::new(s, s.random_points(&mut rng, 64));
        for _ in 0..256 {
            let x = s.random_point(&mut rng);
            let h = r.point(r.successor_of(x));
            let dh = s.distance(x, h);
            for &p in r.points() {
                assert!(dh <= s.distance(x, p), "h(x) not closest clockwise");
            }
        }
    }

    #[test]
    fn next_and_prev_are_inverses_and_wrap() {
        let r = ring();
        for i in 0..r.len() {
            assert_eq!(r.prev_index(r.next_index(i)), i);
            assert_eq!(r.next_index(r.prev_index(i)), i);
        }
        assert_eq!(r.next_index(3), 0);
        assert_eq!(r.prev_index(0), 3);
    }

    #[test]
    fn next_k_matches_repeated_next() {
        let r = ring();
        let mut i = 2;
        for k in 0..10 {
            assert_eq!(r.next_k(2, k), i, "k = {k}");
            i = r.next_index(i);
        }
    }

    #[test]
    fn arcs_partition_the_circle() {
        let r = ring();
        let total: u128 = r.arcs().map(Distance::to_u128).sum();
        assert_eq!(total, 100);
        assert_eq!(r.arcs().len(), 4);
    }

    #[test]
    fn arc_before_and_after_agree() {
        let r = ring();
        for i in 0..r.len() {
            assert_eq!(r.arc_after(i), r.arc_before(r.next_index(i)));
        }
    }

    #[test]
    fn min_max_arcs() {
        let r = ring(); // arcs: 10→40:30, 40→70:30, 70→95:25, 95→10:15
        assert_eq!(r.min_arc().unwrap().get(), 15);
        assert_eq!(r.max_arc().unwrap().get(), 30);
    }

    #[test]
    fn min_arc_none_for_tiny_rings() {
        let r = SortedRing::new(space(), vec![Point::new(5)]);
        assert!(r.min_arc().is_none());
        assert!(r.max_arc().is_none());
        let empty = SortedRing::new(space(), vec![]);
        assert!(empty.min_arc().is_none());
    }

    #[test]
    fn window_arc_sum_wraps() {
        let r = ring();
        assert_eq!(r.window_arc_sum(0, 4), 100);
        assert_eq!(r.window_arc_sum(2, 3), 25 + 15 + 30);
        // More than a full turn.
        assert_eq!(r.window_arc_sum(0, 8), 200);
    }

    #[test]
    fn index_of_finds_exact_points_only() {
        let r = ring();
        assert_eq!(r.index_of(Point::new(40)), Some(1));
        assert_eq!(r.index_of(Point::new(41)), None);
    }

    #[test]
    #[should_panic(expected = "empty ring")]
    fn successor_of_empty_panics() {
        let empty = SortedRing::new(space(), vec![]);
        let _ = empty.successor_of(Point::new(1));
    }

    #[test]
    fn display_mentions_peer_count() {
        assert_eq!(ring().to_string(), "SortedRing(4 peers on Z_100)");
    }
}
