use core::fmt;

use rand::Rng;

use crate::{Distance, Interval, Point};

/// The modulus of [`KeySpace::full`]: `2^64`, matching a 64-bit identifier
/// ring (Chord-style key space truncated to one machine word).
const FULL_MODULUS: u128 = 1 << 64;

/// Error returned when constructing a [`KeySpace`] with an invalid modulus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySpaceError {
    modulus: u128,
}

impl fmt::Display for KeySpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "key-space modulus must be in [2, 2^64], got {}",
            self.modulus
        )
    }
}

impl std::error::Error for KeySpaceError {}

/// A discrete key-space circle `ℤ_M`.
///
/// This is the discrete analogue of the paper's unit circle with unit
/// circumference: `M` equally spaced points, clockwise direction of
/// increasing coordinate, wrap-around at `M`. The default modulus
/// ([`KeySpace::full`]) is `2^64`; small moduli are supported so tests can
/// *exhaustively enumerate* the circle (used to verify Theorem 6's exact
/// uniformity point-by-point).
///
/// `KeySpace` is a tiny `Copy` value — pass it around freely.
///
/// # Example
///
/// ```
/// use keyspace::{KeySpace, Point};
///
/// let space = KeySpace::with_modulus(360).unwrap();
/// let noon = Point::new(0);
/// let three = Point::new(90);
/// assert_eq!(space.distance(noon, three).get(), 90);
/// assert_eq!(space.distance(three, noon).get(), 270); // clockwise, so the long way
/// assert_eq!(space.fraction(space.distance(noon, three)), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct KeySpace {
    modulus: u128,
}

impl KeySpace {
    /// The full 64-bit ring, `M = 2^64`.
    pub const fn full() -> KeySpace {
        KeySpace {
            modulus: FULL_MODULUS,
        }
    }

    /// A ring with the given modulus.
    ///
    /// # Errors
    ///
    /// Returns [`KeySpaceError`] unless `2 ≤ modulus ≤ 2^64`.
    pub const fn with_modulus(modulus: u128) -> Result<KeySpace, KeySpaceError> {
        if modulus < 2 || modulus > FULL_MODULUS {
            Err(KeySpaceError { modulus })
        } else {
            Ok(KeySpace { modulus })
        }
    }

    /// The ring modulus `M` (number of distinct points).
    pub const fn modulus(&self) -> u128 {
        self.modulus
    }

    /// Whether `point` is a valid coordinate on this ring.
    pub const fn contains_point(&self, point: Point) -> bool {
        (point.get() as u128) < self.modulus
    }

    /// Whether `distance` is a representable arc on this ring (`< M`).
    pub const fn contains_distance(&self, distance: Distance) -> bool {
        (distance.get() as u128) < self.modulus
    }

    /// Clockwise distance `d(from, to)`: the paper's
    /// `d(x, y) = y − x` if `y ≥ x`, else `(1 − x) + y`, scaled by `M`.
    ///
    /// `d(x, x) = 0`; a full turn is not representable.
    pub fn distance(&self, from: Point, to: Point) -> Distance {
        self.debug_check(from);
        self.debug_check(to);
        let from = from.get() as u128;
        let to = to.get() as u128;
        let d = if to >= from {
            to - from
        } else {
            self.modulus - from + to
        };
        Distance::new(d as u64)
    }

    /// The point `distance` clockwise of `point`.
    pub fn add(&self, point: Point, distance: Distance) -> Point {
        self.debug_check(point);
        debug_assert!(self.contains_distance(distance));
        let sum = (point.get() as u128 + distance.get() as u128) % self.modulus;
        Point::new(sum as u64)
    }

    /// The point `distance` counter-clockwise of `point`.
    pub fn sub(&self, point: Point, distance: Distance) -> Point {
        self.debug_check(point);
        debug_assert!(self.contains_distance(distance));
        let p = point.get() as u128;
        let d = distance.get() as u128;
        let res = if p >= d {
            p - d
        } else {
            self.modulus - (d - p)
        };
        Point::new(res as u64)
    }

    /// The half-open clockwise interval `(start, end]`, the paper's
    /// `I(start, end)`.
    pub fn interval(&self, start: Point, end: Point) -> Interval {
        self.debug_check(start);
        self.debug_check(end);
        Interval::new(start, end)
    }

    /// Length of an interval `(a, b]`, i.e. `d(a, b)`.
    ///
    /// Note `|I(x, x)| = 0`: on this ring the degenerate interval is empty,
    /// not the full circle.
    pub fn length(&self, interval: Interval) -> Distance {
        self.distance(interval.start(), interval.end())
    }

    /// Whether `x ∈ (a, b]`.
    ///
    /// `x` is in the interval iff walking clockwise from `a`, one meets `x`
    /// after `a` itself and no later than `b`.
    pub fn interval_contains(&self, interval: Interval, x: Point) -> bool {
        let dx = self.distance(interval.start(), x);
        let db = self.length(interval);
        !dx.is_zero() && dx <= db
    }

    /// A point drawn uniformly at random from the ring.
    ///
    /// Matches the paper's "random number in `(0, 1]`": every one of the `M`
    /// coordinates is equally likely. (On a discrete ring, `[0, M)` and
    /// `(0, M]` are the same set.)
    pub fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let raw = if self.modulus == FULL_MODULUS {
            rng.gen::<u64>()
        } else {
            rng.gen_range(0..self.modulus as u64)
        };
        Point::new(raw)
    }

    /// `count` points drawn independently and uniformly at random.
    ///
    /// This is the paper's peer-placement model: peer points are i.i.d.
    /// uniform (the random-oracle assumption on the base hash function).
    /// Duplicate coordinates are possible on small rings and are retained;
    /// [`SortedRing::new`](crate::SortedRing::new) deduplicates.
    pub fn random_points<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<Point> {
        (0..count).map(|_| self.random_point(rng)).collect()
    }

    /// `count` *distinct* points drawn uniformly at random.
    ///
    /// Retries on collision, which keeps the marginal distribution of the
    /// resulting set identical to conditioning i.i.d. placement on
    /// distinctness.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the modulus (no such set exists).
    pub fn random_distinct_points<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<Point> {
        assert!(
            (count as u128) <= self.modulus,
            "cannot place {count} distinct points on a ring of {} points",
            self.modulus
        );
        let mut seen = std::collections::HashSet::with_capacity(count);
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let p = self.random_point(rng);
            if seen.insert(p) {
                out.push(p);
            }
        }
        out
    }

    /// The fraction of the circle covered by `distance`, in `[0, 1)`.
    ///
    /// This converts a discrete arc back to the paper's continuous units;
    /// use it for reporting only — never in algorithm decision paths.
    pub fn fraction(&self, distance: Distance) -> f64 {
        distance.get() as f64 / self.modulus as f64
    }

    /// The discrete arc closest to a continuous fraction `f ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not in `[0, 1)` or is not finite.
    pub fn distance_from_fraction(&self, f: f64) -> Distance {
        assert!(
            f.is_finite() && (0.0..1.0).contains(&f),
            "fraction {f} outside [0, 1)"
        );
        Distance::new((f * self.modulus as f64) as u64)
    }

    #[inline]
    fn debug_check(&self, point: Point) {
        debug_assert!(
            self.contains_point(point),
            "point {point} outside ring of modulus {}",
            self.modulus
        );
    }
}

impl Default for KeySpace {
    fn default() -> KeySpace {
        KeySpace::full()
    }
}

impl fmt::Display for KeySpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Z_{}", self.modulus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn small() -> KeySpace {
        KeySpace::with_modulus(100).unwrap()
    }

    #[test]
    fn modulus_bounds_enforced() {
        assert!(KeySpace::with_modulus(0).is_err());
        assert!(KeySpace::with_modulus(1).is_err());
        assert!(KeySpace::with_modulus(2).is_ok());
        assert!(KeySpace::with_modulus(FULL_MODULUS).is_ok());
        assert!(KeySpace::with_modulus(FULL_MODULUS + 1).is_err());
        let err = KeySpace::with_modulus(1).unwrap_err();
        assert!(err.to_string().contains("modulus"));
    }

    #[test]
    fn full_space_has_pow2_64_modulus() {
        assert_eq!(KeySpace::full().modulus(), 1u128 << 64);
        assert_eq!(KeySpace::default(), KeySpace::full());
    }

    #[test]
    fn distance_matches_paper_definition() {
        let s = small();
        // y >= x: d = y - x
        assert_eq!(s.distance(Point::new(10), Point::new(30)).get(), 20);
        // y < x: d = (M - x) + y
        assert_eq!(s.distance(Point::new(90), Point::new(10)).get(), 20);
        // d(x, x) = 0
        assert_eq!(s.distance(Point::new(5), Point::new(5)).get(), 0);
    }

    #[test]
    fn add_and_sub_are_inverses() {
        let s = small();
        let p = Point::new(93);
        let d = Distance::new(44);
        assert_eq!(s.sub(s.add(p, d), d), p);
        assert_eq!(s.add(s.sub(p, d), d), p);
    }

    #[test]
    fn add_wraps_around() {
        let s = small();
        assert_eq!(s.add(Point::new(95), Distance::new(10)), Point::new(5));
        assert_eq!(s.sub(Point::new(5), Distance::new(10)), Point::new(95));
    }

    #[test]
    fn distance_then_add_recovers_endpoint() {
        let s = small();
        for a in [0u64, 7, 50, 99] {
            for b in [0u64, 7, 50, 99] {
                let (a, b) = (Point::new(a), Point::new(b));
                assert_eq!(s.add(a, s.distance(a, b)), b);
            }
        }
    }

    #[test]
    fn interval_membership_half_open() {
        let s = small();
        let i = s.interval(Point::new(10), Point::new(20));
        assert!(!s.interval_contains(i, Point::new(10))); // open at start
        assert!(s.interval_contains(i, Point::new(11)));
        assert!(s.interval_contains(i, Point::new(20))); // closed at end
        assert!(!s.interval_contains(i, Point::new(21)));
        assert!(!s.interval_contains(i, Point::new(5)));
    }

    #[test]
    fn interval_membership_wrapping() {
        let s = small();
        let i = s.interval(Point::new(90), Point::new(10));
        assert!(s.interval_contains(i, Point::new(95)));
        assert!(s.interval_contains(i, Point::new(0)));
        assert!(s.interval_contains(i, Point::new(10)));
        assert!(!s.interval_contains(i, Point::new(90)));
        assert!(!s.interval_contains(i, Point::new(50)));
    }

    #[test]
    fn degenerate_interval_is_empty() {
        let s = small();
        let i = s.interval(Point::new(42), Point::new(42));
        assert_eq!(s.length(i).get(), 0);
        for x in 0..100 {
            assert!(!s.interval_contains(i, Point::new(x)));
        }
    }

    #[test]
    fn random_points_in_range() {
        let s = small();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(s.contains_point(s.random_point(&mut rng)));
        }
    }

    #[test]
    fn random_distinct_points_are_distinct() {
        let s = small();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let pts = s.random_distinct_points(&mut rng, 50);
        let set: std::collections::HashSet<_> = pts.iter().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    #[should_panic(expected = "distinct points")]
    fn too_many_distinct_points_panics() {
        let s = KeySpace::with_modulus(4).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let _ = s.random_distinct_points(&mut rng, 5);
    }

    #[test]
    fn fraction_conversions() {
        let s = small();
        assert_eq!(s.fraction(Distance::new(25)), 0.25);
        assert_eq!(s.distance_from_fraction(0.25).get(), 25);
        assert_eq!(s.distance_from_fraction(0.0).get(), 0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1)")]
    fn fraction_out_of_range_panics() {
        let _ = small().distance_from_fraction(1.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(small().to_string(), "Z_100");
    }

    #[test]
    fn full_space_random_point_covers_high_bits() {
        let s = KeySpace::full();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let saw_high_bit = (0..64).any(|_| s.random_point(&mut rng).get() > u64::MAX / 2);
        assert!(saw_high_bit);
    }
}
