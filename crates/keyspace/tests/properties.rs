//! Property-based tests for ring arithmetic invariants.
//!
//! These are the algebraic facts the sampler's correctness proof leans on:
//! clockwise distances decompose additively around the circle, intervals
//! partition, and `h(x)` / `next` behave like the paper's primitives.

use keyspace::{Distance, KeySpace, SortedRing};
use proptest::prelude::*;

/// A strategy producing a key space with modulus in `[2, 2^64]` biased
/// toward small and boundary moduli.
fn any_space() -> impl Strategy<Value = KeySpace> {
    prop_oneof![
        Just(KeySpace::full()),
        (2u128..=1 << 20).prop_map(|m| KeySpace::with_modulus(m).unwrap()),
        Just(KeySpace::with_modulus(2).unwrap()),
        Just(KeySpace::with_modulus(3).unwrap()),
    ]
}

proptest! {
    #[test]
    fn distance_triangle_identity(space in any_space(), seed in any::<u64>()) {
        // d(a, b) + d(b, c) ≡ d(a, c) (mod M): clockwise walks compose.
        let mut rng = rand_rng(seed);
        let a = space.random_point(&mut rng);
        let b = space.random_point(&mut rng);
        let c = space.random_point(&mut rng);
        let lhs = (space.distance(a, b).to_u128() + space.distance(b, c).to_u128()) % space.modulus();
        prop_assert_eq!(lhs, space.distance(a, c).to_u128());
    }

    #[test]
    fn distance_antisymmetry(space in any_space(), seed in any::<u64>()) {
        // d(a, b) + d(b, a) = M for a ≠ b, 0 for a = b.
        let mut rng = rand_rng(seed);
        let a = space.random_point(&mut rng);
        let b = space.random_point(&mut rng);
        let total = space.distance(a, b).to_u128() + space.distance(b, a).to_u128();
        if a == b {
            prop_assert_eq!(total, 0);
        } else {
            prop_assert_eq!(total, space.modulus());
        }
    }

    #[test]
    fn add_then_distance_recovers(space in any_space(), seed in any::<u64>(), raw in any::<u64>()) {
        let mut rng = rand_rng(seed);
        let a = space.random_point(&mut rng);
        let d = Distance::new((raw as u128 % space.modulus()) as u64);
        prop_assert_eq!(space.distance(a, space.add(a, d)), d);
    }

    #[test]
    fn interval_membership_equals_distance_test(space in any_space(), seed in any::<u64>()) {
        let mut rng = rand_rng(seed);
        let a = space.random_point(&mut rng);
        let b = space.random_point(&mut rng);
        let x = space.random_point(&mut rng);
        let i = space.interval(a, b);
        let expected = {
            let dx = space.distance(a, x);
            !dx.is_zero() && dx <= space.distance(a, b)
        };
        prop_assert_eq!(space.interval_contains(i, x), expected);
    }

    #[test]
    fn complementary_intervals_partition(space in any_space(), seed in any::<u64>()) {
        // For a ≠ b, every x ≠ a, b... precisely: each point x lies in
        // exactly one of (a, b] and (b, a].
        let mut rng = rand_rng(seed);
        let a = space.random_point(&mut rng);
        let b = space.random_point(&mut rng);
        prop_assume!(a != b);
        let x = space.random_point(&mut rng);
        let in_ab = space.interval_contains(space.interval(a, b), x);
        let in_ba = space.interval_contains(space.interval(b, a), x);
        prop_assert!(in_ab ^ in_ba, "x must be in exactly one of (a,b] and (b,a]");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sorted_ring_arcs_sum_to_modulus(
        modulus in 16u128..4096,
        count in 2usize..64,
        seed in any::<u64>(),
    ) {
        let space = KeySpace::with_modulus(modulus).unwrap();
        let mut rng = rand_rng(seed);
        let n = count.min(modulus as usize / 2);
        let ring = SortedRing::new(space, space.random_distinct_points(&mut rng, n));
        let total: u128 = ring.arcs().map(Distance::to_u128).sum();
        prop_assert_eq!(total, modulus);
    }

    #[test]
    fn successor_is_true_argmin(
        modulus in 16u128..4096,
        count in 1usize..32,
        seed in any::<u64>(),
    ) {
        let space = KeySpace::with_modulus(modulus).unwrap();
        let mut rng = rand_rng(seed);
        let n = count.min(modulus as usize / 2);
        let ring = SortedRing::new(space, space.random_distinct_points(&mut rng, n));
        let x = space.random_point(&mut rng);
        let h = ring.point(ring.successor_of(x));
        for &p in ring.points() {
            prop_assert!(space.distance(x, h) <= space.distance(x, p));
        }
    }

    #[test]
    fn every_point_has_exactly_one_owning_arc(
        modulus in 16u128..512,
        count in 2usize..16,
        seed in any::<u64>(),
    ) {
        // The arcs (p_i, p_{i+1}] tile the circle: each x belongs to exactly
        // one, and its owner is successor_of(x)'s predecessor arc.
        let space = KeySpace::with_modulus(modulus).unwrap();
        let mut rng = rand_rng(seed);
        let n = count.min(modulus as usize / 2);
        let ring = SortedRing::new(space, space.random_distinct_points(&mut rng, n));
        let x = space.random_point(&mut rng);
        let mut owners = 0;
        for i in 0..ring.len() {
            let arc = space.interval(ring.point(i), ring.point(ring.next_index(i)));
            if space.interval_contains(arc, x) {
                owners += 1;
                prop_assert_eq!(ring.successor_of(x), ring.next_index(i));
            }
        }
        // x is either a peer point (owned by itself, the closed end of the
        // preceding arc) or interior to exactly one arc.
        prop_assert_eq!(owners, 1);
    }
}

fn rand_rng(seed: u64) -> rand::rngs::StdRng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed)
}
