//! An incremental ordered index over live ring positions.
//!
//! Every ground-truth query the simulator needs — "who is the clockwise
//! successor of `x`?", "who precedes this node?", "which peers sit on this
//! arc?" — used to be an O(n) scan over a node arena, which capped scenario
//! sweeps at a few hundred peers. [`RingIndex`] keeps the live `(Point, id)`
//! pairs in clockwise order and answers all of them in O(log n), while
//! membership churn (join / leave / fail) maintains the order incrementally
//! instead of re-sorting.
//!
//! # Contract
//!
//! Entries are `(Point, I)` pairs ordered by `(point, id)`. Ids make
//! co-located entries (distinct peers hashing to the same point)
//! first-class: every query that must break a tie between entries at the
//! same point prefers the **smallest id**, matching the arena-scan
//! semantics the index replaces (the scan kept the first, i.e. lowest,
//! arena index among equal distances).
//!
//! * [`successor`](RingIndex::successor) — inclusive `h(x)`: the first
//!   entry at or clockwise of `x`.
//! * [`predecessor`](RingIndex::predecessor) — the entry at the nearest
//!   point strictly counter-clockwise of `x`.
//! * [`strict_successor`](RingIndex::strict_successor) /
//!   [`strict_predecessor`](RingIndex::strict_predecessor) — the same
//!   queries asked *by a member entry about itself*: the entry `(p, id)` is
//!   excluded, co-located other entries count as distance zero.
//! * [`range`](RingIndex::range) — entries on the clockwise arc `(a, b]`
//!   (Chord convention: `a == b` denotes the full ring).
//! * [`nth`](RingIndex::nth) — the `k`-th live entry in ring order, for
//!   O(1)-ish uniform sampling of a live peer.
//!
//! # Implementation
//!
//! A tiered vector: one `Vec` of sorted chunks, each at most
//! `MAX_CHUNK` (1024) entries. Point lookups binary-search the chunk list and
//! then the chunk — O(log n). Inserts and removes shift at most one chunk —
//! O(√n)-flavoured constant work (≤ 1024 `memmove`d entries) with O(log n)
//! search, amortized by chunk splits and merges. `nth` walks chunk lengths,
//! O(n / MAX_CHUNK). This beats a `BTreeMap` for the simulator's workloads
//! because bulk construction is a single sort and iteration is
//! cache-friendly.
//!
//! # Example
//!
//! ```
//! use keyspace::{KeySpace, Point};
//! use ringidx::RingIndex;
//!
//! let space = KeySpace::with_modulus(100).unwrap();
//! let mut idx = RingIndex::bulk(space, vec![(Point::new(10), 0u64), (Point::new(70), 1)]);
//! idx.insert(Point::new(40), 2);
//! assert_eq!(idx.successor(Point::new(15)), Some((Point::new(40), 2)));
//! assert_eq!(idx.successor(Point::new(90)), Some((Point::new(10), 0))); // wraps
//! idx.remove(Point::new(40), 2);
//! assert_eq!(idx.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;

use keyspace::{KeySpace, Point};

/// Maximum entries per chunk; a full chunk splits into two halves.
const MAX_CHUNK: usize = 1024;

/// Chunks below this occupancy try to merge with a neighbour after a
/// removal, bounding fragmentation under sustained churn.
const MIN_CHUNK: usize = MAX_CHUNK / 8;

/// Position of an entry: (chunk index, offset within chunk).
type Pos = (usize, usize);

/// A sorted, incrementally-maintained index of `(Point, I)` ring entries.
///
/// See the [crate docs](crate) for the query contract.
#[derive(Clone)]
pub struct RingIndex<I> {
    space: KeySpace,
    chunks: Vec<Vec<(Point, I)>>,
    len: usize,
}

impl<I: Copy + Ord> RingIndex<I> {
    /// An empty index over `space`.
    pub fn new(space: KeySpace) -> RingIndex<I> {
        RingIndex {
            space,
            chunks: Vec::new(),
            len: 0,
        }
    }

    /// Builds an index from arbitrary-order entries in one O(n log n)
    /// sort. Exact duplicate `(point, id)` pairs collapse to one entry;
    /// co-located entries with distinct ids are all retained.
    pub fn bulk(space: KeySpace, mut entries: Vec<(Point, I)>) -> RingIndex<I> {
        debug_assert!(entries.iter().all(|&(p, _)| space.contains_point(p)));
        entries.sort_unstable();
        entries.dedup();
        let len = entries.len();
        // Fill chunks to half capacity so early inserts don't split.
        let fill = MAX_CHUNK / 2;
        let mut chunks = Vec::with_capacity(len.div_ceil(fill.max(1)));
        let mut entries = entries.into_iter().peekable();
        while entries.peek().is_some() {
            chunks.push(entries.by_ref().take(fill).collect());
        }
        RingIndex { space, chunks, len }
    }

    /// The key space the entries live on.
    pub fn space(&self) -> KeySpace {
        self.space
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterator over all entries in clockwise `(point, id)` order.
    pub fn entries(&self) -> impl Iterator<Item = &(Point, I)> {
        self.chunks.iter().flatten()
    }

    /// All points in clockwise order (duplicates retained).
    pub fn points(&self) -> Vec<Point> {
        self.entries().map(|&(p, _)| p).collect()
    }

    // ---- mutation

    /// Inserts `(point, id)`; returns `false` if the exact pair was
    /// already present.
    pub fn insert(&mut self, point: Point, id: I) -> bool {
        debug_assert!(self.space.contains_point(point));
        let key = (point, id);
        if self.chunks.is_empty() {
            self.chunks.push(vec![key]);
            self.len = 1;
            return true;
        }
        // The first chunk whose last entry is >= key holds (or should
        // hold) the pair; past-the-end keys append to the final chunk.
        let ci = self
            .chunks
            .partition_point(|c| *c.last().expect("chunks are non-empty") < key)
            .min(self.chunks.len() - 1);
        let chunk = &mut self.chunks[ci];
        match chunk.binary_search(&key) {
            Ok(_) => false,
            Err(off) => {
                chunk.insert(off, key);
                self.len += 1;
                if chunk.len() >= MAX_CHUNK {
                    let upper = chunk.split_off(MAX_CHUNK / 2);
                    self.chunks.insert(ci + 1, upper);
                }
                true
            }
        }
    }

    /// Removes `(point, id)`; returns `false` if the pair was absent.
    pub fn remove(&mut self, point: Point, id: I) -> bool {
        let key = (point, id);
        let Some((ci, off)) = self.find(key) else {
            return false;
        };
        self.chunks[ci].remove(off);
        self.len -= 1;
        if self.chunks[ci].is_empty() {
            self.chunks.remove(ci);
        } else if self.chunks[ci].len() < MIN_CHUNK {
            // Fold a sparse chunk into a neighbour when the pair fits
            // comfortably below the split threshold.
            let merge_into = |a: usize, b: usize, chunks: &mut Vec<Vec<(Point, I)>>| {
                if chunks[a].len() + chunks[b].len() <= MAX_CHUNK / 2 {
                    let tail = chunks.remove(b);
                    chunks[a].extend(tail);
                    true
                } else {
                    false
                }
            };
            if ci + 1 < self.chunks.len() {
                merge_into(ci, ci + 1, &mut self.chunks);
            } else if ci > 0 {
                merge_into(ci - 1, ci, &mut self.chunks);
            }
        }
        true
    }

    /// Whether the exact `(point, id)` pair is present.
    pub fn contains(&self, point: Point, id: I) -> bool {
        self.find((point, id)).is_some()
    }

    /// Whether any entry sits exactly at `point`.
    pub fn contains_point(&self, point: Point) -> bool {
        matches!(self.lower_bound(point), Some(pos) if self.get(pos).0 == point)
    }

    // ---- queries

    /// `h(x)`: the first entry at or clockwise of `x` (inclusive), with
    /// co-located entries ordered by id. `None` on an empty index.
    pub fn successor(&self, x: Point) -> Option<(Point, I)> {
        if self.is_empty() {
            return None;
        }
        let pos = self.lower_bound(x).unwrap_or((0, 0)); // wrap
        Some(self.get(pos))
    }

    /// The entry at the nearest point strictly counter-clockwise of `x`
    /// (entries at `x` itself are excluded); among co-located entries the
    /// smallest id wins. `None` when empty or every entry sits at `x`.
    pub fn predecessor(&self, x: Point) -> Option<(Point, I)> {
        let q = self.prev_distinct_point(x)?;
        self.successor(q) // lowest id at q
    }

    /// The strict clockwise successor of member entry `(point, id)`: the
    /// entry minimizing (clockwise distance from `point`, id) over all
    /// entries except `(point, id)`. Co-located entries have distance
    /// zero, so the smallest co-located other id wins when one exists.
    /// `None` when no other entry exists.
    pub fn strict_successor(&self, point: Point, id: I) -> Option<(Point, I)> {
        if let Some(other) = self.colocated_other(point, id) {
            return Some(other);
        }
        let pos = self.upper_bound(point).unwrap_or((0, 0)); // wrap
        let e = self.get_checked(pos)?;
        // Wrapping back to `point` means no entry at a distinct point
        // exists (and co-located others were handled above).
        (e.0 != point).then_some(e)
    }

    /// The strict counter-clockwise predecessor of member entry
    /// `(point, id)`, mirroring [`strict_successor`](RingIndex::strict_successor):
    /// the smallest co-located other id when one exists, else the
    /// lowest-id entry at the nearest distinct point counter-clockwise.
    pub fn strict_predecessor(&self, point: Point, id: I) -> Option<(Point, I)> {
        if let Some(other) = self.colocated_other(point, id) {
            return Some(other);
        }
        let q = self.prev_distinct_point(point)?;
        self.successor(q)
    }

    /// Entries on the clockwise arc `(a, b]`, in ring order starting just
    /// past `a`. Following the Chord convention, `a == b` denotes the full
    /// ring (all entries, starting just past `a`).
    pub fn range(&self, a: Point, b: Point) -> Vec<(Point, I)> {
        let mut out = Vec::new();
        self.for_each_in_range(a, b, |p, id| out.push((p, id)));
        out
    }

    /// Calls `f` for each entry on the clockwise arc `(a, b]`, in ring
    /// order starting just past `a`, without allocating — the delta-feed
    /// form of [`range`](RingIndex::range). Incremental-verification and
    /// dirty-set feeds issue one of these per finger level per membership
    /// event (~64 per event), each expecting O(1) hits, so the per-call
    /// `Vec` was pure overhead. `a == b` denotes the full ring.
    pub fn for_each_in_range(&self, a: Point, b: Point, mut f: impl FnMut(Point, I)) {
        if self.is_empty() {
            return;
        }
        let arc = self.space.distance(a, b);
        let full_ring = a == b;
        let start = self.upper_bound(a).unwrap_or((0, 0));
        let mut pos = start;
        for _ in 0..self.len {
            let e = self.get(pos);
            if !full_ring {
                let d = self.space.distance(a, e.0);
                if d.is_zero() || d > arc {
                    break;
                }
            }
            f(e.0, e.1);
            pos = self.next_pos(pos).unwrap_or((0, 0));
        }
    }

    /// The `k`-th entry in clockwise order, or `None` if `k >= len()`.
    pub fn nth(&self, k: usize) -> Option<(Point, I)> {
        if k >= self.len {
            return None;
        }
        let mut k = k;
        for chunk in &self.chunks {
            if k < chunk.len() {
                return Some(chunk[k]);
            }
            k -= chunk.len();
        }
        unreachable!("len invariant: k < len implies a holding chunk");
    }

    // ---- internal navigation

    fn get(&self, (ci, off): Pos) -> (Point, I) {
        self.chunks[ci][off]
    }

    fn get_checked(&self, (ci, off): Pos) -> Option<(Point, I)> {
        self.chunks.get(ci)?.get(off).copied()
    }

    fn next_pos(&self, (ci, off): Pos) -> Option<Pos> {
        if off + 1 < self.chunks[ci].len() {
            Some((ci, off + 1))
        } else if ci + 1 < self.chunks.len() {
            Some((ci + 1, 0))
        } else {
            None
        }
    }

    /// Position of the first entry with point `>= p`, or `None` when every
    /// entry's point is `< p`.
    fn lower_bound(&self, p: Point) -> Option<Pos> {
        let ci = self
            .chunks
            .partition_point(|c| c.last().expect("chunks are non-empty").0 < p);
        if ci == self.chunks.len() {
            return None;
        }
        let off = self.chunks[ci].partition_point(|e| e.0 < p);
        Some((ci, off))
    }

    /// Position of the first entry with point `> p`, or `None` when every
    /// entry's point is `<= p`.
    fn upper_bound(&self, p: Point) -> Option<Pos> {
        let ci = self
            .chunks
            .partition_point(|c| c.last().expect("chunks are non-empty").0 <= p);
        if ci == self.chunks.len() {
            return None;
        }
        let off = self.chunks[ci].partition_point(|e| e.0 <= p);
        Some((ci, off))
    }

    fn find(&self, key: (Point, I)) -> Option<Pos> {
        if self.chunks.is_empty() {
            return None;
        }
        let ci = self
            .chunks
            .partition_point(|c| *c.last().expect("chunks are non-empty") < key);
        if ci == self.chunks.len() {
            return None;
        }
        self.chunks[ci]
            .binary_search(&key)
            .ok()
            .map(|off| (ci, off))
    }

    /// The smallest-id entry co-located at `point` whose id differs from
    /// `id`, if any.
    fn colocated_other(&self, point: Point, id: I) -> Option<(Point, I)> {
        let mut pos = self.lower_bound(point)?;
        loop {
            let e = self.get(pos);
            if e.0 != point {
                return None;
            }
            if e.1 != id {
                return Some(e);
            }
            pos = self.next_pos(pos)?;
        }
    }

    /// The nearest point strictly counter-clockwise of `x` that holds an
    /// entry, or `None` when empty or every entry sits at `x`.
    fn prev_distinct_point(&self, x: Point) -> Option<Point> {
        if self.is_empty() {
            return None;
        }
        let q = match self.lower_bound(x) {
            // Entries exist below x: the one just before the bound is the
            // largest point < x.
            Some((ci, off)) if (ci, off) != (0, 0) => {
                let (pci, poff) = if off > 0 {
                    (ci, off - 1)
                } else {
                    (ci - 1, self.chunks[ci - 1].len() - 1)
                };
                self.chunks[pci][poff].0
            }
            // x is at or below every entry: wrap to the global maximum.
            Some(_) => {
                self.chunks
                    .last()
                    .expect("non-empty")
                    .last()
                    .expect("chunks are non-empty")
                    .0
            }
            // Every entry is below x: the global maximum point.
            None => {
                self.chunks
                    .last()
                    .expect("non-empty")
                    .last()
                    .expect("chunks are non-empty")
                    .0
            }
        };
        (q != x).then_some(q)
    }
}

impl<I: fmt::Debug> fmt::Debug for RingIndex<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RingIndex")
            .field("space", &self.space)
            .field("len", &self.len)
            .field("chunks", &self.chunks.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> KeySpace {
        KeySpace::with_modulus(100).unwrap()
    }

    fn idx(points: &[u64]) -> RingIndex<u64> {
        RingIndex::bulk(
            space(),
            points
                .iter()
                .enumerate()
                .map(|(i, &p)| (Point::new(p), i as u64))
                .collect(),
        )
    }

    #[test]
    fn bulk_sorts_and_counts() {
        let i = idx(&[70, 10, 40, 95]);
        assert_eq!(i.len(), 4);
        assert!(!i.is_empty());
        assert_eq!(
            i.points(),
            vec![
                Point::new(10),
                Point::new(40),
                Point::new(70),
                Point::new(95)
            ]
        );
    }

    #[test]
    fn successor_is_inclusive_and_wraps() {
        let i = idx(&[70, 10, 40, 95]);
        assert_eq!(i.successor(Point::new(0)).unwrap().0, Point::new(10));
        assert_eq!(i.successor(Point::new(10)).unwrap().0, Point::new(10));
        assert_eq!(i.successor(Point::new(11)).unwrap().0, Point::new(40));
        assert_eq!(i.successor(Point::new(96)).unwrap().0, Point::new(10));
    }

    #[test]
    fn predecessor_is_strict_and_wraps() {
        let i = idx(&[70, 10, 40, 95]);
        assert_eq!(i.predecessor(Point::new(10)).unwrap().0, Point::new(95));
        assert_eq!(i.predecessor(Point::new(11)).unwrap().0, Point::new(10));
        assert_eq!(i.predecessor(Point::new(0)).unwrap().0, Point::new(95));
    }

    #[test]
    fn insert_remove_maintain_order() {
        let mut i = idx(&[10, 70]);
        assert!(i.insert(Point::new(40), 9));
        assert!(!i.insert(Point::new(40), 9), "exact duplicates rejected");
        assert!(i.insert(Point::new(40), 3), "co-located distinct id kept");
        assert_eq!(i.len(), 4);
        assert_eq!(i.successor(Point::new(20)), Some((Point::new(40), 3)));
        assert!(i.remove(Point::new(40), 3));
        assert!(!i.remove(Point::new(40), 3));
        assert_eq!(i.successor(Point::new(20)), Some((Point::new(40), 9)));
        assert!(i.contains(Point::new(40), 9));
        assert!(i.contains_point(Point::new(70)));
        assert!(!i.contains_point(Point::new(71)));
    }

    #[test]
    fn strict_queries_exclude_self() {
        let i = idx(&[70, 10, 40]);
        // Entry (10, 1) asking about itself.
        assert_eq!(
            i.strict_successor(Point::new(10), 1),
            Some((Point::new(40), 2))
        );
        assert_eq!(
            i.strict_predecessor(Point::new(10), 1),
            Some((Point::new(70), 0))
        );
    }

    #[test]
    fn strict_queries_prefer_colocated_lowest_id() {
        let mut i = RingIndex::new(space());
        i.insert(Point::new(50), 5u64);
        i.insert(Point::new(50), 2);
        i.insert(Point::new(50), 8);
        i.insert(Point::new(90), 1);
        // From (50, 5): the co-located entry with the smallest other id.
        assert_eq!(
            i.strict_successor(Point::new(50), 5),
            Some((Point::new(50), 2))
        );
        assert_eq!(
            i.strict_predecessor(Point::new(50), 5),
            Some((Point::new(50), 2))
        );
        // From (90, 1): nearest distinct point, lowest id there.
        assert_eq!(
            i.strict_successor(Point::new(90), 1),
            Some((Point::new(50), 2))
        );
    }

    #[test]
    fn singleton_has_no_strict_neighbours() {
        let i = idx(&[42]);
        assert_eq!(i.strict_successor(Point::new(42), 0), None);
        assert_eq!(i.strict_predecessor(Point::new(42), 0), None);
        assert_eq!(i.predecessor(Point::new(42)), None);
        assert_eq!(i.successor(Point::new(7)), Some((Point::new(42), 0)));
    }

    #[test]
    fn range_follows_chord_conventions() {
        let i = idx(&[70, 10, 40, 95]);
        let pts = |v: Vec<(Point, u64)>| v.into_iter().map(|(p, _)| p.get()).collect::<Vec<_>>();
        assert_eq!(pts(i.range(Point::new(10), Point::new(70))), vec![40, 70]);
        assert_eq!(pts(i.range(Point::new(80), Point::new(20))), vec![95, 10]);
        // (a, a] is the full ring, starting just past a.
        assert_eq!(
            pts(i.range(Point::new(40), Point::new(40))),
            vec![70, 95, 10, 40]
        );
        assert_eq!(i.range(Point::new(41), Point::new(69)).len(), 0);
    }

    #[test]
    fn for_each_in_range_matches_range_without_allocating_results() {
        let i = idx(&[70, 10, 40, 95]);
        let cases = [
            (10, 70),
            (80, 20),
            (40, 40), // full ring
            (41, 69), // empty arc
            (95, 10),
        ];
        for (a, b) in cases {
            let mut seen = Vec::new();
            i.for_each_in_range(Point::new(a), Point::new(b), |p, id| seen.push((p, id)));
            assert_eq!(seen, i.range(Point::new(a), Point::new(b)), "({a}, {b}]");
        }
        let empty: RingIndex<u64> = RingIndex::new(space());
        empty.for_each_in_range(Point::new(0), Point::new(50), |_, _| {
            panic!("no entries to visit")
        });
    }

    #[test]
    fn nth_walks_ring_order() {
        let i = idx(&[70, 10, 40, 95]);
        assert_eq!(i.nth(0).unwrap().0, Point::new(10));
        assert_eq!(i.nth(3).unwrap().0, Point::new(95));
        assert_eq!(i.nth(4), None);
    }

    #[test]
    fn empty_index_answers_none() {
        let i: RingIndex<u64> = RingIndex::new(space());
        assert!(i.is_empty());
        assert_eq!(i.successor(Point::new(1)), None);
        assert_eq!(i.predecessor(Point::new(1)), None);
        assert_eq!(i.nth(0), None);
        assert!(i.range(Point::new(0), Point::new(50)).is_empty());
        assert_eq!(i.entries().count(), 0);
    }

    #[test]
    fn chunks_split_and_merge_under_heavy_churn() {
        let space = KeySpace::full();
        let mut i: RingIndex<u64> = RingIndex::new(space);
        let n = 10 * MAX_CHUNK as u64;
        for k in 0..n {
            // Spread insertions over the ring to hit many chunks.
            assert!(i.insert(Point::new(k.wrapping_mul(0x9E37_79B9_7F4A_7C15)), k));
        }
        assert_eq!(i.len(), n as usize);
        assert!(i.chunks.len() > 1, "index must have split");
        // Entries stay globally sorted across chunk boundaries.
        let all: Vec<_> = i.entries().copied().collect();
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        // Remove everything again through the incremental path.
        for k in 0..n {
            assert!(i.remove(Point::new(k.wrapping_mul(0x9E37_79B9_7F4A_7C15)), k));
        }
        assert!(i.is_empty());
        assert!(i.chunks.is_empty());
    }

    #[test]
    fn debug_reports_len() {
        let i = idx(&[1, 2, 3]);
        assert!(format!("{i:?}").contains("len: 3"));
    }
}
