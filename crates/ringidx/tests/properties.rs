//! Property tests: every `RingIndex` query agrees with a naive linear
//! scan over an unsorted member list, under randomized interleaved
//! insert/remove sequences.
//!
//! Two regimes mirror the index's two consumers:
//!
//! * a tiny point domain with few distinct ids — forces co-located
//!   entries, exact-duplicate inserts, wrap-arounds and empty/singleton
//!   states (the hard tie-break cases);
//! * the full `2^64` ring with arrival-ordered ids — the Chord arena /
//!   oracle membership usage pattern.

use keyspace::{KeySpace, Point};
use proptest::prelude::*;
use ringidx::RingIndex;

/// The reference model: an unsorted member list answering every query by
/// linear scan, per the contract in the `ringidx` crate docs.
struct Naive {
    space: KeySpace,
    entries: Vec<(Point, u64)>,
}

impl Naive {
    fn new(space: KeySpace) -> Naive {
        Naive {
            space,
            entries: Vec::new(),
        }
    }

    fn insert(&mut self, p: Point, id: u64) -> bool {
        if self.entries.contains(&(p, id)) {
            return false;
        }
        self.entries.push((p, id));
        true
    }

    fn remove(&mut self, p: Point, id: u64) -> bool {
        match self.entries.iter().position(|&e| e == (p, id)) {
            Some(i) => {
                self.entries.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Minimum by `(clockwise distance from x, id)` — the scan the index
    /// replaced in `ChordNetwork::truth_successor_id`.
    fn successor(&self, x: Point) -> Option<(Point, u64)> {
        self.entries
            .iter()
            .copied()
            .min_by_key(|&(p, id)| (self.space.distance(x, p).get(), id))
    }

    /// Minimum by `(counter-clockwise distance from x, id)` over entries
    /// not at `x`.
    fn predecessor(&self, x: Point) -> Option<(Point, u64)> {
        self.entries
            .iter()
            .copied()
            .filter(|&(p, _)| p != x)
            .min_by_key(|&(p, id)| (self.space.distance(p, x).get(), id))
    }

    fn strict_successor(&self, p0: Point, id0: u64) -> Option<(Point, u64)> {
        self.entries
            .iter()
            .copied()
            .filter(|&e| e != (p0, id0))
            .min_by_key(|&(p, id)| (self.space.distance(p0, p).get(), id))
    }

    fn strict_predecessor(&self, p0: Point, id0: u64) -> Option<(Point, u64)> {
        self.entries
            .iter()
            .copied()
            .filter(|&e| e != (p0, id0))
            .min_by_key(|&(p, id)| (self.space.distance(p, p0).get(), id))
    }

    fn sorted(&self) -> Vec<(Point, u64)> {
        let mut v = self.entries.clone();
        v.sort_unstable();
        v
    }

    /// Entries on `(a, b]` ordered clockwise starting just past `a`
    /// (`a == b` is the full ring).
    fn range(&self, a: Point, b: Point) -> Vec<(Point, u64)> {
        let arc = self.space.distance(a, b).get();
        let mut hits: Vec<(u64, u64, Point)> = self
            .entries
            .iter()
            .copied()
            .filter_map(|(p, id)| {
                let d = self.space.distance(a, p).get();
                if a == b {
                    // Full ring: entries at `a` come last, not first.
                    let key = if d == 0 { u64::MAX } else { d };
                    Some((key, id, p))
                } else if d > 0 && d <= arc {
                    Some((d, id, p))
                } else {
                    None
                }
            })
            .collect();
        hits.sort_unstable();
        hits.into_iter().map(|(_, id, p)| (p, id)).collect()
    }
}

/// One scripted membership operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u64),
    Remove(u64, u64),
}

fn apply(ops: &[Op], modulus: u128) -> (RingIndex<u64>, Naive) {
    let space = KeySpace::with_modulus(modulus).unwrap();
    let mut index = RingIndex::new(space);
    let mut naive = Naive::new(space);
    let m = modulus.min(u64::MAX as u128 + 1);
    for &op in ops {
        match op {
            Op::Insert(praw, id) => {
                let p = Point::new((praw as u128 % m) as u64);
                assert_eq!(index.insert(p, id), naive.insert(p, id), "insert {p} {id}");
            }
            Op::Remove(praw, id) => {
                let p = Point::new((praw as u128 % m) as u64);
                assert_eq!(index.remove(p, id), naive.remove(p, id), "remove {p} {id}");
            }
        }
    }
    (index, naive)
}

fn check_agreement(index: &RingIndex<u64>, naive: &Naive, probes: &[u64], modulus: u128) {
    assert_eq!(index.len(), naive.entries.len());
    assert_eq!(
        index.entries().copied().collect::<Vec<_>>(),
        naive.sorted(),
        "ring order"
    );
    for (k, &(p, id)) in naive.sorted().iter().enumerate() {
        assert_eq!(index.nth(k), Some((p, id)), "nth({k})");
        assert!(index.contains(p, id));
        assert_eq!(
            index.strict_successor(p, id),
            naive.strict_successor(p, id),
            "strict_successor of ({p}, {id})"
        );
        assert_eq!(
            index.strict_predecessor(p, id),
            naive.strict_predecessor(p, id),
            "strict_predecessor of ({p}, {id})"
        );
    }
    assert_eq!(index.nth(index.len()), None);
    let m = modulus.min(u64::MAX as u128 + 1);
    for &raw in probes {
        let x = Point::new((raw as u128 % m) as u64);
        assert_eq!(index.successor(x), naive.successor(x), "successor({x})");
        assert_eq!(
            index.predecessor(x),
            naive.predecessor(x),
            "predecessor({x})"
        );
    }
    for pair in probes.chunks(2) {
        if let [araw, braw] = *pair {
            let a = Point::new((araw as u128 % m) as u64);
            let b = Point::new((braw as u128 % m) as u64);
            assert_eq!(index.range(a, b), naive.range(a, b), "range({a}, {b})");
        }
    }
}

fn ops_strategy(point_span: u64, id_span: u64, len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0u64..3, 0..point_span, 0..id_span).prop_map(|(kind, p, id)| {
            // Bias 2:1 toward inserts so the structure actually grows.
            if kind < 2 {
                Op::Insert(p, id)
            } else {
                Op::Remove(p, id)
            }
        }),
        0..len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Tiny domain: co-located entries, duplicate pairs, heavy removal.
    #[test]
    fn agrees_with_naive_scan_on_a_tiny_ring(
        ops in ops_strategy(19, 5, 120),
        probes in proptest::collection::vec(0u64..19, 16),
    ) {
        let (index, naive) = apply(&ops, 19);
        check_agreement(&index, &naive, &probes, 19);
    }

    /// Full 2^64 ring with arrival-ordered ids — the simulator's pattern.
    #[test]
    fn agrees_with_naive_scan_on_the_full_ring(
        ops in ops_strategy(u64::MAX, u64::MAX, 80),
        probes in proptest::collection::vec(any::<u64>(), 16),
    ) {
        let modulus = u64::MAX as u128 + 1;
        let (index, naive) = apply(&ops, modulus);
        check_agreement(&index, &naive, &probes, modulus);
    }

    /// Removing everything always returns the index to the empty state.
    #[test]
    fn drain_returns_to_empty(ops in ops_strategy(97, 4, 100)) {
        let (mut index, naive) = apply(&ops, 97);
        for (p, id) in naive.sorted() {
            prop_assert!(index.remove(p, id));
        }
        prop_assert!(index.is_empty());
        prop_assert_eq!(index.successor(Point::new(0)), None);
    }
}
