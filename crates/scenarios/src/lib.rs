//! Declarative adversarial workloads and the parallel sweep harness.
//!
//! King & Saia prove exact uniformity (Theorem 6) on a *static, honest*
//! ring. Everything interesting about running the sampler at production
//! scale — churn storms, Byzantine routers biasing `h(x)` and `next(p)`,
//! clustered or skewed ring placement, flash crowds — lives outside that
//! setting. This crate makes those settings first-class:
//!
//! * [`ScenarioSpec`] — a declarative, serde-round-trippable description:
//!   ring placement × adversary × churn schedule × workload × backends.
//!   [`ScenarioSpec::presets`] ships the standard battery (honest-static,
//!   crash-churn, byzantine-routers, clustered-ring, flash-crowd).
//! * [`run_scenario_seed`] — compiles one `(spec, backend, seed)` triple
//!   into a simulation and executes it; records are pure functions of
//!   their inputs.
//! * [`Sweep`] — fans specs out over seeds and backends on a rayon
//!   parallel iterator and folds the records into a structured
//!   [`SweepReport`] with per-backend aggregates, serializable to JSON.
//!
//! Every spec runs against both [`Backend::Oracle`] (the idealized DHT)
//! and [`Backend::Chord`] (real routing), so each report is a paired
//! cost-vs-correctness comparison: same placement, same churn stream,
//! same workload — only the DHT differs.
//!
//! # Example
//!
//! ```
//! use scenarios::{Backend, ScenarioSpec, Sweep};
//!
//! let mut spec = ScenarioSpec::preset_byzantine_routers();
//! spec.n_initial = 64;          // keep the doctest fast
//! spec.workload.draws = 200;
//! let report = Sweep::new(vec![spec]).with_seeds(2).run();
//! let json = report.to_json_pretty();
//! assert!(json.contains("byzantine-routers"));
//! let chord = report.scenarios[0]
//!     .aggregates
//!     .iter()
//!     .find(|a| a.backend == Backend::Chord.name())
//!     .unwrap();
//! // The capture attack overrepresents the adversary.
//! assert!(chord.byzantine_sample_share_mean > chord.byzantine_population_share_mean);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod placement;
mod run;
mod spec;
mod sweep;

pub use placement::{place_index, place_points};
pub use run::{
    run_scenario_seed, run_scenario_seed_traced, SeedRunRecord, TailExemplar, COMMITTEE_SIZE,
    DRAW_WINDOW,
};
pub use spec::{
    AdaptiveRoutingSpec, AdversaryModel, Backend, ChordTuning, ChurnModel, ChurnPhaseSpec,
    CoalitionStrategySpec, DefenseModel, EngineSpec, FailureDomainSpec, LatencySpec,
    MaintenanceSpec, PlacementModel, SamplerTuning, ScenarioSpec, SlowDomainSpec, TelemetrySpec,
    WorkloadMix,
};
pub use sweep::{BackendAggregate, ScenarioReport, Sweep, SweepReport};
