//! Compiling [`PlacementModel`](crate::PlacementModel)s into ring points.

use keyspace::{KeySpace, Point};
use rand::rngs::StdRng;
use rand::Rng;
use ringidx::RingIndex;

use crate::PlacementModel;

/// Generates `n` peer points on `space` per the placement model.
///
/// Duplicate coordinates are possible (and retained, matching the paper's
/// i.i.d. model); `SortedRing`/`ChordNetwork::bootstrap` deduplicate, so a
/// compiled ring may be marginally smaller than `n` — reports carry the
/// realized live count.
pub fn place_points(
    model: &PlacementModel,
    space: KeySpace,
    n: usize,
    rng: &mut StdRng,
) -> Vec<Point> {
    let modulus = space.modulus();
    match model {
        PlacementModel::Uniform => space.random_points(rng, n),
        PlacementModel::Clustered {
            clusters,
            spread_fraction,
        } => {
            assert!(*clusters > 0, "clustered placement needs >= 1 cluster");
            assert!(
                *spread_fraction > 0.0 && *spread_fraction <= 1.0,
                "spread fraction {spread_fraction} outside (0, 1]"
            );
            let spread = ((modulus as f64) * spread_fraction).max(1.0) as u128;
            let bound = spread.min(modulus);
            (0..n)
                .map(|i| {
                    // Deal peers round-robin over equally spaced centers so
                    // cluster sizes stay balanced at any n.
                    let center = (i % clusters) as u128 * (modulus / *clusters as u128);
                    // spread_fraction = 1 on the full 2^64 ring makes the
                    // bound the whole u64 domain, which `gen_range` cannot
                    // express as an exclusive range.
                    let offset = if bound > u64::MAX as u128 {
                        rng.gen::<u64>() as u128
                    } else {
                        rng.gen_range(0..bound as u64) as u128
                    };
                    Point::new(((center + offset) % modulus) as u64)
                })
                .collect()
        }
        PlacementModel::Skewed { exponent } => {
            assert!(
                *exponent > 0.0 && exponent.is_finite(),
                "skew exponent {exponent} must be positive"
            );
            (0..n)
                .map(|_| {
                    let u: f64 = rng.gen();
                    let x = u.powf(*exponent) * modulus as f64;
                    Point::new((x as u128).min(modulus - 1) as u64)
                })
                .collect()
        }
    }
}

/// Compiles a placement model straight into a membership
/// [`RingIndex`], keyed by arrival order.
///
/// Both backends consume this one compilation: the oracle applies churn
/// to the index incrementally (O(log n) per event) and snapshots it into
/// its sorted view; Chord's `bulk_join` derives a converged overlay from
/// the same points. The id sequence `0..n` also gives churn a stable
/// namespace to continue from (`index.len()`, `len + 1`, …) for joiners.
pub fn place_index(
    model: &PlacementModel,
    space: KeySpace,
    n: usize,
    rng: &mut StdRng,
) -> RingIndex<u64> {
    let points = place_points(model, space, n, rng);
    RingIndex::bulk(
        space,
        points
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, i as u64))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn place_index_matches_place_points() {
        let space = KeySpace::full();
        let model = PlacementModel::Clustered {
            clusters: 4,
            spread_fraction: 0.01,
        };
        let points = place_points(&model, space, 300, &mut rng());
        let index = place_index(&model, space, 300, &mut rng());
        assert_eq!(index.len(), 300, "distinct ids keep co-located peers");
        let mut sorted = points;
        sorted.sort_unstable();
        assert_eq!(index.points(), sorted);
    }

    #[test]
    fn uniform_spreads_over_the_ring() {
        let space = KeySpace::full();
        let pts = place_points(&PlacementModel::Uniform, space, 1000, &mut rng());
        assert_eq!(pts.len(), 1000);
        let high = pts.iter().filter(|p| p.get() > u64::MAX / 2).count();
        assert!((300..700).contains(&high), "half-ring split {high}");
    }

    #[test]
    fn clustered_points_stay_inside_their_clusters() {
        let space = KeySpace::full();
        let model = PlacementModel::Clustered {
            clusters: 4,
            spread_fraction: 0.001,
        };
        let pts = place_points(&model, space, 400, &mut rng());
        let spread = (space.modulus() as f64 * 0.001) as u128;
        for p in &pts {
            let p = p.get() as u128;
            let in_some_cluster = (0..4u128).any(|c| {
                let center = c * (space.modulus() / 4);
                p >= center && p < center + spread
            });
            assert!(in_some_cluster, "point {p} outside every cluster");
        }
        // All four clusters are populated evenly (round-robin dealing).
        for c in 0..4u128 {
            let center = c * (space.modulus() / 4);
            let count = pts
                .iter()
                .filter(|p| {
                    let p = p.get() as u128;
                    p >= center && p < center + spread
                })
                .count();
            assert_eq!(count, 100, "cluster {c}");
        }
    }

    #[test]
    fn skew_concentrates_mass_near_origin() {
        let space = KeySpace::full();
        let pts = place_points(
            &PlacementModel::Skewed { exponent: 4.0 },
            space,
            1000,
            &mut rng(),
        );
        // P(u^4 < 1/16) = P(u < 1/2) = 1/2: about half the points land in
        // the first 1/16 of the ring (uniform placement would put ~62).
        let near = pts
            .iter()
            .filter(|p| (p.get() as u128) < space.modulus() / 16)
            .count();
        assert!((400..600).contains(&near), "{near}/1000 points near origin");
    }

    #[test]
    fn placement_is_deterministic_per_rng_seed() {
        let space = KeySpace::full();
        let model = PlacementModel::Clustered {
            clusters: 3,
            spread_fraction: 0.01,
        };
        let a = place_points(&model, space, 64, &mut rng());
        let b = place_points(&model, space, 64, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    fn exponent_one_is_uniform_like() {
        let space = KeySpace::full();
        let pts = place_points(
            &PlacementModel::Skewed { exponent: 1.0 },
            space,
            2000,
            &mut rng(),
        );
        let high = pts.iter().filter(|p| p.get() > u64::MAX / 2).count();
        assert!((800..1200).contains(&high), "half-ring split {high}");
    }
}
